//! # mhhea-suite
//!
//! A complete reproduction of *"An Improved FPGA Implementation of the
//! Modified Hybrid Hiding Encryption Algorithm (MHHEA) for Data
//! Communication Security"* (Farouk & Saeb, DATE 2005) as a Rust
//! workspace. This facade crate re-exports every member so examples and
//! downstream users can depend on one crate.
//!
//! * [`bitkit`] — bit vectors and LSB-first bit streams.
//! * [`lfsr`] — maximal-length LFSRs, leap-forward matrices, randomness
//!   tests.
//! * [`rtl`] — gate-level netlists, four-state simulation, waveforms and
//!   the structural HDL builder.
//! * [`fpga`] — the Spartan-II-style implementation flow (pack, place,
//!   time, report, floorplan).
//! * [`mhhea`] — the cipher itself: keys, engines, container format,
//!   statistics.
//! * [`mhhea_net`] — MHNP, the framed TCP transport serving the stream
//!   gateway to remote clients.
//! * [`mhhea_hw`] — the gate-level micro-architectures (parallel MHHEA
//!   and the serial HHEA baseline) with cycle-accurate harnesses.
//! * [`mhhea_analysis`] — chosen-plaintext attacks, timing channels,
//!   randomness batteries.
//!
//! # Quickstart
//!
//! ```
//! use mhhea_suite::mhhea::container::{open, seal, SealOptions};
//! use mhhea_suite::mhhea::Key;
//!
//! let key = Key::from_nibbles(&[(0, 3), (2, 5), (1, 7), (4, 6)])?;
//! let sealed = seal(&key, b"packet payload", &SealOptions::default())?;
//! assert_eq!(open(&key, &sealed)?, b"packet payload");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bitkit;
pub use fpga;
pub use lfsr;
pub use mhhea;
pub use mhhea_analysis;
pub use mhhea_hw;
pub use mhhea_net;
pub use rtl;
