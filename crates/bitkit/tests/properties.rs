//! Property-based tests for the bitkit primitives.

use bitkit::{word, BitReader, BitVec, BitWriter};
use proptest::prelude::*;

proptest! {
    #[test]
    fn rotate_roundtrip(v in any::<u64>(), len in 1usize..80, n in 0usize..200) {
        let bv = BitVec::from_u64(v, len.min(64)).concat(&BitVec::zeros(len.saturating_sub(64)));
        prop_assert_eq!(bv.rotate_left(n).rotate_right(n), bv.clone());
        prop_assert_eq!(bv.rotate_right(n).rotate_left(n), bv);
    }

    #[test]
    fn rotate_preserves_popcount(v in any::<u64>(), n in 0usize..64) {
        let bv = BitVec::from_u64(v, 64);
        prop_assert_eq!(bv.rotate_left(n).count_ones(), bv.count_ones());
    }

    #[test]
    fn rotate_composes(v in any::<u16>(), a in 0usize..32, b in 0usize..32) {
        let bv = BitVec::from_u64(v as u64, 16);
        prop_assert_eq!(
            bv.rotate_left(a).rotate_left(b),
            bv.rotate_left((a + b) % 16)
        );
    }

    #[test]
    fn bitvec_rotl_matches_word_rotl(v in any::<u16>(), n in 0u32..48) {
        let bv = BitVec::from_u64(v as u64, 16);
        prop_assert_eq!(bv.rotate_left(n as usize).to_u64() as u16, word::rotl16(v, n));
        prop_assert_eq!(bv.rotate_right(n as usize).to_u64() as u16, word::rotr16(v, n));
    }

    #[test]
    fn slice_concat_identity(v in any::<u32>(), cut in 0usize..=32) {
        let bv = BitVec::from_u64(v as u64, 32);
        let low = bv.slice(0..cut);
        let high = bv.slice(cut..32);
        prop_assert_eq!(low.concat(&high), bv);
    }

    #[test]
    fn field_replace_roundtrip(v in any::<u16>(), lo in 0u32..16, span in 0u32..16) {
        let hi = (lo + span).min(15);
        let f = word::field16(v, lo, hi);
        prop_assert_eq!(word::replace16(v, lo, hi, f), v);
    }

    #[test]
    fn replace_then_field_reads_back(v in any::<u16>(), bits in any::<u16>(), lo in 0u32..16, span in 0u32..16) {
        let hi = (lo + span).min(15);
        let width = hi - lo + 1;
        let mask = if width == 16 { u16::MAX } else { (1u16 << width) - 1 };
        let r = word::replace16(v, lo, hi, bits);
        prop_assert_eq!(word::field16(r, lo, hi), bits & mask);
    }

    #[test]
    fn stream_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut w = BitWriter::new();
        w.extend(BitReader::new(&data));
        prop_assert_eq!(w.into_bytes(), data);
    }

    #[test]
    fn xor_is_involution(a in any::<u64>(), b in any::<u64>(), len in 1usize..=64) {
        let va = BitVec::from_u64(a, len);
        let vb = BitVec::from_u64(b, len);
        prop_assert_eq!(&(&va ^ &vb) ^ &vb, va);
    }

    #[test]
    fn display_hex_matches_u64(v in any::<u16>()) {
        let bv = BitVec::from_u64(v as u64, 16);
        prop_assert_eq!(format!("{bv:x}"), format!("{v:04x}"));
        prop_assert_eq!(bv.to_string(), format!("{v:016b}"));
    }
}
