//! Fixed-width word helpers used when modelling 16-bit hardware registers.
//!
//! These free functions mirror the datapath primitives of the paper's
//! micro-architecture (16-bit barrel rotation, bit-field extraction and
//! replacement) on plain `u16` values, so the software reference model and
//! the gate-level model can be cross-checked against a third, independent
//! formulation.
//!
//! # Examples
//!
//! ```
//! use bitkit::word;
//!
//! assert_eq!(word::rotl16(0x48D0, 2), 0x2341);
//! assert_eq!(word::rotr16(0x2341, 6), 0x048D);
//! ```

/// Rotates a 16-bit word left by `n` (mod 16).
pub fn rotl16(v: u16, n: u32) -> u16 {
    v.rotate_left(n % 16)
}

/// Rotates a 16-bit word right by `n` (mod 16).
pub fn rotr16(v: u16, n: u32) -> u16 {
    v.rotate_right(n % 16)
}

/// Extracts bits `lo..=hi` of `v` (inclusive, LSB-numbered).
///
/// Models the HDL slice `v[hi downto lo]`.
///
/// # Panics
///
/// Panics if `hi < lo` or `hi > 15`.
///
/// ```
/// // V[11 downto 8] of 0xCA06 = 0b1010
/// assert_eq!(bitkit::word::field16(0xCA06, 8, 11), 0b1010);
/// ```
pub fn field16(v: u16, lo: u32, hi: u32) -> u16 {
    assert!(lo <= hi && hi <= 15, "invalid field {lo}..={hi}");
    let width = hi - lo + 1;
    let mask = if width == 16 {
        u16::MAX
    } else {
        (1u16 << width) - 1
    };
    (v >> lo) & mask
}

/// Replaces bits `lo..=hi` of `v` with the low bits of `bits`.
///
/// # Panics
///
/// Panics if `hi < lo` or `hi > 15`.
///
/// ```
/// // Replace bits 2..=5 of 0xCA06 with 0 -> 0xCA02.
/// assert_eq!(bitkit::word::replace16(0xCA06, 2, 5, 0), 0xCA02);
/// ```
pub fn replace16(v: u16, lo: u32, hi: u32, bits: u16) -> u16 {
    assert!(lo <= hi && hi <= 15, "invalid field {lo}..={hi}");
    let width = hi - lo + 1;
    let mask = if width == 16 {
        u16::MAX
    } else {
        ((1u16 << width) - 1) << lo
    };
    (v & !mask) | ((bits << lo) & mask)
}

/// Reads bit `i` of a word.
///
/// # Panics
///
/// Panics if `i > 15`.
pub fn bit16(v: u16, i: u32) -> bool {
    assert!(i <= 15, "bit index {i} out of range");
    (v >> i) & 1 == 1
}

/// A mask with the low `n` bits set (`n ≤ 16`).
///
/// # Panics
///
/// Panics if `n > 16`.
///
/// ```
/// assert_eq!(bitkit::word::low_mask16(0), 0x0000);
/// assert_eq!(bitkit::word::low_mask16(4), 0x000F);
/// assert_eq!(bitkit::word::low_mask16(16), 0xFFFF);
/// ```
pub fn low_mask16(n: usize) -> u16 {
    assert!(n <= 16, "mask width {n} exceeds 16");
    if n == 16 {
        u16::MAX
    } else {
        (1u16 << n) - 1
    }
}

/// A mask with bits `lo..=hi` set (inclusive, LSB-numbered).
///
/// This is the word-level form of the span a key pair selects: the engines
/// replace/extract whole spans with one masked operation instead of a
/// per-bit loop.
///
/// # Panics
///
/// Panics if `hi < lo` or `hi > 15`.
///
/// ```
/// assert_eq!(bitkit::word::mask16(2, 5), 0b0011_1100);
/// assert_eq!(bitkit::word::mask16(0, 15), 0xFFFF);
/// ```
pub fn mask16(lo: u32, hi: u32) -> u16 {
    assert!(lo <= hi && hi <= 15, "invalid field {lo}..={hi}");
    low_mask16((hi - lo + 1) as usize) << lo
}

/// Splits a 32-bit word into `(low16, high16)`.
///
/// The paper's message cache stores the 32-bit input as two 16-bit halves and
/// feeds the least-significant half to the alignment buffer first.
pub fn split32(v: u32) -> (u16, u16) {
    (v as u16, (v >> 16) as u16)
}

/// Rebuilds a 32-bit word from `(low16, high16)`.
pub fn join32(low: u16, high: u16) -> u32 {
    (low as u32) | ((high as u32) << 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotations_match_paper_example() {
        assert_eq!(rotl16(0x48D0, 2), 0x2341);
        assert_eq!(rotr16(0x2341, 6), 0x048D);
        assert_eq!(rotl16(0x1234, 2), 0x48D0);
    }

    #[test]
    fn rotation_wraps_mod_16() {
        assert_eq!(rotl16(0xBEEF, 16), 0xBEEF);
        assert_eq!(rotl16(0xBEEF, 18), rotl16(0xBEEF, 2));
        assert_eq!(rotr16(0xBEEF, 35), rotr16(0xBEEF, 3));
    }

    #[test]
    fn field_extracts_inclusive_range() {
        assert_eq!(field16(0xCA06, 8, 11), 0b1010);
        assert_eq!(field16(0xCA06, 0, 7), 0x06);
        assert_eq!(field16(0xCA06, 8, 15), 0xCA);
        assert_eq!(field16(0xFFFF, 0, 15), 0xFFFF);
        assert_eq!(field16(0x8000, 15, 15), 1);
    }

    #[test]
    #[should_panic(expected = "invalid field")]
    fn field_reversed_panics() {
        field16(0, 5, 2);
    }

    #[test]
    fn replace_overwrites_only_field() {
        assert_eq!(replace16(0xCA06, 2, 5, 0), 0xCA02);
        assert_eq!(replace16(0x0000, 0, 15, 0xABCD), 0xABCD);
        assert_eq!(replace16(0xFFFF, 7, 7, 0), 0xFF7F);
        // Excess bits of the replacement value are masked off.
        assert_eq!(replace16(0x0000, 0, 1, 0xFF), 0x0003);
    }

    #[test]
    fn masks_match_fields() {
        assert_eq!(low_mask16(0), 0);
        assert_eq!(low_mask16(7), 0x7F);
        assert_eq!(low_mask16(16), 0xFFFF);
        for lo in 0..16u32 {
            for hi in lo..16 {
                let m = mask16(lo, hi);
                // The mask extracts exactly what field16 reads.
                assert_eq!((0xA5C3 & m) >> lo, field16(0xA5C3, lo, hi));
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid field")]
    fn mask_reversed_panics() {
        mask16(5, 2);
    }

    #[test]
    fn bit_reads() {
        assert!(bit16(0x8000, 15));
        assert!(!bit16(0x8000, 0));
    }

    #[test]
    fn split_join_roundtrip() {
        let (lo, hi) = split32(0xABCD_1234);
        assert_eq!(lo, 0x1234);
        assert_eq!(hi, 0xABCD);
        assert_eq!(join32(lo, hi), 0xABCD_1234);
    }
}
