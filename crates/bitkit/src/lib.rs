//! Bit-manipulation primitives shared by the MHHEA reproduction suite.
//!
//! The crate provides three things:
//!
//! * [`BitVec`] — an arbitrary-width bit vector backed by `u64` limbs, with
//!   the rotation/slice/logic operations the MHHEA datapath is built from.
//! * [`BitReader`] / [`BitWriter`] — LSB-first bit streams over byte slices,
//!   used to turn plaintext bytes into the bit cursor the cipher consumes.
//! * [`word`] — tiny helpers over machine words (`u16` fields, rotations)
//!   used where a fixed 16-bit hardware register is being modelled.
//!
//! Bit order convention used throughout the suite: **index 0 is the least
//! significant bit**, matching the paper's "location zero refers to the least
//! significant bit". Byte streams are serialised LSB-first within each byte.
//!
//! # Examples
//!
//! ```
//! use bitkit::BitVec;
//!
//! let v = BitVec::from_u64(0x48D0, 16);
//! assert_eq!(v.rotate_left(2).to_u64(), 0x2341);
//! assert_eq!(v.rotate_left(2).rotate_right(6).to_u64(), 0x048D);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitvec;
mod stream;
pub mod word;

pub use bitvec::{BitVec, Bits};
pub use stream::{BitReader, BitWriter};

/// Errors produced by bit-level operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BitError {
    /// A width larger than the operation supports was requested.
    WidthTooLarge {
        /// Requested width in bits.
        requested: usize,
        /// Maximum supported width in bits.
        max: usize,
    },
    /// A bit index was out of range for the vector it addressed.
    IndexOutOfRange {
        /// Offending index.
        index: usize,
        /// Length of the addressed vector.
        len: usize,
    },
    /// Two vectors had mismatched lengths in a binary operation.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
}

impl core::fmt::Display for BitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BitError::WidthTooLarge { requested, max } => {
                write!(f, "width {requested} exceeds supported maximum {max}")
            }
            BitError::IndexOutOfRange { index, len } => {
                write!(f, "bit index {index} out of range for length {len}")
            }
            BitError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for BitError {}
