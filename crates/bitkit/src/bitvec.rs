//! Arbitrary-width bit vector backed by `u64` limbs.

use crate::BitError;
use core::fmt;
use core::ops::{BitAnd, BitOr, BitXor, Not, Range};

const LIMB_BITS: usize = 64;

/// An arbitrary-width bit vector.
///
/// Bit index 0 is the least significant bit. The vector owns `ceil(len/64)`
/// limbs and keeps unused high bits of the last limb zeroed, so equality and
/// hashing are structural.
///
/// # Examples
///
/// ```
/// use bitkit::BitVec;
///
/// let mut v = BitVec::zeros(8);
/// v.set(3, true);
/// assert_eq!(v.to_u64(), 0b1000);
/// assert_eq!(v.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BitVec {
    len: usize,
    limbs: Vec<u64>,
}

impl BitVec {
    /// Creates a vector of `len` zero bits.
    ///
    /// ```
    /// let v = bitkit::BitVec::zeros(100);
    /// assert_eq!(v.len(), 100);
    /// assert_eq!(v.count_ones(), 0);
    /// ```
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            limbs: vec![0; len.div_ceil(LIMB_BITS)],
        }
    }

    /// Creates a vector of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec {
            len,
            limbs: vec![u64::MAX; len.div_ceil(LIMB_BITS)],
        };
        v.mask_tail();
        v
    }

    /// Creates a `len`-bit vector from the low `len` bits of `value`.
    ///
    /// Bits of `value` above `len` are discarded.
    ///
    /// ```
    /// let v = bitkit::BitVec::from_u64(0xAB, 4);
    /// assert_eq!(v.to_u64(), 0xB);
    /// ```
    pub fn from_u64(value: u64, len: usize) -> Self {
        let mut v = BitVec::zeros(len);
        if !v.limbs.is_empty() {
            v.limbs[0] = value;
            v.mask_tail();
        }
        v
    }

    /// Creates a vector from bits in LSB-first order.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut v = BitVec::zeros(0);
        for b in bits {
            v.push(b);
        }
        v
    }

    /// Number of bits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range ({})",
            self.len
        );
        (self.limbs[index / LIMB_BITS] >> (index % LIMB_BITS)) & 1 == 1
    }

    /// Reads bit `index`, returning `None` when out of range.
    pub fn try_get(&self, index: usize) -> Option<bool> {
        (index < self.len).then(|| self.get(index))
    }

    /// Writes bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range ({})",
            self.len
        );
        let limb = &mut self.limbs[index / LIMB_BITS];
        let mask = 1u64 << (index % LIMB_BITS);
        if value {
            *limb |= mask;
        } else {
            *limb &= !mask;
        }
    }

    /// Appends a bit at the most significant end.
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(LIMB_BITS) {
            self.limbs.push(0);
        }
        self.len += 1;
        let idx = self.len - 1;
        self.set(idx, value);
    }

    /// Returns the low 64 bits as a `u64`.
    ///
    /// For vectors wider than 64 bits the higher bits are ignored; use
    /// [`BitVec::try_to_u64`] to detect that case.
    pub fn to_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Returns the value as `u64` if it fits without truncation.
    ///
    /// # Errors
    ///
    /// Returns [`BitError::WidthTooLarge`] when any bit above position 63 is
    /// set.
    pub fn try_to_u64(&self) -> Result<u64, BitError> {
        if self.limbs.iter().skip(1).any(|&l| l != 0) {
            return Err(BitError::WidthTooLarge {
                requested: self.len,
                max: 64,
            });
        }
        Ok(self.to_u64())
    }

    /// Extracts the bits in `range` (LSB-first) as a new vector.
    ///
    /// This is the hardware "slice" operation: `v.slice(8..12)` models
    /// `V[11 downto 8]`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    ///
    /// ```
    /// let v = bitkit::BitVec::from_u64(0xCA06, 16);
    /// // V[11 downto 8] of 0xCA06 is 0b1010.
    /// assert_eq!(v.slice(8..12).to_u64(), 0b1010);
    /// ```
    pub fn slice(&self, range: Range<usize>) -> BitVec {
        assert!(range.start <= range.end, "reversed slice range");
        assert!(
            range.end <= self.len,
            "slice end {} out of range ({})",
            range.end,
            self.len
        );
        BitVec::from_bits(range.map(|i| self.get(i)))
    }

    /// Number of one bits.
    pub fn count_ones(&self) -> usize {
        self.limbs.iter().map(|l| l.count_ones() as usize).sum()
    }

    /// Rotates the vector left (towards the MSB) by `n` bits.
    ///
    /// After the rotation, bit `i` holds the previous bit `(i - n) mod len`,
    /// which is exactly the "circulate left" of the paper's message-alignment
    /// module.
    #[must_use]
    pub fn rotate_left(&self, n: usize) -> BitVec {
        if self.len == 0 {
            return self.clone();
        }
        let n = n % self.len;
        BitVec::from_bits((0..self.len).map(|i| self.get((i + self.len - n) % self.len)))
    }

    /// Rotates the vector right (towards the LSB) by `n` bits.
    #[must_use]
    pub fn rotate_right(&self, n: usize) -> BitVec {
        if self.len == 0 {
            return self.clone();
        }
        let n = n % self.len;
        self.rotate_left(self.len - n)
    }

    /// Concatenates `high` above `self` (self keeps the low positions).
    #[must_use]
    pub fn concat(&self, high: &BitVec) -> BitVec {
        BitVec::from_bits(self.iter().chain(high.iter()))
    }

    /// Iterates bits LSB-first.
    pub fn iter(&self) -> Bits<'_> {
        Bits { v: self, next: 0 }
    }

    /// Zeroes any bits beyond `len` in the last limb.
    fn mask_tail(&mut self) {
        let tail = self.len % LIMB_BITS;
        if tail != 0 {
            if let Some(last) = self.limbs.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        if self.len == 0 {
            self.limbs.clear();
        }
    }

    /// Applies a binary limb-wise operation, checking lengths.
    fn zip_with(&self, rhs: &BitVec, f: impl Fn(u64, u64) -> u64) -> BitVec {
        assert_eq!(
            self.len, rhs.len,
            "length mismatch: {} vs {}",
            self.len, rhs.len
        );
        let mut out = BitVec {
            len: self.len,
            limbs: self
                .limbs
                .iter()
                .zip(&rhs.limbs)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        };
        out.mask_tail();
        out
    }
}

impl BitXor for &BitVec {
    type Output = BitVec;
    fn bitxor(self, rhs: Self) -> BitVec {
        self.zip_with(rhs, |a, b| a ^ b)
    }
}

impl BitAnd for &BitVec {
    type Output = BitVec;
    fn bitand(self, rhs: Self) -> BitVec {
        self.zip_with(rhs, |a, b| a & b)
    }
}

impl BitOr for &BitVec {
    type Output = BitVec;
    fn bitor(self, rhs: Self) -> BitVec {
        self.zip_with(rhs, |a, b| a | b)
    }
}

impl Not for &BitVec {
    type Output = BitVec;
    fn not(self) -> BitVec {
        let mut out = BitVec {
            len: self.len,
            limbs: self.limbs.iter().map(|&l| !l).collect(),
        };
        out.mask_tail();
        out
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitVec::from_bits(iter)
    }
}

impl Extend<bool> for BitVec {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

/// LSB-first bit iterator produced by [`BitVec::iter`].
#[derive(Debug, Clone)]
pub struct Bits<'a> {
    v: &'a BitVec,
    next: usize,
}

impl Iterator for Bits<'_> {
    type Item = bool;
    fn next(&mut self) -> Option<bool> {
        let b = self.v.try_get(self.next)?;
        self.next += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.v.len - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Bits<'_> {}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec<{}>({self})", self.len)
    }
}

impl fmt::Display for BitVec {
    /// Prints bits MSB-first, the usual register rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "<empty>");
        }
        for i in (0..self.len).rev() {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl fmt::Binary for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::LowerHex for BitVec {
    /// Prints the vector as hex nibbles, MSB-first, padded to `ceil(len/4)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nibbles = self.len.div_ceil(4);
        for n in (0..nibbles).rev() {
            let mut val = 0u8;
            for b in 0..4 {
                if self.try_get(n * 4 + b) == Some(true) {
                    val |= 1 << b;
                }
            }
            write!(f, "{val:x}")?;
        }
        Ok(())
    }
}

impl fmt::UpperHex for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = format!("{self:x}");
        write!(f, "{}", s.to_uppercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(70);
        assert_eq!(z.len(), 70);
        assert_eq!(z.count_ones(), 0);
        let o = BitVec::ones(70);
        assert_eq!(o.count_ones(), 70);
    }

    #[test]
    fn from_u64_truncates() {
        let v = BitVec::from_u64(0xFFFF, 8);
        assert_eq!(v.to_u64(), 0xFF);
        assert_eq!(v.count_ones(), 8);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(128));
        assert_eq!(v.count_ones(), 3);
        v.set(64, false);
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(4).get(4);
    }

    #[test]
    fn try_get_in_and_out_of_range() {
        let v = BitVec::from_u64(0b10, 2);
        assert_eq!(v.try_get(1), Some(true));
        assert_eq!(v.try_get(2), None);
    }

    #[test]
    fn push_grows() {
        let mut v = BitVec::zeros(0);
        for i in 0..100 {
            v.push(i % 3 == 0);
        }
        assert_eq!(v.len(), 100);
        assert_eq!(v.count_ones(), 34);
    }

    #[test]
    fn paper_rotation_example() {
        // Figure 8: 48D0 rotl 2 = 2341; 2341 rotr 6 = 048D.
        let m = BitVec::from_u64(0x48D0, 16);
        let ml = m.rotate_left(2);
        assert_eq!(ml.to_u64(), 0x2341);
        assert_eq!(ml.rotate_right(6).to_u64(), 0x048D);
    }

    #[test]
    fn rotate_by_len_is_identity() {
        let v = BitVec::from_u64(0xBEEF, 16);
        assert_eq!(v.rotate_left(16), v);
        assert_eq!(v.rotate_right(32), v);
        assert_eq!(v.rotate_left(0), v);
    }

    #[test]
    fn rotate_empty_is_noop() {
        let v = BitVec::zeros(0);
        assert_eq!(v.rotate_left(5), v);
    }

    #[test]
    fn slice_matches_manual_extraction() {
        let v = BitVec::from_u64(0xCA06, 16);
        assert_eq!(v.slice(8..12).to_u64(), 0b1010);
        assert_eq!(v.slice(0..8).to_u64(), 0x06);
        assert_eq!(v.slice(8..16).to_u64(), 0xCA);
        assert_eq!(v.slice(5..5).len(), 0);
    }

    #[test]
    #[should_panic(expected = "slice end")]
    fn slice_out_of_bounds_panics() {
        BitVec::zeros(8).slice(4..9);
    }

    #[test]
    fn logic_ops() {
        let a = BitVec::from_u64(0b1100, 4);
        let b = BitVec::from_u64(0b1010, 4);
        assert_eq!((&a ^ &b).to_u64(), 0b0110);
        assert_eq!((&a & &b).to_u64(), 0b1000);
        assert_eq!((&a | &b).to_u64(), 0b1110);
        assert_eq!((!&a).to_u64(), 0b0011);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_length_mismatch_panics() {
        let _ = &BitVec::zeros(4) ^ &BitVec::zeros(5);
    }

    #[test]
    fn not_masks_tail() {
        let v = !&BitVec::zeros(3);
        assert_eq!(v.to_u64(), 0b111);
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn concat_orders_low_then_high() {
        let low = BitVec::from_u64(0x6, 8);
        let high = BitVec::from_u64(0xCA, 8);
        assert_eq!(low.concat(&high).to_u64(), 0xCA06);
    }

    #[test]
    fn try_to_u64_detects_truncation() {
        let mut v = BitVec::zeros(80);
        v.set(70, true);
        assert!(v.try_to_u64().is_err());
        v.set(70, false);
        assert_eq!(v.try_to_u64(), Ok(0));
    }

    #[test]
    fn display_and_hex() {
        let v = BitVec::from_u64(0xCA06, 16);
        assert_eq!(v.to_string(), "1100101000000110");
        assert_eq!(format!("{v:x}"), "ca06");
        assert_eq!(format!("{v:X}"), "CA06");
        assert_eq!(format!("{:x}", BitVec::from_u64(0b101, 3)), "5");
        assert_eq!(BitVec::zeros(0).to_string(), "<empty>");
    }

    #[test]
    fn iterator_roundtrip() {
        let v = BitVec::from_u64(0x1234, 16);
        let w: BitVec = v.iter().collect();
        assert_eq!(v, w);
        assert_eq!(v.iter().len(), 16);
    }

    #[test]
    fn extend_appends() {
        let mut v = BitVec::from_u64(0b01, 2);
        v.extend([true, false]);
        assert_eq!(v.to_u64(), 0b0101);
    }
}
