//! LSB-first bit streams over bytes.
//!
//! The MHHEA engines consume plaintext as a stream of bits and produce
//! 16-bit cipher vectors; these adapters define the byte ⇄ bit mapping used
//! by the whole suite: bytes in order, least-significant bit first within
//! each byte.

/// Reads bits LSB-first from a byte slice.
///
/// # Examples
///
/// ```
/// use bitkit::BitReader;
///
/// let mut r = BitReader::new(&[0b0000_0101]);
/// assert_eq!(r.next(), Some(true));
/// assert_eq!(r.next(), Some(false));
/// assert_eq!(r.next(), Some(true));
/// assert_eq!(r.remaining(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute next bit index.
    cursor: usize,
    /// Total number of bits exposed (may be less than `bytes.len() * 8`).
    len: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over all bits of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            cursor: 0,
            len: bytes.len() * 8,
        }
    }

    /// Creates a reader over only the first `bit_len` bits of `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `bit_len > bytes.len() * 8`.
    pub fn with_bit_len(bytes: &'a [u8], bit_len: usize) -> Self {
        assert!(
            bit_len <= bytes.len() * 8,
            "bit_len {bit_len} exceeds available {}",
            bytes.len() * 8
        );
        BitReader {
            bytes,
            cursor: 0,
            len: bit_len,
        }
    }

    /// Number of bits not yet read.
    pub fn remaining(&self) -> usize {
        self.len - self.cursor
    }

    /// Number of bits already read.
    pub fn consumed(&self) -> usize {
        self.cursor
    }

    /// Returns `true` when every bit has been read (the pseudocode's EOF).
    pub fn is_eof(&self) -> bool {
        self.cursor >= self.len
    }

    /// Reads the next bit without consuming it.
    pub fn peek(&self) -> Option<bool> {
        if self.is_eof() {
            None
        } else {
            Some((self.bytes[self.cursor / 8] >> (self.cursor % 8)) & 1 == 1)
        }
    }

    /// Reads up to `width` bits (`width ≤ 16`) into a word, LSB-first.
    ///
    /// Returns `(word, got)` where `got ≤ width` is the number of bits
    /// actually available; unread high bits are zero. This is the
    /// word-level fast path the MHHEA engines use to fill a whole span in
    /// one masked operation instead of one [`Iterator::next`] call per bit.
    ///
    /// # Panics
    ///
    /// Panics if `width > 16`.
    ///
    /// ```
    /// use bitkit::BitReader;
    ///
    /// let mut r = BitReader::new(&[0x06, 0xCA]);
    /// assert_eq!(r.read_bits16(12), (0xA06, 12));
    /// assert_eq!(r.read_bits16(16), (0xC, 4)); // only 4 bits left
    /// ```
    pub fn read_bits16(&mut self, width: usize) -> (u16, usize) {
        assert!(width <= 16, "width {width} exceeds 16");
        let got = width.min(self.remaining());
        let mut out: u32 = 0;
        let mut filled = 0usize;
        while filled < got {
            let pos = self.cursor + filled;
            let take = (8 - pos % 8).min(got - filled);
            let chunk = ((self.bytes[pos / 8] >> (pos % 8)) as u32) & ((1u32 << take) - 1);
            out |= chunk << filled;
            filled += take;
        }
        self.cursor += got;
        (out as u16, got)
    }
}

impl Iterator for BitReader<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let b = self.peek()?;
        self.cursor += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining(), Some(self.remaining()))
    }
}

impl ExactSizeIterator for BitReader<'_> {}

/// Accumulates bits LSB-first into bytes.
///
/// # Examples
///
/// ```
/// use bitkit::BitWriter;
///
/// let mut w = BitWriter::new();
/// for bit in [true, false, true] {
///     w.push(bit);
/// }
/// assert_eq!(w.bit_len(), 3);
/// assert_eq!(w.into_bytes(), vec![0b0000_0101]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        if self.bit_len.is_multiple_of(8) {
            self.bytes.push(0);
        }
        if bit {
            let idx = self.bit_len / 8;
            self.bytes[idx] |= 1 << (self.bit_len % 8);
        }
        self.bit_len += 1;
    }

    /// Appends the low `width` bits of `value`, LSB-first.
    ///
    /// Works a byte at a time: the value is masked, shifted into place
    /// against the current partial byte and stored in whole-byte chunks,
    /// instead of one [`BitWriter::push`] call per bit.
    pub fn push_bits(&mut self, value: u64, width: usize) {
        assert!(width <= 64, "width {width} exceeds 64");
        let mut value = if width == 64 {
            value
        } else {
            value & ((1u64 << width) - 1)
        };
        let mut left = width;
        // Fill the current partial byte first.
        let used = self.bit_len % 8;
        if used != 0 {
            let take = (8 - used).min(left);
            let idx = self.bit_len / 8;
            self.bytes[idx] |= ((value << used) & 0xFF) as u8;
            value >>= take;
            self.bit_len += take;
            left -= take;
        }
        // Then whole bytes, then the trailing partial byte.
        while left > 0 {
            self.bytes.push((value & 0xFF) as u8);
            let take = left.min(8);
            value >>= take;
            self.bit_len += take;
            left -= take;
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Finishes the stream, returning the bytes (final partial byte padded
    /// with zero bits).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Borrows the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl Extend<bool> for BitWriter {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_walks_lsb_first() {
        let mut r = BitReader::new(&[0x01, 0x80]);
        let bits: Vec<bool> = (&mut r).collect();
        assert_eq!(bits.len(), 16);
        assert!(bits[0]);
        assert!(bits[15]);
        assert_eq!(bits.iter().filter(|&&b| b).count(), 2);
        assert!(r.is_eof());
    }

    #[test]
    fn reader_respects_bit_len() {
        let mut r = BitReader::with_bit_len(&[0xFF], 3);
        assert_eq!(r.remaining(), 3);
        assert_eq!((&mut r).count(), 3);
        assert_eq!(r.next(), None);
    }

    #[test]
    #[should_panic(expected = "exceeds available")]
    fn reader_bit_len_overflow_panics() {
        BitReader::with_bit_len(&[0x00], 9);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut r = BitReader::new(&[0b1]);
        assert_eq!(r.peek(), Some(true));
        assert_eq!(r.consumed(), 0);
        r.next();
        assert_eq!(r.consumed(), 1);
    }

    #[test]
    fn read_bits16_zero_width_reads_nothing() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits16(0), (0, 0));
        assert_eq!(r.consumed(), 0);
    }

    #[test]
    fn read_bits16_matches_per_bit() {
        let data = [0xDE, 0xAD, 0xBE, 0xEF, 0x3C];
        for width in 1..=16usize {
            let mut word_reader = BitReader::new(&data);
            let mut bit_reader = BitReader::new(&data);
            loop {
                let (w, got) = word_reader.read_bits16(width);
                let mut want = 0u16;
                let mut want_got = 0usize;
                for i in 0..width {
                    let Some(b) = bit_reader.next() else { break };
                    want |= (b as u16) << i;
                    want_got += 1;
                }
                assert_eq!((w, got), (want, want_got), "width {width}");
                if got < width {
                    break;
                }
            }
            assert!(word_reader.is_eof());
        }
    }

    #[test]
    fn read_bits16_respects_bit_len() {
        let mut r = BitReader::with_bit_len(&[0xFF, 0xFF], 5);
        assert_eq!(r.read_bits16(16), (0b1_1111, 5));
        assert_eq!(r.read_bits16(8), (0, 0));
    }

    #[test]
    #[should_panic(expected = "exceeds 16")]
    fn read_bits16_overwide_panics() {
        BitReader::new(&[0; 4]).read_bits16(17);
    }

    #[test]
    fn writer_reader_roundtrip() {
        let data = [0xDE, 0xAD, 0xBE, 0xEF, 0x01];
        let mut w = BitWriter::new();
        w.extend(BitReader::new(&data));
        assert_eq!(w.bit_len(), 40);
        assert_eq!(w.into_bytes(), data.to_vec());
    }

    #[test]
    fn writer_pads_partial_byte() {
        let mut w = BitWriter::new();
        w.push(true);
        w.push(true);
        assert_eq!(w.as_bytes(), &[0b11]);
        assert_eq!(w.into_bytes(), vec![0b11]);
    }

    #[test]
    fn push_bits_matches_manual() {
        let mut w = BitWriter::new();
        w.push_bits(0xCA06, 16);
        assert_eq!(w.into_bytes(), vec![0x06, 0xCA]);
    }

    #[test]
    fn push_bits_matches_per_bit_at_any_alignment() {
        // Sweep every starting bit offset and width (including 0 and 64)
        // so the byte-at-a-time path is pinned to the per-bit reference.
        for offset in 0..8usize {
            for width in 0..=64usize {
                let value = 0xDEAD_BEEF_CAFE_F00Du64;
                let mut word = BitWriter::new();
                let mut bit = BitWriter::new();
                for i in 0..offset {
                    word.push(i % 3 == 0);
                    bit.push(i % 3 == 0);
                }
                word.push_bits(value, width);
                for i in 0..width {
                    bit.push((value >> i) & 1 == 1);
                }
                assert_eq!(word.bit_len(), bit.bit_len(), "off {offset} w {width}");
                assert_eq!(
                    word.into_bytes(),
                    bit.into_bytes(),
                    "off {offset} w {width}"
                );
            }
        }
    }

    #[test]
    fn size_hint_is_exact() {
        let r = BitReader::new(&[0u8; 4]);
        assert_eq!(r.size_hint(), (32, Some(32)));
        assert_eq!(r.len(), 32);
    }
}
