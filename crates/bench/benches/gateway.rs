//! Criterion: the multi-stream gateway — batched throughput across a
//! streams × message-size sweep, against the per-call `seal_v2` baseline.
//!
//! The baseline treats every message as an independent one-shot container
//! (fresh session, fresh span table, fresh header per call) — what a
//! server without a stream table has to do. The gateway keeps one session
//! per stream alive in the sharded mux and coalesces the whole batch into
//! one submission to the shared worker pool, so the per-message cost
//! collapses to the cipher itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mhhea::container::{seal_v2, SealV2Options};
use mhhea::gateway::{StreamConfig, StreamId, StreamMux};
use mhhea::Key;

fn message_for(id: u64, size: usize) -> Vec<u8> {
    (0..size)
        .map(|i| {
            ((id as usize)
                .wrapping_mul(31)
                .wrapping_add(i.wrapping_mul(7))
                & 0xFF) as u8
        })
        .collect()
}

fn open_streams(mux: &StreamMux, key: &Key, streams: u64) {
    for id in 0..streams {
        mux.open(
            StreamId(id),
            StreamConfig::new(key.clone()).with_seed(0x1000u16.wrapping_add(id as u16) | 1),
        )
        .unwrap();
    }
}

/// Streams × message-size sweep; the 1024-stream rows are the acceptance
/// configuration (≥ 1,000 concurrent streams in flight).
fn bench_gateway_sweep(c: &mut Criterion) {
    let key = mhhea_bench::report_key();
    for msg_size in [64usize, 1024] {
        let mut group = c.benchmark_group(format!("gateway_batch_{msg_size}B"));
        group.sample_size(10);
        for streams in [64u64, 1024] {
            let mux = StreamMux::with_shards(64);
            open_streams(&mux, &key, streams);
            let batch: Vec<(StreamId, Vec<u8>)> = (0..streams)
                .map(|id| (StreamId(id), message_for(id, msg_size)))
                .collect();
            group.throughput(Throughput::Bytes(streams * msg_size as u64));
            group.bench_with_input(
                BenchmarkId::new("mux_seal_batch", streams),
                &batch,
                |b, batch| b.iter(|| mux.seal_batch(batch.clone())),
            );
            // Baseline: the same messages as independent one-shot v2
            // containers, one seal_v2 call each.
            group.bench_with_input(
                BenchmarkId::new("per_call_seal_v2", streams),
                &batch,
                |b, batch| {
                    b.iter(|| {
                        batch
                            .iter()
                            .map(|(id, msg)| {
                                let opts = SealV2Options {
                                    master_seed: 0x1000u16.wrapping_add(id.0 as u16) | 1,
                                    workers: 1,
                                    ..Default::default()
                                };
                                seal_v2(&key, msg, &opts).unwrap()
                            })
                            .collect::<Vec<_>>()
                    })
                },
            );
        }
        group.finish();
    }
}

/// Lanes × message-size sweep: the same seal workload run where the
/// bitsliced lane engine engages versus where it cannot. The `lanes`
/// rows use a single-shard mux, so every batch lands the whole
/// same-key group in one shard queue and `seal_batch` packs it into
/// u64 lanes; the `scalar` rows spread the identical streams across 64
/// shards, leaving every per-shard group below `LANE_THRESHOLD` so the
/// scalar `SpanTable` path does the exact same cipher work. The stream
/// counts bracket the lane word: threshold (16), one full word (64),
/// and a word plus a scalar tail (80).
fn bench_gateway_lanes(c: &mut Criterion) {
    use mhhea::lanes::{LANE_THRESHOLD, MAX_LANES};
    let key = mhhea_bench::report_key();
    for msg_size in [64usize, 1024] {
        let mut group = c.benchmark_group(format!("gateway_lanes_{msg_size}B"));
        group.sample_size(10);
        for streams in [
            LANE_THRESHOLD as u64,
            MAX_LANES as u64,
            MAX_LANES as u64 + LANE_THRESHOLD as u64,
        ] {
            let laned = StreamMux::with_shards(1);
            let scattered = StreamMux::with_shards(64);
            open_streams(&laned, &key, streams);
            open_streams(&scattered, &key, streams);
            let batch: Vec<(StreamId, Vec<u8>)> = (0..streams)
                .map(|id| (StreamId(id), message_for(id, msg_size)))
                .collect();
            group.throughput(Throughput::Bytes(streams * msg_size as u64));
            group.bench_with_input(BenchmarkId::new("lanes", streams), &batch, |b, batch| {
                b.iter(|| {
                    let frames = laned.seal_batch(batch.clone());
                    assert!(frames.iter().all(Result::is_ok));
                })
            });
            group.bench_with_input(BenchmarkId::new("scalar", streams), &batch, |b, batch| {
                b.iter(|| {
                    let frames = scattered.seal_batch(batch.clone());
                    assert!(frames.iter().all(Result::is_ok));
                })
            });
        }
        group.finish();
    }
}

/// Full duplex at acceptance scale: 1,024 streams sealed on one mux and
/// opened on its peer, measuring the round trip.
fn bench_gateway_duplex(c: &mut Criterion) {
    let key = mhhea_bench::report_key();
    const STREAMS: u64 = 1024;
    const MSG: usize = 256;
    let tx = StreamMux::with_shards(64);
    let rx = StreamMux::with_shards(64);
    open_streams(&tx, &key, STREAMS);
    open_streams(&rx, &key, STREAMS);
    let batch: Vec<(StreamId, Vec<u8>)> = (0..STREAMS)
        .map(|id| (StreamId(id), message_for(id, MSG)))
        .collect();
    let mut group = c.benchmark_group("gateway_duplex_1024x256B");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(STREAMS * MSG as u64));
    group.bench_function("seal_then_open_batch", |b| {
        b.iter(|| {
            let frames: Vec<Vec<u8>> = tx
                .seal_batch(batch.clone())
                .into_iter()
                .map(Result::unwrap)
                .collect();
            let opened = rx.open_batch(frames);
            assert!(opened.iter().all(Result::is_ok));
        })
    });
    group.finish();
}

/// Key-rotation churn: every batch rekeys all 1024 streams (one
/// `StreamOp::Rekey` per stream riding the same per-shard jobs as the
/// traffic) and then seals a message per stream — against the no-rotation
/// batch as the baseline. The delta prices what an aggressive
/// rotate-every-tick policy costs: span-table rebuild + LFSR reseed per
/// stream.
fn bench_gateway_rekey_churn(c: &mut Criterion) {
    use mhhea::gateway::{StreamOp, StreamOutput};
    use mhhea::KeyRing;
    let key = mhhea_bench::report_key();
    const STREAMS: u64 = 1024;
    const MSG: usize = 256;
    let mux = StreamMux::with_shards(64);
    for id in 0..STREAMS {
        let ring = KeyRing::single(key.clone(), 0x1000u16.wrapping_add(id as u16) | 1).unwrap();
        mux.open(StreamId(id), StreamConfig::new(key.clone()).with_ring(ring))
            .unwrap();
    }
    let traffic: Vec<(StreamId, StreamOp)> = (0..STREAMS)
        .map(|id| (StreamId(id), StreamOp::Encrypt(message_for(id, MSG))))
        .collect();
    let mut group = c.benchmark_group("gateway_rekey_churn_1024x256B");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(STREAMS * MSG as u64));
    let epoch = std::cell::Cell::new(0u32);
    group.bench_function("rekey_all_then_seal", |b| {
        b.iter(|| {
            let e = epoch.get() + 1;
            epoch.set(e);
            let mut batch: Vec<(StreamId, StreamOp)> = (0..STREAMS)
                .map(|id| (StreamId(id), StreamOp::Rekey { epoch: e }))
                .collect();
            batch.extend(traffic.iter().cloned());
            let results = mux.submit_batch(batch);
            assert!(results
                .iter()
                .take(STREAMS as usize)
                .all(|r| matches!(r, Ok(StreamOutput::Rekeyed { .. }))));
        })
    });
    group.bench_function("seal_only_baseline", |b| {
        b.iter(|| {
            let results = mux.submit_batch(traffic.clone());
            assert!(results.iter().all(Result::is_ok));
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gateway_sweep,
    bench_gateway_lanes,
    bench_gateway_duplex,
    bench_gateway_rekey_churn
);
criterion_main!(benches);
