//! Criterion: implementation-flow runtime (pack, place, time) on the
//! MHHEA core.

use criterion::{criterion_group, criterion_main, Criterion};
use fpga::flow::run_flow;

fn bench_flow(c: &mut Criterion) {
    let core = mhhea_hw::core::build_mhhea_core();
    let mut group = c.benchmark_group("flow");
    group.sample_size(10);
    for effort in [0usize, 16] {
        group.bench_function(format!("mhhea_core_effort_{effort}"), |b| {
            let opts = mhhea_bench::flow_options(effort);
            b.iter(|| run_flow(&core.netlist, &opts).unwrap().summary.slices_used)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
