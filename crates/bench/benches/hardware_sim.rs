//! Criterion: gate-level simulation speed of both cores.

use criterion::{criterion_group, criterion_main, Criterion};
use mhhea_hw::harness::{MhheaCoreSim, SerialHheaSim};

fn bench_cores(c: &mut Criterion) {
    let key = mhhea_bench::report_key();
    let words = vec![0xABCD_1234u32];

    let parallel = mhhea_hw::core::build_mhhea_core();
    c.bench_function("parallel_core_one_word", |b| {
        let mut sim = MhheaCoreSim::new(&parallel).unwrap();
        b.iter(|| sim.encrypt_words(&key, &words).unwrap().blocks.len())
    });

    let serial = mhhea_hw::serial::build_serial_hhea_core();
    c.bench_function("serial_core_one_word", |b| {
        let mut sim = SerialHheaSim::new(&serial).unwrap();
        b.iter(|| sim.encrypt_words(&key, &words).unwrap().blocks.len())
    });

    c.bench_function("elaborate_parallel_core", |b| {
        b.iter(|| mhhea_hw::core::build_mhhea_core().netlist.cell_count())
    });
}

criterion_group!(benches, bench_cores);
criterion_main!(benches);
