//! Criterion: attack runtimes (the cost of breaking HHEA / MHHEA).

use criterion::{criterion_group, criterion_main, Criterion};
use mhhea::Algorithm;
use mhhea_analysis::{cpa, keyrec};

fn bench_attacks(c: &mut Criterion) {
    let key = mhhea_bench::report_key();
    let mut group = c.benchmark_group("attacks");
    group.sample_size(10);
    group.bench_function("constant_cpa_hhea_100", |b| {
        b.iter(|| cpa::constant_cpa(Algorithm::Hhea, &key, 100, 1).recovered_key)
    });
    group.bench_function("constant_cpa_mhhea_100", |b| {
        b.iter(|| cpa::constant_cpa(Algorithm::Mhhea, &key, 100, 1).recovered_key)
    });
    group.bench_function("model_aware_mhhea_100", |b| {
        b.iter(|| keyrec::model_aware_attack(&key, 100, 1).survivor_count())
    });
    group.finish();
}

criterion_group!(benches, bench_attacks);
criterion_main!(benches);
