//! Criterion: the session/pipeline layer — word-level hot path vs the
//! per-bit baseline, and chunk-parallel container v2 scaling.
//!
//! The per-bit baseline is the paper's pseudocode transcribed literally
//! (one `Iterator<Item = bool>` step per message bit, `Vec<bool>`
//! intermediates on decrypt) — exactly what the seed engines did. The
//! word-level path is what [`mhhea::session`] ships: precomputed span
//! tables and whole-span `u16` mask operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mhhea::block::{self, BlockOutcome};
use mhhea::container::{open_v2_with, seal_v2, SealV2Options};
use mhhea::session::EncryptSession;
use mhhea::{Algorithm, Decryptor, Encryptor, Key, LfsrSource, VectorSource};

/// The seed engine's per-bit streaming encrypt loop.
fn per_bit_encrypt(key: &Key, source: &mut impl VectorSource, message: &[u8]) -> Vec<u16> {
    let mut reader = bitkit::BitReader::new(message);
    let mut blocks = Vec::new();
    let mut i = 0usize;
    while !reader.is_eof() {
        let v = source.next_vector().expect("lfsr never exhausts");
        let BlockOutcome { cipher, .. } =
            block::embed(Algorithm::Mhhea, key.pair(i), v, &mut reader);
        blocks.push(cipher);
        i += 1;
    }
    blocks
}

/// The seed engine's per-bit streaming decrypt loop (`Vec<bool>`
/// intermediate included, as shipped).
fn per_bit_decrypt(key: &Key, blocks: &[u16], bit_len: usize) -> Vec<u8> {
    let mut bits = Vec::with_capacity(bit_len.min(blocks.len() * 16));
    for (i, &cipher) in blocks.iter().enumerate() {
        if bits.len() >= bit_len {
            break;
        }
        bits.extend(block::extract(
            Algorithm::Mhhea,
            key.pair(i),
            cipher,
            bit_len - bits.len(),
        ));
    }
    let mut w = bitkit::BitWriter::new();
    w.extend(bits.into_iter().take(bit_len));
    w.into_bytes()
}

fn bench_word_level_vs_per_bit(c: &mut Criterion) {
    let key = mhhea_bench::report_key();
    let message = vec![0xA5u8; 4096];

    // Steady-state traffic: the source/engine outlives the messages (as a
    // session does), so construction cost is not what's measured. Both
    // paths restart the key schedule per message and share the same
    // table-leaping LfsrSource — the comparison isolates the per-bit
    // iterator loop against the span-table mask operations.
    let mut group = c.benchmark_group("pipeline_encrypt_4k");
    group.throughput(Throughput::Bytes(message.len() as u64));
    let mut per_bit_src = LfsrSource::new(0xACE1).unwrap();
    group.bench_with_input(BenchmarkId::new("MHHEA", "per-bit"), &message, |b, msg| {
        b.iter(|| per_bit_encrypt(&key, &mut per_bit_src, msg))
    });
    let mut word_enc = Encryptor::new(key.clone(), LfsrSource::new(0xACE1).unwrap());
    group.bench_with_input(
        BenchmarkId::new("MHHEA", "word-level"),
        &message,
        |b, msg| b.iter(|| word_enc.encrypt(msg).unwrap()),
    );
    group.finish();

    let blocks = {
        let mut session = EncryptSession::new(key.clone(), LfsrSource::new(0xACE1).unwrap());
        session.encrypt(&message).unwrap()
    };
    let mut group = c.benchmark_group("pipeline_decrypt_4k");
    group.throughput(Throughput::Bytes(message.len() as u64));
    group.bench_function(BenchmarkId::new("MHHEA", "per-bit"), |b| {
        b.iter(|| per_bit_decrypt(&key, &blocks, message.len() * 8))
    });
    let word_dec = Decryptor::new(key.clone());
    group.bench_function(BenchmarkId::new("MHHEA", "word-level"), |b| {
        b.iter(|| word_dec.decrypt(&blocks, message.len() * 8).unwrap())
    });
    group.finish();
}

fn bench_chunk_parallel_container(c: &mut Criterion) {
    let key = mhhea_bench::report_key();
    let payload = vec![0x3Cu8; 512 * 1024];
    let mut group = c.benchmark_group("container_v2_512k");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(payload.len() as u64));
    for workers in [1usize, 2, 4] {
        let opts = SealV2Options {
            chunk_bytes: 64 * 1024,
            workers,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("seal", workers), &payload, |b, payload| {
            b.iter(|| seal_v2(&key, payload, &opts).unwrap())
        });
        let sealed = seal_v2(&key, &payload, &opts).unwrap();
        group.bench_with_input(BenchmarkId::new("open", workers), &sealed, |b, sealed| {
            b.iter(|| open_v2_with(&key, sealed, workers).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_word_level_vs_per_bit,
    bench_chunk_parallel_container
);
criterion_main!(benches);
