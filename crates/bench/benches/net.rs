//! Criterion: the MHNP TCP transport — loopback throughput across a
//! connections × message-size sweep, against the raw in-process
//! `seal_batch` baseline.
//!
//! The baseline is the same workload submitted straight to a
//! [`StreamMux`] (no sockets, no frames, no readiness loop); the TCP rows
//! run it through real loopback connections with pipelined clients. The
//! gap between the two is the transport overhead the acceptance
//! criterion bounds: batched server throughput at 1 KiB messages must
//! stay within 2× of raw `seal_batch` (≥ 0.5× its throughput).

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mhhea::gateway::{StreamConfig, StreamId, StreamMux};
use mhhea_net::client::NetClient;
use mhhea_net::frame::Hello;
use mhhea_net::server::{NetServer, ServerConfig, ServerHandle};

/// Messages each connection pipelines per iteration.
const MSGS_PER_CONN: usize = 64;

fn message_for(stream: u64, i: usize, size: usize) -> Vec<u8> {
    (0..size)
        .map(|j| {
            ((stream as usize)
                .wrapping_mul(131)
                .wrapping_add(i.wrapping_mul(31))
                .wrapping_add(j.wrapping_mul(7))
                & 0xFF) as u8
        })
        .collect()
}

fn server() -> &'static ServerHandle {
    static SERVER: OnceLock<ServerHandle> = OnceLock::new();
    SERVER.get_or_init(|| {
        NetServer::spawn(
            "127.0.0.1:0",
            ServerConfig::new([(1, mhhea_bench::report_key())]),
        )
        .expect("bind bench server")
    })
}

/// Connections × message-size sweep over real loopback sockets; each
/// connection pipelines its whole batch so the server can coalesce.
fn bench_net_sweep(c: &mut Criterion) {
    // Stream ids must be unique across the whole bench process (the
    // server is shared); partition by group.
    let mut next_stream: u64 = 1;
    for msg_size in [64usize, 1024] {
        let mut group = c.benchmark_group(format!("net_loopback_{msg_size}B"));
        group.sample_size(10);
        for conns in [1usize, 4, 16] {
            let mut clients: Vec<(u64, NetClient)> = (0..conns)
                .map(|_| {
                    let stream = next_stream;
                    next_stream += 1;
                    let mut client = NetClient::connect(server().addr()).expect("connect");
                    client
                        .open_stream(stream, Hello::new(1, (stream as u16) | 1))
                        .expect("open stream");
                    (stream, client)
                })
                .collect();
            let total = (conns * MSGS_PER_CONN * msg_size) as u64;
            group.throughput(Throughput::Bytes(total));
            group.bench_function(BenchmarkId::new("tcp_pipelined", conns), |b| {
                b.iter(|| {
                    std::thread::scope(|s| {
                        for (stream, client) in clients.iter_mut() {
                            let stream = *stream;
                            s.spawn(move || {
                                let batch: Vec<(u64, Vec<u8>)> = (0..MSGS_PER_CONN)
                                    .map(|i| (stream, message_for(stream, i, msg_size)))
                                    .collect();
                                let sealed = client.seal_pipelined(&batch).expect("pipelined seal");
                                assert_eq!(sealed.len(), MSGS_PER_CONN);
                            });
                        }
                    })
                })
            });
            for (stream, client) in clients.iter_mut() {
                client.bye(*stream).expect("bye");
            }
        }
        group.finish();
    }
}

/// The no-transport baseline: the identical workload (streams × messages)
/// submitted directly to a `StreamMux`, one `seal_batch` per iteration.
fn bench_raw_baseline(c: &mut Criterion) {
    let key = mhhea_bench::report_key();
    for msg_size in [64usize, 1024] {
        let mut group = c.benchmark_group(format!("net_raw_baseline_{msg_size}B"));
        group.sample_size(10);
        for conns in [1usize, 4, 16] {
            let mux = StreamMux::with_shards(64);
            for stream in 0..conns as u64 {
                mux.open(
                    StreamId(stream),
                    StreamConfig::new(key.clone()).with_seed((stream as u16) | 1),
                )
                .unwrap();
            }
            let batch: Vec<(StreamId, Vec<u8>)> = (0..conns as u64)
                .flat_map(|stream| {
                    (0..MSGS_PER_CONN)
                        .map(move |i| (StreamId(stream), message_for(stream, i, msg_size)))
                })
                .collect();
            let total = (conns * MSGS_PER_CONN * msg_size) as u64;
            group.throughput(Throughput::Bytes(total));
            group.bench_with_input(
                BenchmarkId::new("mux_seal_batch", conns),
                &batch,
                |b, batch| {
                    b.iter(|| {
                        let frames = mux.seal_batch(batch.clone());
                        assert!(frames.iter().all(Result::is_ok));
                    })
                },
            );
        }
        group.finish();
    }
}

/// Connections × reactors sweep: the same pipelined loopback workload
/// against dedicated servers running 1 vs 4 reactor threads. This is the
/// scaling criterion's measurement point — at ≥ 64 connections the
/// 4-reactor aggregate throughput should approach linear (≥ 2.5× the
/// single-reactor row on a ≥ 4-core machine; a 1-core box can only show
/// parity). The `reactors = 1` rows double as the regression guard: the
/// layered server must stay within 10% of the pre-refactor single-loop
/// numbers (tracked in `BENCH_*.json`).
fn bench_reactor_scaling(c: &mut Criterion) {
    const MSG_SIZE: usize = 256;
    const MSGS: usize = 32;
    for reactors in [1usize, 4] {
        // A dedicated server per row: reactor threads are a server-level
        // property, and sharing one would let rows warm each other.
        let server = NetServer::spawn(
            "127.0.0.1:0",
            ServerConfig::new([(1, mhhea_bench::report_key())]).with_reactors(reactors),
        )
        .expect("bind bench server");
        let mut group = c.benchmark_group(format!("net_reactor_scaling_r{reactors}"));
        group.sample_size(10);
        for conns in [16usize, 64] {
            let mut clients: Vec<(u64, NetClient)> = (0..conns as u64)
                .map(|stream| {
                    let mut client = NetClient::connect(server.addr()).expect("connect");
                    client
                        .open_stream(stream + 1, Hello::new(1, (stream as u16) | 1))
                        .expect("open stream");
                    (stream + 1, client)
                })
                .collect();
            let total = (conns * MSGS * MSG_SIZE) as u64;
            group.throughput(Throughput::Bytes(total));
            group.bench_function(BenchmarkId::new("tcp_pipelined", conns), |b| {
                b.iter(|| {
                    std::thread::scope(|s| {
                        for (stream, client) in clients.iter_mut() {
                            let stream = *stream;
                            s.spawn(move || {
                                let batch: Vec<(u64, Vec<u8>)> = (0..MSGS)
                                    .map(|i| (stream, message_for(stream, i, MSG_SIZE)))
                                    .collect();
                                let sealed = client.seal_pipelined(&batch).expect("pipelined seal");
                                assert_eq!(sealed.len(), MSGS);
                            });
                        }
                    })
                })
            });
            for (stream, client) in clients.iter_mut() {
                client.bye(*stream).expect("bye");
            }
        }
        group.finish();
        server.stop();
    }
}

criterion_group!(
    benches,
    bench_net_sweep,
    bench_raw_baseline,
    bench_reactor_scaling
);
criterion_main!(benches);
