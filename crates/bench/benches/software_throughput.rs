//! Criterion: software encrypt/decrypt throughput, all algorithm/profile
//! combinations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mhhea::{Algorithm, Decryptor, Encryptor, LfsrSource, Profile};

fn bench_encrypt(c: &mut Criterion) {
    let key = mhhea_bench::report_key();
    let message = vec![0xA5u8; 4096];
    let mut group = c.benchmark_group("encrypt_4k");
    group.throughput(Throughput::Bytes(message.len() as u64));
    for alg in [Algorithm::Hhea, Algorithm::Mhhea] {
        for profile in [Profile::Streaming, Profile::HardwareFaithful] {
            group.bench_with_input(
                BenchmarkId::new(alg.name(), profile.name()),
                &message,
                |b, msg| {
                    b.iter(|| {
                        let mut enc = Encryptor::new(key.clone(), LfsrSource::new(0xACE1).unwrap())
                            .with_algorithm(alg)
                            .with_profile(profile);
                        enc.encrypt(msg).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_decrypt(c: &mut Criterion) {
    let key = mhhea_bench::report_key();
    let message = vec![0xA5u8; 4096];
    let mut enc = Encryptor::new(key.clone(), LfsrSource::new(0xACE1).unwrap());
    let blocks = enc.encrypt(&message).unwrap();
    let mut group = c.benchmark_group("decrypt_4k");
    group.throughput(Throughput::Bytes(message.len() as u64));
    group.bench_function("MHHEA/streaming", |b| {
        let dec = Decryptor::new(key.clone());
        b.iter(|| dec.decrypt(&blocks, message.len() * 8).unwrap())
    });
    group.finish();
}

fn bench_container(c: &mut Criterion) {
    use mhhea::container::{open, seal, SealOptions};
    let key = mhhea_bench::report_key();
    let message = vec![0x3Cu8; 1024];
    c.bench_function("container_seal_open_1k", |b| {
        b.iter(|| {
            let sealed = seal(&key, &message, &SealOptions::default()).unwrap();
            open(&key, &sealed).unwrap()
        })
    });
}

criterion_group!(benches, bench_encrypt, bench_decrypt, bench_container);
criterion_main!(benches);
