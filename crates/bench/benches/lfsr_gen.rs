//! Criterion: hiding-vector generation and leap-matrix construction.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lfsr::Fibonacci;

fn bench_vectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("lfsr16");
    group.throughput(Throughput::Bytes(2 * 1024));
    group.bench_function("next_vector_x1024", |b| {
        let mut l = Fibonacci::from_table(16, 0xACE1).unwrap();
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1024 {
                acc ^= l.next_vector();
            }
            acc
        })
    });
    group.bench_function("leap_matrix_pow16", |b| {
        let l = Fibonacci::from_table(16, 1).unwrap();
        b.iter(|| l.leap_matrix(16))
    });
    group.bench_function("matrix_apply_x1024", |b| {
        let l = Fibonacci::from_table(16, 1).unwrap();
        let m = l.leap_matrix(16);
        b.iter(|| {
            let mut s = 0xACE1u64;
            for _ in 0..1024 {
                s = m.apply(s);
            }
            s
        })
    });
    group.finish();
}

criterion_group!(benches, bench_vectors);
criterion_main!(benches);
