//! Table 1 and Figure 9: the functional-density comparison.
//!
//! Rows come from three sources, each labelled in the output:
//!
//! * `measured`  — our implementation flow + cycle-accurate simulation of
//!   the corresponding core;
//! * `paper`     — the paper's published number for the same design
//!   (shown alongside for comparison);
//! * `reported`  — numbers carried from the cited literature (YAEA has no
//!   public specification to reimplement — see `DESIGN.md` §2).

use fpga::report::functional_density;
use mhhea::stats::{paper_throughput_mbps, PAPER_BITS_PER_PERIOD};
use mhhea_hw::harness::{MhheaCoreSim, SerialHheaSim};

/// Where a row's numbers come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowSource {
    /// Produced by this reproduction's flow + simulation.
    Measured,
    /// The paper's Table 1 value for the same design.
    Paper,
    /// Carried from cited literature (no public spec to rebuild).
    Reported,
}

impl RowSource {
    fn label(self) -> &'static str {
        match self {
            RowSource::Measured => "measured",
            RowSource::Paper => "paper",
            RowSource::Reported => "reported",
        }
    }
}

/// One comparison row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Algorithm / implementation name.
    pub name: String,
    /// Throughput in Mbps.
    pub throughput_mbps: f64,
    /// Area in CLBs.
    pub area_clbs: usize,
    /// Provenance.
    pub source: RowSource,
}

impl Row {
    /// Functional density, the paper's figure of merit.
    pub fn density(&self) -> f64 {
        functional_density(self.throughput_mbps, self.area_clbs)
    }
}

/// The assembled comparison.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// All rows, ours and cited.
    pub rows: Vec<Row>,
    /// Notes printed under the table.
    pub notes: Vec<String>,
}

/// The paper's own Table 1 rows, kept for side-by-side comparison.
pub fn paper_rows() -> Vec<Row> {
    vec![
        Row {
            name: "YAEA (XC4005XL)".into(),
            throughput_mbps: 129.1,
            area_clbs: 149,
            source: RowSource::Reported,
        },
        Row {
            name: "HHEA serial [SAEB04a]".into(),
            throughput_mbps: 15.8,
            area_clbs: 144,
            source: RowSource::Paper,
        },
        Row {
            name: "MHHEA (paper)".into(),
            throughput_mbps: 95.532,
            area_clbs: 168,
            source: RowSource::Paper,
        },
    ]
}

/// Builds the full comparison: flow + cycle-accurate measurement of both
/// cores, paper rows alongside.
///
/// `effort` is the placement effort (annealing moves per slice).
pub fn build_table1(effort: usize) -> Table1 {
    let key = crate::report_key();
    // Long enough that the one-off key load is amortised (steady state).
    let words: Vec<u32> = (0..16u32)
        .map(|i| 0xABCD_1234u32.rotate_left(i) ^ (i * 0x0101_0101))
        .collect();
    let message_bits = words.len() * 32;

    // Parallel MHHEA core.
    let (mh_nl, mh_flow) = crate::flow_mhhea(effort);
    let mh_core = mhhea_hw::core::build_mhhea_core();
    let mh_run = MhheaCoreSim::new(&mh_core)
        .expect("core simulates")
        .encrypt_words(&key, &words)
        .expect("run completes");
    let mh_period = mh_flow.timing.min_period_ns;
    let mh_measured =
        mhhea::stats::measured_throughput_mbps(message_bits, mh_run.cycles, mh_period);
    let mh_paper_formula = paper_throughput_mbps(mh_period, PAPER_BITS_PER_PERIOD);

    // Serial HHEA core.
    let (se_nl, se_flow) = crate::flow_serial(effort);
    let se_core = mhhea_hw::serial::build_serial_hhea_core();
    let se_run = SerialHheaSim::new(&se_core)
        .expect("core simulates")
        .encrypt_words(&key, &words)
        .expect("run completes");
    let se_period = se_flow.timing.min_period_ns;
    let se_measured =
        mhhea::stats::measured_throughput_mbps(message_bits, se_run.cycles, se_period);

    // The paper compares both designs at the same clock (its HHEA row,
    // 15.8 Mbps, is ~0.66 bits/cycle at the same ~23.9 MHz as MHHEA), so
    // the equal-clock view is the faithful reproduction of Table 1; the
    // own-fmax rows are additionally reported for completeness.
    let se_common_clock =
        mhhea::stats::measured_throughput_mbps(message_bits, se_run.cycles, mh_period);

    let mut rows = vec![
        Row {
            name: "HHEA serial (ours, common clk)".into(),
            throughput_mbps: se_common_clock,
            area_clbs: se_flow.summary.clbs_used,
            source: RowSource::Measured,
        },
        Row {
            name: "MHHEA (ours, measured)".into(),
            throughput_mbps: mh_measured,
            area_clbs: mh_flow.summary.clbs_used,
            source: RowSource::Measured,
        },
        Row {
            name: "MHHEA (ours, paper formula)".into(),
            throughput_mbps: mh_paper_formula,
            area_clbs: mh_flow.summary.clbs_used,
            source: RowSource::Measured,
        },
        Row {
            name: "HHEA serial (ours, own fmax)".into(),
            throughput_mbps: se_measured,
            area_clbs: se_flow.summary.clbs_used,
            source: RowSource::Measured,
        },
    ];
    rows.extend(paper_rows());

    let notes = vec![
        format!(
            "ours: min period MHHEA {:.3} ns ({} slices, {} LUTs, {} FFs), serial HHEA {:.3} ns ({} slices)",
            mh_period,
            mh_flow.summary.slices_used,
            mh_flow.summary.luts_used,
            mh_flow.summary.ffs_used,
            se_period,
            se_flow.summary.slices_used,
        ),
        format!(
            "measured over {} message bits: parallel {} cycles ({:.3} bit/cyc), serial {} cycles ({:.3} bit/cyc, {:.2}x more)",
            message_bits,
            mh_run.cycles,
            mh_run.bits_per_cycle(message_bits),
            se_run.cycles,
            se_run.bits_per_cycle(message_bits),
            se_run.cycles as f64 / mh_run.cycles as f64
        ),
        "common clk = serial cycles priced at the parallel design's period, the paper's implied methodology".into(),
        "paper formula: 4 expected information bits per minimum period".into(),
        "YAEA row reported from [SAEB02]; no public specification exists to rebuild".into(),
        format!("designs: {} and {}", mh_nl.name(), se_nl.name()),
    ];

    Table1 { rows, notes }
}

impl std::fmt::Display for Table1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<30} {:>12} {:>10} {:>10}  source",
            "Algorithm", "Mbps", "CLBs", "Mbps/CLB"
        )?;
        writeln!(f, "{}", "-".repeat(78))?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<30} {:>12.3} {:>10} {:>10.3}  {}",
                r.name,
                r.throughput_mbps,
                r.area_clbs,
                r.density(),
                r.source.label()
            )?;
        }
        for n in &self.notes {
            writeln!(f, "note: {n}")?;
        }
        Ok(())
    }
}

/// Renders Figure 9: functional density as an ASCII bar chart.
pub fn figure9(table: &Table1) -> String {
    let max = table
        .rows
        .iter()
        .map(|r| r.density())
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let mut out = String::new();
    out.push_str("Functional Density F = Throughput (Mbps) / Area (CLBs)\n");
    for r in &table.rows {
        let width = ((r.density() / max) * 50.0).round() as usize;
        out.push_str(&format!(
            "{:<30} |{:<50}| {:.3}\n",
            r.name,
            "#".repeat(width),
            r.density()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_match_published_densities() {
        let rows = paper_rows();
        assert!((rows[0].density() - 0.866).abs() < 0.001);
        assert!((rows[1].density() - 0.110).abs() < 0.001);
        assert!((rows[2].density() - 0.569).abs() < 0.001);
    }

    #[test]
    fn table_builds_and_preserves_ordering_claims() {
        let t = build_table1(2);
        let find = |prefix: &str| {
            t.rows
                .iter()
                .find(|r| r.name.starts_with(prefix))
                .unwrap_or_else(|| panic!("row {prefix} missing"))
        };
        let ours_serial_common = find("HHEA serial (ours, common clk)");
        let ours_parallel = find("MHHEA (ours, measured)");
        // The paper's headline claim, reproduced under its own (equal
        // clock) methodology: parallel replacement dominates serial in
        // throughput AND functional density.
        assert!(ours_parallel.throughput_mbps > ours_serial_common.throughput_mbps);
        assert!(ours_parallel.density() > ours_serial_common.density());
        let text = t.to_string();
        assert!(text.contains("Mbps/CLB"));
        let chart = figure9(&t);
        assert!(chart.contains('#'));
    }
}
