//! Regenerates Table 1 and Figure 9: the functional-density comparison of
//! FPGA cipher implementations.
//!
//! Usage: `cargo run --release -p mhhea-bench --bin table1 [effort]`

use mhhea_bench::table::{build_table1, figure9};

fn main() {
    let effort: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    println!("== Table 1: FPGA implementations compared (placement effort {effort}) ==\n");
    let table = build_table1(effort);
    println!("{table}");
    println!("== Figure 9: figure of merit ==\n");
    println!("{}", figure9(&table));
}
