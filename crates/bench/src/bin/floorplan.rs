//! Regenerates Figure 10: the floor plan of the placed MHHEA core.
//!
//! Usage: `cargo run --release -p mhhea-bench --bin floorplan [effort]`

fn main() {
    let effort: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let (nl, flow) = mhhea_bench::flow_mhhea(effort);
    println!("== Figure 10: floor plan (placement effort {effort}) ==\n");
    println!("{}", flow.floorplan(&nl));
    println!("placement HPWL cost: {:.1} CLB units", flow.placement.cost);
}
