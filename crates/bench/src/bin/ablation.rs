//! Ablation: the shared-rotator alignment trick vs. the naive
//! dual-rotator datapath (`DESIGN.md` design-choice note).
//!
//! Both variants are functionally identical (asserted in the hw crate's
//! tests); this binary prices the difference through the full
//! implementation flow.
//!
//! Usage: `cargo run --release -p mhhea-bench --bin ablation [effort]`

use fpga::flow::run_flow;
use mhhea_hw::core::{build_mhhea_core_with, CoreOptions};

fn main() {
    let effort: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    println!("== Ablation: message-alignment rotator sharing ==\n");
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>12} {:>10}",
        "variant", "LUTs", "FFs", "slices", "period (ns)", "gates"
    );
    println!("{}", "-".repeat(80));
    for (name, opts) in [
        ("shared rotator (paper)", CoreOptions::default()),
        (
            "dual rotators (naive)",
            CoreOptions {
                dual_rotators: true,
            },
        ),
    ] {
        let core = build_mhhea_core_with(opts);
        let stats = core.netlist.stats();
        let flow =
            run_flow(&core.netlist, &mhhea_bench::flow_options(effort)).expect("fits XC2S100");
        println!(
            "{:<28} {:>8} {:>8} {:>8} {:>12.3} {:>10}",
            name,
            stats.luts(),
            stats.dffs,
            flow.summary.slices_used,
            flow.timing.min_period_ns,
            flow.summary.gates
        );
    }
    println!();
    println!("reading: rotating right by kn2+1 equals rotating left by 15-kn2,");
    println!("so one barrel rotator plus an amount mux serves both Circ and");
    println!("Encrypt — the trick that makes the paper's alignment module cheap.");
}
