//! Regenerates Figures 5–8: the simulation timing diagrams.
//!
//! * Figure 5 — loading the 32-bit plaintext `ABCD1234` (`LMsg`)
//! * Figure 6 — loading the key pairs (`LKey`)
//! * Figure 7 — loading the 16-bit message buffer (`LMsgCache`)
//! * Figure 8 — one rotation + encryption round (`Circ`/`Encrypt`)
//!
//! Prints ASCII waveforms and writes a VCD (`mhhea_waves.vcd` in the
//! current directory) for GTKWave-style viewers.
//!
//! Usage: `cargo run --release -p mhhea-bench --bin timing_diagrams`

use mhhea_bench::report_key;
use mhhea_hw::harness::MhheaCoreSim;

fn main() {
    let core = mhhea_hw::core::build_mhhea_core();
    let mut sim = MhheaCoreSim::new(&core).expect("core simulates");
    // The paper's stimulus: plaintext ABCD1234.
    let run = sim
        .encrypt_words_traced(&report_key(), &[0xABCD_1234])
        .expect("run completes");
    let trace = run.trace.expect("traced run");

    println!("== Figures 5-7: load phases (plaintext ABCD1234) ==");
    println!("states: 0=Init 1=LMsg 2=LKey 3=LMsgCache 4=Circ 5=Encrypt\n");
    // First ~22 cycles cover LMsg + LKey(16) + LMsgCache + first rounds.
    println!("{}", render_window(&trace, 0, 24.min(trace.cycles())));

    println!("== Figure 8: rotation and encryption rounds ==\n");
    let start = 18.min(trace.cycles().saturating_sub(1));
    println!(
        "{}",
        render_window(&trace, start, trace.cycles().min(start + 20))
    );

    println!(
        "run: {} cycles, {} cipher blocks: {:04x?}",
        run.cycles,
        run.blocks.len(),
        run.blocks
    );

    let vcd = trace.to_vcd();
    let path = "mhhea_waves.vcd";
    match std::fs::write(path, &vcd) {
        Ok(()) => println!("\nfull VCD written to {path} ({} bytes)", vcd.len()),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}

/// Renders a cycle window of selected signals from the full trace.
fn render_window(trace: &rtl::sim::trace::Trace, from: usize, to: usize) -> String {
    let signals = [
        "state",
        "msg_cache",
        "align_buf",
        "vector",
        "key_left",
        "key_right",
        "kn_low",
        "kn_high",
        "consumed",
        "cipher_out",
        "ready",
    ];
    let mut out = String::new();
    out.push_str(&format!("{:<10} |", "cycle"));
    for c in from..to {
        out.push_str(&format!(" {c:<8}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(12 + (to - from) * 9));
    out.push('\n');
    for s in signals {
        out.push_str(&format!("{s:<10} |"));
        let mut prev = None;
        for c in from..to {
            let v = trace.value_at(s, c).unwrap_or_else(|| "?".into());
            let cell = if prev.as_deref() == Some(v.as_str()) {
                ".".into()
            } else {
                v.clone()
            };
            out.push_str(&format!(" {cell:<8}"));
            prev = Some(v);
        }
        out.push('\n');
    }
    out
}
