//! CI perf gate — diffs the two newest `BENCH_<n>.json` snapshots.
//!
//! Reads the repo-root snapshot trajectory that `bench_snapshot` writes,
//! picks the two files with the highest `<n>`, and compares normalized
//! throughput per bench point. A point that lost more than the threshold
//! (default 15%) fails the gate — but **only when the two snapshots carry
//! the same machine fingerprint**: numbers from different machines (or
//! CPU budgets) are a trajectory, not a regression.
//!
//! ```text
//! cargo run --release -p mhhea_bench --bin bench_gate -- [--dir DIR] [--threshold PCT]
//! ```
//!
//! Exit codes: 0 pass (including "fewer than two snapshots", explained
//! on stdout), 1 regression, 2 usage/parse errors, 3 comparison skipped
//! (fingerprint mismatch — the snapshots came from different machines,
//! so nothing was compared; CI treats this as green but the distinct
//! code keeps a skipped gate from reading as a clean pass). Bench
//! points present in the older snapshot but missing from the newer are
//! warned about, not failed: the point set is allowed to change shape
//! across PRs (the `pr` field records when).

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Fractional throughput loss that fails the gate.
const DEFAULT_THRESHOLD: f64 = 0.15;

/// Exit code for "comparison skipped" — distinct from pass (0),
/// regression (1), and usage/parse error (2), so scripts and CI logs
/// can never mistake a gate that compared nothing for a clean pass.
/// The CI workflow explicitly accepts this code as green.
const EXIT_SKIPPED: u8 = 3;

fn main() -> ExitCode {
    let mut dir = PathBuf::from(".");
    let mut threshold = DEFAULT_THRESHOLD;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--dir" => match args.next() {
                Some(v) => dir = PathBuf::from(v),
                None => return usage("--dir needs a value"),
            },
            "--threshold" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) if pct > 0.0 && pct < 100.0 => threshold = pct / 100.0,
                _ => return usage("--threshold needs a percentage in (0, 100)"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let mut snaps = snapshot_files(&dir);
    if snaps.len() < 2 {
        println!(
            "bench-gate: {} snapshot(s) in {} — nothing to compare, pass",
            snaps.len(),
            dir.display()
        );
        return ExitCode::SUCCESS;
    }
    snaps.sort_by_key(|(n, _)| *n);
    let (old_n, old_path) = &snaps[snaps.len() - 2];
    let (new_n, new_path) = &snaps[snaps.len() - 1];

    let (old, new) = match (load_snapshot(old_path), load_snapshot(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) => return parse_error(old_path, &e),
        (_, Err(e)) => return parse_error(new_path, &e),
    };

    println!(
        "bench-gate: BENCH_{old_n} → BENCH_{new_n} (threshold {:.0}%)",
        threshold * 100.0
    );
    if old.fingerprint != new.fingerprint {
        for line in skip_report(&old.fingerprint, &new.fingerprint) {
            println!("{line}");
        }
        return ExitCode::from(EXIT_SKIPPED);
    }

    let report = compare(&old, &new, threshold);
    for line in &report.lines {
        println!("{line}");
    }
    if report.regressions == 0 {
        println!(
            "bench-gate: {} point(s) compared, no regression beyond {:.0}%",
            report.compared,
            threshold * 100.0
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "bench-gate: FAIL — {} of {} point(s) regressed beyond {:.0}%",
            report.regressions,
            report.compared,
            threshold * 100.0
        );
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\nusage: bench_gate [--dir DIR] [--threshold PCT]");
    ExitCode::from(2)
}

fn parse_error(path: &Path, e: &str) -> ExitCode {
    eprintln!("error: {}: {e}", path.display());
    ExitCode::from(2)
}

/// Every `BENCH_<n>.json` in `dir`, with its `<n>`.
fn snapshot_files(dir: &Path) -> Vec<(u32, PathBuf)> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let Ok(name) = entry.file_name().into_string() else {
            continue;
        };
        if let Some(n) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u32>().ok())
        {
            out.push((n, entry.path()));
        }
    }
    out
}

/// One parsed snapshot: the machine fingerprint and the per-point
/// normalized throughput.
struct Snapshot {
    fingerprint: Fingerprint,
    /// (bench name, throughput MiB/s) in file order.
    points: Vec<(String, f64)>,
}

#[derive(PartialEq)]
struct Fingerprint {
    arch: String,
    os: String,
    cpus: f64,
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{} cpus", self.arch, self.os, self.cpus)
    }
}

fn load_snapshot(path: &Path) -> Result<Snapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    parse_snapshot(&text)
}

fn parse_snapshot(text: &str) -> Result<Snapshot, String> {
    let root = Json::parse(text)?;
    let schema = root.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "mhhea-bench-snapshot/1" {
        return Err(format!("unknown snapshot schema `{schema}`"));
    }
    let fp = root.get("fingerprint").ok_or("missing fingerprint")?;
    let fingerprint = Fingerprint {
        arch: fp
            .get("arch")
            .and_then(Json::as_str)
            .ok_or("fingerprint.arch missing")?
            .to_string(),
        os: fp
            .get("os")
            .and_then(Json::as_str)
            .ok_or("fingerprint.os missing")?
            .to_string(),
        cpus: fp
            .get("cpus")
            .and_then(Json::as_num)
            .ok_or("fingerprint.cpus missing")?,
    };
    let results = root
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("missing results array")?;
    let mut points = Vec::new();
    for r in results {
        let bench = r
            .get("bench")
            .and_then(Json::as_str)
            .ok_or("result without bench name")?;
        let mib_s = r
            .get("throughput_mib_s")
            .and_then(Json::as_num)
            .ok_or("result without throughput_mib_s")?;
        points.push((bench.to_string(), mib_s));
    }
    Ok(Snapshot {
        fingerprint,
        points,
    })
}

/// The stdout block for a fingerprint-mismatch skip. Separate from
/// `main` so the test suite can pin the wording: the leading line must
/// say "comparison skipped" — earlier versions printed "pass" here and
/// a skipped gate was indistinguishable from a clean one in CI logs.
fn skip_report(old: &Fingerprint, new: &Fingerprint) -> Vec<String> {
    vec![
        format!("bench-gate: comparison skipped: fingerprint mismatch ({old} → {new})"),
        format!(
            "bench-gate: 0 point(s) compared — cross-machine snapshots are a \
             trajectory, not a regression (exit {EXIT_SKIPPED})"
        ),
    ]
}

struct Report {
    compared: usize,
    regressions: usize,
    lines: Vec<String>,
}

/// Diffs matching bench points. Throughput is "normalized" in the
/// snapshot already (MiB/s, median-of-5); the gate only has to ratio it.
fn compare(old: &Snapshot, new: &Snapshot, threshold: f64) -> Report {
    let mut report = Report {
        compared: 0,
        regressions: 0,
        lines: Vec::new(),
    };
    for (bench, old_mib_s) in &old.points {
        let Some((_, new_mib_s)) = new.points.iter().find(|(b, _)| b == bench) else {
            report
                .lines
                .push(format!("  note: `{bench}` dropped from the newer snapshot"));
            continue;
        };
        if *old_mib_s <= 0.0 {
            report
                .lines
                .push(format!("  note: `{bench}` has no baseline throughput"));
            continue;
        }
        report.compared += 1;
        let delta = (new_mib_s - old_mib_s) / old_mib_s;
        if delta < -threshold {
            report.regressions += 1;
            report.lines.push(format!(
                "  REGRESSION: `{bench}` {old_mib_s:.3} → {new_mib_s:.3} MiB/s ({:+.1}%)",
                delta * 100.0
            ));
        } else {
            report.lines.push(format!(
                "  ok: `{bench}` {old_mib_s:.3} → {new_mib_s:.3} MiB/s ({:+.1}%)",
                delta * 100.0
            ));
        }
    }
    for (bench, _) in &new.points {
        if !old.points.iter().any(|(b, _)| b == bench) {
            report
                .lines
                .push(format!("  note: `{bench}` is new in this snapshot"));
        }
    }
    report
}

/// The minimal JSON subset the snapshot schema uses (no external
/// dependencies in this workspace by design — see Cargo.toml).
enum Json {
    Null,
    /// Parsed for completeness; the snapshot schema never reads one.
    Bool,
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes
        .get(*pos)
        .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
    {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while bytes
        .get(*pos)
        .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    other => return Err(format!("unsupported escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through byte-wise; the
                // input was a &str so the bytes are valid UTF-8.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
            None => return Err("unterminated string".into()),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}"));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at offset {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at offset {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(cpus: u32, points: &[(&str, f64)]) -> String {
        let results: Vec<String> = points
            .iter()
            .map(|(bench, mib_s)| {
                format!(
                    "{{ \"bench\": \"{bench}\", \"bytes_per_iter\": 1, \"iters\": 5, \
                     \"ns_median\": 1, \"throughput_mib_s\": {mib_s} }}"
                )
            })
            .collect();
        format!(
            "{{ \"schema\": \"mhhea-bench-snapshot/1\", \"pr\": 7,\n\
             \"fingerprint\": {{ \"arch\": \"x86_64\", \"os\": \"linux\", \"cpus\": {cpus} }},\n\
             \"results\": [{}] }}\n",
            results.join(", ")
        )
    }

    #[test]
    fn parses_real_shape() {
        let snap = parse_snapshot(&snapshot(1, &[("a", 24.376), ("b", 10.004)])).unwrap();
        assert_eq!(snap.fingerprint.arch, "x86_64");
        assert_eq!(snap.points.len(), 2);
        assert_eq!(snap.points[0].0, "a");
        assert!((snap.points[0].1 - 24.376).abs() < 1e-9);
    }

    #[test]
    fn within_threshold_passes() {
        let old = parse_snapshot(&snapshot(1, &[("a", 100.0)])).unwrap();
        let new = parse_snapshot(&snapshot(1, &[("a", 90.0)])).unwrap();
        let report = compare(&old, &new, 0.15);
        assert_eq!(report.compared, 1);
        assert_eq!(report.regressions, 0);
    }

    #[test]
    fn beyond_threshold_fails() {
        let old = parse_snapshot(&snapshot(1, &[("a", 100.0), ("b", 50.0)])).unwrap();
        let new = parse_snapshot(&snapshot(1, &[("a", 80.0), ("b", 49.0)])).unwrap();
        let report = compare(&old, &new, 0.15);
        assert_eq!(report.compared, 2);
        assert_eq!(report.regressions, 1);
        assert!(report.lines.iter().any(|l| l.contains("REGRESSION")));
    }

    #[test]
    fn dropped_and_added_points_are_notes() {
        let old = parse_snapshot(&snapshot(1, &[("gone", 10.0)])).unwrap();
        let new = parse_snapshot(&snapshot(1, &[("fresh", 10.0)])).unwrap();
        let report = compare(&old, &new, 0.15);
        assert_eq!(report.compared, 0);
        assert_eq!(report.regressions, 0);
        assert_eq!(report.lines.len(), 2);
    }

    #[test]
    fn fingerprint_mismatch_detected() {
        let a = parse_snapshot(&snapshot(1, &[("a", 10.0)])).unwrap();
        let b = parse_snapshot(&snapshot(8, &[("a", 1.0)])).unwrap();
        assert!(a.fingerprint != b.fingerprint);
    }

    #[test]
    fn fingerprint_mismatch_skip_is_explicit() {
        let a = parse_snapshot(&snapshot(1, &[("a", 10.0)])).unwrap();
        let b = parse_snapshot(&snapshot(8, &[("a", 1.0)])).unwrap();
        let lines = skip_report(&a.fingerprint, &b.fingerprint);
        // The skip must be unmistakable in CI logs: the word "skipped"
        // leads, "pass" appears nowhere, and both fingerprints are shown.
        assert!(lines[0].contains("comparison skipped: fingerprint mismatch"));
        assert!(lines.iter().all(|l| !l.contains("pass")));
        assert!(lines[0].contains("1 cpus") && lines[0].contains("8 cpus"));
        // And the exit code is its own value, not pass/fail/usage.
        assert!(![0u8, 1, 2].contains(&EXIT_SKIPPED));
    }

    #[test]
    fn rejects_wrong_schema() {
        let text = "{ \"schema\": \"other/9\", \"fingerprint\": {}, \"results\": [] }";
        assert!(parse_snapshot(text).is_err());
    }
}
