//! Experiment X1: throughput vs key — the serial design's timing
//! dependency that the parallel design removes.
//!
//! Runs both gate-level cores over key families (narrowest span, widest
//! span, mixed) and reports cycles, bits/cycle, Mbps at each core's fmax,
//! and the timing-channel entropy of the inter-block gaps.
//!
//! Usage: `cargo run --release -p mhhea-bench --bin throughput_sweep [effort]`

use mhhea::Key;
use mhhea_analysis::timing::{gap_entropy_bits, gap_histogram};
use mhhea_hw::harness::{MhheaCoreSim, SerialHheaSim};

fn main() {
    let effort: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let keys: Vec<(&str, Key)> = vec![
        ("narrow (all (0,0))", Key::from_nibbles(&[(0, 0)]).unwrap()),
        ("wide   (all (0,7))", Key::from_nibbles(&[(0, 7)]).unwrap()),
        ("mixed  (report key)", mhhea_bench::report_key()),
    ];
    let words = vec![0xABCD_1234u32, 0x5566_77EE, 0x0F1E_2D3C, 0xDEAD_BEEF];
    let bits = words.len() * 32;

    let (_, mh_flow) = mhhea_bench::flow_mhhea(effort);
    let (_, se_flow) = mhhea_bench::flow_serial(effort);
    let mh_core = mhhea_hw::core::build_mhhea_core();
    let se_core = mhhea_hw::serial::build_serial_hhea_core();
    println!(
        "min periods: parallel {:.3} ns, serial {:.3} ns\n",
        mh_flow.timing.min_period_ns, se_flow.timing.min_period_ns
    );
    println!(
        "{:<22} {:>16} {:>10} {:>9} {:>10} {:>9}",
        "key", "core", "cycles", "bit/cyc", "Mbps", "gap H(b)"
    );
    println!("{}", "-".repeat(82));
    for (name, key) in &keys {
        let run_p = MhheaCoreSim::new(&mh_core)
            .unwrap()
            .encrypt_words(key, &words)
            .unwrap();
        let run_s = SerialHheaSim::new(&se_core)
            .unwrap()
            .encrypt_words(key, &words)
            .unwrap();
        for (core_name, run, period) in [
            ("parallel MHHEA", &run_p, mh_flow.timing.min_period_ns),
            ("serial HHEA", &run_s, se_flow.timing.min_period_ns),
        ] {
            let mbps = mhhea::stats::measured_throughput_mbps(bits, run.cycles, period);
            let entropy = gap_entropy_bits(&gap_histogram(&run.interblock_gaps()));
            println!(
                "{:<22} {:>16} {:>10} {:>9.3} {:>10.2} {:>9.3}",
                name,
                core_name,
                run.cycles,
                run.bits_per_cycle(bits),
                mbps,
                entropy,
            );
        }
    }
    println!();
    println!("reading: the serial core's cycle count moves with the key (span+2");
    println!("cycles per block) and its gap entropy is nonzero — the timing channel.");
    println!("The parallel core emits one block every 2 cycles for every key.");
}
