//! Normalized perf snapshot — the tracked trajectory's data points.
//!
//! Re-times the headline bench points (container pipeline, gateway
//! batch, net loopback at 1 and 4 reactors, the MHNP-D datagram
//! exchange) in a smoke-plus regime —
//! more than CI's single-iteration smoke, far less than a full criterion
//! run — and writes one normalized JSON file per PR at the repo root
//! (`BENCH_<pr>.json`). Successive snapshots, each stamped with a
//! machine fingerprint, are the perf trajectory: comparable when the
//! fingerprint matches, explicable when it does not.
//!
//! ```text
//! cargo run --release -p mhhea_bench --bin bench_snapshot -- [out.json]
//! ```

use std::fmt::Write as _;
use std::net::TcpStream;
use std::time::Instant;

use mhhea::container::{open_v2_with, seal_v2, SealV2Options};
use mhhea::gateway::{StreamConfig, StreamId, StreamMux};
use mhhea_net::client::NetClient;
use mhhea_net::dgram::{DgramClient, DgramClientConfig};
use mhhea_net::frame::Hello;
use mhhea_net::server::{NetServer, ServerConfig};

/// Seeds the numbering when the output directory holds no snapshots at
/// all (see `next_snapshot_name`) and backstops the `"pr"` stamp for
/// explicit output paths that don't follow the `BENCH_<n>.json`
/// convention. The stamp itself is derived from the resolved output
/// name (see `pr_for_output`), so a snapshot named `BENCH_9.json` says
/// `"pr": 9` no matter when this constant was last touched.
const PR: u32 = 6;
const WARMUP_ITERS: usize = 2;
const TIMED_ITERS: usize = 5;

struct Point {
    bench: &'static str,
    bytes_per_iter: u64,
    ns_median: u128,
}

impl Point {
    fn throughput_mib_s(&self) -> f64 {
        if self.ns_median == 0 {
            return 0.0;
        }
        (self.bytes_per_iter as f64 / (1 << 20) as f64) / (self.ns_median as f64 / 1e9)
    }
}

/// Times `f` (warmup, then [`TIMED_ITERS`] timed runs) and returns the
/// median wall-clock nanoseconds — median, not mean, because a single
/// scheduler hiccup must not skew a 5-sample snapshot.
fn time_median(mut f: impl FnMut()) -> u128 {
    for _ in 0..WARMUP_ITERS {
        f();
    }
    let mut samples: Vec<u128> = (0..TIMED_ITERS)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn message_for(stream: u64, i: usize, size: usize) -> Vec<u8> {
    (0..size)
        .map(|j| {
            ((stream as usize)
                .wrapping_mul(131)
                .wrapping_add(i.wrapping_mul(31))
                .wrapping_add(j.wrapping_mul(7))
                & 0xFF) as u8
        })
        .collect()
}

/// Container pipeline: seal + open a 1 MiB payload through the chunked
/// v2 format on the shared worker pool.
fn bench_container_pipeline(points: &mut Vec<Point>) {
    let key = mhhea_bench::report_key();
    let message: Vec<u8> = (0..1 << 20).map(|i| ((i * 31) & 0xFF) as u8).collect();
    let opts = SealV2Options::default();

    let mut sealed = Vec::new();
    points.push(Point {
        bench: "container_seal_v2_1MiB",
        bytes_per_iter: message.len() as u64,
        ns_median: time_median(|| {
            sealed = seal_v2(&key, &message, &opts).expect("seal_v2");
        }),
    });
    points.push(Point {
        bench: "container_open_v2_1MiB",
        bytes_per_iter: message.len() as u64,
        ns_median: time_median(|| {
            let plain = open_v2_with(&key, &sealed, 0).expect("open_v2");
            assert_eq!(plain.len(), message.len());
        }),
    });
}

/// Gateway batch: 256 streams × one 256 B message per stream, one
/// `seal_batch` per iteration (the server tick's inner workload).
fn bench_gateway_batch(points: &mut Vec<Point>) {
    const STREAMS: u64 = 256;
    const MSG_SIZE: usize = 256;
    let key = mhhea_bench::report_key();
    let mux = StreamMux::with_shards(64);
    for stream in 0..STREAMS {
        mux.open(
            StreamId(stream),
            StreamConfig::new(key.clone()).with_seed((stream as u16) | 1),
        )
        .expect("open stream");
    }
    let batch: Vec<(StreamId, Vec<u8>)> = (0..STREAMS)
        .map(|stream| (StreamId(stream), message_for(stream, 0, MSG_SIZE)))
        .collect();
    points.push(Point {
        bench: "gateway_seal_batch_256x256B",
        bytes_per_iter: STREAMS * MSG_SIZE as u64,
        ns_median: time_median(|| {
            let frames = mux.seal_batch(batch.clone());
            assert!(frames.iter().all(Result::is_ok));
        }),
    });
}

/// Net loopback: pipelined clients against a dedicated server per
/// (reactors, conns) cell — the reactor-scaling measurement the tentpole
/// criterion reads.
fn bench_net_loopback(points: &mut Vec<Point>) {
    const MSG_SIZE: usize = 256;
    const MSGS: usize = 32;
    for reactors in [1usize, 4] {
        for conns in [16usize, 64] {
            let server = NetServer::spawn(
                "127.0.0.1:0",
                ServerConfig::new([(1, mhhea_bench::report_key())]).with_reactors(reactors),
            )
            .expect("bind bench server");
            let mut clients: Vec<(u64, NetClient)> = (0..conns as u64)
                .map(|stream| {
                    let mut client = NetClient::connect(server.addr()).expect("connect");
                    client
                        .open_stream(stream + 1, Hello::new(1, (stream as u16) | 1))
                        .expect("open stream");
                    (stream + 1, client)
                })
                .collect();
            let bench: &'static str = match (reactors, conns) {
                (1, 16) => "net_loopback_r1_c16_256B",
                (1, 64) => "net_loopback_r1_c64_256B",
                (4, 16) => "net_loopback_r4_c16_256B",
                (4, 64) => "net_loopback_r4_c64_256B",
                _ => unreachable!("fixed sweep"),
            };
            points.push(Point {
                bench,
                bytes_per_iter: (conns * MSGS * MSG_SIZE) as u64,
                ns_median: time_median(|| {
                    std::thread::scope(|s| {
                        for (stream, client) in clients.iter_mut() {
                            let stream = *stream;
                            s.spawn(move || {
                                let batch: Vec<(u64, Vec<u8>)> = (0..MSGS)
                                    .map(|i| (stream, message_for(stream, i, MSG_SIZE)))
                                    .collect();
                                let sealed = client.seal_pipelined(&batch).expect("pipelined seal");
                                assert_eq!(sealed.len(), MSGS);
                            });
                        }
                    });
                }),
            });
            for (stream, client) in clients.iter_mut() {
                client.bye(*stream).expect("bye");
            }
            drop(clients);
            server.stop();
        }
    }
}

/// Datagram path: one MHNP-D seal exchange per iteration — an 8 KiB
/// message as 32 independently-keyed 256 B chunks, request and reply
/// each one UDP packet, through the replay window and the one-shot
/// chunk sessions. The chunk-addressed counterpart of `net_loopback`.
fn bench_net_dgram(points: &mut Vec<Point>) {
    const MSG_SIZE: usize = 8 << 10;
    const CHUNK_BYTES: usize = 256;
    let server = NetServer::spawn(
        "127.0.0.1:0",
        ServerConfig::new([(1, mhhea_bench::report_key())]).with_dgram(),
    )
    .expect("bind bench server");
    let mut tcp = NetClient::connect(server.addr()).expect("connect");
    let token = tcp
        .open_stream(1, Hello::new(1, 0x5EED))
        .expect("open stream");
    let mut dgram = DgramClient::connect_with(
        server.dgram_addr().expect("dgram enabled"),
        DgramClientConfig {
            chunk_bytes: CHUNK_BYTES,
            recv_timeout: std::time::Duration::from_secs(1),
            attach_attempts: 4,
        },
    )
    .expect("dgram connect");
    dgram.attach(1, token).expect("attach");
    let message = message_for(1, 0, MSG_SIZE);
    // The transport is explicitly lossy — even loopback UDP drops under
    // socket-buffer pressure — so completeness is not asserted: a lost
    // chunk is the transport's contract, not a bench failure. Losses are
    // counted and reported; a refusal would be a real protocol bug
    // (indices are never reused) and still fails loudly.
    let mut lost = 0u64;
    points.push(Point {
        bench: "net_dgram_32x256B",
        bytes_per_iter: MSG_SIZE as u64,
        ns_median: time_median(|| {
            let sealed = dgram.seal(1, &message).expect("dgram seal");
            assert!(
                sealed.rejected.is_empty(),
                "server refused chunks: {:?}",
                sealed.rejected
            );
            lost += sealed.missing.len() as u64;
        }),
    });
    if lost > 0 {
        eprintln!("note: net_dgram lost {lost} chunk(s) to the lossy transport across the run");
    }
    tcp.bye(1).expect("bye");
    server.stop();
}

/// Ephemeral onboarding: one full MHKX handshake per iteration — TCP
/// connect, both X25519 exchanges, the KDF on each side, four frames on
/// the wire — measuring what serving a keyless client costs end to end.
fn bench_net_ephemeral_handshake(points: &mut Vec<Point>) {
    let server = NetServer::spawn("127.0.0.1:0", ServerConfig::new([]).with_ephemeral_keys())
        .expect("bind bench server");
    // A fresh stream id per iteration: the dropped connection's stream
    // parks as a snapshot, which would refuse a same-id re-open.
    let mut next_stream = 1u64;
    points.push(Point {
        bench: "net_ephemeral_handshake",
        // A handshake moves no payload; the datum is its latency.
        bytes_per_iter: 0,
        ns_median: time_median(|| {
            let (client, session) =
                NetClient::connect_ephemeral(server.addr(), next_stream).expect("handshake");
            assert_ne!(session.seed, 0);
            next_stream += 1;
            drop(client);
        }),
    });
    server.stop();
}

/// Checks loopback TCP is available (sandboxed builders may deny it);
/// net points are skipped, not failed, when it is not.
fn loopback_available() -> bool {
    std::net::TcpListener::bind("127.0.0.1:0")
        .ok()
        .and_then(|l| {
            let addr = l.local_addr().ok()?;
            TcpStream::connect(addr).ok()
        })
        .is_some()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The next free `BENCH_<n>.json` in `dir`: always one past the highest
/// existing snapshot number, regardless of gaps in the sequence (a
/// deleted `BENCH_4.json` must not make the next run renumber from 5
/// when 6 and 7 already exist). Only when `dir` holds no snapshots at
/// all does the binary's own [`PR`] seed the numbering.
fn next_snapshot_name(dir: &std::path::Path) -> String {
    let newest = std::fs::read_dir(dir)
        .ok()
        .into_iter()
        .flatten()
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            name.strip_prefix("BENCH_")?
                .strip_suffix(".json")?
                .parse::<u32>()
                .ok()
        })
        .max();
    match newest {
        Some(n) => format!("BENCH_{}.json", n.saturating_add(1)),
        None => format!("BENCH_{PR}.json"),
    }
}

/// The PR number stamped into the snapshot's `"pr"` field: the `<n>` of
/// the resolved `BENCH_<n>.json` output name, so the stamp always agrees
/// with the file the trajectory tooling indexes it under. An explicit
/// output path outside the convention falls back to [`PR`].
fn pr_for_output(path: &std::path::Path) -> u32 {
    path.file_name()
        .and_then(|name| name.to_str())
        .and_then(|name| {
            name.strip_prefix("BENCH_")?
                .strip_suffix(".json")?
                .parse()
                .ok()
        })
        .unwrap_or(PR)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| next_snapshot_name(std::path::Path::new(".")));

    let mut points = Vec::new();
    bench_container_pipeline(&mut points);
    bench_gateway_batch(&mut points);
    if loopback_available() {
        bench_net_loopback(&mut points);
        bench_net_dgram(&mut points);
        bench_net_ephemeral_handshake(&mut points);
    } else {
        eprintln!("loopback TCP unavailable; skipping net_loopback points");
    }

    let cpus = std::thread::available_parallelism().map_or(0, usize::from);
    let pr = pr_for_output(std::path::Path::new(&out_path));
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"mhhea-bench-snapshot/1\",");
    let _ = writeln!(json, "  \"pr\": {pr},");
    let _ = writeln!(
        json,
        "  \"fingerprint\": {{ \"arch\": \"{}\", \"os\": \"{}\", \"cpus\": {} }},",
        json_escape(std::env::consts::ARCH),
        json_escape(std::env::consts::OS),
        cpus
    );
    json.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"bench\": \"{}\", \"bytes_per_iter\": {}, \"iters\": {}, \
             \"ns_median\": {}, \"throughput_mib_s\": {:.3} }}{}",
            json_escape(p.bench),
            p.bytes_per_iter,
            TIMED_ITERS,
            p.ns_median,
            p.throughput_mib_s(),
            comma
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("wrote {out_path}:");
    for p in &points {
        println!(
            "  {:<32} {:>10.3} MiB/s  ({} ns median)",
            p.bench,
            p.throughput_mib_s(),
            p.ns_median
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    /// A scratch directory seeded with the given file names, removed on
    /// drop so test runs don't accumulate state.
    struct Scratch(PathBuf);

    impl Scratch {
        fn with_files(tag: &str, names: &[&str]) -> Scratch {
            let dir = std::env::temp_dir()
                .join(format!("mhhea-bench-snapshot-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("create scratch dir");
            for name in names {
                std::fs::write(dir.join(name), b"{}").expect("seed scratch file");
            }
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn numbering_survives_gaps() {
        // BENCH_4 deleted from a 3..=7 run: next must be 8, not a
        // renumbering from the gap.
        let s = Scratch::with_files(
            "gapped",
            &[
                "BENCH_3.json",
                "BENCH_5.json",
                "BENCH_6.json",
                "BENCH_7.json",
            ],
        );
        assert_eq!(next_snapshot_name(&s.0), "BENCH_8.json");
    }

    #[test]
    fn numbering_is_max_plus_one_even_below_pr_floor() {
        // Older snapshots than this binary's PR still just advance by
        // one — the floor only applies to an empty directory.
        let s = Scratch::with_files("old", &["BENCH_2.json"]);
        assert_eq!(next_snapshot_name(&s.0), "BENCH_3.json");
    }

    #[test]
    fn empty_directory_starts_at_pr() {
        let s = Scratch::with_files("empty", &[]);
        assert_eq!(next_snapshot_name(&s.0), format!("BENCH_{PR}.json"));
    }

    #[test]
    fn pr_stamp_follows_output_name() {
        // The regression this pins: PR 9's snapshot must say "pr": 9
        // even though the binary's own constant says 6.
        assert_eq!(pr_for_output(std::path::Path::new("BENCH_9.json")), 9);
        assert_eq!(
            pr_for_output(std::path::Path::new("/some/dir/BENCH_42.json")),
            42
        );
        // Outside the convention, the constant backstops the stamp.
        assert_eq!(pr_for_output(std::path::Path::new("custom-out.json")), PR);
        assert_eq!(pr_for_output(std::path::Path::new("BENCH_X.json")), PR);
    }

    #[test]
    fn non_snapshot_files_are_ignored() {
        let s = Scratch::with_files(
            "noise",
            &["BENCH_9.json", "BENCH_X.json", "BENCH_10.txt", "README.md"],
        );
        assert_eq!(next_snapshot_name(&s.0), "BENCH_10.json");
    }
}
