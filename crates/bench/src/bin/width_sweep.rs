//! Experiment X3: the hiding-vector width / security trade-off claimed in
//! the paper's §VI ("increasing the register size leads to a higher
//! security level... moreover, it extends the key space").
//!
//! Usage: `cargo run --release -p mhhea-bench --bin width_sweep [max_bits]`

use mhhea_bench::sweep::{render, width_sweep};

fn main() {
    let max_bits: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    println!("== X3: generalised hiding-vector width sweep ==\n");
    println!("{}", render(&width_sweep(max_bits)));
    println!("reading: doubling the vector width doubles the per-pair key space");
    println!("(security) and roughly triples... the expansion grows superlinearly:");
    println!("security is bought with bandwidth, exactly the paper's 'variable");
    println!("level of data security' knob. The paper's configuration is 16 bits.");
}
