//! Diffusion and randomness report: avalanche metrics plus the FIPS
//! battery over ciphertext, for both algorithms.
//!
//! Usage: `cargo run --release -p mhhea-bench --bin diffusion_report`

use mhhea::Algorithm;
use mhhea_analysis::avalanche::{key_avalanche, message_avalanche, seed_avalanche};
use mhhea_analysis::randomness::{battery_on_cipher, random_message};

fn main() {
    let key = mhhea_bench::report_key();
    let msg = vec![0x5Au8; 128];

    println!("== Diffusion (fraction of cipher bits flipped per input change) ==\n");
    println!(
        "{:<10} {:>16} {:>16} {:>16}",
        "algorithm", "1 message bit", "1 key bit", "lfsr seed"
    );
    println!("{}", "-".repeat(62));
    for alg in [Algorithm::Hhea, Algorithm::Mhhea] {
        let m = message_avalanche(alg, &key, &msg, 100, 0xACE1);
        let k = key_avalanche(alg, &key, &msg, 1, 2, 0xACE1);
        let s = seed_avalanche(alg, &key, &msg);
        println!("{:<10} {:>16.5} {:>16.5} {:>16.5}", alg.name(), m, k, s);
    }
    println!();
    println!("reading: one plaintext bit flips exactly ONE cipher bit — MHHEA");
    println!("has zero plaintext diffusion (it is an embedder, not a mixer).");
    println!("Key and seed changes avalanche because span boundaries move.\n");

    println!("== FIPS 140-1 battery over 20k cipher bits ==\n");
    let random_msg = random_message(1200, 7);
    for alg in [Algorithm::Hhea, Algorithm::Mhhea] {
        println!("{} (random plaintext):", alg.name());
        match battery_on_cipher(alg, &key, &random_msg, 0xACE1) {
            Ok(report) => print!("{report}"),
            Err(e) => println!("  {e}"),
        }
        println!();
    }
    let zeros = vec![0u8; 1200];
    println!("MHHEA (all-zeros plaintext — the pathological case):");
    match battery_on_cipher(Algorithm::Mhhea, &key, &zeros, 0xACE1) {
        Ok(report) => print!("{report}"),
        Err(e) => println!("  {e}"),
    }
}
