//! Regenerates Figure 1: the control FSM, shown as the live state
//! sequence of a one-word encryption.
//!
//! Usage: `cargo run --release -p mhhea-bench --bin fsm_trace`

use mhhea_bench::report_key;
use mhhea_hw::harness::MhheaCoreSim;
use mhhea_hw::State;

fn main() {
    let core = mhhea_hw::core::build_mhhea_core();
    let mut sim = MhheaCoreSim::new(&core).expect("core simulates");
    let run = sim
        .encrypt_words_traced(&report_key(), &[0xABCD_1234])
        .expect("run completes");
    let trace = run.trace.expect("traced run");

    println!(
        "== Figure 1: FSM walk (one 32-bit word, {} cycles) ==\n",
        run.cycles
    );
    println!("transitions observed:");
    let mut prev: Option<State> = None;
    let mut compressed: Vec<(State, usize)> = Vec::new();
    for c in 0..trace.cycles() {
        let v = u64::from_str_radix(&trace.value_at("state", c).expect("state traced"), 16)
            .expect("binary state");
        let s = State::from_encoding(v).expect("valid state");
        match (prev, compressed.last_mut()) {
            (Some(p), Some(last)) if p == s => last.1 += 1,
            _ => compressed.push((s, 1)),
        }
        prev = Some(s);
    }
    for (s, n) in &compressed {
        if *n > 1 {
            println!("  {s} (x{n})");
        } else {
            println!("  {s}");
        }
    }
    println!("\nblocks emitted: {} (ready pulses)", run.blocks.len());
    println!("\nFigure-1 edges exercised:");
    for w in compressed.windows(2) {
        println!("  {} -> {}", w[0].0, w[1].0);
    }
}
