//! Regenerates the Appendix-A design and timing summaries for the MHHEA
//! core (and the serial baseline), in Xilinx `map`-report style, with the
//! paper's published numbers alongside.
//!
//! Usage: `cargo run --release -p mhhea-bench --bin design_summary [effort]`

fn main() {
    let effort: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);

    println!("== MHHEA core (parallel replacement) ==\n");
    let (_, mh) = mhhea_bench::flow_mhhea(effort);
    println!("{}", mh.report_text());
    println!("-- paper reference (Xilinx Foundation F2.1i on xc2s100-tq144-06) --");
    println!("  Number of Slices          :   337 out of  1200  28%");
    println!("  Slice Flip Flops          :   205");
    println!("  4 input LUTs              :   393");
    println!("  Number of bonded IOBs     :    57 out of    92  61%");
    println!("  Number of TBUFs           :   206 out of  1280  16%");
    println!("  Total equivalent gate count for design : 5051");
    println!("  Additional JTAG gate count for IOBs    : 2784");
    println!("  Minimum period 41.871ns / fmax 23.883MHz / max net delay 6.770ns");
    println!();
    println!("critical path ({} levels):", mh.timing.logic_levels);
    for cell in mh.timing.critical_path.iter().take(12) {
        println!("  {cell}");
    }
    println!();

    println!("== Serial HHEA baseline ==\n");
    let (_, se) = mhhea_bench::flow_serial(effort);
    println!("{}", se.report_text());
}
