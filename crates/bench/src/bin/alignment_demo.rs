//! Regenerates Figure 3: message alignment by circulate-left(KeyL) and
//! circulate-right(KeyR+1), using the paper's KeyL=2 / KeyR=5 example.
//!
//! Usage: `cargo run --release -p mhhea-bench --bin alignment_demo`

use bitkit::BitVec;

fn show(label: &str, v: &BitVec) {
    println!("{label:<42} {v} (0x{v:x})");
}

fn main() {
    println!("== Figure 3: message alignment (KeyL=2, KeyR=5) ==\n");
    let message = BitVec::from_u64(0x48D0, 16);
    show("(a) no alignment", &message);
    let left = message.rotate_left(2);
    show("(b) circulate left by KeyL = 2", &left);
    println!(
        "    -> message bits m0..m3 now sit at positions 2..5,\n       aligned with the hiding-vector span C2..C5"
    );
    let right = left.rotate_right(6);
    show("(c) circulate right by KeyR+1 = 6", &right);
    println!("    -> consumed bits rotated away; the next message bit is back at LSB\n");

    println!("worked example of Figure 8 on the same datapath:");
    println!(
        "  message 0x48D0 rotl 2  = 0x{:04x} (paper: 2341)",
        0x48D0u16.rotate_left(2)
    );
    println!(
        "  0x2341 rotr 6          = 0x{:04x} (paper: 048D)",
        0x2341u16.rotate_right(6)
    );

    println!("\nall 64 (KeyL, KeyR) alignments for 0x8001:");
    for l in 0..8u32 {
        for r in 0..8u32 {
            let (lo, hi) = (l.min(r), l.max(r));
            let aligned = 0x8001u16.rotate_left(lo);
            let restored = aligned.rotate_right(hi + 1);
            print!("{lo}{hi}:{aligned:04x}->{restored:04x} ");
        }
        println!();
    }
}
