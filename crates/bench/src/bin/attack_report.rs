//! Experiments X2 and X5: the chosen-plaintext attacks.
//!
//! X2 — the *constant* chosen-plaintext attack breaks HHEA (recovers the
//! key's sorted pairs from zero-plaintext ciphertexts) and collapses
//! against MHHEA, confirming the paper's claim.
//!
//! X5 — the *model-aware* attack recovers the MHHEA key anyway, because
//! the scrambling seed (the vector's high byte) travels in clear: an
//! honest bound on the security argument.
//!
//! Usage: `cargo run --release -p mhhea-bench --bin attack_report [samples]`

use mhhea::Algorithm;
use mhhea_analysis::{cpa, keyrec};

fn main() {
    let samples: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let key = mhhea_bench::report_key();
    println!("target key: {key}\n");

    println!("== X2: constant chosen-plaintext attack ({samples} samples) ==\n");
    for alg in [Algorithm::Hhea, Algorithm::Mhhea] {
        let report = cpa::constant_cpa(alg, &key, samples, 1);
        println!("{alg}:");
        for (r, stats) in report.residues.iter().enumerate() {
            let freqs: Vec<String> = stats.zero_freq.iter().map(|f| format!("{f:.2}")).collect();
            println!(
                "  residue {r}: P(bit=0) = [{}] -> span {:?}",
                freqs.join(" "),
                stats.recovered_span
            );
        }
        match (&report.recovered_key, report.breaks(&key)) {
            (Some(pairs), true) => {
                println!("  KEY RECOVERED: {pairs:?} — attack succeeds\n")
            }
            (Some(pairs), false) => println!("  wrong key recovered: {pairs:?}\n"),
            (None, _) => println!("  no constant spans found — attack fails\n"),
        }
    }

    println!("== X5: model-aware key recovery against MHHEA ({samples} samples) ==\n");
    let report = keyrec::model_aware_attack(&key, samples, 1);
    for (r, survivors) in report.survivors.iter().enumerate() {
        let s: Vec<(u8, u8)> = survivors.iter().map(|p| p.sorted()).collect();
        println!(
            "  residue {r}: {} candidate(s) survive: {s:?}",
            survivors.len()
        );
    }
    match report.unique_key() {
        Some(k) => {
            let pairs: Vec<(u8, u8)> = k.iter().map(|p| p.sorted()).collect();
            println!("\n  MHHEA KEY RECOVERED: {pairs:?}");
            println!("  (the high byte of every block seeds the public scrambling");
            println!("   structure, so 36 candidates per pair are cheaply testable)");
        }
        None => println!(
            "\n  {} candidates remain across residues — more samples needed",
            report.survivor_count()
        ),
    }
}
