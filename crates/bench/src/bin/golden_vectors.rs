//! Regenerates the golden known-answer vectors under `tests/vectors/`.
//!
//! The committed vectors pin the cipher: any refactor that changes a
//! single ciphertext byte trips `tests/paper_artifacts.rs`. Run this tool
//! only when a format change is *intended*, and say so in the PR:
//!
//! ```text
//! cargo run --release -p mhhea_bench --bin golden_vectors
//! ```
//!
//! Output: one `===FILE <name>===` section per vector, hex-encoded 64
//! chars per line, ready to split into `tests/vectors/<name>`.

use mhhea::container::{seal, seal_v2, SealOptions, SealV2Options};
use mhhea::{Key, Profile};

/// The fixed inputs every vector derives from (mirrored in the checker).
pub const GOLDEN_KEY: [(u8, u8); 4] = [(0, 3), (2, 5), (7, 1), (4, 4)];
/// Golden LFSR seed (v1) / master seed (v2).
pub const GOLDEN_SEED: u16 = 0xACE1;
/// Golden plaintext: 32 bytes, a whole number of 32-bit words so the
/// hardware profile needs no padding asymmetry.
pub const GOLDEN_PLAINTEXT: &[u8] = b"MHHEA golden known-answer vector";
/// Golden v2 chunk size: 8 bytes, so the 32-byte plaintext makes 4 chunks.
pub const GOLDEN_CHUNK_BYTES: usize = 8;

fn hex_lines(bytes: &[u8]) -> String {
    let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
    hex.as_bytes()
        .chunks(64)
        .map(|line| std::str::from_utf8(line).expect("hex is ascii"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn profile_slug(profile: Profile) -> &'static str {
    match profile {
        Profile::Streaming => "streaming",
        Profile::HardwareFaithful => "hw",
    }
}

fn main() {
    let key = Key::from_nibbles(&GOLDEN_KEY).expect("golden key is valid");
    for profile in [Profile::Streaming, Profile::HardwareFaithful] {
        let v1 = seal(
            &key,
            GOLDEN_PLAINTEXT,
            &SealOptions {
                profile,
                lfsr_seed: GOLDEN_SEED,
                ..Default::default()
            },
        )
        .expect("golden v1 seal");
        println!("===FILE v1_mhhea_{}.hex===", profile_slug(profile));
        println!("# MHHEA container v1, profile {profile}, key {GOLDEN_KEY:?},");
        println!("# seed {GOLDEN_SEED:#06x}, plaintext {GOLDEN_PLAINTEXT:?}.");
        println!("{}", hex_lines(&v1));

        let v2 = seal_v2(
            &key,
            GOLDEN_PLAINTEXT,
            &SealV2Options {
                profile,
                master_seed: GOLDEN_SEED,
                chunk_bytes: GOLDEN_CHUNK_BYTES,
                workers: 1,
                ..Default::default()
            },
        )
        .expect("golden v2 seal");
        println!("===FILE v2_mhhea_{}.hex===", profile_slug(profile));
        println!("# MHHEA container v2, profile {profile}, key {GOLDEN_KEY:?},");
        println!(
            "# master seed {GOLDEN_SEED:#06x}, chunk {GOLDEN_CHUNK_BYTES} B, plaintext {GOLDEN_PLAINTEXT:?}."
        );
        println!("{}", hex_lines(&v2));
    }
}
