//! Generalised hiding-vector width sweep (experiment X3).
//!
//! The paper's §VI claims the design "allows the size of the hiding vector
//! registers to be varied; accordingly, a variable level of data security
//! can be obtained". This module generalises MHHEA's parameters to a
//! `w`-bit vector — the low half hides, the high half scrambles, keys
//! index `w/2` locations — and derives the security/overhead trade-off
//! curve analytically.

/// One row of the width sweep.
#[derive(Debug, Clone)]
pub struct WidthRow {
    /// Hiding-vector width in bits (power of two, ≥ 8).
    pub vector_bits: usize,
    /// Location index width (`log2(w/2)` bits per key half).
    pub key_half_bits: usize,
    /// Key-space bits for a full 16-pair key.
    pub key_space_bits: usize,
    /// Expected span width over uniform pairs.
    pub expected_span: f64,
    /// Ciphertext expansion (output bits per message bit).
    pub expansion: f64,
    /// Embedding rate (fraction of cipher bits carrying message).
    pub embedding_rate: f64,
}

/// Expected `|a − b| + 1` for `a, b` uniform on `0..n` — the HHEA span
/// expectation with `n` hiding locations.
pub fn expected_span_uniform(n: usize) -> f64 {
    assert!(n > 0, "need at least one location");
    // E|a-b| = (n^2 - 1) / (3n) for the discrete uniform on 0..n-1.
    let nf = n as f64;
    (nf * nf - 1.0) / (3.0 * nf) + 1.0
}

/// Builds the sweep for vector widths `8, 16, 32, 64, …` up to `max_bits`.
pub fn width_sweep(max_bits: usize) -> Vec<WidthRow> {
    let mut rows = Vec::new();
    let mut w = 8usize;
    while w <= max_bits {
        let locations = w / 2;
        let key_half_bits = locations.trailing_zeros() as usize;
        let expected_span = expected_span_uniform(locations);
        rows.push(WidthRow {
            vector_bits: w,
            key_half_bits,
            key_space_bits: 2 * key_half_bits * 16,
            expected_span,
            expansion: w as f64 / expected_span,
            embedding_rate: expected_span / w as f64,
        });
        w *= 2;
    }
    rows
}

/// Renders the sweep as a table.
pub fn render(rows: &[WidthRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>6} {:>9} {:>10} {:>9} {:>10} {:>10}\n",
        "V bits", "key bits", "key space", "E[span]", "expansion", "embed rate"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>6} {:>9} {:>10} {:>9.3} {:>10.2} {:>10.4}\n",
            r.vector_bits,
            r.key_half_bits,
            r.key_space_bits,
            r.expected_span,
            r.expansion,
            r.embedding_rate
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_span_matches_paper_case() {
        // n = 8 locations (16-bit vector): E = 21/8 + 1 = 3.625.
        assert!((expected_span_uniform(8) - 3.625).abs() < 1e-12);
        assert_eq!(expected_span_uniform(1), 1.0);
    }

    #[test]
    fn sweep_monotonicity() {
        let rows = width_sweep(64);
        assert_eq!(rows.len(), 4); // 8, 16, 32, 64
        for pair in rows.windows(2) {
            // Wider vectors: more key space, more expansion, lower
            // embedding rate — the security/overhead trade-off.
            assert!(pair[1].key_space_bits > pair[0].key_space_bits);
            assert!(pair[1].expansion > pair[0].expansion);
            assert!(pair[1].embedding_rate < pair[0].embedding_rate);
        }
        // The paper's configuration is the second row.
        assert_eq!(rows[1].vector_bits, 16);
        assert!((rows[1].expected_span - 3.625).abs() < 1e-12);
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = width_sweep(32);
        let text = render(&rows);
        for r in &rows {
            assert!(text.contains(&r.vector_bits.to_string()));
        }
    }
}
