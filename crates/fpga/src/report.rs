//! Xilinx-`map`-style utilisation reports and equivalent-gate counting.

use crate::device::{Device, Package, SpeedGrade};
use crate::pack::Packing;
use rtl::netlist::NetlistStats;

/// Equivalent-gate weight of a flip-flop (Xilinx-style gate counting).
pub const GATES_PER_FF: usize = 8;
/// Equivalent-gate weight of a TBUF.
pub const GATES_PER_TBUF: usize = 1;
/// Extra JTAG gate weight reported per bonded IOB (the paper reports
/// 2784 gates for 57 IOBs ≈ 49 each).
pub const JTAG_GATES_PER_IOB: usize = 49;

/// Equivalent-gate weight of a LUT by input arity (1..=4).
pub fn gates_per_lut(arity: usize) -> usize {
    match arity {
        1 => 2,
        2 => 3,
        3 => 5,
        _ => 9,
    }
}

/// Total equivalent gate count for a netlist (excluding JTAG/IOB overhead,
/// which is reported separately as in the paper).
pub fn equivalent_gates(stats: &NetlistStats) -> usize {
    let luts: usize = (1..=4)
        .map(|a| stats.luts_by_arity[a] * gates_per_lut(a))
        .sum();
    luts + stats.dffs * GATES_PER_FF + stats.tbufs * GATES_PER_TBUF
}

/// The design-summary block of the map report.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSummary {
    /// Design name.
    pub design: String,
    /// Target device.
    pub device: Device,
    /// Target package.
    pub package: Package,
    /// Speed grade.
    pub speed: SpeedGrade,
    /// Occupied slices.
    pub slices_used: usize,
    /// Occupied CLBs (`ceil(slices / 2)`).
    pub clbs_used: usize,
    /// Slice flip-flops used.
    pub ffs_used: usize,
    /// 4-input (and smaller) LUTs used.
    pub luts_used: usize,
    /// Bonded IOBs used.
    pub iobs_used: usize,
    /// TBUFs used.
    pub tbufs_used: usize,
    /// Equivalent gate count for the design.
    pub gates: usize,
    /// Additional JTAG gate count for the bonded IOBs.
    pub jtag_gates: usize,
}

impl DesignSummary {
    /// Builds the summary from netlist statistics and a packing.
    pub fn new(
        design: impl Into<String>,
        stats: &NetlistStats,
        packing: &Packing,
        device: Device,
        package: Package,
        speed: SpeedGrade,
    ) -> Self {
        DesignSummary {
            design: design.into(),
            device,
            package,
            speed,
            slices_used: packing.slice_count(),
            clbs_used: packing.clb_count(),
            ffs_used: stats.dffs,
            luts_used: stats.luts(),
            iobs_used: stats.iobs(),
            tbufs_used: stats.tbufs,
            gates: equivalent_gates(stats),
            jtag_gates: stats.iobs() * JTAG_GATES_PER_IOB,
        }
    }

    /// Slice utilisation as a percentage of the device.
    pub fn slice_utilisation(&self) -> f64 {
        100.0 * self.slices_used as f64 / self.device.slices() as f64
    }

    /// IOB utilisation as a percentage of the package.
    pub fn iob_utilisation(&self) -> f64 {
        100.0 * self.iobs_used as f64 / self.package.user_ios() as f64
    }

    /// TBUF utilisation as a percentage of the device.
    pub fn tbuf_utilisation(&self) -> f64 {
        100.0 * self.tbufs_used as f64 / self.device.tbufs() as f64
    }
}

impl core::fmt::Display for DesignSummary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "Design Information")?;
        writeln!(f, "  Design name    : {}", self.design)?;
        writeln!(f, "  Target Device  : {}", self.device)?;
        writeln!(f, "  Target Package : {}", self.package)?;
        writeln!(f, "  Target Speed   : {}", self.speed.name())?;
        writeln!(f, "  Mapper Version : mhhea-suite fpga flow")?;
        writeln!(f)?;
        writeln!(f, "Design Summary")?;
        writeln!(
            f,
            "  Number of Slices          : {:>5} out of {:>5}  {:>3.0}%",
            self.slices_used,
            self.device.slices(),
            self.slice_utilisation()
        )?;
        writeln!(
            f,
            "  Number of CLBs            : {:>5} out of {:>5}  {:>3.0}%",
            self.clbs_used,
            self.device.clbs(),
            100.0 * self.clbs_used as f64 / self.device.clbs() as f64
        )?;
        writeln!(f, "  Slice Flip Flops          : {:>5}", self.ffs_used)?;
        writeln!(f, "  4 input LUTs              : {:>5}", self.luts_used)?;
        writeln!(
            f,
            "  Number of bonded IOBs     : {:>5} out of {:>5}  {:>3.0}%",
            self.iobs_used,
            self.package.user_ios(),
            self.iob_utilisation()
        )?;
        writeln!(
            f,
            "  Number of TBUFs           : {:>5} out of {:>5}  {:>3.0}%",
            self.tbufs_used,
            self.device.tbufs(),
            self.tbuf_utilisation()
        )?;
        writeln!(
            f,
            "  Total equivalent gate count for design : {}",
            self.gates
        )?;
        writeln!(
            f,
            "  Additional JTAG gate count for IOBs    : {}",
            self.jtag_gates
        )
    }
}

/// Functional density: the paper's figure of merit,
/// `throughput (Mbps) / area (CLBs)`.
///
/// # Panics
///
/// Panics when `area_clbs` is zero.
pub fn functional_density(throughput_mbps: f64, area_clbs: usize) -> f64 {
    assert!(area_clbs > 0, "area must be positive");
    throughput_mbps / area_clbs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::pack;
    use rtl::hdl::ModuleBuilder;
    use rtl::netlist::Netlist;

    fn summary_of(width: usize) -> DesignSummary {
        let mut nl = Netlist::new("demo");
        let mut m = ModuleBuilder::root(&mut nl);
        let a = m.input("a", width);
        let r = m.reg("r", width);
        let q = r.q();
        let d = m.xor(&a, &q);
        m.connect_reg(r, &d);
        m.output("y", &q);
        drop(m);
        let p = pack(&nl);
        DesignSummary::new(
            "demo",
            &nl.stats(),
            &p,
            Device::XC2S100,
            Package::TQ144,
            SpeedGrade::Minus6,
        )
    }

    #[test]
    fn summary_counts_match() {
        let s = summary_of(8);
        assert_eq!(s.ffs_used, 8);
        assert_eq!(s.luts_used, 8);
        assert_eq!(s.iobs_used, 16);
        // 8 paired LCs → 4 slices → 2 CLBs.
        assert_eq!(s.slices_used, 4);
        assert_eq!(s.clbs_used, 2);
        assert_eq!(s.gates, 8 * GATES_PER_FF + 8 * gates_per_lut(2));
        assert_eq!(s.jtag_gates, 16 * JTAG_GATES_PER_IOB);
    }

    #[test]
    fn utilisation_percentages() {
        let s = summary_of(8);
        assert!((s.slice_utilisation() - 4.0 / 12.0).abs() < 0.01);
        assert!(s.iob_utilisation() > 17.0 && s.iob_utilisation() < 18.0);
    }

    #[test]
    fn display_mirrors_paper_report_shape() {
        let s = summary_of(4);
        let text = s.to_string();
        for needle in [
            "Target Device  : xc2s100",
            "Target Package : tq144",
            "Number of Slices",
            "Slice Flip Flops",
            "4 input LUTs",
            "Number of bonded IOBs",
            "Number of TBUFs",
            "Total equivalent gate count",
            "Additional JTAG gate count",
        ] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
    }

    #[test]
    fn lut_gate_weights_are_monotone() {
        assert!(gates_per_lut(1) < gates_per_lut(2));
        assert!(gates_per_lut(2) < gates_per_lut(3));
        assert!(gates_per_lut(3) < gates_per_lut(4));
    }

    #[test]
    fn functional_density_matches_paper_rows() {
        // Table 1 check: YAEA 129.1/149 = 0.866, MHHEA 95.532/168 = 0.569.
        assert!((functional_density(129.1, 149) - 0.866).abs() < 0.001);
        assert!((functional_density(95.532, 168) - 0.569).abs() < 0.001);
        assert!((functional_density(15.8, 144) - 0.110).abs() < 0.001);
    }

    #[test]
    #[should_panic(expected = "area must be positive")]
    fn zero_area_panics() {
        functional_density(1.0, 0);
    }

    #[test]
    fn clb_is_two_slices() {
        assert_eq!(crate::device::SLICES_PER_CLB, 2);
    }
}
