//! Net-delay modelling and static timing analysis.
//!
//! Cell delays use Spartan-II-class constants; net delays follow a
//! fanout-plus-distance model over the placement's half-perimeter
//! wirelengths. The analysis propagates arrival times through the
//! levelized combinational netlist and reports the register-limited
//! minimum period, maximum frequency, the worst net delay and the critical
//! path — the same quantities as the paper's Appendix-A timing summary.

use crate::device::SpeedGrade;
use crate::place::Placement;
use rtl::netlist::{Cell, CellId, NetId, Netlist};

/// Delay-model constants, in nanoseconds (for speed grade -6).
#[derive(Debug, Clone, PartialEq)]
pub struct TimingModel {
    /// LUT propagation delay.
    pub lut_ns: f64,
    /// TBUF enable/data to longline delay.
    pub tbuf_ns: f64,
    /// Flip-flop clock-to-Q.
    pub clk_to_q_ns: f64,
    /// Flip-flop setup time.
    pub setup_ns: f64,
    /// Pad-to-fabric input delay.
    pub iob_in_ns: f64,
    /// Fabric-to-pad output delay.
    pub iob_out_ns: f64,
    /// Base routed-net delay.
    pub net_base_ns: f64,
    /// Additional net delay per fanout.
    pub net_per_fanout_ns: f64,
    /// Additional net delay per CLB of half-perimeter wirelength.
    pub net_per_clb_ns: f64,
}

impl Default for TimingModel {
    /// Constants in the Spartan-II -6 datasheet regime (`T_ILO ≈ 0.7 ns`,
    /// routed nets ≈ 1–2 ns), calibrated so the MHHEA core's report lands
    /// near the paper's Foundation-F2.1i numbers (41.9 ns minimum period);
    /// see `EXPERIMENTS.md` for the calibration note.
    fn default() -> Self {
        TimingModel {
            lut_ns: 0.7,
            tbuf_ns: 0.9,
            clk_to_q_ns: 1.0,
            setup_ns: 0.7,
            iob_in_ns: 1.0,
            iob_out_ns: 2.1,
            net_base_ns: 0.55,
            net_per_fanout_ns: 0.16,
            net_per_clb_ns: 0.05,
        }
    }
}

/// Output of static timing analysis.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Register-limited minimum clock period.
    pub min_period_ns: f64,
    /// `1000 / min_period_ns`.
    pub fmax_mhz: f64,
    /// Worst single routed-net delay.
    pub max_net_delay_ns: f64,
    /// Worst pad-to-pad / register-to-pad combinational path.
    pub max_io_path_ns: f64,
    /// Logic depth (LUT/TBUF levels) on the critical register path.
    pub logic_levels: usize,
    /// Instance names along the critical path, source to sink.
    pub critical_path: Vec<String>,
}

impl core::fmt::Display for TimingReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "Timing Summary")?;
        writeln!(f, "  Minimum period      : {:.3}ns", self.min_period_ns)?;
        writeln!(f, "  Maximum frequency   : {:.3}MHz", self.fmax_mhz)?;
        writeln!(f, "  Maximum net delay   : {:.3}ns", self.max_net_delay_ns)?;
        writeln!(f, "  Worst pad path      : {:.3}ns", self.max_io_path_ns)?;
        writeln!(f, "  Logic levels        : {}", self.logic_levels)
    }
}

/// Runs static timing analysis over a placed netlist.
///
/// The netlist must be valid (the flow driver guarantees this).
pub fn analyze(
    nl: &Netlist,
    placement: &Placement,
    model: &TimingModel,
    grade: SpeedGrade,
) -> TimingReport {
    let k = grade.derating();
    let readers = nl.readers();

    // Per-net routed delay.
    let mut net_delay = vec![0.0f64; nl.net_count()];
    let mut max_net_delay = 0.0f64;
    for (id, _) in nl.nets() {
        let fanout = readers[id.index()].len();
        let d = (model.net_base_ns
            + model.net_per_fanout_ns * fanout.saturating_sub(1) as f64
            + model.net_per_clb_ns * placement.net_hpwl(id.index()))
            * k;
        net_delay[id.index()] = d;
        max_net_delay = max_net_delay.max(d);
    }

    // Arrival times at net sinks. Sources: FF Q (clk-to-q), input pads,
    // constants (0). Each net's arrival includes its own routed delay.
    let mut arrival = vec![0.0f64; nl.net_count()];
    let mut level_of_net = vec![0usize; nl.net_count()];
    // `from`: (driving cell, worst input net) for critical-path backtrace.
    let mut from: Vec<Option<(CellId, Option<NetId>)>> = vec![None; nl.net_count()];
    for (id, cell) in nl.cells() {
        let (out, t0) = match cell {
            Cell::Dff { q, .. } => (*q, model.clk_to_q_ns * k),
            Cell::Input { output, .. } => (*output, model.iob_in_ns * k),
            Cell::Const { output, .. } => (*output, 0.0),
            _ => continue,
        };
        let a = t0 + net_delay[out.index()];
        if a > arrival[out.index()] {
            arrival[out.index()] = a;
            from[out.index()] = Some((id, None));
        }
    }

    let order = nl.levelize().expect("validated netlist");
    for (cell_id, _) in order {
        let cell = nl.cell(cell_id);
        let (inputs, out, cell_delay) = match cell {
            Cell::Lut { inputs, output, .. } => (inputs.clone(), *output, model.lut_ns * k),
            Cell::Tbuf {
                input, en, output, ..
            } => (vec![*input, *en], *output, model.tbuf_ns * k),
            _ => unreachable!("levelize yields comb cells only"),
        };
        let (worst_in, worst_arr) = inputs
            .iter()
            .map(|&n| (n, arrival[n.index()]))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("LUT/TBUF has inputs");
        let a = worst_arr + cell_delay + net_delay[out.index()];
        // Bus nets take the max over all TBUF drivers.
        if a > arrival[out.index()] {
            arrival[out.index()] = a;
            from[out.index()] = Some((cell_id, Some(worst_in)));
            level_of_net[out.index()] = level_of_net[worst_in.index()] + 1;
        }
    }

    // Endpoints.
    let mut min_period = 0.0f64;
    let mut worst_end: Option<NetId> = None;
    let mut max_io_path = 0.0f64;
    for (_, cell) in nl.cells() {
        match cell {
            Cell::Dff { d, ce, sr, .. } => {
                for n in [Some(*d), *ce, *sr].into_iter().flatten() {
                    let req = arrival[n.index()] + model.setup_ns * k;
                    if req > min_period {
                        min_period = req;
                        worst_end = Some(n);
                    }
                }
            }
            Cell::Output { input, .. } => {
                let t = arrival[input.index()] + model.iob_out_ns * k;
                max_io_path = max_io_path.max(t);
            }
            _ => {}
        }
    }
    // Pure combinational designs: constrain on the IO path instead.
    if min_period == 0.0 {
        min_period = max_io_path;
    }

    // Backtrace the critical path.
    let mut critical_path = Vec::new();
    let mut logic_levels = 0;
    if let Some(end) = worst_end {
        logic_levels = level_of_net[end.index()];
        let mut cursor = Some(end);
        while let Some(net) = cursor {
            match from[net.index()] {
                Some((cell, prev)) => {
                    critical_path.push(nl.cell(cell).name());
                    cursor = prev;
                }
                None => break,
            }
        }
        critical_path.reverse();
    }

    TimingReport {
        min_period_ns: min_period,
        fmax_mhz: if min_period > 0.0 {
            1000.0 / min_period
        } else {
            f64::INFINITY
        },
        max_net_delay_ns: max_net_delay,
        max_io_path_ns: max_io_path,
        logic_levels,
        critical_path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::pack::pack;
    use crate::place::{place, PlaceOptions};
    use rtl::hdl::ModuleBuilder;

    fn analyze_design(build: impl FnOnce(&mut ModuleBuilder<'_>)) -> TimingReport {
        let mut nl = Netlist::new("t");
        let mut m = ModuleBuilder::root(&mut nl);
        build(&mut m);
        drop(m);
        nl.validate().unwrap();
        let p = pack(&nl);
        let placed = place(
            &nl,
            &p,
            Device::XC2S15,
            &PlaceOptions {
                seed: 3,
                moves_per_slice: 8,
            },
        )
        .unwrap();
        analyze(&nl, &placed, &TimingModel::default(), SpeedGrade::Minus6)
    }

    #[test]
    fn deeper_logic_is_slower() {
        let shallow = analyze_design(|m| {
            let a = m.input("a", 4);
            let r = m.reg("r", 4);
            let q = r.q();
            let d = m.xor(&a, &q);
            m.connect_reg(r, &d);
            m.output("y", &q);
        });
        let deep = analyze_design(|m| {
            let a = m.input("a", 8);
            let r = m.reg("r", 8);
            let q = r.q();
            // Three chained adders before the register.
            let s1 = m.add(&a, &q).sum;
            let s2 = m.add(&s1, &q).sum;
            let s3 = m.add(&s2, &q).sum;
            m.connect_reg(r, &s3);
            m.output("y", &q);
        });
        assert!(
            deep.min_period_ns > shallow.min_period_ns,
            "deep {} vs shallow {}",
            deep.min_period_ns,
            shallow.min_period_ns
        );
        assert!(deep.logic_levels > shallow.logic_levels);
        assert!(deep.fmax_mhz < shallow.fmax_mhz);
    }

    #[test]
    fn critical_path_is_nonempty_and_ends_at_ff_input() {
        let r = analyze_design(|m| {
            let a = m.input("a", 8);
            let reg = m.reg("r", 8);
            let q = reg.q();
            let s = m.add(&a, &q).sum;
            m.connect_reg(reg, &s);
            m.output("y", &q);
        });
        assert!(!r.critical_path.is_empty());
        assert!(r.min_period_ns > 0.0);
        assert!((r.fmax_mhz - 1000.0 / r.min_period_ns).abs() < 1e-9);
    }

    #[test]
    fn combinational_design_constrained_by_io() {
        let r = analyze_design(|m| {
            let a = m.input("a", 4);
            let b = m.input("b", 4);
            let s = m.add(&a, &b).sum;
            m.output("y", &s);
        });
        assert_eq!(r.min_period_ns, r.max_io_path_ns);
        assert!(r.max_net_delay_ns > 0.0);
    }

    #[test]
    fn slower_grade_increases_delay() {
        let mut nl = Netlist::new("t");
        let mut m = ModuleBuilder::root(&mut nl);
        let a = m.input("a", 4);
        let reg = m.reg("r", 4);
        let q = reg.q();
        let d = m.xor(&a, &q);
        m.connect_reg(reg, &d);
        m.output("y", &q);
        drop(m);
        let p = pack(&nl);
        let placed = place(&nl, &p, Device::XC2S15, &PlaceOptions::default()).unwrap();
        let m6 = analyze(&nl, &placed, &TimingModel::default(), SpeedGrade::Minus6);
        let m5 = analyze(&nl, &placed, &TimingModel::default(), SpeedGrade::Minus5);
        assert!(m5.min_period_ns > m6.min_period_ns);
    }

    #[test]
    fn report_displays_all_fields() {
        let r = analyze_design(|m| {
            let a = m.input("a", 2);
            let reg = m.reg("r", 2);
            let q = reg.q();
            let d = m.xor(&a, &q);
            m.connect_reg(reg, &d);
            m.output("y", &q);
        });
        let text = r.to_string();
        for needle in ["Minimum period", "Maximum frequency", "Maximum net delay"] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
    }
}
