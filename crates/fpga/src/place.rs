//! Simulated-annealing placement on the CLB grid.
//!
//! Slices are assigned to half-CLB sites; IOBs sit on a perimeter ring;
//! TBUFs ride along with the slice driving their data input (they are
//! longline resources, so this is where their delay is charged from). The
//! annealer minimises total half-perimeter wirelength (HPWL) with the
//! classic swap-move / geometric-cooling schedule.

use crate::device::{Device, SLICES_PER_CLB};
use crate::pack::Packing;
use crate::FlowError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtl::netlist::{Cell, CellId, Netlist};
use std::collections::HashMap;

/// A physical position in CLB-grid units.
pub type Pos = (f64, f64);

/// Placement options.
#[derive(Debug, Clone)]
pub struct PlaceOptions {
    /// RNG seed (placement is deterministic for a given seed).
    pub seed: u64,
    /// Annealing moves per slice (effort knob; 0 keeps the initial
    /// locality-ordered placement).
    pub moves_per_slice: usize,
}

impl Default for PlaceOptions {
    fn default() -> Self {
        PlaceOptions {
            seed: 42,
            moves_per_slice: 64,
        }
    }
}

/// A placed design.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Target device.
    pub device: Device,
    /// Per-slice site assignment: `(row, col, half)` on the CLB grid.
    pub slice_sites: Vec<(usize, usize, usize)>,
    /// Per-cell physical position (slices, IOBs and TBUFs).
    pub cell_pos: HashMap<CellId, Pos>,
    /// Final total HPWL cost.
    pub cost: f64,
    /// Nets as endpoint cell lists (kept for timing's distance model),
    /// indexed by net id.
    pub net_endpoints: Vec<Vec<CellId>>,
}

impl Placement {
    /// Half-perimeter wirelength of a net given final cell positions.
    pub fn net_hpwl(&self, net_index: usize) -> f64 {
        hpwl(
            self.net_endpoints[net_index]
                .iter()
                .filter_map(|c| self.cell_pos.get(c).copied()),
        )
    }

    /// Position of a cell, if placed.
    pub fn position(&self, cell: CellId) -> Option<Pos> {
        self.cell_pos.get(&cell).copied()
    }
}

fn hpwl(points: impl Iterator<Item = Pos>) -> f64 {
    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    let mut n = 0;
    for (x, y) in points {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
        n += 1;
    }
    if n < 2 {
        0.0
    } else {
        (max_x - min_x) + (max_y - min_y)
    }
}

/// Mutable annealing state.
struct Placer<'a> {
    packing: &'a Packing,
    cols: usize,
    rows: usize,
    /// site index per slice.
    site_of: Vec<usize>,
    /// slice per site.
    slice_at: Vec<Option<usize>>,
    cell_pos: HashMap<CellId, Pos>,
    /// TBUFs anchored to each slice (moved together).
    tbufs_of_slice: Vec<Vec<CellId>>,
    net_endpoints: Vec<Vec<CellId>>,
    nets_of_slice: Vec<Vec<usize>>,
}

impl Placer<'_> {
    fn site_pos(&self, site: usize) -> Pos {
        let clb = site / SLICES_PER_CLB;
        let row = clb / self.cols;
        let col = clb % self.cols;
        (col as f64, row as f64)
    }

    /// Refreshes the physical position of one slice's cells and anchored
    /// TBUFs.
    fn update_slice_pos(&mut self, slice: usize) {
        let pos = self.site_pos(self.site_of[slice]);
        for lc in &self.packing.slices[slice].lcs {
            if let Some(l) = lc.lut {
                self.cell_pos.insert(l, pos);
            }
            if let Some(f) = lc.ff {
                self.cell_pos.insert(f, pos);
            }
        }
        for &t in &self.tbufs_of_slice[slice] {
            self.cell_pos.insert(t, pos);
        }
    }

    fn net_cost(&self, net: usize) -> f64 {
        hpwl(
            self.net_endpoints[net]
                .iter()
                .filter_map(|c| self.cell_pos.get(c).copied()),
        )
    }

    fn total_cost(&self) -> f64 {
        (0..self.net_endpoints.len())
            .map(|i| self.net_cost(i))
            .sum()
    }

    /// Moves slice `a` to `target_site`, swapping with any occupant.
    /// Returns the displaced slice, if any.
    fn apply_move(&mut self, a: usize, target_site: usize) -> Option<usize> {
        let a_site = self.site_of[a];
        let b = self.slice_at[target_site];
        self.site_of[a] = target_site;
        self.slice_at[target_site] = Some(a);
        self.slice_at[a_site] = b;
        if let Some(b) = b {
            self.site_of[b] = a_site;
        }
        self.update_slice_pos(a);
        if let Some(b) = b {
            self.update_slice_pos(b);
        }
        b
    }

    /// Nets affected by moving slices `a` and optional `b`.
    fn affected_nets(&self, a: usize, b: Option<usize>) -> Vec<usize> {
        let mut nets = self.nets_of_slice[a].clone();
        if let Some(b) = b {
            nets.extend(self.nets_of_slice[b].iter().copied());
            nets.sort_unstable();
            nets.dedup();
        }
        nets
    }
}

/// Places a packed design on `device`.
///
/// # Errors
///
/// Returns [`FlowError::DoesNotFit`] when the design exceeds the device's
/// slice or TBUF capacity.
pub fn place(
    nl: &Netlist,
    packing: &Packing,
    device: Device,
    opts: &PlaceOptions,
) -> Result<Placement, FlowError> {
    packing.check_fit(device)?;
    let (rows, cols) = device.clb_grid();
    let n_slices = packing.slices.len();
    let n_sites = rows * cols * SLICES_PER_CLB;

    let drivers = nl.drivers();
    let readers = nl.readers();
    let mut net_endpoints: Vec<Vec<CellId>> = Vec::with_capacity(nl.net_count());
    for (net, _) in nl.nets() {
        let mut cells: Vec<CellId> = drivers[net.index()].clone();
        cells.extend(readers[net.index()].iter().copied());
        cells.sort();
        cells.dedup();
        net_endpoints.push(cells);
    }

    let mut nets_of_slice: Vec<Vec<usize>> = vec![Vec::new(); n_slices.max(1)];
    for (i, cells) in net_endpoints.iter().enumerate() {
        for c in cells {
            if let Some(&s) = packing.cell_slice.get(c) {
                nets_of_slice[s].push(i);
            }
        }
    }
    for nets in &mut nets_of_slice {
        nets.sort_unstable();
        nets.dedup();
    }

    // Anchor each TBUF to the slice driving its data input.
    let mut tbufs_of_slice: Vec<Vec<CellId>> = vec![Vec::new(); n_slices.max(1)];
    let mut floating_tbufs: Vec<CellId> = Vec::new();
    for &t in &packing.tbufs {
        let anchor = match nl.cell(t) {
            Cell::Tbuf { input, .. } => drivers[input.index()]
                .first()
                .and_then(|d| packing.cell_slice.get(d))
                .copied(),
            _ => None,
        };
        match anchor {
            Some(s) => tbufs_of_slice[s].push(t),
            None => floating_tbufs.push(t),
        }
    }

    let mut placer = Placer {
        packing,
        cols,
        rows,
        site_of: (0..n_slices).collect(),
        slice_at: {
            let mut v = vec![None; n_sites];
            for (slice, site) in v.iter_mut().enumerate().take(n_slices) {
                *site = Some(slice);
            }
            v
        },
        cell_pos: HashMap::new(),
        tbufs_of_slice,
        net_endpoints,
        nets_of_slice,
    };

    // Fixed positions: IOB ring, floating TBUFs at grid centre.
    let ring = perimeter_ring(rows, cols);
    for (i, &iob) in packing.iobs.iter().enumerate() {
        placer.cell_pos.insert(iob, ring[i % ring.len()]);
    }
    let centre = (cols as f64 / 2.0, placer.rows as f64 / 2.0);
    for t in floating_tbufs {
        placer.cell_pos.insert(t, centre);
    }
    for s in 0..n_slices {
        placer.update_slice_pos(s);
    }

    let mut cost = placer.total_cost();
    if n_slices > 1 && opts.moves_per_slice > 0 {
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let budget = opts.moves_per_slice * n_slices;

        // Initial temperature from sampled move deltas.
        let mut deltas = Vec::new();
        for _ in 0..32 {
            let a = rng.gen_range(0..n_slices);
            let s = rng.gen_range(0..n_sites);
            if placer.slice_at[s] == Some(a) {
                continue;
            }
            let b_peek = placer.slice_at[s];
            let nets = placer.affected_nets(a, b_peek);
            let before: f64 = nets.iter().map(|&i| placer.net_cost(i)).sum();
            let a_site = placer.site_of[a];
            placer.apply_move(a, s);
            let after: f64 = nets.iter().map(|&i| placer.net_cost(i)).sum();
            placer.apply_move(a, a_site); // undo
            deltas.push((after - before).abs());
        }
        let mut t = (deltas.iter().sum::<f64>() / deltas.len().max(1) as f64) * 10.0;
        t = t.max(1.0);

        let batch = (n_slices * 4).max(16);
        let mut moves = 0usize;
        let mut best_cost = cost;
        let mut best_sites = placer.site_of.clone();
        while moves < budget && t > 1e-3 {
            for _ in 0..batch {
                moves += 1;
                let a = rng.gen_range(0..n_slices);
                let target = rng.gen_range(0..n_sites);
                if placer.slice_at[target] == Some(a) {
                    continue;
                }
                let b_peek = placer.slice_at[target];
                let nets = placer.affected_nets(a, b_peek);
                let before: f64 = nets.iter().map(|&i| placer.net_cost(i)).sum();
                let a_site = placer.site_of[a];
                placer.apply_move(a, target);
                let after: f64 = nets.iter().map(|&i| placer.net_cost(i)).sum();
                let delta = after - before;
                if delta <= 0.0 || rng.gen::<f64>() < (-delta / t).exp() {
                    cost += delta;
                    if cost < best_cost {
                        best_cost = cost;
                        best_sites = placer.site_of.clone();
                    }
                } else {
                    placer.apply_move(a, a_site);
                }
            }
            t *= 0.92;
        }
        // Restore the best configuration observed (the schedule may end on
        // an uphill excursion).
        placer.slice_at.fill(None);
        for (slice, &site) in best_sites.iter().enumerate() {
            placer.slice_at[site] = Some(slice);
        }
        placer.site_of = best_sites;
        for s in 0..n_slices {
            placer.update_slice_pos(s);
        }
        cost = placer.total_cost();
    }

    let slice_sites = placer
        .site_of
        .iter()
        .map(|&site| {
            let clb = site / SLICES_PER_CLB;
            (clb / cols, clb % cols, site % SLICES_PER_CLB)
        })
        .collect();

    Ok(Placement {
        device,
        slice_sites,
        cell_pos: placer.cell_pos,
        cost,
        net_endpoints: placer.net_endpoints,
    })
}

/// Positions around the device perimeter for IOB assignment.
fn perimeter_ring(rows: usize, cols: usize) -> Vec<Pos> {
    let mut ring = Vec::new();
    for c in 0..cols {
        ring.push((c as f64, -1.0));
    }
    for r in 0..rows {
        ring.push((cols as f64, r as f64));
    }
    for c in (0..cols).rev() {
        ring.push((c as f64, rows as f64));
    }
    for r in (0..rows).rev() {
        ring.push((-1.0, r as f64));
    }
    ring
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::pack;
    use rtl::hdl::ModuleBuilder;

    fn sample_design() -> Netlist {
        let mut nl = Netlist::new("t");
        let mut m = ModuleBuilder::root(&mut nl);
        let a = m.input("a", 8);
        let b = m.input("b", 8);
        let r = m.reg("acc", 8);
        let q = r.q();
        let s = m.add(&a, &b).sum;
        let x = m.xor(&s, &q);
        m.connect_reg(r, &x);
        m.output("y", &q);
        drop(m);
        nl
    }

    #[test]
    fn placement_is_legal() {
        let nl = sample_design();
        let p = pack(&nl);
        let placed = place(&nl, &p, Device::XC2S15, &PlaceOptions::default()).unwrap();
        let mut seen = std::collections::HashSet::new();
        for &site in &placed.slice_sites {
            assert!(seen.insert(site), "site {site:?} double-booked");
            let (r, c, h) = site;
            assert!(r < 8 && c < 12 && h < 2);
        }
        for cell in p.cell_slice.keys() {
            assert!(placed.position(*cell).is_some());
        }
        assert!(placed.cost.is_finite());
    }

    #[test]
    fn annealing_does_not_worsen_cost() {
        let nl = sample_design();
        let p = pack(&nl);
        let unopt = place(
            &nl,
            &p,
            Device::XC2S15,
            &PlaceOptions {
                seed: 1,
                moves_per_slice: 0,
            },
        )
        .unwrap();
        let opt = place(
            &nl,
            &p,
            Device::XC2S15,
            &PlaceOptions {
                seed: 1,
                moves_per_slice: 64,
            },
        )
        .unwrap();
        assert!(
            opt.cost <= unopt.cost * 1.05,
            "annealed {} vs initial {}",
            opt.cost,
            unopt.cost
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let nl = sample_design();
        let p = pack(&nl);
        let o = PlaceOptions {
            seed: 7,
            moves_per_slice: 16,
        };
        let a = place(&nl, &p, Device::XC2S15, &o).unwrap();
        let b = place(&nl, &p, Device::XC2S15, &o).unwrap();
        assert_eq!(a.slice_sites, b.slice_sites);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn hpwl_of_points() {
        assert_eq!(hpwl([(0.0, 0.0), (3.0, 4.0)].into_iter()), 7.0);
        assert_eq!(hpwl([(1.0, 1.0)].into_iter()), 0.0);
        assert_eq!(hpwl(std::iter::empty()), 0.0);
    }

    #[test]
    fn perimeter_ring_wraps_grid() {
        let ring = perimeter_ring(4, 6);
        assert_eq!(ring.len(), 2 * (4 + 6));
        assert!(ring.contains(&(0.0, -1.0)));
        assert!(ring.contains(&(6.0, 3.0)));
        assert!(ring.contains(&(-1.0, 0.0)));
    }

    #[test]
    fn tbufs_track_their_driver_slice() {
        let mut nl = Netlist::new("t");
        let mut m = ModuleBuilder::root(&mut nl);
        let a = m.input("a", 2);
        let en = m.input("en", 1);
        let r = m.reg("r", 2);
        let q = r.q();
        let d = m.xor(&a, &q);
        m.connect_reg(r, &d);
        let bus = m.bus("bus", 2);
        m.drive_bus(&bus, &q, &en);
        m.output("y", &bus);
        drop(m);
        let p = pack(&nl);
        let placed = place(&nl, &p, Device::XC2S15, &PlaceOptions::default()).unwrap();
        // Each TBUF should sit exactly on its driving FF's slice position.
        for &t in &p.tbufs {
            let rtl::netlist::Cell::Tbuf { input, .. } = nl.cell(t) else {
                unreachable!()
            };
            let driver = nl.drivers()[input.index()][0];
            assert_eq!(placed.position(t), placed.position(driver));
        }
    }

    #[test]
    fn too_big_design_rejected() {
        // 500 independent registered inverters exceed XC2S15's 192 slices.
        let mut nl = Netlist::new("big");
        let mut m = ModuleBuilder::root(&mut nl);
        let mut qs = Vec::new();
        for i in 0..500 {
            let r = m.reg(&format!("r{i}"), 1);
            let q = r.q();
            let d = m.not(&q);
            m.connect_reg(r, &d);
            qs.push(q);
        }
        let all = qs
            .iter()
            .fold(None::<rtl::hdl::Signal>, |acc, q| {
                Some(match acc {
                    None => q.clone(),
                    Some(a) => a.concat(q),
                })
            })
            .unwrap();
        let y = m.reduce_xor(&all);
        m.output("y", &y);
        drop(m);
        let p = pack(&nl);
        let err = place(&nl, &p, Device::XC2S15, &PlaceOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            FlowError::DoesNotFit {
                resource: "slices",
                ..
            }
        ));
    }
}
