//! Technology packing: LUT/FF pairing into logic cells, slices and CLBs.
//!
//! Spartan-II slices hold two logic cells, each with one 4-input LUT and
//! one flip-flop. The packer pairs every flip-flop with the LUT that feeds
//! its `D` pin (when that LUT exists and is still free), fills the
//! remainder with single-resource cells, and then groups logic cells into
//! slices by hierarchical-name locality so placement starts from a
//! reasonable clustering.

use crate::device::{Device, SLICES_PER_CLB};
use rtl::netlist::{Cell, CellId, Netlist};
use std::collections::{BTreeMap, HashMap, HashSet};

/// One logic cell: an optional LUT and an optional FF sharing a slice half.
#[derive(Debug, Clone, Default)]
pub struct LogicCell {
    /// Packed LUT, if any.
    pub lut: Option<CellId>,
    /// Packed flip-flop, if any.
    pub ff: Option<CellId>,
    /// Hierarchical sort key (used for locality grouping).
    pub sort_key: String,
}

/// A slice holding up to two logic cells.
#[derive(Debug, Clone, Default)]
pub struct Slice {
    /// The slice's logic cells (1..=2 entries).
    pub lcs: Vec<LogicCell>,
}

/// The packed design.
#[derive(Debug, Clone)]
pub struct Packing {
    /// All occupied slices.
    pub slices: Vec<Slice>,
    /// TBUF cells (routed on longlines, not in slices).
    pub tbufs: Vec<CellId>,
    /// Top-level port cells (one per bonded IOB).
    pub iobs: Vec<CellId>,
    /// Maps each slice-resident cell to its slice index.
    pub cell_slice: HashMap<CellId, usize>,
}

impl Packing {
    /// Number of occupied slices.
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Number of occupied CLBs (2 slices per CLB).
    pub fn clb_count(&self) -> usize {
        self.slices.len().div_ceil(SLICES_PER_CLB)
    }

    /// `(lut_count, ff_count)` across all slices.
    pub fn resource_counts(&self) -> (usize, usize) {
        let mut luts = 0;
        let mut ffs = 0;
        for s in &self.slices {
            for lc in &s.lcs {
                luts += lc.lut.is_some() as usize;
                ffs += lc.ff.is_some() as usize;
            }
        }
        (luts, ffs)
    }

    /// Checks the packing against a device's slice/TBUF capacity.
    ///
    /// # Errors
    ///
    /// Returns [`crate::FlowError::DoesNotFit`] naming the overflowing
    /// resource.
    pub fn check_fit(&self, device: Device) -> Result<(), crate::FlowError> {
        if self.slice_count() > device.slices() {
            return Err(crate::FlowError::DoesNotFit {
                resource: "slices",
                required: self.slice_count(),
                available: device.slices(),
            });
        }
        if self.tbufs.len() > device.tbufs() {
            return Err(crate::FlowError::DoesNotFit {
                resource: "tbufs",
                required: self.tbufs.len(),
                available: device.tbufs(),
            });
        }
        Ok(())
    }
}

/// Packs a netlist into slices.
///
/// The netlist is assumed valid (callers run [`Netlist::validate`] first;
/// the flow driver enforces this).
pub fn pack(nl: &Netlist) -> Packing {
    let drivers = nl.drivers();
    let mut paired_luts: HashSet<CellId> = HashSet::new();
    let mut lcs: Vec<LogicCell> = Vec::new();

    // Pass 1: FFs, pairing each with its feeding LUT when possible.
    for (id, cell) in nl.cells() {
        let Cell::Dff { name, d, .. } = cell else {
            continue;
        };
        let feeding_lut = drivers[d.index()]
            .iter()
            .copied()
            .find(|&drv| matches!(nl.cell(drv), Cell::Lut { .. }) && !paired_luts.contains(&drv));
        if let Some(lut) = feeding_lut {
            paired_luts.insert(lut);
            lcs.push(LogicCell {
                lut: Some(lut),
                ff: Some(id),
                sort_key: name.clone(),
            });
        } else {
            lcs.push(LogicCell {
                lut: None,
                ff: Some(id),
                sort_key: name.clone(),
            });
        }
    }

    // Pass 2: remaining LUTs.
    for (id, cell) in nl.cells() {
        if let Cell::Lut { name, .. } = cell {
            if !paired_luts.contains(&id) {
                lcs.push(LogicCell {
                    lut: Some(id),
                    ff: None,
                    sort_key: name.clone(),
                });
            }
        }
    }

    // Locality: sort by hierarchical name so one module's cells end up in
    // neighbouring slices.
    lcs.sort_by(|a, b| a.sort_key.cmp(&b.sort_key));

    let mut slices = Vec::with_capacity(lcs.len().div_ceil(2));
    let mut cell_slice = HashMap::new();
    for pair in lcs.chunks(2) {
        let idx = slices.len();
        for lc in pair {
            if let Some(l) = lc.lut {
                cell_slice.insert(l, idx);
            }
            if let Some(f) = lc.ff {
                cell_slice.insert(f, idx);
            }
        }
        slices.push(Slice { lcs: pair.to_vec() });
    }

    let tbufs = nl
        .cells()
        .filter(|(_, c)| matches!(c, Cell::Tbuf { .. }))
        .map(|(id, _)| id)
        .collect();
    let iobs = nl
        .cells()
        .filter(|(_, c)| matches!(c, Cell::Input { .. } | Cell::Output { .. }))
        .map(|(id, _)| id)
        .collect();

    Packing {
        slices,
        tbufs,
        iobs,
        cell_slice,
    }
}

/// Groups slice indices by the first hierarchical segment of their cells'
/// names — used by the floorplan legend.
pub fn slice_modules(packing: &Packing) -> BTreeMap<String, Vec<usize>> {
    let mut map: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (idx, slice) in packing.slices.iter().enumerate() {
        let key = slice
            .lcs
            .first()
            .map(|lc| module_of(&lc.sort_key))
            .unwrap_or_else(|| "top".to_string());
        map.entry(key).or_default().push(idx);
    }
    map
}

/// Extracts the leading hierarchy segment of an instance name.
pub fn module_of(name: &str) -> String {
    match name.split_once('.') {
        Some((head, _)) if !head.is_empty() => head.to_string(),
        _ => "top".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl::hdl::ModuleBuilder;

    fn registered_adder() -> Netlist {
        let mut nl = Netlist::new("t");
        let mut m = ModuleBuilder::root(&mut nl);
        let a = m.input("a", 8);
        let b = m.input("b", 8);
        let r = m.reg("acc", 8);
        let q = r.q();
        let sum = m.add(&a, &b).sum;
        m.connect_reg(r, &sum);
        m.output("y", &q);
        drop(m);
        nl
    }

    #[test]
    fn pairs_luts_with_ffs() {
        let nl = registered_adder();
        nl.validate().unwrap();
        let p = pack(&nl);
        let (luts, ffs) = p.resource_counts();
        assert_eq!(ffs, 8);
        assert_eq!(luts, nl.stats().luts());
        // Each FF is fed by the sum LUT — all 8 should be paired, so the
        // logic-cell count is below luts + ffs.
        let lc_count: usize = p.slices.iter().map(|s| s.lcs.len()).sum();
        assert!(lc_count < luts + ffs, "no pairing happened");
        assert_eq!(p.slice_count(), lc_count.div_ceil(2));
        assert!(p.clb_count() <= p.slice_count());
    }

    #[test]
    fn cell_slice_maps_every_packed_cell() {
        let nl = registered_adder();
        let p = pack(&nl);
        let packed: usize = p
            .slices
            .iter()
            .flat_map(|s| &s.lcs)
            .map(|lc| lc.lut.is_some() as usize + lc.ff.is_some() as usize)
            .sum();
        assert_eq!(p.cell_slice.len(), packed);
        for (&cell, &slice) in &p.cell_slice {
            assert!(slice < p.slices.len());
            let s = &p.slices[slice];
            assert!(
                s.lcs
                    .iter()
                    .any(|lc| lc.lut == Some(cell) || lc.ff == Some(cell)),
                "cell map points to wrong slice"
            );
        }
    }

    #[test]
    fn iobs_and_tbufs_separated() {
        let mut nl = Netlist::new("t");
        let mut m = ModuleBuilder::root(&mut nl);
        let a = m.input("a", 4);
        let en = m.input("en", 1);
        let bus = m.bus("b", 4);
        m.drive_bus(&bus, &a, &en);
        m.output("y", &bus);
        drop(m);
        let p = pack(&nl);
        assert_eq!(p.tbufs.len(), 4);
        assert_eq!(p.iobs.len(), 4 + 1 + 4);
        assert_eq!(p.slice_count(), 0);
    }

    #[test]
    fn fit_check() {
        let nl = registered_adder();
        let p = pack(&nl);
        assert!(p.check_fit(Device::XC2S15).is_ok());
    }

    #[test]
    fn module_extraction() {
        assert_eq!(module_of("keycache.lut#3"), "keycache");
        assert_eq!(module_of("plain"), "top");
        assert_eq!(module_of(".odd"), "top");
    }
}
