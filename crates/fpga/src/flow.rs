//! One-call implementation flow: validate → pack → place → time → report.

use crate::device::{Device, Package, SpeedGrade};
use crate::floorplan;
use crate::pack::{pack, Packing};
use crate::place::{place, PlaceOptions, Placement};
use crate::report::DesignSummary;
use crate::timing::{analyze, TimingModel, TimingReport};
use crate::FlowError;
use rtl::netlist::Netlist;

/// Options for the full flow.
#[derive(Debug, Clone)]
pub struct FlowOptions {
    /// Target device (default: the paper's XC2S100).
    pub device: Device,
    /// Target package (default: TQ144).
    pub package: Package,
    /// Speed grade (default: -6).
    pub speed: SpeedGrade,
    /// Placement options.
    pub place: PlaceOptions,
    /// Timing model constants.
    pub timing: TimingModel,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            device: Device::XC2S100,
            package: Package::TQ144,
            speed: SpeedGrade::Minus6,
            place: PlaceOptions::default(),
            timing: TimingModel::default(),
        }
    }
}

impl FlowOptions {
    /// A reduced-effort variant for unit tests and debug builds.
    pub fn fast() -> Self {
        FlowOptions {
            place: PlaceOptions {
                seed: 42,
                moves_per_slice: 4,
            },
            ..Default::default()
        }
    }
}

/// Everything the flow produces.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The packed design.
    pub packing: Packing,
    /// The placement.
    pub placement: Placement,
    /// Static timing analysis.
    pub timing: TimingReport,
    /// Utilisation summary.
    pub summary: DesignSummary,
}

impl FlowResult {
    /// The Xilinx-style full text report (design + timing summaries).
    pub fn report_text(&self) -> String {
        format!("{}\n{}", self.summary, self.timing)
    }

    /// ASCII floor plan of the placed design.
    pub fn floorplan(&self, nl: &Netlist) -> String {
        floorplan::render(nl, &self.packing, &self.placement)
    }
}

/// Runs the complete flow over a netlist.
///
/// # Errors
///
/// Returns [`FlowError::Invalid`] for structurally bad netlists and
/// [`FlowError::DoesNotFit`] when the design exceeds the device or package
/// capacity.
pub fn run_flow(nl: &Netlist, opts: &FlowOptions) -> Result<FlowResult, FlowError> {
    nl.validate()?;
    let stats = nl.stats();
    if stats.iobs() > opts.package.user_ios() {
        return Err(FlowError::DoesNotFit {
            resource: "iobs",
            required: stats.iobs(),
            available: opts.package.user_ios(),
        });
    }
    let packing = pack(nl);
    let placement = place(nl, &packing, opts.device, &opts.place)?;
    let timing = analyze(nl, &placement, &opts.timing, opts.speed);
    let summary = DesignSummary::new(
        nl.name(),
        &stats,
        &packing,
        opts.device,
        opts.package,
        opts.speed,
    );
    Ok(FlowResult {
        packing,
        placement,
        timing,
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl::hdl::ModuleBuilder;

    fn demo_netlist() -> Netlist {
        let mut nl = Netlist::new("demo");
        let mut m = ModuleBuilder::root(&mut nl);
        let a = m.input("a", 8);
        let b = m.input("b", 8);
        let r = m.reg("acc", 8);
        let q = r.q();
        let s = m.add(&a, &b).sum;
        let x = m.xor(&s, &q);
        m.connect_reg(r, &x);
        m.output("y", &q);
        drop(m);
        nl
    }

    #[test]
    fn full_flow_produces_consistent_result() {
        let nl = demo_netlist();
        let result = run_flow(&nl, &FlowOptions::fast()).unwrap();
        assert_eq!(result.summary.ffs_used, 8);
        assert!(result.summary.slices_used > 0);
        assert!(result.timing.min_period_ns > 0.0);
        assert_eq!(
            result.packing.slice_count(),
            result.placement.slice_sites.len()
        );
        let text = result.report_text();
        assert!(text.contains("Design Summary"));
        assert!(text.contains("Timing Summary"));
        let fp = result.floorplan(&nl);
        assert!(fp.contains("Floor plan"));
    }

    #[test]
    fn iob_overflow_detected() {
        let mut nl = Netlist::new("wide");
        let mut m = ModuleBuilder::root(&mut nl);
        let a = m.input("a", 70);
        m.output("y", &a);
        drop(m);
        // 140 IOBs exceed TQ144's 92.
        let err = run_flow(&nl, &FlowOptions::fast()).unwrap_err();
        assert!(matches!(
            err,
            FlowError::DoesNotFit {
                resource: "iobs",
                ..
            }
        ));
        // PQ208 fits.
        let mut opts = FlowOptions::fast();
        opts.package = Package::PQ208;
        assert!(run_flow(&nl, &opts).is_ok());
    }

    #[test]
    fn invalid_netlist_reported() {
        let mut nl = Netlist::new("bad");
        let n = nl.new_net("floating");
        nl.add_output_port("y", &[n]);
        assert!(matches!(
            run_flow(&nl, &FlowOptions::fast()),
            Err(FlowError::Invalid(_))
        ));
    }
}
