//! ASCII floor plans (the paper's Figure 10).
//!
//! Each CLB of the device grid is drawn as one character: `.` for empty,
//! or a letter identifying the module (leading hierarchical name segment)
//! that owns the majority of the CLB's logic cells. A legend lists the
//! letter assignment and per-module slice counts.

use crate::pack::{module_of, Packing};
use crate::place::Placement;
use std::collections::BTreeMap;

/// Renders the placed design as an ASCII floor plan with a module legend.
pub fn render(nl: &rtl::netlist::Netlist, packing: &Packing, placement: &Placement) -> String {
    let (rows, cols) = placement.device.clb_grid();
    // Module name per slice.
    let slice_module: Vec<String> = packing
        .slices
        .iter()
        .map(|s| {
            s.lcs
                .first()
                .map(|lc| module_of(&lc.sort_key))
                .unwrap_or_else(|| "top".into())
        })
        .collect();

    // Count module occupancy per CLB.
    let mut clb_owner: Vec<Vec<BTreeMap<&str, usize>>> = vec![vec![BTreeMap::new(); cols]; rows];
    for (slice, &(r, c, _)) in placement.slice_sites.iter().enumerate() {
        *clb_owner[r][c]
            .entry(slice_module[slice].as_str())
            .or_insert(0) += 1;
    }

    // Stable letter assignment: modules sorted by name.
    let mut modules: BTreeMap<&str, usize> = BTreeMap::new();
    for m in &slice_module {
        *modules.entry(m.as_str()).or_insert(0) += 1;
    }
    let letters: BTreeMap<&str, char> = modules
        .keys()
        .enumerate()
        .map(|(i, &m)| {
            let c = if i < 26 {
                (b'A' + i as u8) as char
            } else {
                (b'a' + (i - 26) as u8 % 26) as char
            };
            (m, c)
        })
        .collect();

    let mut out = String::new();
    out.push_str(&format!(
        "Floor plan — {} ({} x {} CLBs)\n",
        placement.device, rows, cols
    ));
    out.push_str(&format!("+{}+\n", "-".repeat(cols)));
    for row in clb_owner.iter().take(rows) {
        out.push('|');
        for owners in row.iter().take(cols) {
            let ch = owners
                .iter()
                .max_by_key(|&(_, n)| *n)
                .map(|(m, _)| letters[m])
                .unwrap_or('.');
            out.push(ch);
        }
        out.push_str("|\n");
    }
    out.push_str(&format!("+{}+\n", "-".repeat(cols)));
    out.push_str("Legend (module: slices):\n");
    for (m, count) in &modules {
        out.push_str(&format!("  {}  {m}: {count}\n", letters[m]));
    }
    out.push_str(&format!(
        "IOBs on perimeter: {}; TBUF longlines follow driver CLBs; design `{}`\n",
        packing.iobs.len(),
        nl.name()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::pack::pack;
    use crate::place::{place, PlaceOptions};
    use rtl::hdl::ModuleBuilder;
    use rtl::netlist::Netlist;

    fn planned() -> String {
        let mut nl = Netlist::new("demo");
        let mut m = ModuleBuilder::root(&mut nl);
        let a = m.input("a", 8);
        let q = {
            let mut alu = m.scope("alu");
            let r = alu.reg("acc", 8);
            let q = r.q();
            let d = alu.xor(&a, &q);
            alu.connect_reg(r, &d);
            q
        };
        let y = {
            let mut post = m.scope("post");
            post.not(&q)
        };
        m.output("y", &y);
        drop(m);
        let p = pack(&nl);
        let placed = place(&nl, &p, Device::XC2S15, &PlaceOptions::default()).unwrap();
        render(&nl, &p, &placed)
    }

    #[test]
    fn floorplan_has_grid_and_legend() {
        let fp = planned();
        // 8 rows of 12 CLBs plus borders.
        assert_eq!(fp.lines().filter(|l| l.starts_with('|')).count(), 8);
        assert!(fp.contains("alu:"), "{fp}");
        assert!(fp.contains("post:"), "{fp}");
        assert!(fp.contains("Legend"), "{fp}");
        // At least one occupied CLB letter appears.
        assert!(fp.contains('A'), "{fp}");
    }

    #[test]
    fn empty_design_renders_empty_grid() {
        let mut nl = Netlist::new("wires");
        let mut m = ModuleBuilder::root(&mut nl);
        let a = m.input("a", 2);
        m.output("y", &a);
        drop(m);
        let p = pack(&nl);
        let placed = place(&nl, &p, Device::XC2S15, &PlaceOptions::default()).unwrap();
        let fp = render(&nl, &p, &placed);
        assert!(fp.contains("............"), "{fp}");
    }
}
