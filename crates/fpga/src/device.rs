//! The Spartan-II device and package catalogue.
//!
//! Geometry follows the Xilinx DS001 datasheet: a CLB grid of `rows × cols`,
//! two slices per CLB, two 4-input LUTs and two flip-flops per slice, and
//! two TBUFs per CLB plus two per longline row (which reproduces the
//! paper's "1280 TBUFs" capacity for the XC2S100).

/// A Spartan-II family member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Device {
    /// XC2S15: 8×12 CLBs.
    XC2S15,
    /// XC2S30: 12×18 CLBs.
    XC2S30,
    /// XC2S50: 16×24 CLBs.
    XC2S50,
    /// XC2S100: 20×30 CLBs — the paper's target.
    XC2S100,
    /// XC2S150: 24×36 CLBs.
    XC2S150,
    /// XC2S200: 28×42 CLBs.
    XC2S200,
}

/// Slices per CLB on Spartan-II.
pub const SLICES_PER_CLB: usize = 2;
/// LUTs per slice.
pub const LUTS_PER_SLICE: usize = 2;
/// Flip-flops per slice.
pub const FFS_PER_SLICE: usize = 2;

impl Device {
    /// All catalogued devices, smallest first.
    pub const ALL: [Device; 6] = [
        Device::XC2S15,
        Device::XC2S30,
        Device::XC2S50,
        Device::XC2S100,
        Device::XC2S150,
        Device::XC2S200,
    ];

    /// Part name as printed in reports.
    pub fn name(self) -> &'static str {
        match self {
            Device::XC2S15 => "xc2s15",
            Device::XC2S30 => "xc2s30",
            Device::XC2S50 => "xc2s50",
            Device::XC2S100 => "xc2s100",
            Device::XC2S150 => "xc2s150",
            Device::XC2S200 => "xc2s200",
        }
    }

    /// CLB grid dimensions `(rows, cols)`.
    pub fn clb_grid(self) -> (usize, usize) {
        match self {
            Device::XC2S15 => (8, 12),
            Device::XC2S30 => (12, 18),
            Device::XC2S50 => (16, 24),
            Device::XC2S100 => (20, 30),
            Device::XC2S150 => (24, 36),
            Device::XC2S200 => (28, 42),
        }
    }

    /// Total CLB count.
    pub fn clbs(self) -> usize {
        let (r, c) = self.clb_grid();
        r * c
    }

    /// Total slice count (what the map report's "out of" column shows).
    pub fn slices(self) -> usize {
        self.clbs() * SLICES_PER_CLB
    }

    /// Total LUT capacity.
    pub fn luts(self) -> usize {
        self.slices() * LUTS_PER_SLICE
    }

    /// Total flip-flop capacity.
    pub fn ffs(self) -> usize {
        self.slices() * FFS_PER_SLICE
    }

    /// Total TBUF capacity: two per CLB plus two per row of horizontal
    /// longlines ( `(cols + 2) × rows × 2` ), matching the paper's
    /// "206 out of 1280" on the XC2S100.
    pub fn tbufs(self) -> usize {
        let (r, c) = self.clb_grid();
        (c + 2) * r * 2
    }

    /// Looks a device up by its part name (case-insensitive).
    pub fn by_name(name: &str) -> Option<Device> {
        let lower = name.to_lowercase();
        Device::ALL.into_iter().find(|d| d.name() == lower)
    }

    /// Smallest catalogued device fitting `slices` slices.
    pub fn smallest_fitting(slices: usize) -> Option<Device> {
        Device::ALL.into_iter().find(|d| d.slices() >= slices)
    }
}

impl core::fmt::Display for Device {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A package option (determines bonded user I/O).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Package {
    /// VQ100: 60 user I/O.
    VQ100,
    /// TQ144: 92 user I/O — the paper's package.
    TQ144,
    /// PQ208: 140 user I/O.
    PQ208,
    /// FG256: 176 user I/O.
    FG256,
    /// FG456: 260 user I/O.
    FG456,
}

impl Package {
    /// Package name as printed in reports.
    pub fn name(self) -> &'static str {
        match self {
            Package::VQ100 => "tq100",
            Package::TQ144 => "tq144",
            Package::PQ208 => "pq208",
            Package::FG256 => "fg256",
            Package::FG456 => "fg456",
        }
    }

    /// Bonded user-I/O capacity.
    pub fn user_ios(self) -> usize {
        match self {
            Package::VQ100 => 60,
            Package::TQ144 => 92,
            Package::PQ208 => 140,
            Package::FG256 => 176,
            Package::FG456 => 260,
        }
    }
}

impl core::fmt::Display for Package {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A speed grade scaling the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum SpeedGrade {
    /// -5: slowest catalogued grade.
    Minus5,
    /// -6: the paper's grade.
    #[default]
    Minus6,
}

impl SpeedGrade {
    /// Report suffix.
    pub fn name(self) -> &'static str {
        match self {
            SpeedGrade::Minus5 => "-05",
            SpeedGrade::Minus6 => "-06",
        }
    }

    /// Delay multiplier relative to -6.
    pub fn derating(self) -> f64 {
        match self {
            SpeedGrade::Minus5 => 1.15,
            SpeedGrade::Minus6 => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xc2s100_matches_paper_capacities() {
        let d = Device::XC2S100;
        assert_eq!(d.slices(), 1200); // "337 out of 1200"
        assert_eq!(d.clbs(), 600);
        assert_eq!(d.tbufs(), 1280); // "206 out of 1280"
        assert_eq!(Package::TQ144.user_ios(), 92); // "57 out of 92"
    }

    #[test]
    fn catalogue_is_monotone() {
        let mut prev = 0;
        for d in Device::ALL {
            assert!(d.slices() > prev, "{d} not larger than predecessor");
            prev = d.slices();
            assert_eq!(d.luts(), d.ffs());
            assert_eq!(d.luts(), d.slices() * 2);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(Device::by_name("XC2S100"), Some(Device::XC2S100));
        assert_eq!(Device::by_name("xc2s200"), Some(Device::XC2S200));
        assert_eq!(Device::by_name("xc7a35t"), None);
    }

    #[test]
    fn smallest_fitting_device() {
        assert_eq!(Device::smallest_fitting(100), Some(Device::XC2S15));
        assert_eq!(Device::smallest_fitting(400), Some(Device::XC2S30));
        assert_eq!(Device::smallest_fitting(1200), Some(Device::XC2S100));
        assert_eq!(Device::smallest_fitting(5000), None);
    }

    #[test]
    fn speed_grades() {
        assert_eq!(SpeedGrade::default(), SpeedGrade::Minus6);
        assert!(SpeedGrade::Minus5.derating() > SpeedGrade::Minus6.derating());
        assert_eq!(SpeedGrade::Minus6.name(), "-06");
    }
}
