//! A Spartan-II-style implementation flow: pack → place → time → report.
//!
//! The paper's evaluation numbers (Table 1, the Appendix-A design summary,
//! the timing summary and the floor plan) are outputs of the Xilinx
//! Foundation toolchain. This crate reproduces that flow over the
//! [`rtl::netlist::Netlist`] primitives:
//!
//! * [`device`] — the Spartan-II family catalogue (CLB grids, slice and
//!   TBUF capacities, package I/O counts) with XC2S100-TQ144 as the
//!   paper's target.
//! * [`pack`] — LUT/FF pairing into logic cells, slices and CLBs.
//! * [`place`] — simulated-annealing placement on the CLB grid with
//!   perimeter IOBs.
//! * [`timing`] — a fanout+distance net-delay model and static timing
//!   analysis (minimum period, fmax, maximum net delay, critical path).
//! * [`report`] — Xilinx `map`-style design and timing summaries,
//!   including the equivalent-gate count.
//! * [`floorplan`] — an ASCII floor plan (the paper's Figure 10).
//! * [`flow`] — one-call orchestration of the above.
//!
//! Absolute nanoseconds come from a calibrated model, not silicon; the
//! *structure* of every report is derived honestly from the same netlist
//! the simulator executes. See `DESIGN.md` §2 for the substitution
//! rationale.
//!
//! # Examples
//!
//! ```
//! use fpga::device::{Device, Package};
//! use fpga::flow::{run_flow, FlowOptions};
//! use rtl::hdl::ModuleBuilder;
//! use rtl::netlist::Netlist;
//!
//! let mut nl = Netlist::new("demo");
//! let mut m = ModuleBuilder::root(&mut nl);
//! let a = m.input("a", 4);
//! let b = m.input("b", 4);
//! let r = m.reg("acc", 4);
//! let q = r.q();
//! let sum = m.add(&a, &b).sum;
//! let x = m.xor(&sum, &q);
//! m.connect_reg(r, &x);
//! m.output("y", &q);
//! drop(m);
//!
//! let result = run_flow(&nl, &FlowOptions::default()).unwrap();
//! assert!(result.summary.slices_used > 0);
//! assert!(result.timing.min_period_ns > 0.0);
//! # let _ = (Device::XC2S100, Package::TQ144);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod floorplan;
pub mod flow;
pub mod pack;
pub mod place;
pub mod report;
pub mod timing;

/// Errors produced by the implementation flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlowError {
    /// The netlist failed structural validation.
    Invalid(rtl::netlist::NetlistError),
    /// The design does not fit the selected device.
    DoesNotFit {
        /// Resource that overflowed ("slices", "tbufs", "iobs").
        resource: &'static str,
        /// Amount required by the design.
        required: usize,
        /// Amount available on the device/package.
        available: usize,
    },
}

impl core::fmt::Display for FlowError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FlowError::Invalid(e) => write!(f, "invalid netlist: {e}"),
            FlowError::DoesNotFit {
                resource,
                required,
                available,
            } => write!(
                f,
                "design needs {required} {resource}, device offers {available}"
            ),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<rtl::netlist::NetlistError> for FlowError {
    fn from(e: rtl::netlist::NetlistError) -> Self {
        FlowError::Invalid(e)
    }
}
