//! Property tests over the implementation flow: resource conservation,
//! placement legality and timing sanity on randomly generated designs.

use fpga::device::Device;
use fpga::flow::{run_flow, FlowOptions};
use fpga::pack::pack;
use fpga::place::PlaceOptions;
use proptest::prelude::*;
use rtl::hdl::ModuleBuilder;
use rtl::netlist::Netlist;

/// Builds a random-but-legal registered datapath of `stages` stages over
/// `width`-bit values.
fn random_design(width: usize, stages: usize, taps: &[u8]) -> Netlist {
    let mut nl = Netlist::new("rand");
    let mut m = ModuleBuilder::root(&mut nl);
    let a = m.input("a", width);
    let r = m.reg("acc", width);
    let q = r.q();
    let mut v = m.xor(&a, &q);
    for (i, &t) in taps.iter().take(stages).enumerate() {
        let mut s = m.scope(&format!("stage{i}"));
        v = match t % 4 {
            0 => s.add(&v, &q).sum,
            1 => s.sub(&v, &a).diff,
            2 => {
                let sel = v.bit(0);
                s.mux2(&sel, &a, &q)
            }
            _ => {
                let amt = v.slice(0..2);
                s.barrel_rotl(&v, &amt)
            }
        };
    }
    m.connect_reg(r, &v);
    m.output("y", &q);
    drop(m);
    nl
}

fn opts() -> FlowOptions {
    FlowOptions {
        place: PlaceOptions {
            seed: 11,
            moves_per_slice: 4,
        },
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn flow_invariants_on_random_designs(
        width in 2usize..12,
        taps in proptest::collection::vec(any::<u8>(), 1..6),
    ) {
        let nl = random_design(width, taps.len(), &taps);
        nl.validate().unwrap();
        let stats = nl.stats();
        let flow = run_flow(&nl, &opts()).unwrap();

        // Conservation: every LUT/FF packed exactly once.
        let (luts, ffs) = flow.packing.resource_counts();
        prop_assert_eq!(luts, stats.luts());
        prop_assert_eq!(ffs, stats.dffs);

        // Placement legality: one slice per site, sites on the grid.
        let (rows, cols) = flow.placement.device.clb_grid();
        let mut seen = std::collections::HashSet::new();
        for &site in &flow.placement.slice_sites {
            prop_assert!(seen.insert(site));
            prop_assert!(site.0 < rows && site.1 < cols && site.2 < 2);
        }

        // Timing sanity: period covers clk->q + setup and at least one
        // logic level; fmax consistent.
        prop_assert!(flow.timing.min_period_ns > 2.0);
        prop_assert!(flow.timing.max_net_delay_ns > 0.0);
        prop_assert!(
            (flow.timing.fmax_mhz - 1000.0 / flow.timing.min_period_ns).abs() < 1e-6
        );

        // Report consistency.
        prop_assert_eq!(flow.summary.slices_used, flow.packing.slice_count());
        prop_assert!(flow.summary.gates > 0);
    }

    #[test]
    fn more_placement_effort_never_hurts_much(
        width in 4usize..10,
        taps in proptest::collection::vec(any::<u8>(), 2..5),
    ) {
        let nl = random_design(width, taps.len(), &taps);
        let p = pack(&nl);
        let lazy = fpga::place::place(
            &nl, &p, Device::XC2S100,
            &PlaceOptions { seed: 3, moves_per_slice: 0 },
        ).unwrap();
        let tried = fpga::place::place(
            &nl, &p, Device::XC2S100,
            &PlaceOptions { seed: 3, moves_per_slice: 32 },
        ).unwrap();
        // Annealing keeps the best seen configuration, so it can only be
        // equal or better than the initial placement.
        prop_assert!(tried.cost <= lazy.cost + 1e-9);
    }
}
