//! Per-vector primitives: location scrambling, embedding, extraction.
//!
//! These functions are the pseudocode of the paper's §II, one block at a
//! time. The worked example of Figure 8 — key pair `(0,3)`, hiding vector
//! `0xCA06`, message nibble `0` → scrambled span `(2,5)` and ciphertext
//! `0xCA02` — is pinned as a unit test.
//!
//! Two formulations coexist:
//!
//! * the **per-bit** reference ([`embed`]/[`extract`]), a literal
//!   transcription of the pseudocode used by tests and cross-checks;
//! * the **word-level** fast path ([`SpanTable`]/[`SpanEntry`]): the span
//!   location and XOR pattern depend only on the key pair and the vector's
//!   high byte, so both are precomputed into a 256-entry table per pair
//!   and each block becomes a handful of shift/mask operations on `u16`s.

use crate::key::MAX_PAIRS;
use crate::{Algorithm, Key, KeyPair};
use bitkit::word;

/// Outcome of embedding one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockOutcome {
    /// The output cipher vector (the hiding vector with the span replaced).
    pub cipher: u16,
    /// Number of message bits consumed (may be less than the span width at
    /// end of message).
    pub consumed: usize,
    /// The replacement span `(low, high)` used, inclusive.
    pub span: (u8, u8),
}

/// Computes the MHHEA scrambled span for a key pair and hiding vector.
///
/// Per the pseudocode: sort the pair to `(k₁, k₂)`; take the high-byte
/// slice `V[k₂+8 .. k₁+8]`; `kn₁ = (slice XOR k₁) & 7` (the hardware
/// truncates to the 3-bit register); `kn₂ = (kn₁ + (k₂−k₁)) mod 8`; sort
/// again (the mod-8 wrap can invert the pair, which also changes the span
/// width — both ends compute identically from transmitted bits).
///
/// ```
/// use mhhea::KeyPair;
/// use mhhea::block::scramble_locations;
///
/// // Figure 8: K=(0,3), V=0xCA06 -> KN=(2,5).
/// let pair = KeyPair::new(0, 3).unwrap();
/// assert_eq!(scramble_locations(pair, 0xCA06), (2, 5));
/// ```
pub fn scramble_locations(pair: KeyPair, v: u16) -> (u8, u8) {
    let (k1, k2) = pair.sorted();
    let slice = word::field16(v, k1 as u32 + 8, k2 as u32 + 8) as u8;
    let kn1 = (slice ^ k1) & 0x7;
    let kn2 = (kn1 + (k2 - k1)) % 8;
    (kn1.min(kn2), kn1.max(kn2))
}

/// The replacement span for `algorithm`: HHEA uses the sorted key pair
/// directly; MHHEA scrambles it with the vector's high byte.
pub fn locations(algorithm: Algorithm, pair: KeyPair, v: u16) -> (u8, u8) {
    match algorithm {
        Algorithm::Hhea => pair.sorted(),
        Algorithm::Mhhea => scramble_locations(pair, v),
    }
}

/// The data-scrambling bit: bit `offset mod 3` of the smaller key half
/// (the pseudocode's `Ki,1[q]`, `q := q mod 3`). HHEA never scrambles.
pub fn pattern_bit(algorithm: Algorithm, pair: KeyPair, offset: usize) -> bool {
    match algorithm {
        Algorithm::Hhea => false,
        Algorithm::Mhhea => {
            let (k1, _) = pair.sorted();
            (k1 >> (offset % 3)) & 1 == 1
        }
    }
}

/// Embeds message bits from `bits` into hiding vector `v`.
///
/// Consumes up to `span` bits; at end of message the remaining span
/// positions keep their random vector bits (the pseudocode's EOF check).
///
/// ```
/// use mhhea::{Algorithm, KeyPair};
/// use mhhea::block::embed;
///
/// // Figure 8: four zero message bits into V=0xCA06 at span (2,5).
/// let pair = KeyPair::new(0, 3).unwrap();
/// let mut bits = [false, false, false, false].into_iter();
/// let out = embed(Algorithm::Mhhea, pair, 0xCA06, &mut bits);
/// assert_eq!(out.cipher, 0xCA02);
/// assert_eq!(out.consumed, 4);
/// assert_eq!(out.span, (2, 5));
/// ```
pub fn embed(
    algorithm: Algorithm,
    pair: KeyPair,
    v: u16,
    bits: &mut impl Iterator<Item = bool>,
) -> BlockOutcome {
    let (lo, hi) = locations(algorithm, pair, v);
    let mut cipher = v;
    let mut consumed = 0usize;
    for j in lo..=hi {
        let Some(m) = bits.next() else { break };
        let b = m ^ pattern_bit(algorithm, pair, (j - lo) as usize);
        cipher = word::replace16(cipher, j as u32, j as u32, b as u16);
        consumed += 1;
    }
    BlockOutcome {
        cipher,
        consumed,
        span: (lo, hi),
    }
}

/// Extracts up to `max_bits` message bits from a received cipher vector.
///
/// The span is recomputed from the cipher itself: replacement only touches
/// the low byte, so the high byte — which drives the scrambling — arrives
/// intact.
pub fn extract(algorithm: Algorithm, pair: KeyPair, cipher: u16, max_bits: usize) -> Vec<bool> {
    let (lo, hi) = locations(algorithm, pair, cipher);
    (lo..=hi)
        .take(max_bits)
        .map(|j| word::bit16(cipher, j as u32) ^ pattern_bit(algorithm, pair, (j - lo) as usize))
        .collect()
}

/// One precomputed span: everything the word-level path needs to process a
/// block whose hiding vector carries a given high byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEntry {
    /// Low end of the replacement span (bit position in the low byte).
    pub lo: u8,
    /// Span width in bits (1..=8).
    pub width: u8,
    /// The XOR scrambling pattern, pre-shifted to positions
    /// `lo..lo+width` (zero for HHEA).
    pub pattern: u16,
    /// Mask with bits `lo..lo+width` set.
    pub mask: u16,
}

impl SpanEntry {
    fn new(algorithm: Algorithm, pair: KeyPair, high_byte: u8) -> Self {
        let (lo, hi) = locations(algorithm, pair, (high_byte as u16) << 8);
        let width = hi - lo + 1;
        let mut pattern = 0u16;
        for j in 0..width {
            pattern |= (pattern_bit(algorithm, pair, j as usize) as u16) << (lo + j);
        }
        SpanEntry {
            lo,
            width,
            pattern,
            mask: word::mask16(lo as u32, hi as u32),
        }
    }

    /// Embeds `consumed ≤ width` message bits (LSB-aligned in `bits`) into
    /// hiding vector `v`; span positions beyond `consumed` keep their
    /// vector bits (the pseudocode's EOF rule).
    #[inline]
    pub fn embed(self, v: u16, bits: u16, consumed: usize) -> u16 {
        let mask = word::low_mask16(consumed) << self.lo;
        (v & !mask) | (((bits << self.lo) ^ self.pattern) & mask)
    }

    /// Embeds the full span from an already-aligned register (the
    /// hardware profile's blind full-span replacement): span bit `j` of
    /// the output is `aligned[j] ^ pattern[j]`.
    #[inline]
    pub fn embed_aligned(self, v: u16, aligned: u16) -> u16 {
        (v & !self.mask) | ((aligned ^ self.pattern) & self.mask)
    }

    /// Extracts the first `take ≤ width` message bits from a cipher block,
    /// LSB-aligned.
    #[inline]
    pub fn extract(self, cipher: u16, take: usize) -> u16 {
        ((cipher ^ self.pattern) >> self.lo) & word::low_mask16(take)
    }
}

/// Per-pair span tables for a whole key schedule.
///
/// `table.entry(i, hb)` is the span for block index `i` (cycling through
/// the schedule) and hiding-vector high byte `hb`. Building a table costs
/// `256 × schedule length` [`scramble_locations`] evaluations once per
/// session; after that the engines never recompute a span.
#[derive(Debug, Clone)]
pub struct SpanTable {
    /// One 256-entry table per schedule position.
    per_pair: Vec<[SpanEntry; 256]>,
}

impl SpanTable {
    /// Builds the table for `key`'s pair cycle under `algorithm`.
    pub fn new(key: &Key, algorithm: Algorithm) -> Self {
        let per_pair = key
            .pairs()
            .iter()
            .map(|&pair| core::array::from_fn(|hb| SpanEntry::new(algorithm, pair, hb as u8)))
            .collect();
        SpanTable { per_pair }
    }

    /// The table for the hardware key schedule ([`Key::expand_cyclic`] to
    /// the 16-deep key cache).
    pub fn new_hw(key: &Key, algorithm: Algorithm) -> Self {
        SpanTable::new(&key.expand_cyclic(MAX_PAIRS), algorithm)
    }

    /// Number of schedule positions.
    pub fn schedule_len(&self) -> usize {
        self.per_pair.len()
    }

    /// The span for block index `block_index` and vector high byte
    /// `high_byte`.
    #[inline]
    pub fn entry(&self, block_index: usize, high_byte: u8) -> SpanEntry {
        self.per_pair[block_index % self.per_pair.len()][high_byte as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KeyPair;

    fn pair(l: u8, r: u8) -> KeyPair {
        KeyPair::new(l, r).unwrap()
    }

    #[test]
    fn figure8_worked_example() {
        // K=(0,3), V=0xCA06: slice = V[11:8] = 1010b; kn1 = (1010 ^ 000)&7
        // = 2; kn2 = 2 + 3 = 5.
        assert_eq!(scramble_locations(pair(0, 3), 0xCA06), (2, 5));
        // Message nibble 0 replaces bits 2..=5: 0xCA06 -> 0xCA02.
        let mut bits = std::iter::repeat_n(false, 4);
        let out = embed(Algorithm::Mhhea, pair(0, 3), 0xCA06, &mut bits);
        assert_eq!(out.cipher, 0xCA02);
    }

    #[test]
    fn scramble_is_insensitive_to_pair_order() {
        for v in [0x0000u16, 0xCA06, 0xFFFF, 0x8001] {
            assert_eq!(
                scramble_locations(pair(0, 3), v),
                scramble_locations(pair(3, 0), v)
            );
        }
    }

    #[test]
    fn scramble_span_stays_in_low_byte() {
        for l in 0..=7u8 {
            for r in 0..=7u8 {
                for v in [0x0000u16, 0xFFFF, 0xA5C3, 0x0F0F] {
                    let (lo, hi) = scramble_locations(pair(l, r), v);
                    assert!(lo <= hi && hi <= 7, "({l},{r}) v={v:04x} -> ({lo},{hi})");
                }
            }
        }
    }

    #[test]
    fn mod8_wrap_changes_span_width() {
        // Find a case where kn1 + diff wraps: k=(0,7) diff=7, so kn2 =
        // (kn1+7)%8 = kn1-1 for kn1>0 — span inverts to width kn1..kn1-1
        // sorted = (kn1-1, kn1)? No: sorted(kn1, kn1-1) = width 2... For
        // kn1=0: kn2=7, width 8.
        let p = pair(0, 7);
        // v high byte 0x00 -> slice = 0, kn1 = 0, kn2 = 7: full span.
        assert_eq!(scramble_locations(p, 0x0000), (0, 7));
        // v high byte chosen so slice^k1 = 1 -> kn1 = 1, kn2 = (1+7)%8 = 0.
        let v = 0x0100; // bits 15..8 = 0b0000_0001 -> slice = 1
        assert_eq!(scramble_locations(p, v), (0, 1));
    }

    #[test]
    fn hhea_locations_ignore_vector() {
        assert_eq!(locations(Algorithm::Hhea, pair(5, 2), 0xFFFF), (2, 5));
        assert_eq!(locations(Algorithm::Hhea, pair(5, 2), 0x0000), (2, 5));
    }

    #[test]
    fn pattern_cycles_mod_3() {
        // k1 = 5 = 0b101: pattern bits 1,0,1,1,0,1...
        let p = pair(5, 6);
        let bits: Vec<bool> = (0..6)
            .map(|q| pattern_bit(Algorithm::Mhhea, p, q))
            .collect();
        assert_eq!(bits, [true, false, true, true, false, true]);
        assert!(!pattern_bit(Algorithm::Hhea, p, 0));
    }

    #[test]
    fn embed_extract_roundtrip_all_pairs() {
        for l in 0..=7u8 {
            for r in 0..=7u8 {
                for alg in [Algorithm::Hhea, Algorithm::Mhhea] {
                    let p = pair(l, r);
                    let v = 0x5AC3u16;
                    let message = [true, false, true, true, false, true, false, false];
                    let mut it = message.into_iter();
                    let out = embed(alg, p, v, &mut it);
                    let got = extract(alg, p, out.cipher, out.consumed);
                    assert_eq!(
                        got,
                        message[..out.consumed].to_vec(),
                        "alg={alg} pair=({l},{r})"
                    );
                }
            }
        }
    }

    #[test]
    fn embed_preserves_high_byte() {
        for v in [0xCA06u16, 0xFF00, 0x00FF, 0x1234] {
            let mut bits = std::iter::repeat_n(true, 8);
            let out = embed(Algorithm::Mhhea, pair(0, 7), v, &mut bits);
            assert_eq!(out.cipher & 0xFF00, v & 0xFF00);
        }
    }

    #[test]
    fn embed_at_eof_keeps_vector_bits() {
        let p = pair(2, 5); // HHEA span (2,5), width 4
        let v = 0xFFFFu16;
        let mut two_bits = [false, false].into_iter();
        let out = embed(Algorithm::Hhea, p, v, &mut two_bits);
        assert_eq!(out.consumed, 2);
        // Bits 2,3 cleared; bits 4,5 keep the vector's ones.
        assert_eq!(out.cipher, 0xFFF3);
    }

    #[test]
    fn extract_respects_max_bits() {
        let p = pair(0, 7);
        let got = extract(Algorithm::Hhea, p, 0x00FF, 3);
        assert_eq!(got, vec![true, true, true]);
        assert_eq!(extract(Algorithm::Hhea, p, 0x00FF, 0), Vec::<bool>::new());
    }

    #[test]
    fn span_entries_match_per_bit_primitives() {
        let key = crate::Key::from_nibbles(&[(0, 3), (7, 2), (4, 4), (0, 7)]).unwrap();
        for alg in [Algorithm::Hhea, Algorithm::Mhhea] {
            let table = SpanTable::new(&key, alg);
            assert_eq!(table.schedule_len(), key.len());
            for i in 0..key.len() {
                for hb in [0x00u8, 0x5A, 0xCA, 0xFF] {
                    let v = ((hb as u16) << 8) | 0x36;
                    let e = table.entry(i, hb);
                    let (lo, hi) = locations(alg, key.pair(i), v);
                    assert_eq!((e.lo, e.lo + e.width - 1), (lo, hi));
                    // Full-width embed agrees with the per-bit reference.
                    let message = [true, false, true, true, false, false, true, true];
                    let mut it = message.into_iter();
                    let per_bit = embed(alg, key.pair(i), v, &mut it);
                    let mut word_bits = 0u16;
                    for (j, &m) in message.iter().take(per_bit.consumed).enumerate() {
                        word_bits |= (m as u16) << j;
                    }
                    let word_cipher = e.embed(v, word_bits, per_bit.consumed);
                    assert_eq!(word_cipher, per_bit.cipher, "alg={alg} i={i} hb={hb:02x}");
                    // And extraction inverts it.
                    let got = e.extract(word_cipher, per_bit.consumed);
                    assert_eq!(got, word_bits);
                }
            }
        }
    }

    #[test]
    fn hw_table_uses_expanded_schedule() {
        // A 3-pair key does not divide the 16-deep cache: position 3 of the
        // expanded schedule wraps to pair 0, and the table must follow the
        // expanded (hardware) indexing, not `i mod 3` beyond the cache.
        let key = crate::Key::from_nibbles(&[(0, 3), (2, 5), (7, 1)]).unwrap();
        let hw = SpanTable::new_hw(&key, Algorithm::Mhhea);
        assert_eq!(hw.schedule_len(), crate::key::MAX_PAIRS);
        let expanded = key.expand_cyclic(crate::key::MAX_PAIRS);
        for i in 0..32 {
            let e = hw.entry(i, 0xCA);
            let (lo, hi) = locations(Algorithm::Mhhea, expanded.pair(i), 0xCA00);
            assert_eq!((e.lo, e.lo + e.width - 1), (lo, hi), "i={i}");
        }
    }

    #[test]
    fn single_position_span() {
        let p = pair(4, 4);
        let (lo, hi) = locations(Algorithm::Hhea, p, 0);
        assert_eq!((lo, hi), (4, 4));
        let mut one = std::iter::once(true);
        let out = embed(Algorithm::Hhea, p, 0x0000, &mut one);
        assert_eq!(out.cipher, 0x0010);
        assert_eq!(out.consumed, 1);
    }
}
