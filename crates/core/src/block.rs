//! Per-vector primitives: location scrambling, embedding, extraction.
//!
//! These functions are the pseudocode of the paper's §II, one block at a
//! time. The worked example of Figure 8 — key pair `(0,3)`, hiding vector
//! `0xCA06`, message nibble `0` → scrambled span `(2,5)` and ciphertext
//! `0xCA02` — is pinned as a unit test.

use crate::{Algorithm, KeyPair};
use bitkit::word;

/// Outcome of embedding one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockOutcome {
    /// The output cipher vector (the hiding vector with the span replaced).
    pub cipher: u16,
    /// Number of message bits consumed (may be less than the span width at
    /// end of message).
    pub consumed: usize,
    /// The replacement span `(low, high)` used, inclusive.
    pub span: (u8, u8),
}

/// Computes the MHHEA scrambled span for a key pair and hiding vector.
///
/// Per the pseudocode: sort the pair to `(k₁, k₂)`; take the high-byte
/// slice `V[k₂+8 .. k₁+8]`; `kn₁ = (slice XOR k₁) & 7` (the hardware
/// truncates to the 3-bit register); `kn₂ = (kn₁ + (k₂−k₁)) mod 8`; sort
/// again (the mod-8 wrap can invert the pair, which also changes the span
/// width — both ends compute identically from transmitted bits).
///
/// ```
/// use mhhea::KeyPair;
/// use mhhea::block::scramble_locations;
///
/// // Figure 8: K=(0,3), V=0xCA06 -> KN=(2,5).
/// let pair = KeyPair::new(0, 3).unwrap();
/// assert_eq!(scramble_locations(pair, 0xCA06), (2, 5));
/// ```
pub fn scramble_locations(pair: KeyPair, v: u16) -> (u8, u8) {
    let (k1, k2) = pair.sorted();
    let slice = word::field16(v, k1 as u32 + 8, k2 as u32 + 8) as u8;
    let kn1 = (slice ^ k1) & 0x7;
    let kn2 = (kn1 + (k2 - k1)) % 8;
    (kn1.min(kn2), kn1.max(kn2))
}

/// The replacement span for `algorithm`: HHEA uses the sorted key pair
/// directly; MHHEA scrambles it with the vector's high byte.
pub fn locations(algorithm: Algorithm, pair: KeyPair, v: u16) -> (u8, u8) {
    match algorithm {
        Algorithm::Hhea => pair.sorted(),
        Algorithm::Mhhea => scramble_locations(pair, v),
    }
}

/// The data-scrambling bit: bit `offset mod 3` of the smaller key half
/// (the pseudocode's `Ki,1[q]`, `q := q mod 3`). HHEA never scrambles.
pub fn pattern_bit(algorithm: Algorithm, pair: KeyPair, offset: usize) -> bool {
    match algorithm {
        Algorithm::Hhea => false,
        Algorithm::Mhhea => {
            let (k1, _) = pair.sorted();
            (k1 >> (offset % 3)) & 1 == 1
        }
    }
}

/// Embeds message bits from `bits` into hiding vector `v`.
///
/// Consumes up to `span` bits; at end of message the remaining span
/// positions keep their random vector bits (the pseudocode's EOF check).
///
/// ```
/// use mhhea::{Algorithm, KeyPair};
/// use mhhea::block::embed;
///
/// // Figure 8: four zero message bits into V=0xCA06 at span (2,5).
/// let pair = KeyPair::new(0, 3).unwrap();
/// let mut bits = [false, false, false, false].into_iter();
/// let out = embed(Algorithm::Mhhea, pair, 0xCA06, &mut bits);
/// assert_eq!(out.cipher, 0xCA02);
/// assert_eq!(out.consumed, 4);
/// assert_eq!(out.span, (2, 5));
/// ```
pub fn embed(
    algorithm: Algorithm,
    pair: KeyPair,
    v: u16,
    bits: &mut impl Iterator<Item = bool>,
) -> BlockOutcome {
    let (lo, hi) = locations(algorithm, pair, v);
    let mut cipher = v;
    let mut consumed = 0usize;
    for j in lo..=hi {
        let Some(m) = bits.next() else { break };
        let b = m ^ pattern_bit(algorithm, pair, (j - lo) as usize);
        cipher = word::replace16(cipher, j as u32, j as u32, b as u16);
        consumed += 1;
    }
    BlockOutcome {
        cipher,
        consumed,
        span: (lo, hi),
    }
}

/// Extracts up to `max_bits` message bits from a received cipher vector.
///
/// The span is recomputed from the cipher itself: replacement only touches
/// the low byte, so the high byte — which drives the scrambling — arrives
/// intact.
pub fn extract(algorithm: Algorithm, pair: KeyPair, cipher: u16, max_bits: usize) -> Vec<bool> {
    let (lo, hi) = locations(algorithm, pair, cipher);
    (lo..=hi)
        .take(max_bits)
        .map(|j| word::bit16(cipher, j as u32) ^ pattern_bit(algorithm, pair, (j - lo) as usize))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KeyPair;

    fn pair(l: u8, r: u8) -> KeyPair {
        KeyPair::new(l, r).unwrap()
    }

    #[test]
    fn figure8_worked_example() {
        // K=(0,3), V=0xCA06: slice = V[11:8] = 1010b; kn1 = (1010 ^ 000)&7
        // = 2; kn2 = 2 + 3 = 5.
        assert_eq!(scramble_locations(pair(0, 3), 0xCA06), (2, 5));
        // Message nibble 0 replaces bits 2..=5: 0xCA06 -> 0xCA02.
        let mut bits = std::iter::repeat_n(false, 4);
        let out = embed(Algorithm::Mhhea, pair(0, 3), 0xCA06, &mut bits);
        assert_eq!(out.cipher, 0xCA02);
    }

    #[test]
    fn scramble_is_insensitive_to_pair_order() {
        for v in [0x0000u16, 0xCA06, 0xFFFF, 0x8001] {
            assert_eq!(
                scramble_locations(pair(0, 3), v),
                scramble_locations(pair(3, 0), v)
            );
        }
    }

    #[test]
    fn scramble_span_stays_in_low_byte() {
        for l in 0..=7u8 {
            for r in 0..=7u8 {
                for v in [0x0000u16, 0xFFFF, 0xA5C3, 0x0F0F] {
                    let (lo, hi) = scramble_locations(pair(l, r), v);
                    assert!(lo <= hi && hi <= 7, "({l},{r}) v={v:04x} -> ({lo},{hi})");
                }
            }
        }
    }

    #[test]
    fn mod8_wrap_changes_span_width() {
        // Find a case where kn1 + diff wraps: k=(0,7) diff=7, so kn2 =
        // (kn1+7)%8 = kn1-1 for kn1>0 — span inverts to width kn1..kn1-1
        // sorted = (kn1-1, kn1)? No: sorted(kn1, kn1-1) = width 2... For
        // kn1=0: kn2=7, width 8.
        let p = pair(0, 7);
        // v high byte 0x00 -> slice = 0, kn1 = 0, kn2 = 7: full span.
        assert_eq!(scramble_locations(p, 0x0000), (0, 7));
        // v high byte chosen so slice^k1 = 1 -> kn1 = 1, kn2 = (1+7)%8 = 0.
        let v = 0x0100; // bits 15..8 = 0b0000_0001 -> slice = 1
        assert_eq!(scramble_locations(p, v), (0, 1));
    }

    #[test]
    fn hhea_locations_ignore_vector() {
        assert_eq!(locations(Algorithm::Hhea, pair(5, 2), 0xFFFF), (2, 5));
        assert_eq!(locations(Algorithm::Hhea, pair(5, 2), 0x0000), (2, 5));
    }

    #[test]
    fn pattern_cycles_mod_3() {
        // k1 = 5 = 0b101: pattern bits 1,0,1,1,0,1...
        let p = pair(5, 6);
        let bits: Vec<bool> = (0..6)
            .map(|q| pattern_bit(Algorithm::Mhhea, p, q))
            .collect();
        assert_eq!(bits, [true, false, true, true, false, true]);
        assert!(!pattern_bit(Algorithm::Hhea, p, 0));
    }

    #[test]
    fn embed_extract_roundtrip_all_pairs() {
        for l in 0..=7u8 {
            for r in 0..=7u8 {
                for alg in [Algorithm::Hhea, Algorithm::Mhhea] {
                    let p = pair(l, r);
                    let v = 0x5AC3u16;
                    let message = [true, false, true, true, false, true, false, false];
                    let mut it = message.into_iter();
                    let out = embed(alg, p, v, &mut it);
                    let got = extract(alg, p, out.cipher, out.consumed);
                    assert_eq!(
                        got,
                        message[..out.consumed].to_vec(),
                        "alg={alg} pair=({l},{r})"
                    );
                }
            }
        }
    }

    #[test]
    fn embed_preserves_high_byte() {
        for v in [0xCA06u16, 0xFF00, 0x00FF, 0x1234] {
            let mut bits = std::iter::repeat_n(true, 8);
            let out = embed(Algorithm::Mhhea, pair(0, 7), v, &mut bits);
            assert_eq!(out.cipher & 0xFF00, v & 0xFF00);
        }
    }

    #[test]
    fn embed_at_eof_keeps_vector_bits() {
        let p = pair(2, 5); // HHEA span (2,5), width 4
        let v = 0xFFFFu16;
        let mut two_bits = [false, false].into_iter();
        let out = embed(Algorithm::Hhea, p, v, &mut two_bits);
        assert_eq!(out.consumed, 2);
        // Bits 2,3 cleared; bits 4,5 keep the vector's ones.
        assert_eq!(out.cipher, 0xFFF3);
    }

    #[test]
    fn extract_respects_max_bits() {
        let p = pair(0, 7);
        let got = extract(Algorithm::Hhea, p, 0x00FF, 3);
        assert_eq!(got, vec![true, true, true]);
        assert_eq!(extract(Algorithm::Hhea, p, 0x00FF, 0), Vec::<bool>::new());
    }

    #[test]
    fn single_position_span() {
        let p = pair(4, 4);
        let (lo, hi) = locations(Algorithm::Hhea, p, 0);
        assert_eq!((lo, hi), (4, 4));
        let mut one = std::iter::once(true);
        let out = embed(Algorithm::Hhea, p, 0x0000, &mut one);
        assert_eq!(out.cipher, 0x0010);
        assert_eq!(out.consumed, 1);
    }
}
