//! Chunk-parallel plumbing for batched, multi-threaded traffic.
//!
//! Large payloads are split into fixed-size chunks, each encrypted by an
//! independent [`crate::session::EncryptSession`] whose LFSR seed is
//! derived from a master seed and the chunk number. Chunks share no state,
//! so they seal and open in parallel across OS threads — the same
//! batching-for-bandwidth move FPGA cipher pipelines make, mapped onto
//! `std::thread::scope`. The container v2 format
//! ([`crate::container::seal_v2`]) is the on-wire form of this plan.

use std::num::NonZeroUsize;

/// Default chunk size for [`crate::container::SealV2Options`]: 64 KiB.
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// Derives the per-chunk LFSR seed from a master seed and chunk index.
///
/// A SplitMix-style avalanche over `master ∥ index`, folded to 16 bits and
/// forced nonzero (an all-zero LFSR state never leaves zero). Both ends
/// compute it locally; only the master seed travels in the container
/// header.
///
/// ```
/// use mhhea::pipeline::chunk_seed;
///
/// assert_ne!(chunk_seed(0xACE1, 0), chunk_seed(0xACE1, 1));
/// assert_ne!(chunk_seed(0xACE1, 0), 0);
/// ```
pub fn chunk_seed(master: u16, index: u32) -> u16 {
    let mut z = ((master as u64) << 32) ^ (index as u64) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let folded = (z as u16) ^ ((z >> 16) as u16) ^ ((z >> 32) as u16) ^ ((z >> 48) as u16);
    if folded == 0 {
        0xACE1
    } else {
        folded
    }
}

/// Splits `total` bytes into chunk byte-ranges of `chunk_bytes` each (the
/// final chunk may be short). An empty payload yields no chunks.
///
/// ```
/// use mhhea::pipeline::chunk_ranges;
///
/// assert_eq!(chunk_ranges(10, 4), vec![0..4, 4..8, 8..10]);
/// assert!(chunk_ranges(0, 4).is_empty());
/// ```
///
/// # Panics
///
/// Panics if `chunk_bytes` is zero.
pub fn chunk_ranges(total: usize, chunk_bytes: usize) -> Vec<std::ops::Range<usize>> {
    assert!(chunk_bytes > 0, "chunk size must be nonzero");
    (0..total.div_ceil(chunk_bytes))
        .map(|i| {
            let start = i * chunk_bytes;
            start..(start + chunk_bytes).min(total)
        })
        .collect()
}

/// Resolves a requested worker count: `0` means "ask the OS"
/// ([`std::thread::available_parallelism`]), anything else is taken
/// literally, and the count never exceeds the number of jobs.
pub fn resolve_workers(requested: usize, jobs: usize) -> usize {
    let hw = || {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    };
    let want = if requested == 0 { hw() } else { requested };
    want.clamp(1, jobs.max(1))
}

/// Maps `f` over `items` on `workers` scoped threads, preserving order.
///
/// Items are dealt to workers in contiguous shards; each worker returns
/// its shard's results and the shards are re-concatenated, so the output
/// index matches the input index. `f` receives `(index, item)`.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn parallel_map<T, U, F>(items: Vec<T>, workers: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let jobs = items.len();
    let workers = resolve_workers(workers, jobs);
    if workers <= 1 || jobs <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let shard_len = jobs.div_ceil(workers);
    // Hand each worker a contiguous (start index, shard) pair.
    let mut shards: Vec<(usize, Vec<T>)> = Vec::with_capacity(workers);
    let mut items = items.into_iter();
    let mut start = 0;
    loop {
        let shard: Vec<T> = items.by_ref().take(shard_len).collect();
        if shard.is_empty() {
            break;
        }
        let len = shard.len();
        shards.push((start, shard));
        start += len;
    }
    let f = &f;
    let mut out: Vec<Vec<U>> = Vec::with_capacity(shards.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|(base, shard)| {
                scope.spawn(move || {
                    shard
                        .into_iter()
                        .enumerate()
                        .map(|(i, t)| f(base + i, t))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("pipeline worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_seeds_are_nonzero_and_spread() {
        let mut seen = std::collections::HashSet::new();
        for master in [1u16, 0xACE1, 0xFFFF] {
            for i in 0..64u32 {
                let s = chunk_seed(master, i);
                assert_ne!(s, 0);
                seen.insert((master, s));
            }
        }
        // The fold should not collapse many (master, index) pairs.
        assert!(seen.len() > 180, "only {} distinct seeds", seen.len());
    }

    #[test]
    fn chunk_seed_is_deterministic() {
        assert_eq!(chunk_seed(0x1234, 7), chunk_seed(0x1234, 7));
    }

    #[test]
    fn ranges_cover_exactly() {
        for (total, size) in [(0usize, 3usize), (1, 3), (3, 3), (10, 3), (12, 4)] {
            let ranges = chunk_ranges(total, size);
            let mut cursor = 0;
            for r in &ranges {
                assert_eq!(r.start, cursor);
                assert!(r.end - r.start <= size);
                cursor = r.end;
            }
            assert_eq!(cursor, total);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_chunk_size_panics() {
        chunk_ranges(8, 0);
    }

    #[test]
    fn workers_resolve_sanely() {
        assert_eq!(resolve_workers(4, 100), 4);
        assert_eq!(resolve_workers(8, 3), 3);
        assert_eq!(resolve_workers(3, 0), 1);
        assert!(resolve_workers(0, 64) >= 1);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u32> = (0..97).collect();
        for workers in [1usize, 2, 4, 7] {
            let got = parallel_map(items.clone(), workers, |i, x| {
                assert_eq!(i as u32, x);
                x * 3
            });
            let want: Vec<u32> = items.iter().map(|x| x * 3).collect();
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn parallel_map_empty_and_single() {
        assert_eq!(
            parallel_map(Vec::<u8>::new(), 4, |_, x| x),
            Vec::<u8>::new()
        );
        assert_eq!(parallel_map(vec![9u8], 4, |_, x| x + 1), vec![10]);
    }
}
