//! Chunk planning and the persistent worker pool behind all parallel paths.
//!
//! Large payloads are split into fixed-size chunks, each encrypted by an
//! independent [`crate::session::EncryptSession`] whose LFSR seed is
//! derived from a master seed and the chunk number. Chunks share no state,
//! so they seal and open in parallel — the same batching-for-bandwidth
//! move FPGA cipher pipelines make. The container v2 format
//! ([`crate::container::seal_v2`]) is the on-wire form of this plan, and
//! the multi-stream gateway ([`crate::gateway`]) runs its batches over the
//! same substrate.
//!
//! Threads are **not** spawned per call. A [`WorkerPool`] spawns its
//! workers once, accepts jobs over a channel, and shuts down gracefully on
//! drop; [`WorkerPool::global`] is the process-wide instance the container
//! layer and the gateway share. [`parallel_map`] is the order-preserving
//! fan-out primitive built on top of it.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Default chunk size for [`crate::container::SealV2Options`]: 16 KiB.
///
/// Sized so that a 1 MiB payload fans out into 64 chunks — one full
/// lane-engine batch ([`crate::lanes::MAX_LANES`]) — while each chunk
/// stays large enough that the per-chunk frame overhead is noise. The
/// format is self-describing, so containers sealed with the old 64 KiB
/// default still open unchanged.
pub const DEFAULT_CHUNK_BYTES: usize = 16 * 1024;

/// Derives the per-chunk LFSR seed from a master seed and chunk index.
///
/// A SplitMix-style avalanche over `master ∥ index`, folded to 16 bits and
/// forced nonzero (an all-zero LFSR state never leaves zero). Both ends
/// compute it locally; only the master seed travels in the container
/// header. The key-rotation layer rides the same derivation:
/// [`crate::KeyRing::seed`] feeds the *epoch* number through this
/// function to reseed a stream's LFSR at every rekey.
///
/// ```
/// use mhhea::pipeline::chunk_seed;
///
/// assert_ne!(chunk_seed(0xACE1, 0), chunk_seed(0xACE1, 1));
/// assert_ne!(chunk_seed(0xACE1, 0), 0);
/// ```
pub fn chunk_seed(master: u16, index: u32) -> u16 {
    let mut z = ((master as u64) << 32) ^ (index as u64) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let folded = (z as u16) ^ ((z >> 16) as u16) ^ ((z >> 32) as u16) ^ ((z >> 48) as u16);
    if folded == 0 {
        0xACE1
    } else {
        folded
    }
}

/// Splits `total` bytes into chunk byte-ranges of `chunk_bytes` each (the
/// final chunk may be short). An empty payload yields no chunks.
///
/// ```
/// use mhhea::pipeline::chunk_ranges;
///
/// assert_eq!(chunk_ranges(10, 4), vec![0..4, 4..8, 8..10]);
/// assert!(chunk_ranges(0, 4).is_empty());
/// ```
///
/// # Panics
///
/// Panics if `chunk_bytes` is zero.
pub fn chunk_ranges(total: usize, chunk_bytes: usize) -> Vec<std::ops::Range<usize>> {
    assert!(chunk_bytes > 0, "chunk size must be nonzero");
    (0..total.div_ceil(chunk_bytes))
        .map(|i| {
            let start = i * chunk_bytes;
            start..(start + chunk_bytes).min(total)
        })
        .collect()
}

/// Resolves a requested worker count against a known job count.
///
/// * `requested == 0` means "ask the OS"
///   ([`std::thread::available_parallelism`]).
/// * The result never exceeds the number of jobs — extra workers would
///   only idle — and is always at least `1`, including the degenerate
///   `jobs == 0` and `requested == 0, jobs == 0` corners (a map over zero
///   items still needs a well-defined width for its inline path).
///
/// For sizing a pool whose job count is unknown at construction, pass
/// `usize::MAX` as `jobs` (what [`WorkerPool::new`] does).
pub fn resolve_workers(requested: usize, jobs: usize) -> usize {
    let hw = || {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    };
    let want = if requested == 0 { hw() } else { requested };
    want.clamp(1, jobs.max(1))
}

/// A unit of pool work: boxed, owned, run-once.
type Job = Box<dyn FnOnce() + Send + 'static>;

std::thread_local! {
    /// Set inside pool worker threads so nested fan-outs degrade to the
    /// inline path instead of submitting to (and then blocking on) the
    /// pool they are already running inside — the classic fixed-size-pool
    /// self-deadlock.
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A persistent pool of worker threads fed over a channel.
///
/// Workers are spawned exactly once, at construction, and live until the
/// pool is dropped (or [`WorkerPool::shutdown`] is called): submitting a
/// batch costs channel sends, not thread spawns. The container layer
/// ([`crate::container::seal_v2`]/[`crate::container::open_v2`]) and the
/// stream gateway ([`crate::gateway::StreamMux`]) both run on the shared
/// [`WorkerPool::global`] instance.
///
/// A job that panics does not kill its worker: the panic is caught, the
/// worker keeps draining the queue, and map-style entry points re-raise
/// the payload on the submitting thread.
///
/// # Examples
///
/// ```
/// use mhhea::pipeline::WorkerPool;
///
/// let pool = WorkerPool::new(2);
/// let squares = pool.map((0u64..64).collect(), 2, |_, x| x * x);
/// assert_eq!(squares[7], 49);
/// pool.shutdown();
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    /// `None` only during shutdown (dropping the sender is what releases
    /// the workers from `recv`).
    injector: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns a pool of `resolve_workers(requested, usize::MAX)` threads
    /// (`0` asks the OS).
    pub fn new(requested: usize) -> Self {
        let workers = resolve_workers(requested, usize::MAX);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles: Vec<JoinHandle<()>> = (0..workers)
            .filter_map(|i| {
                let rx = Arc::clone(&rx);
                // A failed spawn (thread exhaustion) shrinks the pool
                // instead of panicking; with zero workers every map runs
                // inline on the submitting thread.
                std::thread::Builder::new()
                    .name(format!("mhhea-pool-{i}"))
                    .spawn(move || Self::worker_loop(&rx))
                    .ok()
            })
            .collect();
        WorkerPool {
            injector: Some(tx),
            workers: handles.len(),
            handles,
        }
    }

    // lock-order: pool_intake
    fn worker_loop(rx: &Mutex<Receiver<Job>>) {
        IN_POOL_WORKER.with(|f| f.set(true));
        loop {
            // Hold the lock only for the dequeue, never while running.
            let job = match rx.lock() {
                Ok(guard) => guard.recv(),
                Err(_) => break, // a peer panicked holding the lock
            };
            match job {
                // The job's own panic is contained here; map() re-raises
                // it on the submitting thread via the result channel.
                Ok(job) => drop(catch_unwind(AssertUnwindSafe(job))),
                Err(_) => break, // injector dropped: graceful shutdown
            }
        }
    }

    /// The process-wide shared pool (sized by the OS; created on first
    /// use, never torn down — process exit reaps the threads).
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(0))
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Submits one fire-and-forget job.
    ///
    /// The job is guaranteed to run: if the pool has no live worker to
    /// hand it to (every spawn failed, or the pool is mid-shutdown —
    /// neither reachable through the public API), it runs inline on the
    /// calling thread instead of being lost.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let job: Job = Box::new(job);
        let Some(tx) = self.injector.as_ref() else {
            return job();
        };
        if let Err(returned) = tx.send(job) {
            // Every worker has exited; the send hands the job back.
            (returned.0)();
        }
    }

    /// Maps `f` over `items` with at most `max_parallel` jobs in flight,
    /// preserving order (`0` asks the OS). The submitting thread processes
    /// the first shard itself, so a single-shard map never touches the
    /// queue, and calls from *inside* a pool worker run entirely inline
    /// rather than deadlocking the pool.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from `f` on the calling thread.
    pub fn map<T, U, F>(&self, items: Vec<T>, max_parallel: usize, f: F) -> Vec<U>
    where
        T: Send + 'static,
        U: Send + 'static,
        F: Fn(usize, T) -> U + Send + Sync + 'static,
    {
        let jobs = items.len();
        let workers = resolve_workers(max_parallel, jobs).min(self.workers + 1);
        let inline = workers <= 1 || jobs <= 1 || IN_POOL_WORKER.with(std::cell::Cell::get);
        if inline {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
        }

        // Deal contiguous shards; shard 0 stays on this thread.
        let shard_len = jobs.div_ceil(workers);
        let mut shards: Vec<(usize, Vec<T>)> = Vec::with_capacity(workers);
        let mut items = items.into_iter();
        let mut start = 0;
        loop {
            let shard: Vec<T> = items.by_ref().take(shard_len).collect();
            if shard.is_empty() {
                break;
            }
            let len = shard.len();
            shards.push((start, shard));
            start += len;
        }

        let f = Arc::new(f);
        type ShardResult<U> = (usize, std::thread::Result<Vec<U>>);
        let (tx, rx) = channel::<ShardResult<U>>();
        let mut shards = shards.into_iter();
        let Some((base0, shard0)) = shards.next() else {
            return Vec::new(); // jobs > 1 implies a shard; stay total
        };
        let submitted = shards.len();
        for (slot, (base, shard)) in shards.enumerate() {
            let f = Arc::clone(&f);
            let tx = tx.clone();
            self.execute(move || {
                let out = catch_unwind(AssertUnwindSafe(|| {
                    shard
                        .into_iter()
                        .enumerate()
                        .map(|(i, t)| f(base + i, t))
                        .collect::<Vec<U>>()
                }));
                // A dead receiver means the submitter already panicked;
                // nothing useful to do with the result either way.
                let _ = tx.send((slot, out));
            });
        }
        drop(tx);

        let first: Vec<U> = shard0
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(base0 + i, t))
            .collect();

        let mut collected: Vec<Option<Vec<U>>> = (0..submitted).map(|_| None).collect();
        let mut panic_payload = None;
        for _ in 0..submitted {
            // `execute` guarantees each job runs (inline at worst), so
            // every sender reports; a failed recv means a worker died
            // unnaturally and the remaining shards are gone.
            let Ok((slot, out)) = rx.recv() else { break };
            match out {
                Ok(v) => {
                    if let Some(c) = collected.get_mut(slot) {
                        *c = Some(v);
                    }
                }
                Err(p) => panic_payload = Some(p),
            }
        }
        if let Some(p) = panic_payload {
            resume_unwind(p);
        }
        let mut out = first;
        for shard in collected {
            let Some(v) = shard else {
                // Unreachable (see above): surface in debug, stay total
                // in release rather than panic the serving path.
                debug_assert!(false, "pool worker vanished mid-batch");
                continue;
            };
            out.extend(v);
        }
        out
    }

    /// Joins every worker after draining queued jobs (dropping the pool
    /// does the same; this form surfaces the join explicitly).
    pub fn shutdown(mut self) {
        self.join_workers();
    }

    fn join_workers(&mut self) {
        self.injector = None; // release recv() in every worker
        for h in self.handles.drain(..) {
            // A worker that somehow died still lets the rest join.
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.join_workers();
    }
}

/// Maps `f` over `items` on the shared [`WorkerPool::global`] pool with at
/// most `workers` jobs in flight (`0` asks the OS), preserving order.
///
/// `f` receives `(index, item)`. Order is preserved: output index matches
/// input index. Both closures and items must be `'static` — the pool's
/// workers outlive any one call, so jobs own their data (clone or `Arc`
/// what you need inside).
///
/// # Panics
///
/// Re-raises a panic from `f` on the calling thread.
pub fn parallel_map<T, U, F>(items: Vec<T>, workers: usize, f: F) -> Vec<U>
where
    T: Send + 'static,
    U: Send + 'static,
    F: Fn(usize, T) -> U + Send + Sync + 'static,
{
    WorkerPool::global().map(items, workers, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_seeds_are_nonzero_and_spread() {
        let mut seen = std::collections::HashSet::new();
        for master in [1u16, 0xACE1, 0xFFFF] {
            for i in 0..64u32 {
                let s = chunk_seed(master, i);
                assert_ne!(s, 0);
                seen.insert((master, s));
            }
        }
        // The fold should not collapse many (master, index) pairs.
        assert!(seen.len() > 180, "only {} distinct seeds", seen.len());
    }

    #[test]
    fn chunk_seed_is_deterministic() {
        assert_eq!(chunk_seed(0x1234, 7), chunk_seed(0x1234, 7));
    }

    #[test]
    fn ranges_cover_exactly() {
        for (total, size) in [(0usize, 3usize), (1, 3), (3, 3), (10, 3), (12, 4)] {
            let ranges = chunk_ranges(total, size);
            let mut cursor = 0;
            for r in &ranges {
                assert_eq!(r.start, cursor);
                assert!(r.end - r.start <= size);
                cursor = r.end;
            }
            assert_eq!(cursor, total);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_chunk_size_panics() {
        chunk_ranges(8, 0);
    }

    #[test]
    fn workers_resolve_sanely() {
        // Explicit request, plenty of jobs: taken literally.
        assert_eq!(resolve_workers(4, 100), 4);
        // More workers than jobs: capped at the job count.
        assert_eq!(resolve_workers(8, 3), 3);
        assert_eq!(resolve_workers(2, 1), 1);
        // Zero jobs never yields zero workers.
        assert_eq!(resolve_workers(3, 0), 1);
        assert_eq!(resolve_workers(0, 0), 1);
        // "Ask the OS" is at least one and still job-capped.
        assert!(resolve_workers(0, 64) >= 1);
        assert_eq!(resolve_workers(0, 1), 1);
        // Pool sizing with unknown job count passes usize::MAX through.
        assert_eq!(resolve_workers(5, usize::MAX), 5);
        assert!(resolve_workers(0, usize::MAX) >= 1);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u32> = (0..97).collect();
        for workers in [1usize, 2, 4, 7] {
            let got = parallel_map(items.clone(), workers, |i, x| {
                assert_eq!(i as u32, x);
                x * 3
            });
            let want: Vec<u32> = items.iter().map(|x| x * 3).collect();
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn parallel_map_empty_and_single() {
        assert_eq!(
            parallel_map(Vec::<u8>::new(), 4, |_, x| x),
            Vec::<u8>::new()
        );
        assert_eq!(parallel_map(vec![9u8], 4, |_, x| x + 1), vec![10]);
    }

    #[test]
    fn pool_survives_many_batches() {
        // The point of the pool: repeated batches reuse the same threads.
        let pool = WorkerPool::new(3);
        assert_eq!(pool.workers(), 3);
        for round in 0..50u64 {
            let got = pool.map((0..32u64).collect(), 3, move |_, x| x + round);
            assert_eq!(got, (0..32u64).map(|x| x + round).collect::<Vec<_>>());
        }
        pool.shutdown();
    }

    #[test]
    fn pool_map_panic_propagates_and_pool_stays_usable() {
        let pool = Arc::new(WorkerPool::new(2));
        let p2 = Arc::clone(&pool);
        let boom = std::thread::spawn(move || {
            p2.map((0..16u32).collect(), 2, |_, x| {
                assert!(x != 13, "unlucky");
                x
            })
        })
        .join();
        assert!(boom.is_err(), "panic must propagate to the submitter");
        // The worker that caught the panic is still alive and serving.
        let ok = pool.map((0..16u32).collect(), 2, |_, x| x * 2);
        assert_eq!(ok[13], 26);
    }

    #[test]
    fn nested_map_runs_inline_instead_of_deadlocking() {
        // A job that itself fans out must not block on its own pool.
        let pool = Arc::new(WorkerPool::new(2));
        let outer = pool.map((0..4u32).collect(), 2, |_, x| {
            let inner: Vec<u32> = parallel_map((0..8u32).collect(), 4, move |_, y| y + x);
            inner.iter().sum::<u32>()
        });
        assert_eq!(outer, vec![28, 36, 44, 52]);
    }

    #[test]
    fn execute_runs_detached_jobs() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = channel();
        for i in 0..8u32 {
            let tx = tx.clone();
            pool.execute(move || tx.send(i * i).unwrap());
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = channel();
        for i in 0..16u32 {
            let tx = tx.clone();
            pool.execute(move || tx.send(i).unwrap());
        }
        drop(tx);
        pool.shutdown(); // joins only after the queue is drained
        assert_eq!(rx.iter().count(), 16);
    }
}
