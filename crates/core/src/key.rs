//! Key material: pairs of 3-bit hiding-location indices.
//!
//! The paper's key is a matrix `K[L×2]`, `L ≤ 16`, of values in `0..=7`.
//! Each pair bounds a span of bit positions in the hiding vector's low
//! byte; the smaller half additionally provides the 3-bit XOR pattern for
//! data scrambling. The micro-architecture's key cache always holds 16
//! pairs, so [`Key::expand_cyclic`] provides the hardware schedule.

use rand::Rng;

use crate::pipeline::chunk_seed;

/// Maximum number of key pairs (the key-cache depth).
pub const MAX_PAIRS: usize = 16;
/// Key halves are 3-bit values.
pub const MAX_HALF: u8 = 7;
/// Most keys a [`KeyRing`] can hold (the ring index travels as one byte
/// in the `MHSS` v2 snapshot format).
pub const MAX_RING_KEYS: usize = 255;

/// Errors constructing key material.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KeyError {
    /// A key half exceeded 7.
    HalfOutOfRange {
        /// The offending value.
        value: u8,
    },
    /// No pairs were supplied.
    Empty,
    /// More than [`MAX_PAIRS`] pairs were supplied.
    TooManyPairs {
        /// Number supplied.
        count: usize,
    },
    /// An odd number of nibbles was supplied to a byte/nibble constructor.
    OddNibbleCount,
    /// A [`KeyRing`] was given a zero master seed (the all-zero LFSR state
    /// is the lattice fixed point and never produces a vector).
    ZeroMasterSeed,
    /// A [`KeyRing`] was given more than [`MAX_RING_KEYS`] keys.
    TooManyKeys {
        /// Number supplied.
        count: usize,
    },
}

impl core::fmt::Display for KeyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KeyError::HalfOutOfRange { value } => {
                write!(f, "key half {value} exceeds 7")
            }
            KeyError::Empty => write!(f, "key must hold at least one pair"),
            KeyError::TooManyPairs { count } => {
                write!(f, "{count} pairs exceed the key-cache depth of {MAX_PAIRS}")
            }
            KeyError::OddNibbleCount => write!(f, "nibble list must have even length"),
            KeyError::ZeroMasterSeed => write!(f, "keyring master seed must be nonzero"),
            KeyError::TooManyKeys { count } => {
                write!(f, "{count} keys exceed the ring limit of {MAX_RING_KEYS}")
            }
        }
    }
}

impl std::error::Error for KeyError {}

/// One key pair `(k₁, k₂)`, each half in `0..=7`.
///
/// The pair is stored as supplied; [`KeyPair::sorted`] returns the
/// `(min, max)` ordering the algorithm works with (the pseudocode swaps
/// in place before use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KeyPair {
    left: u8,
    right: u8,
}

impl KeyPair {
    /// Creates a pair, validating both halves.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::HalfOutOfRange`] when a half exceeds 7.
    ///
    /// ```
    /// use mhhea::KeyPair;
    /// let p = KeyPair::new(5, 2)?;
    /// assert_eq!(p.sorted(), (2, 5));
    /// # Ok::<(), mhhea::KeyError>(())
    /// ```
    pub fn new(left: u8, right: u8) -> Result<Self, KeyError> {
        for value in [left, right] {
            if value > MAX_HALF {
                return Err(KeyError::HalfOutOfRange { value });
            }
        }
        Ok(KeyPair { left, right })
    }

    /// The pair as stored `(left, right)`.
    pub fn halves(self) -> (u8, u8) {
        (self.left, self.right)
    }

    /// The pair ordered `(min, max)` — the algorithm's working form.
    pub fn sorted(self) -> (u8, u8) {
        (self.left.min(self.right), self.left.max(self.right))
    }

    /// Width of the *unscrambled* span, `max − min + 1` (1..=8).
    pub fn span_width(self) -> u8 {
        let (lo, hi) = self.sorted();
        hi - lo + 1
    }
}

impl core::fmt::Display for KeyPair {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({},{})", self.left, self.right)
    }
}

/// A full key: 1..=16 pairs, cycled block by block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Key {
    pairs: Vec<KeyPair>,
}

impl Key {
    /// Creates a key from pairs.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::Empty`] or [`KeyError::TooManyPairs`].
    pub fn new(pairs: Vec<KeyPair>) -> Result<Self, KeyError> {
        if pairs.is_empty() {
            return Err(KeyError::Empty);
        }
        if pairs.len() > MAX_PAIRS {
            return Err(KeyError::TooManyPairs { count: pairs.len() });
        }
        Ok(Key { pairs })
    }

    /// Creates a key from `(left, right)` tuples.
    ///
    /// # Errors
    ///
    /// Propagates pair and length validation.
    ///
    /// ```
    /// let key = mhhea::Key::from_nibbles(&[(0, 3), (2, 5)])?;
    /// assert_eq!(key.len(), 2);
    /// # Ok::<(), mhhea::KeyError>(())
    /// ```
    pub fn from_nibbles(tuples: &[(u8, u8)]) -> Result<Self, KeyError> {
        let pairs = tuples
            .iter()
            .map(|&(l, r)| KeyPair::new(l, r))
            .collect::<Result<Vec<_>, _>>()?;
        Key::new(pairs)
    }

    /// Packs key halves from bytes: each byte supplies two 3-bit halves
    /// (low nibble then high nibble, masked to 3 bits), two halves per
    /// pair.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::Empty`]/[`KeyError::TooManyPairs`] on bad
    /// lengths.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, KeyError> {
        let pairs = bytes
            .iter()
            .map(|&b| KeyPair::new(b & 0x7, (b >> 4) & 0x7))
            .collect::<Result<Vec<_>, _>>()?;
        Key::new(pairs)
    }

    /// Draws a uniformly random key of `len` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::Empty`]/[`KeyError::TooManyPairs`] for invalid
    /// lengths.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Result<Self, KeyError> {
        if len == 0 {
            return Err(KeyError::Empty);
        }
        if len > MAX_PAIRS {
            return Err(KeyError::TooManyPairs { count: len });
        }
        let pairs = (0..len)
            .map(|_| KeyPair {
                left: rng.gen_range(0..=MAX_HALF),
                right: rng.gen_range(0..=MAX_HALF),
            })
            .collect();
        Ok(Key { pairs })
    }

    /// Number of pairs.
    #[allow(clippy::len_without_is_empty)] // a key is never empty
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// The pairs in order.
    pub fn pairs(&self) -> &[KeyPair] {
        &self.pairs
    }

    /// The pair used for block index `i` (the pseudocode's `i mod L`).
    pub fn pair(&self, block_index: usize) -> KeyPair {
        self.pairs[block_index % self.pairs.len()]
    }

    /// The hardware key schedule: the key cycled out to `depth` pairs (the
    /// key cache always holds 16). When `depth % len == 0` this reproduces
    /// `i mod L` exactly.
    pub fn expand_cyclic(&self, depth: usize) -> Key {
        Key {
            pairs: (0..depth.max(1)).map(|i| self.pair(i)).collect(),
        }
    }

    /// A 64-bit FNV-1a fingerprint used by the container format to detect
    /// wrong-key decryption attempts. Not a cryptographic hash.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for p in &self.pairs {
            for b in [p.left, p.right] {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }
}

impl core::fmt::Display for Key {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Key[")?;
        for (i, p) in self.pairs.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

/// Epoch-numbered key material for online key rotation.
///
/// A long-lived stream must not be pinned to one key for its entire life;
/// the ring gives every **epoch** (a monotonically increasing `u32`) its
/// own key and its own LFSR reseed, both derivable locally on each
/// endpoint so a rotation never puts key material on a wire:
///
/// * [`KeyRing::key`]`(epoch)` cycles through the supplied keys
///   (`keys[epoch mod len]` — the same schedule shape as
///   [`Key::pair`]'s block cycling). A single-key ring still rotates
///   usefully: the LFSR reseed changes every epoch.
/// * [`KeyRing::seed`]`(epoch)` derives the epoch's LFSR seed from the
///   master seed via the container pipeline's existing
///   [`crate::pipeline::chunk_seed`] avalanche. Epoch 0 runs the master
///   seed itself, so a stream that never rekeys behaves exactly like a
///   plain [`Key`]-configured stream; epochs ≥ 1 are always nonzero by
///   construction.
///
/// The ring is what [`crate::session::EncryptSession::rekey`] /
/// [`crate::session::DecryptSession::rekey`] and the gateway's
/// [`crate::gateway::StreamOp::Rekey`] consume.
///
/// # Examples
///
/// ```
/// use mhhea::{Key, KeyRing};
///
/// let ring = KeyRing::new(
///     vec![
///         Key::from_nibbles(&[(0, 3), (2, 5)])?,
///         Key::from_nibbles(&[(1, 6), (4, 7)])?,
///     ],
///     0xACE1,
/// )?;
/// assert_eq!(ring.key(0), ring.key(2)); // keys cycle
/// assert_eq!(ring.seed(0), 0xACE1); // epoch 0 is the master seed
/// assert_ne!(ring.seed(1), ring.seed(2)); // later epochs reseed
/// # Ok::<(), mhhea::KeyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRing {
    keys: Vec<Key>,
    master_seed: u16,
}

impl KeyRing {
    /// Creates a ring from epoch-ordered keys and a nonzero master seed.
    ///
    /// # Errors
    ///
    /// [`KeyError::Empty`] for no keys, [`KeyError::TooManyKeys`] past
    /// [`MAX_RING_KEYS`], [`KeyError::ZeroMasterSeed`] for a zero seed.
    pub fn new(keys: Vec<Key>, master_seed: u16) -> Result<Self, KeyError> {
        if keys.is_empty() {
            return Err(KeyError::Empty);
        }
        if keys.len() > MAX_RING_KEYS {
            return Err(KeyError::TooManyKeys { count: keys.len() });
        }
        if master_seed == 0 {
            return Err(KeyError::ZeroMasterSeed);
        }
        Ok(KeyRing { keys, master_seed })
    }

    /// A ring holding one key: every epoch reuses the key, but each epoch
    /// still reseeds the LFSR — the cheapest useful rotation.
    ///
    /// # Errors
    ///
    /// [`KeyError::ZeroMasterSeed`] for a zero seed.
    pub fn single(key: Key, master_seed: u16) -> Result<Self, KeyError> {
        KeyRing::new(vec![key], master_seed)
    }

    /// The key for `epoch` (`keys[epoch mod len]`).
    pub fn key(&self, epoch: u32) -> &Key {
        &self.keys[epoch as usize % self.keys.len()]
    }

    /// The LFSR seed for `epoch`: the master seed at epoch 0 (so an
    /// un-rotated stream matches a plain keyed stream bit for bit), a
    /// [`crate::pipeline::chunk_seed`] derivation — nonzero by
    /// construction — for every later epoch.
    pub fn seed(&self, epoch: u32) -> u16 {
        if epoch == 0 {
            self.master_seed
        } else {
            chunk_seed(self.master_seed, epoch)
        }
    }

    /// The master seed the per-epoch reseeds derive from.
    pub fn master_seed(&self) -> u16 {
        self.master_seed
    }

    /// The epoch-ordered keys.
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }

    /// Number of keys in the ring.
    #[allow(clippy::len_without_is_empty)] // a ring is never empty
    pub fn len(&self) -> usize {
        self.keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pair_validation() {
        assert!(KeyPair::new(0, 7).is_ok());
        assert_eq!(
            KeyPair::new(8, 0),
            Err(KeyError::HalfOutOfRange { value: 8 })
        );
        assert_eq!(
            KeyPair::new(0, 9),
            Err(KeyError::HalfOutOfRange { value: 9 })
        );
    }

    #[test]
    fn pair_sorting_and_span() {
        let p = KeyPair::new(5, 2).unwrap();
        assert_eq!(p.halves(), (5, 2));
        assert_eq!(p.sorted(), (2, 5));
        assert_eq!(p.span_width(), 4);
        assert_eq!(KeyPair::new(3, 3).unwrap().span_width(), 1);
        assert_eq!(KeyPair::new(0, 7).unwrap().span_width(), 8);
    }

    #[test]
    fn key_length_limits() {
        assert_eq!(Key::new(vec![]), Err(KeyError::Empty));
        let too_many = vec![KeyPair::new(0, 1).unwrap(); 17];
        assert_eq!(
            Key::new(too_many),
            Err(KeyError::TooManyPairs { count: 17 })
        );
        let max = vec![KeyPair::new(0, 1).unwrap(); 16];
        assert_eq!(Key::new(max).unwrap().len(), 16);
    }

    #[test]
    fn pair_cycling() {
        let key = Key::from_nibbles(&[(0, 1), (2, 3), (4, 5)]).unwrap();
        assert_eq!(key.pair(0).halves(), (0, 1));
        assert_eq!(key.pair(3).halves(), (0, 1));
        assert_eq!(key.pair(5).halves(), (4, 5));
    }

    #[test]
    fn cyclic_expansion() {
        let key = Key::from_nibbles(&[(0, 1), (2, 3)]).unwrap();
        let hw = key.expand_cyclic(16);
        assert_eq!(hw.len(), 16);
        for i in 0..16 {
            assert_eq!(hw.pair(i), key.pair(i));
        }
        // Non-dividing lengths still produce a full schedule.
        let key3 = Key::from_nibbles(&[(0, 1), (2, 3), (4, 5)]).unwrap();
        assert_eq!(key3.expand_cyclic(16).len(), 16);
    }

    #[test]
    fn from_bytes_packs_nibbles() {
        let key = Key::from_bytes(&[0x31, 0x75]).unwrap();
        assert_eq!(key.pair(0).halves(), (1, 3));
        assert_eq!(key.pair(1).halves(), (5, 7));
        // Nibbles are masked to 3 bits.
        let masked = Key::from_bytes(&[0xFF]).unwrap();
        assert_eq!(masked.pair(0).halves(), (7, 7));
    }

    #[test]
    fn random_keys_are_valid_and_seeded() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Key::random(&mut rng, 16).unwrap();
        for p in a.pairs() {
            assert!(p.halves().0 <= 7 && p.halves().1 <= 7);
        }
        let mut rng2 = StdRng::seed_from_u64(9);
        let b = Key::random(&mut rng2, 16).unwrap();
        assert_eq!(a, b);
        assert_eq!(Key::random(&mut rng, 0), Err(KeyError::Empty));
        assert!(Key::random(&mut rng, 17).is_err());
    }

    #[test]
    fn fingerprints_differ() {
        let a = Key::from_nibbles(&[(0, 3)]).unwrap();
        let b = Key::from_nibbles(&[(3, 0)]).unwrap();
        let c = Key::from_nibbles(&[(0, 3), (0, 3)]).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
    }

    #[test]
    fn display_forms() {
        let key = Key::from_nibbles(&[(0, 3), (2, 5)]).unwrap();
        assert_eq!(key.to_string(), "Key[(0,3) (2,5)]");
        assert_eq!(KeyPair::new(1, 2).unwrap().to_string(), "(1,2)");
    }

    #[test]
    fn ring_validation() {
        let key = Key::from_nibbles(&[(0, 3)]).unwrap();
        assert_eq!(KeyRing::new(vec![], 0xACE1), Err(KeyError::Empty));
        assert_eq!(
            KeyRing::single(key.clone(), 0),
            Err(KeyError::ZeroMasterSeed)
        );
        assert_eq!(
            KeyRing::new(vec![key.clone(); 256], 0xACE1),
            Err(KeyError::TooManyKeys { count: 256 })
        );
        assert_eq!(KeyRing::new(vec![key; 255], 0xACE1).unwrap().len(), 255);
    }

    #[test]
    fn ring_keys_cycle_like_the_pair_schedule() {
        let a = Key::from_nibbles(&[(0, 1)]).unwrap();
        let b = Key::from_nibbles(&[(2, 3)]).unwrap();
        let ring = KeyRing::new(vec![a.clone(), b.clone()], 0x1234).unwrap();
        assert_eq!(ring.key(0), &a);
        assert_eq!(ring.key(1), &b);
        assert_eq!(ring.key(2), &a);
        assert_eq!(ring.key(u32::MAX), &b);
        assert_eq!(ring.keys(), &[a, b]);
        assert_eq!(ring.master_seed(), 0x1234);
    }

    #[test]
    fn ring_seeds_are_epoch_distinct_and_nonzero() {
        let ring = KeyRing::single(Key::from_nibbles(&[(0, 7)]).unwrap(), 0xACE1).unwrap();
        assert_eq!(ring.seed(0), 0xACE1, "epoch 0 must run the master seed");
        let mut seen = std::collections::HashSet::new();
        for epoch in 0..64 {
            let s = ring.seed(epoch);
            assert_ne!(s, 0, "epoch {epoch} derived a zero seed");
            seen.insert(s);
        }
        assert!(seen.len() > 60, "epoch seeds barely spread: {}", seen.len());
        // Derivation matches the container pipeline's machinery exactly.
        assert_eq!(ring.seed(9), crate::pipeline::chunk_seed(0xACE1, 9));
    }
}
