//! Key material: pairs of 3-bit hiding-location indices.
//!
//! The paper's key is a matrix `K[L×2]`, `L ≤ 16`, of values in `0..=7`.
//! Each pair bounds a span of bit positions in the hiding vector's low
//! byte; the smaller half additionally provides the 3-bit XOR pattern for
//! data scrambling. The micro-architecture's key cache always holds 16
//! pairs, so [`Key::expand_cyclic`] provides the hardware schedule.

use rand::Rng;

/// Maximum number of key pairs (the key-cache depth).
pub const MAX_PAIRS: usize = 16;
/// Key halves are 3-bit values.
pub const MAX_HALF: u8 = 7;

/// Errors constructing key material.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KeyError {
    /// A key half exceeded 7.
    HalfOutOfRange {
        /// The offending value.
        value: u8,
    },
    /// No pairs were supplied.
    Empty,
    /// More than [`MAX_PAIRS`] pairs were supplied.
    TooManyPairs {
        /// Number supplied.
        count: usize,
    },
    /// An odd number of nibbles was supplied to a byte/nibble constructor.
    OddNibbleCount,
}

impl core::fmt::Display for KeyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KeyError::HalfOutOfRange { value } => {
                write!(f, "key half {value} exceeds 7")
            }
            KeyError::Empty => write!(f, "key must hold at least one pair"),
            KeyError::TooManyPairs { count } => {
                write!(f, "{count} pairs exceed the key-cache depth of {MAX_PAIRS}")
            }
            KeyError::OddNibbleCount => write!(f, "nibble list must have even length"),
        }
    }
}

impl std::error::Error for KeyError {}

/// One key pair `(k₁, k₂)`, each half in `0..=7`.
///
/// The pair is stored as supplied; [`KeyPair::sorted`] returns the
/// `(min, max)` ordering the algorithm works with (the pseudocode swaps
/// in place before use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KeyPair {
    left: u8,
    right: u8,
}

impl KeyPair {
    /// Creates a pair, validating both halves.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::HalfOutOfRange`] when a half exceeds 7.
    ///
    /// ```
    /// use mhhea::KeyPair;
    /// let p = KeyPair::new(5, 2)?;
    /// assert_eq!(p.sorted(), (2, 5));
    /// # Ok::<(), mhhea::KeyError>(())
    /// ```
    pub fn new(left: u8, right: u8) -> Result<Self, KeyError> {
        for value in [left, right] {
            if value > MAX_HALF {
                return Err(KeyError::HalfOutOfRange { value });
            }
        }
        Ok(KeyPair { left, right })
    }

    /// The pair as stored `(left, right)`.
    pub fn halves(self) -> (u8, u8) {
        (self.left, self.right)
    }

    /// The pair ordered `(min, max)` — the algorithm's working form.
    pub fn sorted(self) -> (u8, u8) {
        (self.left.min(self.right), self.left.max(self.right))
    }

    /// Width of the *unscrambled* span, `max − min + 1` (1..=8).
    pub fn span_width(self) -> u8 {
        let (lo, hi) = self.sorted();
        hi - lo + 1
    }
}

impl core::fmt::Display for KeyPair {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({},{})", self.left, self.right)
    }
}

/// A full key: 1..=16 pairs, cycled block by block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Key {
    pairs: Vec<KeyPair>,
}

impl Key {
    /// Creates a key from pairs.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::Empty`] or [`KeyError::TooManyPairs`].
    pub fn new(pairs: Vec<KeyPair>) -> Result<Self, KeyError> {
        if pairs.is_empty() {
            return Err(KeyError::Empty);
        }
        if pairs.len() > MAX_PAIRS {
            return Err(KeyError::TooManyPairs { count: pairs.len() });
        }
        Ok(Key { pairs })
    }

    /// Creates a key from `(left, right)` tuples.
    ///
    /// # Errors
    ///
    /// Propagates pair and length validation.
    ///
    /// ```
    /// let key = mhhea::Key::from_nibbles(&[(0, 3), (2, 5)])?;
    /// assert_eq!(key.len(), 2);
    /// # Ok::<(), mhhea::KeyError>(())
    /// ```
    pub fn from_nibbles(tuples: &[(u8, u8)]) -> Result<Self, KeyError> {
        let pairs = tuples
            .iter()
            .map(|&(l, r)| KeyPair::new(l, r))
            .collect::<Result<Vec<_>, _>>()?;
        Key::new(pairs)
    }

    /// Packs key halves from bytes: each byte supplies two 3-bit halves
    /// (low nibble then high nibble, masked to 3 bits), two halves per
    /// pair.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::Empty`]/[`KeyError::TooManyPairs`] on bad
    /// lengths.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, KeyError> {
        let pairs = bytes
            .iter()
            .map(|&b| KeyPair::new(b & 0x7, (b >> 4) & 0x7))
            .collect::<Result<Vec<_>, _>>()?;
        Key::new(pairs)
    }

    /// Draws a uniformly random key of `len` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::Empty`]/[`KeyError::TooManyPairs`] for invalid
    /// lengths.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Result<Self, KeyError> {
        if len == 0 {
            return Err(KeyError::Empty);
        }
        if len > MAX_PAIRS {
            return Err(KeyError::TooManyPairs { count: len });
        }
        let pairs = (0..len)
            .map(|_| KeyPair {
                left: rng.gen_range(0..=MAX_HALF),
                right: rng.gen_range(0..=MAX_HALF),
            })
            .collect();
        Ok(Key { pairs })
    }

    /// Number of pairs.
    #[allow(clippy::len_without_is_empty)] // a key is never empty
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// The pairs in order.
    pub fn pairs(&self) -> &[KeyPair] {
        &self.pairs
    }

    /// The pair used for block index `i` (the pseudocode's `i mod L`).
    pub fn pair(&self, block_index: usize) -> KeyPair {
        self.pairs[block_index % self.pairs.len()]
    }

    /// The hardware key schedule: the key cycled out to `depth` pairs (the
    /// key cache always holds 16). When `depth % len == 0` this reproduces
    /// `i mod L` exactly.
    pub fn expand_cyclic(&self, depth: usize) -> Key {
        Key {
            pairs: (0..depth.max(1)).map(|i| self.pair(i)).collect(),
        }
    }

    /// A 64-bit FNV-1a fingerprint used by the container format to detect
    /// wrong-key decryption attempts. Not a cryptographic hash.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for p in &self.pairs {
            for b in [p.left, p.right] {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }
}

impl core::fmt::Display for Key {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Key[")?;
        for (i, p) in self.pairs.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pair_validation() {
        assert!(KeyPair::new(0, 7).is_ok());
        assert_eq!(
            KeyPair::new(8, 0),
            Err(KeyError::HalfOutOfRange { value: 8 })
        );
        assert_eq!(
            KeyPair::new(0, 9),
            Err(KeyError::HalfOutOfRange { value: 9 })
        );
    }

    #[test]
    fn pair_sorting_and_span() {
        let p = KeyPair::new(5, 2).unwrap();
        assert_eq!(p.halves(), (5, 2));
        assert_eq!(p.sorted(), (2, 5));
        assert_eq!(p.span_width(), 4);
        assert_eq!(KeyPair::new(3, 3).unwrap().span_width(), 1);
        assert_eq!(KeyPair::new(0, 7).unwrap().span_width(), 8);
    }

    #[test]
    fn key_length_limits() {
        assert_eq!(Key::new(vec![]), Err(KeyError::Empty));
        let too_many = vec![KeyPair::new(0, 1).unwrap(); 17];
        assert_eq!(
            Key::new(too_many),
            Err(KeyError::TooManyPairs { count: 17 })
        );
        let max = vec![KeyPair::new(0, 1).unwrap(); 16];
        assert_eq!(Key::new(max).unwrap().len(), 16);
    }

    #[test]
    fn pair_cycling() {
        let key = Key::from_nibbles(&[(0, 1), (2, 3), (4, 5)]).unwrap();
        assert_eq!(key.pair(0).halves(), (0, 1));
        assert_eq!(key.pair(3).halves(), (0, 1));
        assert_eq!(key.pair(5).halves(), (4, 5));
    }

    #[test]
    fn cyclic_expansion() {
        let key = Key::from_nibbles(&[(0, 1), (2, 3)]).unwrap();
        let hw = key.expand_cyclic(16);
        assert_eq!(hw.len(), 16);
        for i in 0..16 {
            assert_eq!(hw.pair(i), key.pair(i));
        }
        // Non-dividing lengths still produce a full schedule.
        let key3 = Key::from_nibbles(&[(0, 1), (2, 3), (4, 5)]).unwrap();
        assert_eq!(key3.expand_cyclic(16).len(), 16);
    }

    #[test]
    fn from_bytes_packs_nibbles() {
        let key = Key::from_bytes(&[0x31, 0x75]).unwrap();
        assert_eq!(key.pair(0).halves(), (1, 3));
        assert_eq!(key.pair(1).halves(), (5, 7));
        // Nibbles are masked to 3 bits.
        let masked = Key::from_bytes(&[0xFF]).unwrap();
        assert_eq!(masked.pair(0).halves(), (7, 7));
    }

    #[test]
    fn random_keys_are_valid_and_seeded() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Key::random(&mut rng, 16).unwrap();
        for p in a.pairs() {
            assert!(p.halves().0 <= 7 && p.halves().1 <= 7);
        }
        let mut rng2 = StdRng::seed_from_u64(9);
        let b = Key::random(&mut rng2, 16).unwrap();
        assert_eq!(a, b);
        assert_eq!(Key::random(&mut rng, 0), Err(KeyError::Empty));
        assert!(Key::random(&mut rng, 17).is_err());
    }

    #[test]
    fn fingerprints_differ() {
        let a = Key::from_nibbles(&[(0, 3)]).unwrap();
        let b = Key::from_nibbles(&[(3, 0)]).unwrap();
        let c = Key::from_nibbles(&[(0, 3), (0, 3)]).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
    }

    #[test]
    fn display_forms() {
        let key = Key::from_nibbles(&[(0, 3), (2, 5)]).unwrap();
        assert_eq!(key.to_string(), "Key[(0,3) (2,5)]");
        assert_eq!(KeyPair::new(1, 2).unwrap().to_string(), "(1,2)");
    }
}
