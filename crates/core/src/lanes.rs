//! The bitsliced lockstep engine: up to 64 streams per machine word.
//!
//! The paper's FPGA datapath earns its throughput by marching many key
//! pairs through one pipeline per clock. The software analogue is
//! *bitslicing*: bit `j` of every working word belongs to lane `j`, so
//! one `u64` instruction advances 64 independent streams at once. This
//! module packs W ≤ [`MAX_LANES`] independent streams — or W chunks of
//! one container-v2 payload, whose per-chunk
//! [`crate::pipeline::chunk_seed`] LFSR seeds already make chunks
//! independent — into `u64` lanes and runs the LFSR leap and the
//! hiding-vector substitution across all lanes per instruction.
//!
//! Three engine backends now coexist:
//!
//! * the **per-bit** reference in [`crate::block`] (tests and
//!   cross-checks);
//! * the **scalar word-level** path ([`crate::block::SpanTable`]) used
//!   by the sessions;
//! * the **lane** path here, used by the batch APIs
//!   ([`crate::gateway::StreamMux::seal_batch`],
//!   [`crate::container::seal_v2`]) when enough compatible jobs are
//!   queued ([`LANE_THRESHOLD`]).
//!
//! Lanes run in lockstep: at step `t` every active lane produces exactly
//! one cipher block at schedule position `block_index + t`. A lane
//! *retires* when fewer than 8 message bits remain (a span can be up to
//! 8 bits wide, and the kernel always embeds full spans); retired lanes
//! finish on the scalar `SpanTable` path inside this module, which is
//! also where singletons and below-threshold batches stay. The engine is
//! [`crate::Profile::Streaming`]-only — the hardware-faithful profile's
//! 16-bit alignment buffer is inherently serial and always takes the
//! scalar path.
//!
//! Bit-exactness against the scalar sessions is proven by in-module
//! differential tests plus the `lanes` differential proptests in
//! `crates/core/tests`.

use crate::block::SpanTable;
use crate::{Algorithm, Key, MhheaError};

/// Maximum number of lanes one kernel invocation carries (`u64` width).
pub const MAX_LANES: usize = 64;

/// Minimum number of compatible jobs before the batch paths switch from
/// the scalar `SpanTable` engine to the lane engine. Below this the
/// fixed kernel cost (transposes, bitsliced leap) outweighs the per-lane
/// amortisation and the scalar path wins.
pub const LANE_THRESHOLD: usize = 16;

/// One stream's seal work order for [`seal_lanes`].
#[derive(Debug, Clone, Copy)]
pub struct LaneSealJob<'a> {
    /// Plaintext for this lane, consumed whole.
    pub message: &'a [u8],
    /// LFSR register to resume from (nonzero; the seed for a fresh
    /// stream, or [`crate::LfsrSource::state`] mid-stream).
    pub state: u16,
    /// Schedule position of the first block this lane produces.
    pub block_index: u64,
}

/// Per-lane outcome of [`seal_lanes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneSealOut {
    /// Cipher blocks, in order.
    pub blocks: Vec<u16>,
    /// LFSR register after the last block (the resume state).
    pub state: u16,
    /// Schedule position after the last block.
    pub block_index: u64,
}

/// One stream's open work order for [`open_lanes`].
#[derive(Debug, Clone, Copy)]
pub struct LaneOpenJob<'a> {
    /// Cipher blocks for this lane.
    pub blocks: &'a [u16],
    /// Message bits to recover.
    pub bit_len: usize,
    /// Schedule position of the first block.
    pub block_index: u64,
}

/// Seals W independent streams in bitsliced lockstep.
///
/// `table` must be `SpanTable::new(key, algorithm)` — the scalar tables
/// the streaming sessions already hold — so callers share one table
/// across all lanes. Jobs beyond [`MAX_LANES`] are processed in
/// successive kernel invocations; results keep job order.
///
/// # Errors
///
/// Returns [`MhheaError::InvalidSeed`] if any lane's `state` is zero
/// (the all-zero LFSR state never produces a vector).
pub fn seal_lanes(
    key: &Key,
    algorithm: Algorithm,
    table: &SpanTable,
    jobs: &[LaneSealJob<'_>],
) -> Result<Vec<LaneSealOut>, MhheaError> {
    if jobs.iter().any(|j| j.state == 0) {
        return Err(MhheaError::InvalidSeed);
    }
    let mut out = Vec::with_capacity(jobs.len());
    for group in jobs.chunks(MAX_LANES) {
        out.extend(seal_group(key, algorithm, table, group));
    }
    Ok(out)
}

/// Opens W independent streams in bitsliced lockstep.
///
/// The decrypt direction needs no LFSR at all: the hiding vector *is*
/// the cipher block, and its untouched high byte drives the span
/// recomputation exactly as on the scalar path.
///
/// # Errors
///
/// Returns [`MhheaError::CiphertextTruncated`] if any lane's blocks run
/// out before its promised `bit_len` is recovered.
pub fn open_lanes(
    key: &Key,
    algorithm: Algorithm,
    table: &SpanTable,
    jobs: &[LaneOpenJob<'_>],
) -> Result<Vec<Vec<u8>>, MhheaError> {
    let mut out = Vec::with_capacity(jobs.len());
    for group in jobs.chunks(MAX_LANES) {
        out.append(&mut open_group(key, algorithm, table, group)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Bitsliced LFSR: 16 state words, bit j of word i = bit i of lane j.
// ---------------------------------------------------------------------

struct LaneLfsr {
    /// Leap-matrix rows: next bit `i` is the XOR of current bits in
    /// `rows[i]` (identical for every lane — the matrix depends only on
    /// the tap polynomial, not the seed).
    rows: [u16; 16],
    /// Bitsliced state columns.
    s: [u64; 16],
}

impl LaneLfsr {
    fn new(states: impl Iterator<Item = u16>) -> Self {
        let reference =
            lfsr::Fibonacci::from_table(16, 1).expect("width 16 is tabulated and seed 1 nonzero");
        let leap = reference.leap_matrix(16);
        let mut rows = [0u16; 16];
        for (i, row) in rows.iter_mut().enumerate() {
            *row = leap.row(i) as u16;
        }
        let mut s = [0u64; 16];
        for (j, st) in states.enumerate() {
            for (i, word) in s.iter_mut().enumerate() {
                *word |= (((st >> i) & 1) as u64) << j;
            }
        }
        LaneLfsr { rows, s }
    }

    /// One 16-step leap for every lane: the hardware's one-clock leap
    /// network, amortised across all lanes per XOR.
    fn step(&mut self) {
        let mut next = [0u64; 16];
        for (i, slot) in next.iter_mut().enumerate() {
            let mut row = self.rows[i];
            let mut acc = 0u64;
            while row != 0 {
                acc ^= self.s[row.trailing_zeros() as usize];
                row &= row - 1;
            }
            *slot = acc;
        }
        self.s = next;
    }

    fn state_of(&self, lane: usize) -> u16 {
        let mut st = 0u16;
        for (i, word) in self.s.iter().enumerate() {
            st |= (((word >> lane) & 1) as u16) << i;
        }
        st
    }
}

// ---------------------------------------------------------------------
// Per-phase constants: one set per schedule position, lane residues
// folded in at build time.
// ---------------------------------------------------------------------

struct Consts {
    /// Bit `b` of each lane's `k1` (the smaller key half).
    k1: [u64; 3],
    /// Data-scrambling pattern for span offset `q`: `pat[q % 3]`
    /// (equals `k1` for MHHEA, zero for HHEA).
    pat: [u64; 3],
    /// Bit `b` of each lane's `d = k2 − k1`.
    d: [u64; 3],
    /// Bit `b` of each lane's `(8 − d) & 7` (the wrapped span width − 1).
    d8: [u64; 3],
    /// Lanes whose `d ≥ b` (gates high-byte slice bit `b`).
    dge: [u64; 3],
    /// Lanes whose `k1 == c` (one-hot selector for the slice read); all
    /// zero for HHEA, which ignores the vector entirely.
    one: [u64; 8],
}

fn build_consts(
    key: &Key,
    algorithm: Algorithm,
    schedule_len: usize,
    residues: &[usize],
) -> Vec<Consts> {
    (0..schedule_len)
        .map(|phase| {
            let mut c = Consts {
                k1: [0; 3],
                pat: [0; 3],
                d: [0; 3],
                d8: [0; 3],
                dge: [0; 3],
                one: [0; 8],
            };
            for (j, &r) in residues.iter().enumerate() {
                let (k1, k2) = key.pair((r + phase) % schedule_len).sorted();
                let d = k2 - k1;
                let d8 = (8 - d) & 7;
                let bit = 1u64 << j;
                for b in 0..3 {
                    if (k1 >> b) & 1 == 1 {
                        c.k1[b] |= bit;
                    }
                    if (d >> b) & 1 == 1 {
                        c.d[b] |= bit;
                    }
                    if (d8 >> b) & 1 == 1 {
                        c.d8[b] |= bit;
                    }
                    if d >= b as u8 {
                        c.dge[b] |= bit;
                    }
                }
                if algorithm == Algorithm::Mhhea {
                    c.one[k1 as usize] |= bit;
                }
            }
            if algorithm == Algorithm::Mhhea {
                c.pat = c.k1;
            }
            c
        })
        .collect()
}

// ---------------------------------------------------------------------
// The location scramble, bitsliced: §II's pseudocode across all lanes.
// ---------------------------------------------------------------------

/// Computes each lane's span `(lo, hi)` as three bitsliced bit-planes
/// apiece, from the vector high-byte planes (`hi_bits[c]` = bit `8+c`).
fn locate(c: &Consts, hi_bits: &[u64]) -> ([u64; 3], [u64; 3], [u64; 3]) {
    // slice3[b] = vector bit (k1 + 8 + b), gated to b ≤ d; zero for
    // HHEA (one-hot selectors empty), collapsing kn1 to k1 itself.
    let mut kn1 = [0u64; 3];
    for b in 0..3 {
        let mut sel = 0u64;
        for cc in 0..8 - b {
            sel |= c.one[cc] & hi_bits[cc + b];
        }
        kn1[b] = (sel & c.dge[b]) ^ c.k1[b];
    }
    // kn2 = (kn1 + d) mod 8: a 3-bit ripple adder; the carry-out is the
    // wrap flag (kn2 < kn1 ⇒ the sorted span inverts and widens).
    let s0 = kn1[0] ^ c.d[0];
    let c0 = kn1[0] & c.d[0];
    let t1 = kn1[1] ^ c.d[1];
    let s1 = t1 ^ c0;
    let c1 = (kn1[1] & c.d[1]) | (t1 & c0);
    let t2 = kn1[2] ^ c.d[2];
    let s2 = t2 ^ c1;
    let wrap = (kn1[2] & c.d[2]) | (t2 & c1);
    let sum = [s0, s1, s2];
    let mut lo = [0u64; 3];
    let mut hi = [0u64; 3];
    let mut wm1 = [0u64; 3];
    for b in 0..3 {
        lo[b] = (wrap & sum[b]) | (!wrap & kn1[b]);
        hi[b] = (wrap & kn1[b]) | (!wrap & sum[b]);
        wm1[b] = (wrap & c.d8[b]) | (!wrap & c.d[b]);
    }
    (lo, hi, wm1)
}

/// Per-bit span masks: `msk[b]` holds the lanes whose span covers low
/// bit `b` (`lo ≤ b ≤ hi`).
fn span_masks(lo: &[u64; 3], hi: &[u64; 3]) -> [u64; 8] {
    let (l0, l1, l2) = (lo[0], lo[1], lo[2]);
    let (n0, n1, n2) = (!l0, !l1, !l2);
    let ge = [
        n2 & n1 & n0,
        n2 & n1,
        n2 & (n1 | n0),
        n2,
        n2 | (n1 & n0),
        n2 | n1,
        n2 | n1 | n0,
        !0u64,
    ];
    let (h0, h1, h2) = (hi[0], hi[1], hi[2]);
    let le = [
        !0u64,
        h2 | h1 | h0,
        h2 | h1,
        h2 | (h1 & h0),
        h2,
        h2 & (h1 | h0),
        h2 & h1,
        h2 & h1 & h0,
    ];
    core::array::from_fn(|b| ge[b] & le[b])
}

/// Barrel-shifts the eight span-offset planes left by each lane's `lo`
/// (three mux stages over the shift-amount bit-planes).
fn align_left(raw: &mut [u64; 8], lo: &[u64; 3]) {
    for (k, &p) in lo.iter().enumerate() {
        let sh = 1usize << k;
        let np = !p;
        for b in (0..8).rev() {
            let shifted = if b >= sh { raw[b - sh] } else { 0 };
            raw[b] = (p & shifted) | (np & raw[b]);
        }
    }
}

/// Barrel-shifts the eight low-byte planes right by each lane's `lo`.
fn align_right(raw: &mut [u64; 8], lo: &[u64; 3]) {
    for (k, &p) in lo.iter().enumerate() {
        let sh = 1usize << k;
        let np = !p;
        for b in 0..8 {
            let shifted = if b + sh < 8 { raw[b + sh] } else { 0 };
            raw[b] = (p & shifted) | (np & raw[b]);
        }
    }
}

/// Transposes an 8×8 bit matrix held row-major in a `u64` (three
/// block-swap stages; bit `8r + c` moves to `8c + r`).
#[inline]
fn transpose8(mut x: u64) -> u64 {
    x = (x & 0xF0F0_F0F0_0F0F_0F0F)
        | ((x & 0x0000_0000_F0F0_F0F0) << 28)
        | ((x >> 28) & 0x0000_0000_F0F0_F0F0);
    x = (x & 0xCCCC_3333_CCCC_3333)
        | ((x & 0x0000_CCCC_0000_CCCC) << 14)
        | ((x >> 14) & 0x0000_CCCC_0000_CCCC);
    x = (x & 0xAA55_AA55_AA55_AA55)
        | ((x & 0x00AA_00AA_00AA_00AA) << 7)
        | ((x >> 7) & 0x00AA_00AA_00AA_00AA);
    x
}

/// Reads 8 speculative bits at bit position `pos` (LSB-first); callers
/// guarantee `pos < msg.len() * 8`, and bits past the end read as zero.
#[inline]
fn read8(msg: &[u8], pos: usize) -> u8 {
    let byte = pos >> 3;
    debug_assert!(byte < msg.len());
    let lo = msg[byte] as u16;
    let hi = *msg.get(byte + 1).unwrap_or(&0) as u16;
    ((lo | (hi << 8)) >> (pos & 7)) as u8
}

/// Reads `take ≤ 8` bits at `pos`, LSB-aligned.
#[inline]
fn read_bits_at(msg: &[u8], pos: usize, take: usize) -> u16 {
    (read8(msg, pos) as u16) & ((1u16 << take) - 1)
}

// ---------------------------------------------------------------------
// Seal kernel.
// ---------------------------------------------------------------------

fn seal_group(
    key: &Key,
    algorithm: Algorithm,
    table: &SpanTable,
    jobs: &[LaneSealJob<'_>],
) -> Vec<LaneSealOut> {
    let w = jobs.len();
    debug_assert!(w <= MAX_LANES);
    let schedule_len = table.schedule_len();
    let residues: Vec<usize> = jobs
        .iter()
        .map(|j| (j.block_index % schedule_len as u64) as usize)
        .collect();
    let consts = build_consts(key, algorithm, schedule_len, &residues);
    let mut lfsr = LaneLfsr::new(jobs.iter().map(|j| j.state));

    let bit_lens: Vec<usize> = jobs.iter().map(|j| j.message.len() * 8).collect();
    let mut pos = vec![0usize; w];
    let mut blocks: Vec<Vec<u16>> = bit_lens
        .iter()
        .map(|&b| Vec::with_capacity(b / 4 + 8))
        .collect();
    let mut ret_state = vec![0u16; w];
    let mut active: u64 = if w == 64 { !0 } else { (1u64 << w) - 1 };
    let groups = w.div_ceil(8);

    let mut t: u64 = 0;
    loop {
        // Retire lanes that can no longer fill a full span (< 8 bits
        // left); record the LFSR register they resume the tail from.
        let mut still = active;
        while still != 0 {
            let j = still.trailing_zeros() as usize;
            still &= still - 1;
            if bit_lens[j] - pos[j] < 8 {
                active &= !(1u64 << j);
                ret_state[j] = lfsr.state_of(j);
            }
        }
        if active == 0 {
            break;
        }
        lfsr.step();
        let c = &consts[(t % schedule_len as u64) as usize];
        let (lo, hi, _) = locate(c, &lfsr.s[8..16]);
        let msk = span_masks(&lo, &hi);

        // Feed: 8 speculative message bits per active lane, transposed
        // into span-offset planes m[0..8].
        let mut m = [0u64; 8];
        for g in 0..groups {
            let mut x = 0u64;
            for k in 0..8 {
                let j = g * 8 + k;
                if j < w && (active >> j) & 1 == 1 {
                    x |= (read8(jobs[j].message, pos[j]) as u64) << (8 * k);
                }
            }
            if x != 0 {
                let y = transpose8(x);
                for (q, slot) in m.iter_mut().enumerate() {
                    *slot |= ((y >> (8 * q)) & 0xFF) << (8 * g);
                }
            }
        }
        // Data scramble (offset-indexed pattern) then shift to lo.
        for (q, slot) in m.iter_mut().enumerate() {
            *slot ^= c.pat[q % 3];
        }
        align_left(&mut m, &lo);

        // Substitute the span into the hiding vector's low byte; the
        // high byte travels clear (that is what lets the receiver
        // recompute the scramble).
        let mut clow = [0u64; 8];
        for b in 0..8 {
            let sel = msk[b] & active;
            clow[b] = (lfsr.s[b] & !sel) | (m[b] & sel);
        }

        // Emit: transpose back to per-lane u16 blocks, advance each
        // lane's cursor by its span width (re-read from the scalar
        // table off the block's clear high byte — cheaper than
        // extracting the bitsliced width planes per lane).
        for g in 0..groups {
            let mut xl = 0u64;
            let mut xh = 0u64;
            for (b, cl) in clow.iter().enumerate() {
                xl |= ((cl >> (8 * g)) & 0xFF) << (8 * b);
                xh |= ((lfsr.s[8 + b] >> (8 * g)) & 0xFF) << (8 * b);
            }
            let yl = transpose8(xl);
            let yh = transpose8(xh);
            for k in 0..8 {
                let j = g * 8 + k;
                if j < w && (active >> j) & 1 == 1 {
                    let block = (((yl >> (8 * k)) & 0xFF) as u16)
                        | ((((yh >> (8 * k)) & 0xFF) as u16) << 8);
                    let e = table.entry((jobs[j].block_index + t) as usize, (block >> 8) as u8);
                    blocks[j].push(block);
                    pos[j] += e.width as usize;
                }
            }
        }
        t += 1;
    }

    // Scalar tails: fewer than 8 bits left per lane, at most 7 more
    // blocks each. The leap is applied per block via the matrix (the
    // same linear map the kernel and LfsrSource fold into tables).
    let leap = lfsr::Fibonacci::from_table(16, 1)
        .expect("width 16 is tabulated and seed 1 nonzero")
        .leap_matrix(16);
    jobs.iter()
        .enumerate()
        .map(|(j, job)| {
            let mut st = ret_state[j];
            let mut lane_blocks = core::mem::take(&mut blocks[j]);
            let mut p = pos[j];
            while p < bit_lens[j] {
                st = leap.apply(st as u64) as u16;
                let e = table.entry(
                    (job.block_index + lane_blocks.len() as u64) as usize,
                    (st >> 8) as u8,
                );
                let take = (e.width as usize).min(bit_lens[j] - p);
                lane_blocks.push(e.embed(st, read_bits_at(job.message, p, take), take));
                p += take;
            }
            let produced = lane_blocks.len() as u64;
            LaneSealOut {
                blocks: lane_blocks,
                state: st,
                block_index: job.block_index + produced,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Open kernel.
// ---------------------------------------------------------------------

fn open_group(
    key: &Key,
    algorithm: Algorithm,
    table: &SpanTable,
    jobs: &[LaneOpenJob<'_>],
) -> Result<Vec<Vec<u8>>, MhheaError> {
    let w = jobs.len();
    debug_assert!(w <= MAX_LANES);
    let schedule_len = table.schedule_len();

    // The open direction recomputes spans from the cipher blocks'
    // untouched high bytes, so the per-phase constants are built the
    // same way as on the seal side — but there is no LFSR to run.
    let residues: Vec<usize> = jobs
        .iter()
        .map(|j| (j.block_index % schedule_len as u64) as usize)
        .collect();
    let consts = build_consts(key, algorithm, schedule_len, &residues);

    let mut writers: Vec<bitkit::BitWriter> = (0..w).map(|_| bitkit::BitWriter::new()).collect();
    let mut recovered = vec![0usize; w];
    let mut consumed = vec![0usize; w];
    let mut active: u64 = if w == 64 { !0 } else { (1u64 << w) - 1 };
    let groups = w.div_ceil(8);

    let mut t: usize = 0;
    loop {
        let mut still = active;
        while still != 0 {
            let j = still.trailing_zeros() as usize;
            still &= still - 1;
            if jobs[j].bit_len - recovered[j] < 8 || t >= jobs[j].blocks.len() {
                active &= !(1u64 << j);
            }
        }
        if active == 0 {
            break;
        }
        // Transpose this step's cipher block from every active lane
        // into 16 bit-planes.
        let mut cw = [0u64; 16];
        for g in 0..groups {
            let mut xl = 0u64;
            let mut xh = 0u64;
            for k in 0..8 {
                let j = g * 8 + k;
                if j < w && (active >> j) & 1 == 1 {
                    let block = jobs[j].blocks[t];
                    xl |= ((block & 0xFF) as u64) << (8 * k);
                    xh |= ((block >> 8) as u64) << (8 * k);
                }
            }
            let yl = transpose8(xl);
            let yh = transpose8(xh);
            for b in 0..8 {
                cw[b] |= ((yl >> (8 * b)) & 0xFF) << (8 * g);
                cw[8 + b] |= ((yh >> (8 * b)) & 0xFF) << (8 * g);
            }
        }
        let c = &consts[t % schedule_len];
        let (lo, _hi, _) = locate(c, &cw[8..16]);
        // Extract: shift the low byte down to the span origin and strip
        // the data scramble.
        let mut x: [u64; 8] = core::array::from_fn(|b| cw[b]);
        align_right(&mut x, &lo);
        for (q, slot) in x.iter_mut().enumerate() {
            *slot ^= c.pat[q % 3];
        }
        // Per-lane: transpose back, mask to the span width (read from
        // the scalar table off the clear high byte) and append.
        for g in 0..groups {
            let mut xb = 0u64;
            for (b, slot) in x.iter().enumerate() {
                xb |= ((slot >> (8 * g)) & 0xFF) << (8 * b);
            }
            let yb = transpose8(xb);
            for k in 0..8 {
                let j = g * 8 + k;
                if j < w && (active >> j) & 1 == 1 {
                    let e = table.entry(
                        (jobs[j].block_index + t as u64) as usize,
                        (jobs[j].blocks[t] >> 8) as u8,
                    );
                    let take = e.width as usize;
                    let bits = ((yb >> (8 * k)) & 0xFF) & ((1u64 << take) - 1);
                    writers[j].push_bits(bits, take);
                    recovered[j] += take;
                    consumed[j] = t + 1;
                }
            }
        }
        t += 1;
    }

    // Scalar tails (< 8 bits wanted, or truncated input to report).
    let mut out = Vec::with_capacity(w);
    for (j, job) in jobs.iter().enumerate() {
        let mut writer = core::mem::take(&mut writers[j]);
        let mut got = recovered[j];
        let mut n = consumed[j];
        while got < job.bit_len {
            let Some(&cb) = job.blocks.get(n) else {
                return Err(MhheaError::CiphertextTruncated {
                    got_bits: got,
                    want_bits: job.bit_len,
                });
            };
            let e = table.entry((job.block_index + n as u64) as usize, (cb >> 8) as u8);
            let take = (e.width as usize).min(job.bit_len - got);
            writer.push_bits(e.extract(cb, take) as u64, take);
            got += take;
            n += 1;
        }
        out.push(writer.into_bytes());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::EncryptSession;
    use crate::source::LfsrSource;
    use crate::{Profile, VectorSource};

    fn key(n: usize) -> Key {
        let pairs: Vec<(u8, u8)> = (0..n)
            .map(|i| (((i * 3 + 1) % 8) as u8, ((i * 5 + 2) % 8) as u8))
            .collect();
        Key::from_nibbles(&pairs).expect("in range")
    }

    fn message(len: usize, salt: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
            .collect()
    }

    #[test]
    fn transpose8_matches_naive() {
        for seed in [0x0123_4567_89AB_CDEFu64, !0, 1, 0xA5A5_5A5A_0FF0_F00F] {
            let mut naive = 0u64;
            for r in 0..8 {
                for c in 0..8 {
                    if (seed >> (8 * r + c)) & 1 == 1 {
                        naive |= 1u64 << (8 * c + r);
                    }
                }
            }
            assert_eq!(transpose8(seed), naive, "{seed:#018x}");
        }
    }

    #[test]
    fn lane_lfsr_tracks_scalar_source() {
        let seeds = [1u16, 0xACE1, 0xFFFF, 0x8000, 0x0042, 0xCA06];
        let mut lanes = LaneLfsr::new(seeds.iter().copied());
        let mut scalars: Vec<LfsrSource> = seeds
            .iter()
            .map(|&s| LfsrSource::new(s).expect("nonzero"))
            .collect();
        for (j, &s) in seeds.iter().enumerate() {
            assert_eq!(lanes.state_of(j), s, "initial state lane {j}");
        }
        for step in 0..200 {
            lanes.step();
            for (j, src) in scalars.iter_mut().enumerate() {
                let want = src.next_vector().expect("lfsr never exhausts");
                assert_eq!(lanes.state_of(j), want, "lane {j} step {step}");
            }
        }
    }

    fn scalar_seal(
        key: &Key,
        algorithm: Algorithm,
        seed: u16,
        messages: &[&[u8]],
    ) -> Vec<(Vec<u16>, u64)> {
        let mut session = EncryptSession::with_options(
            key.clone(),
            LfsrSource::new(seed).expect("nonzero"),
            algorithm,
            Profile::Streaming,
        );
        let mut out = Vec::new();
        let mut produced = 0u64;
        for msg in messages {
            let blocks = session.encrypt(msg).expect("lfsr never exhausts");
            produced += blocks.len() as u64;
            out.push((blocks, produced));
        }
        out
    }

    #[test]
    fn seal_lanes_matches_sessions_from_origin() {
        for algorithm in [Algorithm::Hhea, Algorithm::Mhhea] {
            for key_len in [1usize, 3, 8, 16] {
                let k = key(key_len);
                let table = SpanTable::new(&k, algorithm);
                // Mixed sizes, including empty, sub-span and tails that
                // are not a multiple of 8 bits' worth of blocks.
                let msgs: Vec<Vec<u8>> = (0..21)
                    .map(|i| message([0, 1, 2, 7, 8, 9, 63, 64, 65, 200][i % 10] + i, i as u8))
                    .collect();
                let jobs: Vec<LaneSealJob> = msgs
                    .iter()
                    .enumerate()
                    .map(|(i, m)| LaneSealJob {
                        message: m,
                        state: (0x1000 + i as u16) | 1,
                        block_index: 0,
                    })
                    .collect();
                let got = seal_lanes(&k, algorithm, &table, &jobs).expect("seeds nonzero");
                for (i, (job, out)) in jobs.iter().zip(&got).enumerate() {
                    let reference = scalar_seal(&k, algorithm, job.state, &[job.message]);
                    assert_eq!(out.blocks, reference[0].0, "{algorithm} lane {i}");
                    assert_eq!(out.block_index, reference[0].1, "{algorithm} lane {i}");
                }
            }
        }
    }

    #[test]
    fn seal_lanes_resumes_mid_stream_exactly() {
        // Scalar: one session seals msg_a then msg_b. Lanes: seal msg_a
        // from the origin, then msg_b from the returned resume state.
        let k = key(5);
        let algorithm = Algorithm::Mhhea;
        let table = SpanTable::new(&k, algorithm);
        let msg_a = message(37, 7);
        let msg_b = message(90, 11);
        let reference = scalar_seal(&k, algorithm, 0xBEEF, &[&msg_a, &msg_b]);
        let first = seal_lanes(
            &k,
            algorithm,
            &table,
            &[LaneSealJob {
                message: &msg_a,
                state: 0xBEEF,
                block_index: 0,
            }],
        )
        .expect("nonzero");
        assert_eq!(first[0].blocks, reference[0].0);
        let second = seal_lanes(
            &k,
            algorithm,
            &table,
            &[LaneSealJob {
                message: &msg_b,
                state: first[0].state,
                block_index: first[0].block_index,
            }],
        )
        .expect("nonzero");
        assert_eq!(second[0].blocks, reference[1].0);
        assert_eq!(second[0].block_index, reference[1].1);
    }

    #[test]
    fn open_lanes_inverts_seal_lanes() {
        for algorithm in [Algorithm::Hhea, Algorithm::Mhhea] {
            let k = key(7);
            let table = SpanTable::new(&k, algorithm);
            let msgs: Vec<Vec<u8>> = (0..70).map(|i| message(i * 3 % 101, i as u8)).collect();
            let jobs: Vec<LaneSealJob> = msgs
                .iter()
                .enumerate()
                .map(|(i, m)| LaneSealJob {
                    message: m,
                    state: (i as u16).wrapping_mul(2357) | 1,
                    block_index: (i as u64) % 13,
                })
                .collect();
            let sealed = seal_lanes(&k, algorithm, &table, &jobs).expect("nonzero");
            let open_jobs: Vec<LaneOpenJob> = sealed
                .iter()
                .zip(&jobs)
                .map(|(s, j)| LaneOpenJob {
                    blocks: &s.blocks,
                    bit_len: j.message.len() * 8,
                    block_index: j.block_index,
                })
                .collect();
            let opened = open_lanes(&k, algorithm, &table, &open_jobs).expect("complete");
            for (i, (bytes, msg)) in opened.iter().zip(&msgs).enumerate() {
                assert_eq!(bytes, msg, "{algorithm} lane {i}");
            }
        }
    }

    #[test]
    fn open_lanes_reports_truncation() {
        let k = key(4);
        let table = SpanTable::new(&k, Algorithm::Mhhea);
        let msg = message(50, 1);
        let sealed = seal_lanes(
            &k,
            Algorithm::Mhhea,
            &table,
            &[LaneSealJob {
                message: &msg,
                state: 0xACE1,
                block_index: 0,
            }],
        )
        .expect("nonzero");
        let short = &sealed[0].blocks[..sealed[0].blocks.len() / 2];
        let err = open_lanes(
            &k,
            Algorithm::Mhhea,
            &table,
            &[LaneOpenJob {
                blocks: short,
                bit_len: msg.len() * 8,
                block_index: 0,
            }],
        )
        .expect_err("half the blocks cannot carry all bits");
        assert!(matches!(err, MhheaError::CiphertextTruncated { .. }));
    }

    #[test]
    fn zero_state_rejected() {
        let k = key(2);
        let table = SpanTable::new(&k, Algorithm::Mhhea);
        let err = seal_lanes(
            &k,
            Algorithm::Mhhea,
            &table,
            &[LaneSealJob {
                message: b"x",
                state: 0,
                block_index: 0,
            }],
        )
        .expect_err("zero state is the LFSR fixed point");
        assert_eq!(err, MhheaError::InvalidSeed);
    }

    #[test]
    fn more_than_max_lanes_splits_into_groups() {
        let k = key(3);
        let table = SpanTable::new(&k, Algorithm::Mhhea);
        let msgs: Vec<Vec<u8>> = (0..150).map(|i| message(i % 40 + 1, i as u8)).collect();
        let jobs: Vec<LaneSealJob> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| LaneSealJob {
                message: m,
                state: (i as u16 + 1) | 1,
                block_index: 0,
            })
            .collect();
        let got = seal_lanes(&k, Algorithm::Mhhea, &table, &jobs).expect("nonzero");
        assert_eq!(got.len(), 150);
        for (i, (job, out)) in jobs.iter().zip(&got).enumerate() {
            let reference = scalar_seal(&k, Algorithm::Mhhea, job.state, &[job.message]);
            assert_eq!(out.blocks, reference[0].0, "lane {i}");
        }
    }
}
