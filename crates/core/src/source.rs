//! Hiding-vector sources.
//!
//! Every encrypted block needs a fresh 16-bit hiding vector `V`. The paper
//! generates it with a maximal-length LFSR; loading "multimedia cover data"
//! instead turns the same datapath into a steganographic embedder. This
//! module abstracts that choice behind [`VectorSource`].

use lfsr::Fibonacci;

/// Supplies one 16-bit hiding vector per block.
///
/// Sources return `None` when exhausted (only finite cover data does);
/// engines surface that as [`crate::MhheaError::SourceExhausted`].
pub trait VectorSource {
    /// Produces the next hiding vector, or `None` when the source is out.
    fn next_vector(&mut self) -> Option<u16>;
}

/// The paper's random-number-generator module: a 16-bit maximal-length
/// Fibonacci LFSR advanced 16 steps per block (the hardware leap network).
///
/// The 16-step leap is a linear map over GF(2), so — exactly like the
/// hardware's one-clock leap network — it is precomputed at construction:
/// the transition matrix ([`lfsr::Fibonacci::leap_matrix`]) is folded into
/// two 256-entry byte tables and each vector costs two loads and an XOR
/// instead of sixteen serial shift-and-feedback steps. This is what keeps
/// the vector supply off the encrypt hot path's critical time.
///
/// # Examples
///
/// ```
/// use mhhea::{LfsrSource, VectorSource};
///
/// let mut src = LfsrSource::new(0xACE1).expect("nonzero seed");
/// let a = src.next_vector().unwrap();
/// let b = src.next_vector().unwrap();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct LfsrSource {
    state: u16,
    /// `leap(state) = leap_lo[state & 0xFF] ^ leap_hi[state >> 8]`.
    leap_lo: [u16; 256],
    leap_hi: [u16; 256],
}

impl LfsrSource {
    /// Creates the generator from a nonzero 16-bit seed.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`lfsr::LfsrError`] for a zero seed.
    pub fn new(seed: u16) -> Result<Self, lfsr::LfsrError> {
        let reference = Fibonacci::from_table(16, seed as u64)?;
        let leap = reference.leap_matrix(16);
        let mut leap_lo = [0u16; 256];
        let mut leap_hi = [0u16; 256];
        for b in 0..256usize {
            leap_lo[b] = leap.apply(b as u64) as u16;
            leap_hi[b] = leap.apply((b as u64) << 8) as u16;
        }
        Ok(LfsrSource {
            state: seed,
            leap_lo,
            leap_hi,
        })
    }

    /// Current LFSR state (the next vector before leaping).
    pub fn state(&self) -> u16 {
        self.state
    }

    /// Repositions the register at `state` without rebuilding the leap
    /// tables (they depend only on the tap polynomial, not the seed).
    /// This is how the lane engine hands a stream back to the scalar
    /// path bit-exactly.
    ///
    /// # Errors
    ///
    /// Returns [`lfsr::LfsrError::ZeroSeed`] for the all-zero state (the
    /// lattice's fixed point).
    pub fn set_state(&mut self, state: u16) -> Result<(), lfsr::LfsrError> {
        if state == 0 {
            return Err(lfsr::LfsrError::ZeroSeed);
        }
        self.state = state;
        Ok(())
    }
}

impl VectorSource for LfsrSource {
    fn next_vector(&mut self) -> Option<u16> {
        self.state =
            self.leap_lo[(self.state & 0xFF) as usize] ^ self.leap_hi[(self.state >> 8) as usize];
        Some(self.state)
    }
}

/// Adapts any [`rand::Rng`] into a vector source (useful for statistical
/// experiments where LFSR structure must be ruled out).
#[derive(Debug, Clone)]
pub struct RngSource<R> {
    rng: R,
}

impl<R: rand::Rng> RngSource<R> {
    /// Wraps an RNG.
    pub fn new(rng: R) -> Self {
        RngSource { rng }
    }
}

impl<R: rand::Rng> VectorSource for RngSource<R> {
    fn next_vector(&mut self) -> Option<u16> {
        Some(self.rng.gen())
    }
}

/// Steganography mode: hiding vectors come from cover data (e.g. an image
/// or audio buffer) and the "ciphertext" is the slightly modified cover.
///
/// # Examples
///
/// ```
/// use mhhea::{CoverSource, VectorSource};
///
/// let cover = vec![0x1234, 0xCA06];
/// let mut src = CoverSource::new(cover);
/// assert_eq!(src.next_vector(), Some(0x1234));
/// assert_eq!(src.next_vector(), Some(0xCA06));
/// assert_eq!(src.next_vector(), None);
/// ```
#[derive(Debug, Clone)]
pub struct CoverSource {
    words: std::vec::IntoIter<u16>,
}

impl CoverSource {
    /// Wraps cover words (consumed front to back).
    pub fn new(words: Vec<u16>) -> Self {
        CoverSource {
            words: words.into_iter(),
        }
    }

    /// Builds a cover source from bytes, little-endian word packing; a
    /// trailing odd byte is zero-extended.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut words = Vec::with_capacity(bytes.len().div_ceil(2));
        for chunk in bytes.chunks(2) {
            let lo = chunk[0] as u16;
            let hi = chunk.get(1).copied().unwrap_or(0) as u16;
            words.push(lo | (hi << 8));
        }
        CoverSource::new(words)
    }

    /// Words remaining.
    pub fn remaining(&self) -> usize {
        self.words.len()
    }
}

impl VectorSource for CoverSource {
    fn next_vector(&mut self) -> Option<u16> {
        self.words.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lfsr_source_is_deterministic_and_nonrepeating_shortterm() {
        let mut a = LfsrSource::new(0xACE1).unwrap();
        let mut b = LfsrSource::new(0xACE1).unwrap();
        let seq_a: Vec<u16> = (0..64).map(|_| a.next_vector().unwrap()).collect();
        let seq_b: Vec<u16> = (0..64).map(|_| b.next_vector().unwrap()).collect();
        assert_eq!(seq_a, seq_b);
        let distinct: std::collections::HashSet<u16> = seq_a.iter().copied().collect();
        assert!(
            distinct.len() > 60,
            "only {} distinct vectors",
            distinct.len()
        );
    }

    #[test]
    fn lfsr_source_rejects_zero_seed() {
        assert!(LfsrSource::new(0).is_err());
    }

    #[test]
    fn lfsr_leaps_full_width_per_block() {
        // One block must advance the register 16 steps, not 1.
        let mut src = LfsrSource::new(1).unwrap();
        let mut reference = lfsr::Fibonacci::from_table(16, 1).unwrap();
        reference.leap(16);
        assert_eq!(src.next_vector().unwrap() as u64, reference.state());
    }

    #[test]
    fn lfsr_byte_tables_match_serial_reference_long_run() {
        // The table-folded leap network must track the bit-serial register
        // for many blocks (and across the sequence, not just one step).
        for seed in [1u16, 0xACE1, 0xFFFF, 0x8000] {
            let mut src = LfsrSource::new(seed).unwrap();
            let mut reference = lfsr::Fibonacci::from_table(16, seed as u64).unwrap();
            assert_eq!(src.state(), seed);
            for i in 0..1000 {
                reference.leap(16);
                assert_eq!(
                    src.next_vector().unwrap() as u64,
                    reference.state(),
                    "seed {seed:#06x} block {i}"
                );
            }
        }
    }

    #[test]
    fn rng_source_draws() {
        let mut src = RngSource::new(StdRng::seed_from_u64(1));
        let a = src.next_vector().unwrap();
        let b = src.next_vector().unwrap();
        // Astronomically unlikely to be equal for a seeded StdRng.
        assert_ne!((a, b), (0, 0));
    }

    #[test]
    fn cover_source_exhausts() {
        let mut src = CoverSource::new(vec![1, 2]);
        assert_eq!(src.remaining(), 2);
        assert_eq!(src.next_vector(), Some(1));
        assert_eq!(src.next_vector(), Some(2));
        assert_eq!(src.next_vector(), None);
        assert_eq!(src.remaining(), 0);
    }

    #[test]
    fn cover_from_bytes_little_endian() {
        let mut src = CoverSource::from_bytes(&[0x06, 0xCA, 0xFF]);
        assert_eq!(src.next_vector(), Some(0xCA06));
        assert_eq!(src.next_vector(), Some(0x00FF));
        assert_eq!(src.next_vector(), None);
    }
}
