//! Stateful encrypt/decrypt sessions with an explicit stream position.
//!
//! The cipher's key-pair schedule cycles with the *block index*: block `i`
//! uses pair `i mod L`. Any two endpoints exchanging more than one message
//! therefore have to agree on where in that cycle they are — the seed
//! engines did not (the encryptor kept counting, the decryptor restarted
//! at zero) and garbled every message after the first under a multi-pair
//! key. Sessions make the position first-class:
//!
//! * [`StreamCursor`] is the shared position: the block index driving the
//!   key schedule plus, for the hardware profile, the number of message
//!   bits already consumed from the current 16-bit alignment buffer.
//! * [`EncryptSession`] advances its cursor as it seals messages;
//!   [`DecryptSession`] advances in lockstep as it opens them. Encrypting
//!   three messages through one session and decrypting them through one
//!   session round-trips all three, in both profiles.
//! * Both sessions run the **word-level** hot path: a precomputed
//!   [`SpanTable`] turns each block into a few shift/mask operations on
//!   `u16`s instead of a per-bit `Iterator<Item = bool>` loop (see
//!   [`crate::block`]).
//! * Both sessions rotate keys online: [`EncryptSession::rekey`] /
//!   [`DecryptSession::rekey`] move a live stream to a new
//!   [`crate::KeyRing`] epoch (new key, fresh LFSR reseed, cursor back at
//!   the stream origin) with a bit-exact handoff — rekey both endpoints
//!   at the same message boundary and the next message round-trips.
//!
//! The single-shot [`crate::Encryptor`]/[`crate::Decryptor`] wrappers are
//! thin shims that rewind a session before every call.

use crate::block::SpanTable;
use crate::key::KeyRing;
use crate::source::{LfsrSource, VectorSource};
use crate::stats::estimated_blocks;
use crate::{Algorithm, Key, MhheaError, Profile};
use bitkit::{word, BitReader, BitWriter};

/// A position in the cipher-block stream, shared by both endpoints.
///
/// Equal cursors on the encrypt and decrypt side mean the next message
/// round-trips; the container formats and the session regression tests
/// rely on that invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct StreamCursor {
    /// Blocks processed since the start of the stream; drives the key-pair
    /// schedule (`pair = block_index mod schedule length`).
    pub block_index: u64,
    /// Hardware profile only: message bits already consumed from the
    /// current 16-bit alignment buffer (`0..16`). Always `0` at message
    /// boundaries because the message cache pads to whole 32-bit words;
    /// nonzero only while a buffer is partially drained mid-slice.
    pub buffered: u8,
}

/// Why a [`StreamCursor::from_bytes`] round-trip was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CursorDecodeError {
    /// The byte slice is not exactly [`StreamCursor::ENCODED_LEN`] long.
    WrongLength {
        /// Bytes supplied.
        have: usize,
    },
    /// The buffered-bit count is outside `0..16`.
    InvalidBuffered(u8),
}

impl core::fmt::Display for CursorDecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CursorDecodeError::WrongLength { have } => write!(
                f,
                "cursor snapshot must be {} bytes, got {have}",
                StreamCursor::ENCODED_LEN
            ),
            CursorDecodeError::InvalidBuffered(b) => {
                write!(f, "buffered bit count {b} out of range (0..16)")
            }
        }
    }
}

impl std::error::Error for CursorDecodeError {}

impl StreamCursor {
    /// Size of the serialized form: `block_index` (8 bytes, little-endian)
    /// followed by `buffered` (1 byte).
    pub const ENCODED_LEN: usize = 9;

    /// The origin of a fresh stream.
    pub fn start() -> Self {
        StreamCursor::default()
    }

    /// Serializes the cursor (the byte format documented on
    /// [`StreamCursor::ENCODED_LEN`]); [`StreamCursor::from_bytes`]
    /// inverts it. This is what lets a gateway evict an idle stream and
    /// resume it later bit-exactly — the software analogue of context
    /// switching the hardware core.
    pub fn to_bytes(self) -> [u8; StreamCursor::ENCODED_LEN] {
        let mut out = [0u8; StreamCursor::ENCODED_LEN];
        out[0..8].copy_from_slice(&self.block_index.to_le_bytes());
        out[8] = self.buffered;
        out
    }

    /// Deserializes a cursor written by [`StreamCursor::to_bytes`].
    ///
    /// # Errors
    ///
    /// Rejects a slice of the wrong length or a buffered-bit count outside
    /// `0..16` (no 16-bit alignment buffer can hold 16 leftover bits).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CursorDecodeError> {
        if bytes.len() != StreamCursor::ENCODED_LEN {
            return Err(CursorDecodeError::WrongLength { have: bytes.len() });
        }
        let block_index = u64::from_le_bytes(bytes[0..8].try_into().expect("sized"));
        let buffered = bytes[8];
        if buffered >= 16 {
            return Err(CursorDecodeError::InvalidBuffered(buffered));
        }
        Ok(StreamCursor {
            block_index,
            buffered,
        })
    }
}

/// A stateful encryption endpoint: one cursor, many messages.
///
/// # Examples
///
/// ```
/// use mhhea::session::{DecryptSession, EncryptSession};
/// use mhhea::{Key, LfsrSource};
///
/// let key = Key::from_nibbles(&[(0, 3), (2, 5)])?;
/// let mut enc = EncryptSession::new(key.clone(), LfsrSource::new(0xACE1)?);
/// let first = enc.encrypt(b"first")?;
/// let second = enc.encrypt(b"second")?;
///
/// let mut dec = DecryptSession::new(key);
/// assert_eq!(dec.decrypt(&first, 40)?, b"first");
/// assert_eq!(dec.decrypt(&second, 48)?, b"second");
/// assert_eq!(enc.cursor(), dec.cursor());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct EncryptSession<S> {
    key: Key,
    table: SpanTable,
    source: S,
    algorithm: Algorithm,
    profile: Profile,
    cursor: StreamCursor,
    epoch: u32,
}

fn build_table(key: &Key, algorithm: Algorithm, profile: Profile) -> SpanTable {
    match profile {
        Profile::Streaming => SpanTable::new(key, algorithm),
        Profile::HardwareFaithful => SpanTable::new_hw(key, algorithm),
    }
}

impl<S: VectorSource> EncryptSession<S> {
    /// Creates a session at the stream origin (MHHEA, streaming profile).
    pub fn new(key: Key, source: S) -> Self {
        Self::with_options(key, source, Algorithm::Mhhea, Profile::Streaming)
    }

    /// Creates a session with an explicit variant and profile, building
    /// the span table exactly once (preferred over chaining
    /// [`EncryptSession::with_algorithm`]/[`EncryptSession::with_profile`]
    /// when both are known up front, e.g. one session per chunk).
    pub fn with_options(key: Key, source: S, algorithm: Algorithm, profile: Profile) -> Self {
        let table = build_table(&key, algorithm, profile);
        EncryptSession {
            key,
            table,
            source,
            algorithm,
            profile,
            cursor: StreamCursor::start(),
            epoch: 0,
        }
    }

    /// Selects the cipher variant (rebuilds the span table).
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self.table = build_table(&self.key, self.algorithm, self.profile);
        self
    }

    /// Selects the buffering profile (rebuilds the span table: the
    /// hardware profile schedules pairs through the 16-deep key cache).
    #[must_use]
    pub fn with_profile(mut self, profile: Profile) -> Self {
        self.profile = profile;
        self.table = build_table(&self.key, self.algorithm, self.profile);
        self
    }

    /// The current stream position.
    pub fn cursor(&self) -> StreamCursor {
        self.cursor
    }

    /// Resets the cursor to the stream origin **without** touching the
    /// vector source (used by the single-shot [`crate::Encryptor`]).
    pub fn rewind(&mut self) {
        self.cursor = StreamCursor::start();
    }

    /// Moves the session to an explicit stream position (restoring an
    /// evicted stream from a [`StreamCursor::to_bytes`] snapshot). The
    /// caller is responsible for the vector source being at the matching
    /// position — for an LFSR source, reconstruct it from the snapshotted
    /// state.
    pub fn set_cursor(&mut self, cursor: StreamCursor) {
        self.cursor = cursor;
    }

    /// The session's current key epoch (0 until the first rekey).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Forces the epoch counter **without** touching key, source or
    /// cursor — for restoring a snapshotted stream, the epoch analogue of
    /// [`EncryptSession::set_cursor`]. To *rotate*, use
    /// [`EncryptSession::rekey_with`] or [`EncryptSession::rekey`].
    pub fn set_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    /// Rotates the session to a new epoch with explicit materials: the
    /// new key (span table rebuilt), a fresh vector source, and the
    /// cursor reset to the stream origin — the new epoch's schedule
    /// starts from block zero on both endpoints, which is what makes the
    /// handoff bit-exact. Call it only at a message boundary (every point
    /// between [`EncryptSession::encrypt`] calls is one), and mirror it
    /// with [`DecryptSession::rekey_with`] on the peer.
    ///
    /// # Errors
    ///
    /// [`MhheaError::StaleEpoch`] unless `epoch` is strictly newer than
    /// the current epoch — epochs only move forward.
    pub fn rekey_with(&mut self, key: Key, source: S, epoch: u32) -> Result<(), MhheaError> {
        if epoch <= self.epoch {
            return Err(MhheaError::StaleEpoch {
                current: self.epoch,
                requested: epoch,
            });
        }
        self.table = build_table(&key, self.algorithm, self.profile);
        self.key = key;
        self.source = source;
        self.cursor = StreamCursor::start();
        self.epoch = epoch;
        Ok(())
    }

    /// The hiding-vector source (read access: e.g. snapshotting
    /// [`crate::LfsrSource::state`] before evicting the stream).
    pub fn source(&self) -> &S {
        &self.source
    }

    fn next_vector(&mut self) -> Result<u16, MhheaError> {
        self.source
            .next_vector()
            .ok_or(MhheaError::SourceExhausted {
                blocks_produced: self.cursor.block_index as usize,
            })
    }

    /// Encrypts a byte message, advancing the cursor.
    ///
    /// # Errors
    ///
    /// Returns [`MhheaError::SourceExhausted`] when the vector source runs
    /// out (finite cover data).
    pub fn encrypt(&mut self, message: &[u8]) -> Result<Vec<u16>, MhheaError> {
        self.encrypt_bits(message, message.len() * 8)
    }

    /// Encrypts the first `bit_len` bits of `message`, advancing the
    /// cursor.
    ///
    /// # Errors
    ///
    /// See [`EncryptSession::encrypt`].
    ///
    /// # Panics
    ///
    /// Panics if `bit_len` exceeds `message.len() * 8`.
    pub fn encrypt_bits(&mut self, message: &[u8], bit_len: usize) -> Result<Vec<u16>, MhheaError> {
        match self.profile {
            Profile::Streaming => self.encrypt_streaming(message, bit_len),
            Profile::HardwareFaithful => self.encrypt_hw(message, bit_len),
        }
    }

    fn encrypt_streaming(
        &mut self,
        message: &[u8],
        bit_len: usize,
    ) -> Result<Vec<u16>, MhheaError> {
        let mut reader = BitReader::with_bit_len(message, bit_len);
        let mut blocks = Vec::with_capacity(estimated_blocks(&self.key, self.algorithm, bit_len));
        while !reader.is_eof() {
            let v = self.next_vector()?;
            let e = self
                .table
                .entry(self.cursor.block_index as usize, (v >> 8) as u8);
            let (bits, got) = reader.read_bits16(e.width as usize);
            blocks.push(e.embed(v, bits, got));
            self.cursor.block_index += 1;
        }
        Ok(blocks)
    }

    fn encrypt_hw(&mut self, message: &[u8], bit_len: usize) -> Result<Vec<u16>, MhheaError> {
        let mut reader = BitReader::with_bit_len(message, bit_len);
        let mut blocks = Vec::with_capacity(estimated_blocks(&self.key, self.algorithm, bit_len));
        // The message cache loads 32-bit words; each supplies two 16-bit
        // halves to the alignment buffer, least significant first
        // (zero-padded at end of message).
        let half_count = bit_len.div_ceil(32) * 2;
        for _ in 0..half_count {
            let (mut reg, _) = reader.read_bits16(16);
            let mut consumed = self.cursor.buffered as usize;
            while consumed < 16 {
                let v = self.next_vector()?;
                let e = self
                    .table
                    .entry(self.cursor.block_index as usize, (v >> 8) as u8);
                // Circ state: rotate the next message bits onto the span,
                // then blind full-span replacement (Encrypt state).
                let aligned = word::rotl16(reg, e.lo as u32);
                blocks.push(e.embed_aligned(v, aligned));
                // Rotate consumed bits away: next bits return to the LSBs.
                reg = word::rotr16(aligned, e.lo as u32 + e.width as u32);
                consumed += e.width as usize;
                self.cursor.block_index += 1;
            }
            // The buffer always drains completely (full-span replacement
            // overshoots past 16); the next half starts fresh.
            self.cursor.buffered = 0;
        }
        Ok(blocks)
    }
}

impl EncryptSession<LfsrSource> {
    /// Rotates to `epoch` using a [`KeyRing`]: the epoch's key and a
    /// fresh LFSR reseeded with [`KeyRing::seed`]`(epoch)`, cursor back
    /// at the stream origin. See [`EncryptSession::rekey_with`] for the
    /// handoff contract.
    ///
    /// # Errors
    ///
    /// [`MhheaError::StaleEpoch`] unless `epoch` is strictly newer.
    ///
    /// ```
    /// use mhhea::session::{DecryptSession, EncryptSession};
    /// use mhhea::{Key, KeyRing, LfsrSource};
    ///
    /// let ring = KeyRing::single(Key::from_nibbles(&[(0, 3), (2, 5)])?, 0xACE1)?;
    /// let mut enc = EncryptSession::new(ring.key(0).clone(), LfsrSource::new(ring.seed(0))?);
    /// let mut dec = DecryptSession::new(ring.key(0).clone());
    ///
    /// let before = enc.encrypt(b"epoch zero")?;
    /// assert_eq!(dec.decrypt(&before, 80)?, b"epoch zero");
    ///
    /// enc.rekey(&ring, 1)?;
    /// dec.rekey(&ring, 1)?;
    /// let after = enc.encrypt(b"epoch one!")?;
    /// assert_eq!(dec.decrypt(&after, 80)?, b"epoch one!");
    /// assert_eq!(enc.epoch(), 1);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn rekey(&mut self, ring: &KeyRing, epoch: u32) -> Result<(), MhheaError> {
        let source = LfsrSource::new(ring.seed(epoch)).map_err(|_| MhheaError::InvalidSeed)?;
        self.rekey_with(ring.key(epoch).clone(), source, epoch)
    }

    /// Lane-engine handoff: the schedule position and LFSR register the
    /// bitsliced kernel resumes this stream from.
    pub(crate) fn lane_snapshot(&self) -> (u64, u16) {
        (self.cursor.block_index, self.source.state())
    }

    /// Lane-engine handback: moves the stream to the kernel's final
    /// schedule position and LFSR register — the exact state a scalar
    /// [`EncryptSession::encrypt`] of the same bytes would have reached.
    pub(crate) fn lane_commit(&mut self, block_index: u64, state: u16) -> Result<(), MhheaError> {
        self.source
            .set_state(state)
            .map_err(|_| MhheaError::InvalidSeed)?;
        self.cursor.block_index = block_index;
        Ok(())
    }

    /// The session's span table, shared across lanes by the batch
    /// scheduler instead of rebuilding one per job.
    pub(crate) fn span_table(&self) -> &SpanTable {
        &self.table
    }
}

/// A stateful decryption endpoint mirroring an [`EncryptSession`].
///
/// Feed it the same message boundaries the encrypt side used and the
/// cursors stay in lockstep; see the module docs and the example on
/// [`EncryptSession`].
#[derive(Debug, Clone)]
pub struct DecryptSession {
    table: SpanTable,
    algorithm: Algorithm,
    profile: Profile,
    cursor: StreamCursor,
    key: Key,
    epoch: u32,
}

impl DecryptSession {
    /// Creates a session at the stream origin (MHHEA, streaming profile).
    pub fn new(key: Key) -> Self {
        Self::with_options(key, Algorithm::Mhhea, Profile::Streaming)
    }

    /// Creates a session with an explicit variant and profile, building
    /// the span table exactly once (preferred over chaining the builders
    /// when both are known up front).
    pub fn with_options(key: Key, algorithm: Algorithm, profile: Profile) -> Self {
        let table = build_table(&key, algorithm, profile);
        DecryptSession {
            table,
            algorithm,
            profile,
            cursor: StreamCursor::start(),
            key,
            epoch: 0,
        }
    }

    /// Selects the cipher variant (must match the encrypt side).
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self.table = build_table(&self.key, self.algorithm, self.profile);
        self
    }

    /// Selects the buffering profile (must match the encrypt side).
    #[must_use]
    pub fn with_profile(mut self, profile: Profile) -> Self {
        self.profile = profile;
        self.table = build_table(&self.key, self.algorithm, self.profile);
        self
    }

    /// The current stream position.
    pub fn cursor(&self) -> StreamCursor {
        self.cursor
    }

    /// Resets the cursor to the stream origin (used by the single-shot
    /// [`crate::Decryptor`]).
    pub fn rewind(&mut self) {
        self.cursor = StreamCursor::start();
    }

    /// Moves the session to an explicit stream position (restoring an
    /// evicted stream from a [`StreamCursor::to_bytes`] snapshot).
    pub fn set_cursor(&mut self, cursor: StreamCursor) {
        self.cursor = cursor;
    }

    /// The session's current key epoch (0 until the first rekey).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Forces the epoch counter **without** touching key or cursor — for
    /// restoring a snapshotted stream, the epoch analogue of
    /// [`DecryptSession::set_cursor`]. To *rotate*, use
    /// [`DecryptSession::rekey_with`] or [`DecryptSession::rekey`].
    pub fn set_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    /// Rotates the session to a new epoch with an explicit key, resetting
    /// the cursor to the stream origin — the decrypt half of the
    /// bit-exact handoff [`EncryptSession::rekey_with`] describes. Call
    /// it at the same message boundary the encrypt side rotated at.
    ///
    /// # Errors
    ///
    /// [`MhheaError::StaleEpoch`] unless `epoch` is strictly newer than
    /// the current epoch.
    pub fn rekey_with(&mut self, key: Key, epoch: u32) -> Result<(), MhheaError> {
        if epoch <= self.epoch {
            return Err(MhheaError::StaleEpoch {
                current: self.epoch,
                requested: epoch,
            });
        }
        self.table = build_table(&key, self.algorithm, self.profile);
        self.key = key;
        self.cursor = StreamCursor::start();
        self.epoch = epoch;
        Ok(())
    }

    /// Rotates to `epoch` using a [`KeyRing`] (the epoch's key; the seed
    /// only matters on the encrypt side). See the doctest on
    /// [`EncryptSession::rekey`] for the paired usage.
    ///
    /// # Errors
    ///
    /// [`MhheaError::StaleEpoch`] unless `epoch` is strictly newer.
    pub fn rekey(&mut self, ring: &KeyRing, epoch: u32) -> Result<(), MhheaError> {
        self.rekey_with(ring.key(epoch).clone(), epoch)
    }

    /// Recovers `bit_len` message bits from one message's cipher blocks,
    /// advancing the cursor past all of them. Returns
    /// `ceil(bit_len / 8)` bytes (trailing bits zero).
    ///
    /// # Errors
    ///
    /// Returns [`MhheaError::CiphertextTruncated`] when the blocks carry
    /// fewer than `bit_len` bits.
    pub fn decrypt(&mut self, blocks: &[u16], bit_len: usize) -> Result<Vec<u8>, MhheaError> {
        let mut cursor = self.cursor;
        let result = decrypt_at(&self.table, self.profile, &mut cursor, blocks, bit_len);
        if result.is_ok() {
            self.cursor = cursor;
        }
        result
    }
}

/// The word-level decrypt hot path, shared by [`DecryptSession`] and the
/// single-shot [`crate::Decryptor`] (which replays from a fresh cursor on
/// every call instead of mutating a session).
pub(crate) fn decrypt_at(
    table: &SpanTable,
    profile: Profile,
    cursor: &mut StreamCursor,
    blocks: &[u16],
    bit_len: usize,
) -> Result<Vec<u8>, MhheaError> {
    let mut writer = BitWriter::new();
    let mut recovered = 0usize;
    let base = cursor.block_index;
    match profile {
        Profile::Streaming => {
            for (i, &cipher) in blocks.iter().enumerate() {
                if recovered >= bit_len {
                    break;
                }
                let e = table.entry((base + i as u64) as usize, (cipher >> 8) as u8);
                // Extraction is capped by `bit_len` — never trust a
                // (possibly corrupted) header to size the output.
                let take = (e.width as usize).min(bit_len - recovered);
                writer.push_bits(e.extract(cipher, take) as u64, take);
                recovered += take;
            }
        }
        Profile::HardwareFaithful => {
            let mut consumed = cursor.buffered as usize;
            for (i, &cipher) in blocks.iter().enumerate() {
                let e = table.entry((base + i as u64) as usize, (cipher >> 8) as u8);
                // Only the first `fresh` span positions carry new message
                // bits; the rest are the encryptor's stale buffer
                // wrap-around. Extraction is additionally capped by
                // `bit_len` (a corrupted header must not inflate the
                // output or the allocation).
                let fresh = (e.width as usize).min(16 - consumed);
                let take = fresh.min(bit_len.saturating_sub(recovered));
                writer.push_bits(e.extract(cipher, take) as u64, take);
                recovered += take;
                consumed += e.width as usize;
                if consumed >= 16 {
                    consumed = 0;
                }
            }
            cursor.buffered = consumed as u8;
        }
    }
    // Every supplied block advances the schedule — the encrypt side
    // produced all of them for this message, even past the `bit_len` cap.
    cursor.block_index = base + blocks.len() as u64;
    if recovered < bit_len {
        return Err(MhheaError::CiphertextTruncated {
            got_bits: recovered,
            want_bits: bit_len,
        });
    }
    Ok(writer.into_bytes())
}
