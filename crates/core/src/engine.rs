//! Single-shot encryption and decryption engines.
//!
//! Two profiles are provided:
//!
//! * [`Profile::Streaming`] — the paper's pseudocode taken literally: one
//!   global bit cursor, spans truncate only at end of message.
//! * [`Profile::HardwareFaithful`] — a bit-exact model of the FPGA
//!   datapath: the message is processed through a 16-bit alignment buffer
//!   (two halves of each 32-bit `LMsg` word, least-significant half
//!   first), each key pair always replaces its **full** span ("two clock
//!   cycles per key pair regardless of the number of bits replaced"), so
//!   the final span of a buffer may re-embed stale bits that the decryptor
//!   — mirroring the same consumed counter — discards. The key schedule is
//!   the 16-deep key cache ([`crate::Key::expand_cyclic`]).
//!
//! # Cursor semantics
//!
//! The key-pair schedule cycles with the block index, so both endpoints
//! must agree on the stream position. [`Encryptor`] and [`Decryptor`] are
//! **single-shot**: every `encrypt`/`decrypt` call restarts the schedule
//! at block zero (the cursor is rewound), which is what makes a stateless
//! receiver correct — any message a fresh or reused `Encryptor` produces
//! opens with any `Decryptor` holding the key. For continuous multi-
//! message traffic where the position should carry across messages, use
//! the stateful [`crate::session::EncryptSession`] /
//! [`crate::session::DecryptSession`] pair these wrappers are built on.
//!
//! Both profiles are invertible with only the key, the ciphertext and the
//! message bit length; the hiding vector's high byte travels in clear and
//! reseeds the location scrambler on the receive side. Internally both
//! run the word-level span-table fast path (see [`crate::block`]).

use crate::block::SpanTable;
use crate::session::{decrypt_at, EncryptSession, StreamCursor};
use crate::source::VectorSource;
use crate::{Algorithm, Key, MhheaError};

/// Message-buffering discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Profile {
    /// The literal pseudocode: one global bit cursor.
    #[default]
    Streaming,
    /// Bit-exact model of the 16-bit-buffer micro-architecture.
    HardwareFaithful,
}

impl Profile {
    /// Name used in reports and the container header.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Streaming => "streaming",
            Profile::HardwareFaithful => "hardware-faithful",
        }
    }
}

impl core::fmt::Display for Profile {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The single-shot encryption engine: a thin wrapper that rewinds an
/// [`EncryptSession`] before every message.
///
/// # Examples
///
/// ```
/// use mhhea::{Decryptor, Encryptor, Key, LfsrSource};
///
/// let key = Key::from_nibbles(&[(0, 3), (2, 5)])?;
/// let source = LfsrSource::new(0xACE1)?;
/// let mut enc = Encryptor::new(key.clone(), source);
/// let blocks = enc.encrypt(b"hi")?;
/// let dec = Decryptor::new(key);
/// assert_eq!(dec.decrypt(&blocks, 16)?, b"hi");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Encryptor<S> {
    session: EncryptSession<S>,
    blocks_produced: usize,
}

impl<S: VectorSource> Encryptor<S> {
    /// Creates an MHHEA encryptor in the streaming profile.
    pub fn new(key: Key, source: S) -> Self {
        Encryptor {
            session: EncryptSession::new(key, source),
            blocks_produced: 0,
        }
    }

    /// Selects the cipher variant.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.session = self.session.with_algorithm(algorithm);
        self
    }

    /// Selects the buffering profile.
    #[must_use]
    pub fn with_profile(mut self, profile: Profile) -> Self {
        self.session = self.session.with_profile(profile);
        self
    }

    /// Total blocks produced over the encryptor's lifetime (the vector
    /// source advances monotonically even though each message restarts the
    /// key schedule).
    pub fn blocks_produced(&self) -> usize {
        self.blocks_produced
    }

    /// Encrypts a byte message (`bit_len = 8 × message.len()`).
    ///
    /// The key schedule restarts at block zero — the message is decryptable
    /// by any [`Decryptor`] with the key, independent of what this
    /// encryptor produced before.
    ///
    /// # Errors
    ///
    /// Returns [`MhheaError::SourceExhausted`] when the vector source runs
    /// out (finite cover data).
    pub fn encrypt(&mut self, message: &[u8]) -> Result<Vec<u16>, MhheaError> {
        self.encrypt_bits(message, message.len() * 8)
    }

    /// Encrypts the first `bit_len` bits of `message`.
    ///
    /// # Errors
    ///
    /// See [`Encryptor::encrypt`].
    ///
    /// # Panics
    ///
    /// Panics if `bit_len` exceeds `message.len() * 8`.
    pub fn encrypt_bits(&mut self, message: &[u8], bit_len: usize) -> Result<Vec<u16>, MhheaError> {
        self.session.rewind();
        match self.session.encrypt_bits(message, bit_len) {
            Ok(blocks) => {
                self.blocks_produced += blocks.len();
                Ok(blocks)
            }
            Err(MhheaError::SourceExhausted { blocks_produced }) => {
                // The session counts from its rewound origin; surface the
                // lifetime total the way the source sees it.
                self.blocks_produced += blocks_produced;
                Err(MhheaError::SourceExhausted {
                    blocks_produced: self.blocks_produced,
                })
            }
            Err(e) => Err(e),
        }
    }
}

/// The single-shot decryption engine: replays the word-level decrypt path
/// from a fresh stream origin on every call.
#[derive(Debug, Clone)]
pub struct Decryptor {
    key: Key,
    table: SpanTable,
    algorithm: Algorithm,
    profile: Profile,
}

impl Decryptor {
    /// Creates an MHHEA decryptor in the streaming profile.
    pub fn new(key: Key) -> Self {
        let table = SpanTable::new(&key, Algorithm::Mhhea);
        Decryptor {
            key,
            table,
            algorithm: Algorithm::Mhhea,
            profile: Profile::Streaming,
        }
    }

    /// Selects the cipher variant.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self.rebuild_table();
        self
    }

    /// Selects the buffering profile (must match the encryptor).
    #[must_use]
    pub fn with_profile(mut self, profile: Profile) -> Self {
        self.profile = profile;
        self.rebuild_table();
        self
    }

    fn rebuild_table(&mut self) {
        self.table = match self.profile {
            Profile::Streaming => SpanTable::new(&self.key, self.algorithm),
            Profile::HardwareFaithful => SpanTable::new_hw(&self.key, self.algorithm),
        };
    }

    /// Recovers `bit_len` message bits from cipher blocks, returned as
    /// `ceil(bit_len / 8)` bytes (trailing bits zero). Extraction and
    /// output allocation are both capped by `bit_len` in every profile, so
    /// a corrupted length never inflates the result.
    ///
    /// # Errors
    ///
    /// Returns [`MhheaError::CiphertextTruncated`] when the blocks carry
    /// fewer than `bit_len` bits.
    pub fn decrypt(&self, blocks: &[u16], bit_len: usize) -> Result<Vec<u8>, MhheaError> {
        let mut cursor = StreamCursor::start();
        decrypt_at(&self.table, self.profile, &mut cursor, blocks, bit_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CoverSource, LfsrSource, RngSource};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> Key {
        Key::from_nibbles(&[(0, 3), (2, 5), (7, 1), (4, 4), (6, 0), (3, 3)]).unwrap()
    }

    fn roundtrip(algorithm: Algorithm, profile: Profile, message: &[u8]) {
        let src = LfsrSource::new(0xACE1).unwrap();
        let mut enc = Encryptor::new(key(), src)
            .with_algorithm(algorithm)
            .with_profile(profile);
        let blocks = enc.encrypt(message).unwrap();
        let dec = Decryptor::new(key())
            .with_algorithm(algorithm)
            .with_profile(profile);
        let got = dec.decrypt(&blocks, message.len() * 8).unwrap();
        assert_eq!(got, message, "alg={algorithm} profile={profile}");
    }

    #[test]
    fn roundtrip_all_modes() {
        let messages: [&[u8]; 5] = [b"", b"a", b"attack at dawn", &[0u8; 64], &[0xFF; 33]];
        for alg in [Algorithm::Hhea, Algorithm::Mhhea] {
            for profile in [Profile::Streaming, Profile::HardwareFaithful] {
                for msg in messages {
                    roundtrip(alg, profile, msg);
                }
            }
        }
    }

    #[test]
    fn second_message_from_one_encryptor_decrypts_statelessly() {
        // The seed bug: the encryptor's pair index kept counting across
        // messages while the stateless decryptor restarted at zero, so any
        // multi-pair key garbled every message after the first.
        for profile in [Profile::Streaming, Profile::HardwareFaithful] {
            let mut enc =
                Encryptor::new(key(), LfsrSource::new(0xACE1).unwrap()).with_profile(profile);
            let dec = Decryptor::new(key()).with_profile(profile);
            for msg in [b"first message".as_slice(), b"second".as_slice(), b"third!"] {
                let blocks = enc.encrypt(msg).unwrap();
                assert_eq!(
                    dec.decrypt(&blocks, msg.len() * 8).unwrap(),
                    msg,
                    "profile={profile}"
                );
            }
        }
    }

    #[test]
    fn empty_message_produces_no_blocks() {
        for profile in [Profile::Streaming, Profile::HardwareFaithful] {
            let src = LfsrSource::new(1).unwrap();
            let mut enc = Encryptor::new(key(), src).with_profile(profile);
            assert_eq!(enc.encrypt(b"").unwrap(), vec![]);
            assert_eq!(enc.blocks_produced(), 0);
        }
    }

    #[test]
    fn ciphertext_differs_from_message_and_varies_by_seed() {
        let msg = b"the same message";
        let mut e1 = Encryptor::new(key(), LfsrSource::new(0xACE1).unwrap());
        let mut e2 = Encryptor::new(key(), LfsrSource::new(0xBEEF).unwrap());
        let b1 = e1.encrypt(msg).unwrap();
        let b2 = e2.encrypt(msg).unwrap();
        assert_ne!(b1, b2, "different hiding vectors must change blocks");
        // Same seed reproduces exactly.
        let mut e3 = Encryptor::new(key(), LfsrSource::new(0xACE1).unwrap());
        assert_eq!(e3.encrypt(msg).unwrap(), b1);
    }

    #[test]
    fn expansion_factor_is_roughly_16_over_expected_span() {
        let msg = vec![0xA5u8; 4096];
        let mut enc = Encryptor::new(key(), RngSource::new(StdRng::seed_from_u64(7)));
        let blocks = enc.encrypt(&msg).unwrap();
        let bits_in = (msg.len() * 8) as f64;
        let bits_out = (blocks.len() * 16) as f64;
        let expansion = bits_out / bits_in;
        let expected = 16.0 / crate::stats::expected_span_key(&key(), Algorithm::Mhhea);
        assert!(
            (expansion - expected).abs() / expected < 0.05,
            "expansion {expansion:.3} vs expected {expected:.3}"
        );
    }

    #[test]
    fn cover_exhaustion_is_reported() {
        let src = CoverSource::new(vec![0xFFFF; 3]);
        let mut enc = Encryptor::new(key(), src);
        let err = enc.encrypt(&[0xA5; 100]).unwrap_err();
        assert_eq!(err, MhheaError::SourceExhausted { blocks_produced: 3 });
    }

    #[test]
    fn exhaustion_counts_lifetime_blocks() {
        // 10 cover words: the first message takes some, the second runs out;
        // the error reports the lifetime total the source actually supplied.
        let src = CoverSource::new(vec![0xFFFF; 10]);
        let mut enc = Encryptor::new(key(), src);
        let first = enc.encrypt(&[0xA5; 2]).unwrap();
        let err = enc.encrypt(&[0xA5; 100]).unwrap_err();
        assert_eq!(
            err,
            MhheaError::SourceExhausted {
                blocks_produced: 10
            }
        );
        assert_eq!(enc.blocks_produced(), 10);
        assert!(first.len() < 10);
    }

    #[test]
    fn truncated_ciphertext_is_reported() {
        let mut enc = Encryptor::new(key(), LfsrSource::new(0xACE1).unwrap());
        let blocks = enc.encrypt(b"0123456789").unwrap();
        let dec = Decryptor::new(key());
        let err = dec.decrypt(&blocks[..2], 80).unwrap_err();
        assert!(matches!(err, MhheaError::CiphertextTruncated { .. }));
    }

    #[test]
    fn wrong_key_garbles_plaintext() {
        let mut enc = Encryptor::new(key(), LfsrSource::new(0xACE1).unwrap());
        let msg = b"a longer secret message for the wrong-key check";
        let blocks = enc.encrypt(msg).unwrap();
        let wrong = Key::from_nibbles(&[(1, 6), (0, 2), (5, 5)]).unwrap();
        let dec = Decryptor::new(wrong);
        // Wrong key may yield a length error or garbage; never the message.
        match dec.decrypt(&blocks, msg.len() * 8) {
            Ok(got) => assert_ne!(got, msg),
            Err(MhheaError::CiphertextTruncated { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn hw_profile_blocks_cover_whole_halfwords() {
        // Per 16-bit half, embedded spans sum to >= 16 (blind full-span
        // embedding), so block count >= message halves.
        let msg = vec![0x3Cu8; 32]; // 256 bits = 16 halves
        let mut enc = Encryptor::new(key(), LfsrSource::new(0xACE1).unwrap())
            .with_profile(Profile::HardwareFaithful);
        let blocks = enc.encrypt(&msg).unwrap();
        assert!(
            blocks.len() >= 16 * 16 / 8,
            "too few blocks: {}",
            blocks.len()
        );
        // And the two profiles genuinely differ on the same input.
        let mut enc_s = Encryptor::new(key(), LfsrSource::new(0xACE1).unwrap());
        let blocks_s = enc_s.encrypt(&msg).unwrap();
        assert_ne!(blocks, blocks_s);
    }

    #[test]
    fn hw_decrypt_honors_bit_len() {
        // The seed decryptor ignored `bit_len` and extracted bits for every
        // block before truncating; a corrupted (huge) header length must
        // error, not inflate the output, and a short length must cap it.
        let msg = b"0123456789abcdef";
        let mut enc = Encryptor::new(key(), LfsrSource::new(0xACE1).unwrap())
            .with_profile(Profile::HardwareFaithful);
        let blocks = enc.encrypt(msg).unwrap();
        let dec = Decryptor::new(key()).with_profile(Profile::HardwareFaithful);
        // Corrupted-long: errors with the true recovered count.
        let err = dec.decrypt(&blocks, usize::MAX).unwrap_err();
        match err {
            MhheaError::CiphertextTruncated { got_bits, .. } => {
                assert_eq!(got_bits, msg.len() * 8)
            }
            e => panic!("unexpected error {e}"),
        }
        // Corrupted-short: output capped at ceil(bit_len / 8) bytes.
        let short = dec.decrypt(&blocks, 20).unwrap();
        assert_eq!(short.len(), 3);
        assert_eq!(&short[..2], &msg[..2]);
    }

    #[test]
    fn bit_level_message_roundtrip() {
        // 13 bits of a 2-byte buffer.
        let src = LfsrSource::new(0x1357).unwrap();
        let mut enc = Encryptor::new(key(), src);
        let blocks = enc.encrypt_bits(&[0b1010_1010, 0b0001_1111], 13).unwrap();
        let dec = Decryptor::new(key());
        let got = dec.decrypt(&blocks, 13).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], 0b1010_1010);
        assert_eq!(got[1] & 0x1F, 0b0001_1111 & 0x1F);
    }

    #[test]
    fn hw_bit_level_roundtrip_unaligned() {
        // Non-byte-aligned lengths through the 16-bit alignment buffer:
        // 13 bits (mid-half) and 40 bits (mid-word).
        for (bytes, bit_len) in [
            (vec![0b1010_1010u8, 0b0001_1111], 13usize),
            (vec![0xDE, 0xAD, 0xBE, 0xEF, 0x35], 40),
        ] {
            let mut enc = Encryptor::new(key(), LfsrSource::new(0x1357).unwrap())
                .with_profile(Profile::HardwareFaithful);
            let blocks = enc.encrypt_bits(&bytes, bit_len).unwrap();
            let dec = Decryptor::new(key()).with_profile(Profile::HardwareFaithful);
            let got = dec.decrypt(&blocks, bit_len).unwrap();
            assert_eq!(got.len(), bit_len.div_ceil(8));
            for i in 0..bit_len {
                assert_eq!(
                    (got[i / 8] >> (i % 8)) & 1,
                    (bytes[i / 8] >> (i % 8)) & 1,
                    "bit {i} of {bit_len}"
                );
            }
        }
    }

    #[test]
    fn single_pair_key_works() {
        let k = Key::from_nibbles(&[(3, 6)]).unwrap();
        let mut enc = Encryptor::new(k.clone(), LfsrSource::new(42).unwrap());
        let blocks = enc.encrypt(b"x").unwrap();
        let got = Decryptor::new(k).decrypt(&blocks, 8).unwrap();
        assert_eq!(got, b"x");
    }
}
