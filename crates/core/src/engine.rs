//! Streaming encryption and decryption engines.
//!
//! Two profiles are provided:
//!
//! * [`Profile::Streaming`] — the paper's pseudocode taken literally: one
//!   global bit cursor, spans truncate only at end of message.
//! * [`Profile::HardwareFaithful`] — a bit-exact model of the FPGA
//!   datapath: the message is processed through a 16-bit alignment buffer
//!   (two halves of each 32-bit `LMsg` word, least-significant half
//!   first), each key pair always replaces its **full** span ("two clock
//!   cycles per key pair regardless of the number of bits replaced"), so
//!   the final span of a buffer may re-embed stale bits that the decryptor
//!   — mirroring the same consumed counter — discards. The key schedule is
//!   the 16-deep key cache ([`crate::Key::expand_cyclic`]).
//!
//! Both profiles are invertible with only the key, the ciphertext and the
//! message bit length; the hiding vector's high byte travels in clear and
//! reseeds the location scrambler on the receive side.

use crate::block::{self, BlockOutcome};
use crate::key::MAX_PAIRS;
use crate::source::VectorSource;
use crate::{Algorithm, Key, MhheaError};
use bitkit::{word, BitReader, BitWriter};

/// Message-buffering discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Profile {
    /// The literal pseudocode: one global bit cursor.
    #[default]
    Streaming,
    /// Bit-exact model of the 16-bit-buffer micro-architecture.
    HardwareFaithful,
}

impl Profile {
    /// Name used in reports and the container header.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Streaming => "streaming",
            Profile::HardwareFaithful => "hardware-faithful",
        }
    }
}

impl core::fmt::Display for Profile {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The encryption engine.
///
/// # Examples
///
/// ```
/// use mhhea::{Decryptor, Encryptor, Key, LfsrSource};
///
/// let key = Key::from_nibbles(&[(0, 3), (2, 5)])?;
/// let source = LfsrSource::new(0xACE1)?;
/// let mut enc = Encryptor::new(key.clone(), source);
/// let blocks = enc.encrypt(b"hi")?;
/// let dec = Decryptor::new(key);
/// assert_eq!(dec.decrypt(&blocks, 16)?, b"hi");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Encryptor<S> {
    key: Key,
    source: S,
    algorithm: Algorithm,
    profile: Profile,
    blocks_produced: usize,
}

impl<S: VectorSource> Encryptor<S> {
    /// Creates an MHHEA encryptor in the streaming profile.
    pub fn new(key: Key, source: S) -> Self {
        Encryptor {
            key,
            source,
            algorithm: Algorithm::Mhhea,
            profile: Profile::Streaming,
            blocks_produced: 0,
        }
    }

    /// Selects the cipher variant.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the buffering profile.
    #[must_use]
    pub fn with_profile(mut self, profile: Profile) -> Self {
        self.profile = profile;
        self
    }

    /// Total blocks produced over the encryptor's lifetime.
    pub fn blocks_produced(&self) -> usize {
        self.blocks_produced
    }

    /// Encrypts a byte message (`bit_len = 8 × message.len()`).
    ///
    /// # Errors
    ///
    /// Returns [`MhheaError::SourceExhausted`] when the vector source runs
    /// out (finite cover data).
    pub fn encrypt(&mut self, message: &[u8]) -> Result<Vec<u16>, MhheaError> {
        self.encrypt_bits(message, message.len() * 8)
    }

    /// Encrypts the first `bit_len` bits of `message`.
    ///
    /// # Errors
    ///
    /// See [`Encryptor::encrypt`].
    ///
    /// # Panics
    ///
    /// Panics if `bit_len` exceeds `message.len() * 8`.
    pub fn encrypt_bits(&mut self, message: &[u8], bit_len: usize) -> Result<Vec<u16>, MhheaError> {
        match self.profile {
            Profile::Streaming => self.encrypt_streaming(message, bit_len),
            Profile::HardwareFaithful => self.encrypt_hw(message, bit_len),
        }
    }

    fn next_vector(&mut self) -> Result<u16, MhheaError> {
        self.source
            .next_vector()
            .ok_or(MhheaError::SourceExhausted {
                blocks_produced: self.blocks_produced,
            })
    }

    fn encrypt_streaming(
        &mut self,
        message: &[u8],
        bit_len: usize,
    ) -> Result<Vec<u16>, MhheaError> {
        let mut reader = BitReader::with_bit_len(message, bit_len);
        let mut blocks = Vec::new();
        let mut i = self.blocks_produced;
        while !reader.is_eof() {
            let v = self.next_vector()?;
            let pair = self.key.pair(i);
            let BlockOutcome { cipher, .. } = block::embed(self.algorithm, pair, v, &mut reader);
            blocks.push(cipher);
            i += 1;
            self.blocks_produced = i;
        }
        Ok(blocks)
    }

    fn encrypt_hw(&mut self, message: &[u8], bit_len: usize) -> Result<Vec<u16>, MhheaError> {
        let hw_key = self.key.expand_cyclic(MAX_PAIRS);
        let mut reader = BitReader::with_bit_len(message, bit_len);
        let mut blocks = Vec::new();
        // The message cache loads 32-bit words; each supplies two 16-bit
        // halves to the alignment buffer, least significant first.
        let half_count = bit_len.div_ceil(32) * 2;
        for _ in 0..half_count {
            // Load the alignment buffer (zero-padded at end of message).
            let mut reg: u16 = 0;
            for t in 0..16 {
                if let Some(true) = reader.next() {
                    reg |= 1 << t;
                }
            }
            let mut consumed = 0usize;
            while consumed < 16 {
                let v = self.next_vector()?;
                let pair = hw_key.pair(self.blocks_produced);
                let (lo, hi) = block::locations(self.algorithm, pair, v);
                let span = (hi - lo + 1) as usize;
                // Circ state: align the next message bits with the span.
                let ml = word::rotl16(reg, lo as u32);
                // Encrypt state: blind full-span replacement.
                let mut cipher = v;
                for j in lo..=hi {
                    let m = word::bit16(ml, j as u32);
                    let b = m ^ block::pattern_bit(self.algorithm, pair, (j - lo) as usize);
                    cipher = word::replace16(cipher, j as u32, j as u32, b as u16);
                }
                blocks.push(cipher);
                // Rotate consumed bits away: next bits return to the LSBs.
                reg = word::rotr16(ml, hi as u32 + 1);
                consumed += span;
                self.blocks_produced += 1;
            }
        }
        Ok(blocks)
    }
}

/// The decryption engine.
#[derive(Debug, Clone)]
pub struct Decryptor {
    key: Key,
    algorithm: Algorithm,
    profile: Profile,
}

impl Decryptor {
    /// Creates an MHHEA decryptor in the streaming profile.
    pub fn new(key: Key) -> Self {
        Decryptor {
            key,
            algorithm: Algorithm::Mhhea,
            profile: Profile::Streaming,
        }
    }

    /// Selects the cipher variant.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the buffering profile (must match the encryptor).
    #[must_use]
    pub fn with_profile(mut self, profile: Profile) -> Self {
        self.profile = profile;
        self
    }

    /// Recovers `bit_len` message bits from cipher blocks, returned as
    /// `ceil(bit_len / 8)` bytes (trailing bits zero).
    ///
    /// # Errors
    ///
    /// Returns [`MhheaError::CiphertextTruncated`] when the blocks carry
    /// fewer than `bit_len` bits.
    pub fn decrypt(&self, blocks: &[u16], bit_len: usize) -> Result<Vec<u8>, MhheaError> {
        let bits = match self.profile {
            Profile::Streaming => self.decrypt_streaming(blocks, bit_len),
            Profile::HardwareFaithful => self.decrypt_hw(blocks),
        };
        if bits.len() < bit_len {
            return Err(MhheaError::CiphertextTruncated {
                got_bits: bits.len(),
                want_bits: bit_len,
            });
        }
        let mut w = BitWriter::new();
        w.extend(bits.into_iter().take(bit_len));
        Ok(w.into_bytes())
    }

    fn decrypt_streaming(&self, blocks: &[u16], bit_len: usize) -> Vec<bool> {
        // The blocks bound the recoverable bits; never trust `bit_len` for
        // allocation (it may come from a corrupted container header).
        let mut bits = Vec::with_capacity(bit_len.min(blocks.len() * 16));
        for (i, &cipher) in blocks.iter().enumerate() {
            if bits.len() >= bit_len {
                break;
            }
            let pair = self.key.pair(i);
            bits.extend(block::extract(
                self.algorithm,
                pair,
                cipher,
                bit_len - bits.len(),
            ));
        }
        bits
    }

    fn decrypt_hw(&self, blocks: &[u16]) -> Vec<bool> {
        let hw_key = self.key.expand_cyclic(MAX_PAIRS);
        let mut bits = Vec::new();
        let mut consumed = 0usize;
        for (i, &cipher) in blocks.iter().enumerate() {
            let pair = hw_key.pair(i);
            let (lo, hi) = block::locations(self.algorithm, pair, cipher);
            let span = (hi - lo + 1) as usize;
            // Only the first `fresh` positions carry new message bits; the
            // rest are the encryptor's stale buffer wrap-around.
            let fresh = span.min(16 - consumed);
            bits.extend(block::extract(self.algorithm, pair, cipher, fresh));
            consumed += span;
            if consumed >= 16 {
                consumed = 0;
            }
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CoverSource, LfsrSource, RngSource};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> Key {
        Key::from_nibbles(&[(0, 3), (2, 5), (7, 1), (4, 4), (6, 0), (3, 3)]).unwrap()
    }

    fn roundtrip(algorithm: Algorithm, profile: Profile, message: &[u8]) {
        let src = LfsrSource::new(0xACE1).unwrap();
        let mut enc = Encryptor::new(key(), src)
            .with_algorithm(algorithm)
            .with_profile(profile);
        let blocks = enc.encrypt(message).unwrap();
        let dec = Decryptor::new(key())
            .with_algorithm(algorithm)
            .with_profile(profile);
        let got = dec.decrypt(&blocks, message.len() * 8).unwrap();
        assert_eq!(got, message, "alg={algorithm} profile={profile}");
    }

    #[test]
    fn roundtrip_all_modes() {
        let messages: [&[u8]; 5] = [b"", b"a", b"attack at dawn", &[0u8; 64], &[0xFF; 33]];
        for alg in [Algorithm::Hhea, Algorithm::Mhhea] {
            for profile in [Profile::Streaming, Profile::HardwareFaithful] {
                for msg in messages {
                    roundtrip(alg, profile, msg);
                }
            }
        }
    }

    #[test]
    fn empty_message_produces_no_blocks() {
        for profile in [Profile::Streaming, Profile::HardwareFaithful] {
            let src = LfsrSource::new(1).unwrap();
            let mut enc = Encryptor::new(key(), src).with_profile(profile);
            assert_eq!(enc.encrypt(b"").unwrap(), vec![]);
            assert_eq!(enc.blocks_produced(), 0);
        }
    }

    #[test]
    fn ciphertext_differs_from_message_and_varies_by_seed() {
        let msg = b"the same message";
        let mut e1 = Encryptor::new(key(), LfsrSource::new(0xACE1).unwrap());
        let mut e2 = Encryptor::new(key(), LfsrSource::new(0xBEEF).unwrap());
        let b1 = e1.encrypt(msg).unwrap();
        let b2 = e2.encrypt(msg).unwrap();
        assert_ne!(b1, b2, "different hiding vectors must change blocks");
        // Same seed reproduces exactly.
        let mut e3 = Encryptor::new(key(), LfsrSource::new(0xACE1).unwrap());
        assert_eq!(e3.encrypt(msg).unwrap(), b1);
    }

    #[test]
    fn expansion_factor_is_roughly_16_over_expected_span() {
        let msg = vec![0xA5u8; 4096];
        let mut enc = Encryptor::new(key(), RngSource::new(StdRng::seed_from_u64(7)));
        let blocks = enc.encrypt(&msg).unwrap();
        let bits_in = (msg.len() * 8) as f64;
        let bits_out = (blocks.len() * 16) as f64;
        let expansion = bits_out / bits_in;
        let expected = 16.0 / crate::stats::expected_span_key(&key(), Algorithm::Mhhea);
        assert!(
            (expansion - expected).abs() / expected < 0.05,
            "expansion {expansion:.3} vs expected {expected:.3}"
        );
    }

    #[test]
    fn cover_exhaustion_is_reported() {
        let src = CoverSource::new(vec![0xFFFF; 3]);
        let mut enc = Encryptor::new(key(), src);
        let err = enc.encrypt(&[0xA5; 100]).unwrap_err();
        assert_eq!(err, MhheaError::SourceExhausted { blocks_produced: 3 });
    }

    #[test]
    fn truncated_ciphertext_is_reported() {
        let mut enc = Encryptor::new(key(), LfsrSource::new(0xACE1).unwrap());
        let blocks = enc.encrypt(b"0123456789").unwrap();
        let dec = Decryptor::new(key());
        let err = dec.decrypt(&blocks[..2], 80).unwrap_err();
        assert!(matches!(err, MhheaError::CiphertextTruncated { .. }));
    }

    #[test]
    fn wrong_key_garbles_plaintext() {
        let mut enc = Encryptor::new(key(), LfsrSource::new(0xACE1).unwrap());
        let msg = b"a longer secret message for the wrong-key check";
        let blocks = enc.encrypt(msg).unwrap();
        let wrong = Key::from_nibbles(&[(1, 6), (0, 2), (5, 5)]).unwrap();
        let dec = Decryptor::new(wrong);
        // Wrong key may yield a length error or garbage; never the message.
        match dec.decrypt(&blocks, msg.len() * 8) {
            Ok(got) => assert_ne!(got, msg),
            Err(MhheaError::CiphertextTruncated { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn hw_profile_blocks_cover_whole_halfwords() {
        // Per 16-bit half, embedded spans sum to >= 16 (blind full-span
        // embedding), so block count >= message halves.
        let msg = vec![0x3Cu8; 32]; // 256 bits = 16 halves
        let mut enc = Encryptor::new(key(), LfsrSource::new(0xACE1).unwrap())
            .with_profile(Profile::HardwareFaithful);
        let blocks = enc.encrypt(&msg).unwrap();
        assert!(
            blocks.len() >= 16 * 16 / 8,
            "too few blocks: {}",
            blocks.len()
        );
        // And the two profiles genuinely differ on the same input.
        let mut enc_s = Encryptor::new(key(), LfsrSource::new(0xACE1).unwrap());
        let blocks_s = enc_s.encrypt(&msg).unwrap();
        assert_ne!(blocks, blocks_s);
    }

    #[test]
    fn bit_level_message_roundtrip() {
        // 13 bits of a 2-byte buffer.
        let src = LfsrSource::new(0x1357).unwrap();
        let mut enc = Encryptor::new(key(), src);
        let blocks = enc.encrypt_bits(&[0b1010_1010, 0b0001_1111], 13).unwrap();
        let dec = Decryptor::new(key());
        let got = dec.decrypt(&blocks, 13).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], 0b1010_1010);
        assert_eq!(got[1] & 0x1F, 0b0001_1111 & 0x1F);
    }

    #[test]
    fn single_pair_key_works() {
        let k = Key::from_nibbles(&[(3, 6)]).unwrap();
        let mut enc = Encryptor::new(k.clone(), LfsrSource::new(42).unwrap());
        let blocks = enc.encrypt(b"x").unwrap();
        let got = Decryptor::new(k).decrypt(&blocks, 8).unwrap();
        assert_eq!(got, b"x");
    }
}
