//! The Modified Hybrid Hiding Encryption Algorithm (MHHEA).
//!
//! This crate is the software reference implementation of the cipher from
//! *"An Improved FPGA Implementation of the Modified Hybrid Hiding
//! Encryption Algorithm (MHHEA) for Data Communication Security"* (Farouk &
//! Saeb, DATE 2005), together with the original HHEA baseline the paper
//! compares against.
//!
//! # The cipher in one paragraph
//!
//! MHHEA hides plaintext bits inside 16-bit random *hiding vectors* drawn
//! from an LFSR (or, in steganography mode, from user cover data). A secret
//! key of up to sixteen 3-bit pairs picks, per vector, a span of bit
//! positions in the low byte; the span's location is *scrambled* by the
//! vector's high byte and the hidden bits are XORed with a repeating key
//! pattern. The high byte travels unmodified, which is what lets the
//! receiver recompute the scrambled locations and invert the embedding.
//!
//! # Modules
//!
//! * [`key`] — key material ([`Key`], [`KeyPair`]), the hardware key
//!   schedule, and the epoch-numbered [`KeyRing`] behind online key
//!   rotation.
//! * [`source`] — hiding-vector sources: LFSR (the paper's RNG module),
//!   any [`rand::Rng`], or cover data for steganography mode.
//! * [`block`] — the per-vector primitives: location scrambling, embedding
//!   and extraction, for both MHHEA and HHEA.
//! * [`engine`] — single-shot [`Encryptor`]/[`Decryptor`] in two profiles:
//!   the paper's pseudocode ([`Profile::Streaming`]) and the bit-exact
//!   model of the FPGA datapath ([`Profile::HardwareFaithful`]).
//! * [`session`] — stateful [`EncryptSession`]/[`DecryptSession`] carrying
//!   an explicit [`StreamCursor`], so multi-message traffic keeps both
//!   endpoints' key schedules in lockstep; both sessions rekey in place
//!   to a new [`KeyRing`] epoch with a bit-exact cursor handoff.
//! * [`lanes`] — the bitsliced lockstep engine: up to 64 streams (or
//!   container chunks) packed one-per-bit into `u64` lanes, advancing
//!   every lane's LFSR and hiding-vector substitution per instruction;
//!   the batch APIs fall back to the scalar span-table path for tails
//!   and below-threshold batches.
//! * [`pipeline`] — chunk planning, per-chunk seed derivation and the
//!   persistent [`pipeline::WorkerPool`] every parallel path submits to.
//! * [`container`] — a self-describing byte format so decryption knows the
//!   message length, profile and key fingerprint; v2 frames the payload
//!   into independently-seeded chunks that seal and open in parallel.
//! * [`gateway`] — a sharded [`StreamMux`] owning thousands of concurrent
//!   sessions keyed by [`StreamId`], with batched encrypt/seal APIs and
//!   evictable, bit-exact-resumable stream snapshots.
//! * [`stats`] — expected span width, expansion factor and throughput
//!   accounting used by the paper's evaluation.
//!
//! # Examples
//!
//! ```
//! use mhhea::{Algorithm, Key, Profile};
//! use mhhea::container::{open, seal, SealOptions};
//!
//! let key = Key::from_nibbles(&[(0, 3), (2, 5), (1, 7), (4, 6)])?;
//! let sealed = seal(&key, b"attack at dawn", &SealOptions::default())?;
//! let recovered = open(&key, &sealed)?;
//! assert_eq!(recovered, b"attack at dawn");
//! # let _ = (Algorithm::Mhhea, Profile::Streaming);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod block;
pub mod container;
pub mod engine;
pub mod gateway;
pub mod key;
pub mod lanes;
pub mod pipeline;
pub mod session;
pub mod source;
pub mod stats;

pub use engine::{Decryptor, Encryptor, Profile};
pub use gateway::{StreamConfig, StreamId, StreamMux};
pub use key::{Key, KeyError, KeyPair, KeyRing};
pub use session::{CursorDecodeError, DecryptSession, EncryptSession, StreamCursor};
pub use source::{CoverSource, LfsrSource, RngSource, VectorSource};

/// Which cipher variant to run.
///
/// The paper's contribution is [`Algorithm::Mhhea`]; the original
/// [`Algorithm::Hhea`] (no location or data scrambling) is implemented as
/// the baseline its security argument is made against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// Original Hybrid Hiding Encryption Algorithm: the span is the sorted
    /// key pair itself and message bits are embedded unmodified.
    Hhea,
    /// Modified HHEA: span location scrambled by the vector's high byte,
    /// message bits XORed with the repeating low-key bit pattern.
    #[default]
    Mhhea,
}

impl Algorithm {
    /// Human-readable name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Hhea => "HHEA",
            Algorithm::Mhhea => "MHHEA",
        }
    }
}

impl core::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Errors produced by the MHHEA engines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MhheaError {
    /// Key construction or validation failed.
    Key(KeyError),
    /// The hiding-vector source ran out (finite cover data).
    SourceExhausted {
        /// Blocks produced before exhaustion.
        blocks_produced: usize,
    },
    /// An LFSR seed of zero was supplied (the all-zero state is the
    /// lattice's fixed point and never produces a vector).
    InvalidSeed,
    /// The ciphertext ended before the promised number of message bits was
    /// recovered.
    CiphertextTruncated {
        /// Bits recovered.
        got_bits: usize,
        /// Bits promised.
        want_bits: usize,
    },
    /// A rekey named an epoch that is not strictly newer than the
    /// session's current one — epochs only move forward (accepting a
    /// stale epoch would replay a retired key schedule).
    StaleEpoch {
        /// The session's current epoch.
        current: u32,
        /// The rejected epoch.
        requested: u32,
    },
}

impl core::fmt::Display for MhheaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MhheaError::Key(e) => write!(f, "key error: {e}"),
            MhheaError::SourceExhausted { blocks_produced } => write!(
                f,
                "hiding-vector source exhausted after {blocks_produced} blocks"
            ),
            MhheaError::InvalidSeed => {
                write!(f, "LFSR seed must be nonzero")
            }
            MhheaError::CiphertextTruncated {
                got_bits,
                want_bits,
            } => write!(
                f,
                "ciphertext truncated: recovered {got_bits} of {want_bits} bits"
            ),
            MhheaError::StaleEpoch { current, requested } => write!(
                f,
                "rekey to epoch {requested} rejected: stream is already at epoch {current}"
            ),
        }
    }
}

impl std::error::Error for MhheaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MhheaError::Key(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KeyError> for MhheaError {
    fn from(e: KeyError) -> Self {
        MhheaError::Key(e)
    }
}
