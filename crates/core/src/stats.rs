//! Span statistics and throughput accounting.
//!
//! The paper's Table 1 computes throughput as "the reciprocal of minimum
//! period times the expected output number of information bits", using 4
//! expected bits per period. The exact expectation over uniform key pairs
//! is 3.625 bits per key pair (see [`uniform_expected_span`]); this module
//! provides both accountings plus the per-key exact values used by the
//! expansion-factor experiments.

use crate::block::scramble_locations;
use crate::{Algorithm, Key, KeyPair};

/// The "expected output number of information bits" the paper plugs into
/// its throughput formula (E\[span\] = 3.625 rounded up).
pub const PAPER_BITS_PER_PERIOD: f64 = 4.0;

/// Exact expected span width of one key pair under `algorithm`, averaged
/// over uniformly random hiding vectors.
///
/// For HHEA the span never depends on the vector; for MHHEA the high-byte
/// slice is enumerated exhaustively (`2^w` equally likely values).
///
/// ```
/// use mhhea::{Algorithm, KeyPair};
/// use mhhea::stats::expected_span_pair;
///
/// let p = KeyPair::new(2, 5).unwrap();
/// assert_eq!(expected_span_pair(p, Algorithm::Hhea), 4.0);
/// let m = expected_span_pair(p, Algorithm::Mhhea);
/// assert!(m >= 1.0 && m <= 8.0);
/// ```
pub fn expected_span_pair(pair: KeyPair, algorithm: Algorithm) -> f64 {
    match algorithm {
        Algorithm::Hhea => pair.span_width() as f64,
        Algorithm::Mhhea => {
            let (k1, k2) = pair.sorted();
            let w = (k2 - k1 + 1) as u32;
            let combos = 1u32 << w;
            let mut total = 0u32;
            for slice in 0..combos {
                // Build a vector whose high-byte slice equals `slice`.
                let v = (slice as u16) << (8 + k1);
                let (lo, hi) = scramble_locations(pair, v);
                total += (hi - lo + 1) as u32;
            }
            total as f64 / combos as f64
        }
    }
}

/// Expected span width across a key's pair cycle.
pub fn expected_span_key(key: &Key, algorithm: Algorithm) -> f64 {
    let total: f64 = key
        .pairs()
        .iter()
        .map(|&p| expected_span_pair(p, algorithm))
        .sum();
    total / key.len() as f64
}

/// Expected span width over *uniformly random* pairs — the population
/// value behind the paper's "4 expected bits": exactly 3.625 for HHEA and
/// 3.6016 for MHHEA (the mod-8 wrap of the scrambled upper bound slightly
/// shrinks the average span when the high-byte slice is narrower than
/// 3 bits, so `kn₁` is not quite uniform).
pub fn uniform_expected_span(algorithm: Algorithm) -> f64 {
    let mut total = 0.0;
    for l in 0..=7u8 {
        for r in 0..=7u8 {
            total += expected_span_pair(KeyPair::new(l, r).expect("valid"), algorithm);
        }
    }
    total / 64.0
}

/// Ciphertext expansion: output bits per message bit (`16 / E[span]`).
pub fn expansion_factor(key: &Key, algorithm: Algorithm) -> f64 {
    16.0 / expected_span_key(key, algorithm)
}

/// Estimated cipher-block count for a `bit_len`-bit message — `bit_len /
/// E[span]` plus one cycle of slack. The sessions use it to pre-size block
/// buffers (it is an estimate, not a bound: a pathological vector sequence
/// can exceed it, and `Vec` absorbs the difference).
pub fn estimated_blocks(key: &Key, algorithm: Algorithm, bit_len: usize) -> usize {
    if bit_len == 0 {
        return 0;
    }
    (bit_len as f64 / expected_span_key(key, algorithm)).ceil() as usize + key.len()
}

/// The paper's throughput formula: `bits_per_period / min_period`.
///
/// `95.532 Mbps = 4 bits / 41.871 ns` reproduces Table 1's MHHEA row.
///
/// ```
/// use mhhea::stats::{paper_throughput_mbps, PAPER_BITS_PER_PERIOD};
/// let t = paper_throughput_mbps(41.871, PAPER_BITS_PER_PERIOD);
/// assert!((t - 95.532).abs() < 0.01);
/// ```
pub fn paper_throughput_mbps(min_period_ns: f64, bits_per_period: f64) -> f64 {
    assert!(min_period_ns > 0.0, "period must be positive");
    bits_per_period / min_period_ns * 1000.0
}

/// Strict two-cycle accounting: each key pair costs one `Circ` plus one
/// `Encrypt` cycle, delivering `expected_span` fresh bits.
pub fn two_cycle_throughput_mbps(min_period_ns: f64, expected_span: f64) -> f64 {
    paper_throughput_mbps(min_period_ns, expected_span / 2.0)
}

/// Measured throughput from a cycle-accurate run.
pub fn measured_throughput_mbps(bits: usize, cycles: u64, min_period_ns: f64) -> f64 {
    assert!(cycles > 0, "cycle count must be positive");
    bits as f64 / (cycles as f64 * min_period_ns) * 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(l: u8, r: u8) -> KeyPair {
        KeyPair::new(l, r).unwrap()
    }

    #[test]
    fn uniform_expectation_values() {
        assert!((uniform_expected_span(Algorithm::Hhea) - 3.625).abs() < 1e-12);
        // Exact enumeration: 3.6015625 (= 230.5/64). The wrap in
        // `kn2 = (kn1 + diff) mod 8` trims the average slightly.
        assert!((uniform_expected_span(Algorithm::Mhhea) - 3.6015625).abs() < 1e-12);
    }

    #[test]
    fn hhea_span_is_pair_width() {
        assert_eq!(expected_span_pair(pair(0, 7), Algorithm::Hhea), 8.0);
        assert_eq!(expected_span_pair(pair(4, 4), Algorithm::Hhea), 1.0);
    }

    #[test]
    fn mhhea_full_width_pair_is_unchanged_on_average() {
        // diff = 7: kn2 = (kn1 + 7) % 8; for kn1 = 0 span 8, else span
        // (kn1-1..kn1 sorted) width... enumerate and sanity-check bounds.
        let e = expected_span_pair(pair(0, 7), Algorithm::Mhhea);
        assert!(e > 1.0 && e <= 8.0);
        // diff = 0 spans exactly one bit regardless of scrambling.
        assert_eq!(expected_span_pair(pair(3, 3), Algorithm::Mhhea), 1.0);
    }

    #[test]
    fn mhhea_expectation_matches_monte_carlo() {
        use crate::block::locations;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let p = pair(2, 6);
        let exact = expected_span_pair(p, Algorithm::Mhhea);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let total: u64 = (0..n)
            .map(|_| {
                let v: u16 = rng.gen();
                let (lo, hi) = locations(Algorithm::Mhhea, p, v);
                (hi - lo + 1) as u64
            })
            .sum();
        let mc = total as f64 / n as f64;
        assert!((mc - exact).abs() < 0.02, "mc {mc} vs exact {exact}");
    }

    #[test]
    fn key_expectation_averages_pairs() {
        let key = Key::from_nibbles(&[(0, 7), (3, 3)]).unwrap();
        let e = expected_span_key(&key, Algorithm::Hhea);
        assert_eq!(e, (8.0 + 1.0) / 2.0);
    }

    #[test]
    fn estimated_blocks_tracks_expansion() {
        let key = Key::from_nibbles(&[(0, 7), (3, 3)]).unwrap();
        assert_eq!(estimated_blocks(&key, Algorithm::Hhea, 0), 0);
        // E[span] = 4.5; 900 bits -> 200 blocks + 2 slack.
        assert_eq!(estimated_blocks(&key, Algorithm::Hhea, 900), 202);
        // The estimate is within a few percent of an actual run.
        let msg = vec![0x5Au8; 512];
        let mut enc = crate::Encryptor::new(key.clone(), crate::LfsrSource::new(0xACE1).unwrap());
        let blocks = enc.encrypt(&msg).unwrap();
        let est = estimated_blocks(&key, Algorithm::Mhhea, msg.len() * 8);
        let ratio = blocks.len() as f64 / est as f64;
        assert!((0.9..=1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn expansion_factor_bounds() {
        let dense = Key::from_nibbles(&[(0, 7)]).unwrap();
        let sparse = Key::from_nibbles(&[(5, 5)]).unwrap();
        assert_eq!(expansion_factor(&dense, Algorithm::Hhea), 2.0);
        assert_eq!(expansion_factor(&sparse, Algorithm::Hhea), 16.0);
        let e = expansion_factor(&dense, Algorithm::Mhhea);
        assert!((2.0..=16.0).contains(&e));
    }

    #[test]
    fn paper_throughput_row() {
        let t = paper_throughput_mbps(41.871, PAPER_BITS_PER_PERIOD);
        assert!((t - 95.532).abs() < 0.01, "{t}");
        // Strict accounting halves it (two cycles per pair).
        let strict = two_cycle_throughput_mbps(41.871, 3.625);
        assert!((strict - 43.29).abs() < 0.1, "{strict}");
    }

    #[test]
    fn measured_throughput_formula() {
        // 16 bits in 2 cycles of 10ns = 800 Mbps.
        let t = measured_throughput_mbps(16, 2, 10.0);
        assert!((t - 800.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        paper_throughput_mbps(0.0, 4.0);
    }
}
