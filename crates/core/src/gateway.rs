//! A sharded multi-stream gateway: thousands of concurrent cipher streams
//! over one shared worker pool.
//!
//! The paper's MHHEA core sits on a live data-communication link; a
//! deployment serves *many* such links at once. [`StreamMux`] is that
//! layer in software: it owns one [`EncryptSession`]/[`DecryptSession`]
//! pair per [`StreamId`], keeps them in a sharded session table (one lock
//! per shard, so independent streams never contend), and coalesces batches
//! of small messages from many streams into single submissions to the
//! shared [`WorkerPool`].
//!
//! Three layers of API, from raw to wire-ready:
//!
//! * [`StreamMux::encrypt`]/[`StreamMux::decrypt`] — one message on one
//!   stream, raw 16-bit blocks.
//! * [`StreamMux::encrypt_batch`]/[`StreamMux::decrypt_batch`] — many
//!   messages across many streams, one pool submission per busy shard.
//! * [`StreamMux::seal_batch`]/[`StreamMux::open_batch`] — the same, but
//!   each message travels as a self-describing *gateway frame* carrying
//!   its stream id and bit length.
//!
//! Streams are evictable: [`StreamMux::evict`] serialises a stream's
//! entire resume state (key, cursors, LFSR state) into a snapshot byte
//! string and [`StreamMux::restore`] resumes it bit-exactly — the software
//! analogue of context-switching the FPGA core between channels.
//!
//! # Wire formats
//!
//! Gateway frame (little-endian):
//!
//! ```text
//! offset size field
//! 0      4    magic  "MHGF"
//! 4      1    version (1)
//! 5      3    reserved (0)
//! 8      8    stream id
//! 16     4    message bit length
//! 20     4    block count n
//! 24     2n   blocks (u16 little-endian)
//! ```
//!
//! Stream snapshot (little-endian; **contains key material** — protect it
//! like the key itself). Version 2 is emitted; version 1 — the same
//! layout truncated after the decrypt cursor plus the key pairs — is
//! still restored (as epoch 0 with no keyring):
//!
//! ```text
//! offset size field
//! 0      4    magic  "MHSS"
//! 4      1    version (2; v1 accepted on restore)
//! 5      1    algorithm (0 = HHEA, 1 = MHHEA)
//! 6      1    profile   (0 = streaming, 1 = hardware-faithful)
//! 7      1    current-key pair count P (1..=16)
//! 8      8    stream id
//! 16     2    LFSR state (nonzero)
//! 18     9    encrypt cursor (StreamCursor::to_bytes)
//! 27     9    decrypt cursor (StreamCursor::to_bytes)
//! ---- v1 continues: P key-pair bytes and ends ----
//! 36     4    key epoch (u32)
//! 40     2    keyring master seed (0 iff no keyring)
//! 42     1    keyring key count R (0 = no keyring)
//! 43     1    reserved (0)
//! 44     P    current key pairs, one byte each: left | right << 3
//! 44+P   —    R ring keys, each: 1-byte pair count Pᵢ ∥ Pᵢ pair bytes
//! ```
//!
//! Carrying the epoch and the ring is what lets an evicted stream resume
//! bit-exactly *across a key rotation* and keep rotating afterwards.
//!
//! # Examples
//!
//! ```
//! use mhhea::gateway::{StreamConfig, StreamId, StreamMux};
//! use mhhea::Key;
//!
//! let key = Key::from_nibbles(&[(0, 3), (2, 5)])?;
//! let tx = StreamMux::new();
//! let rx = StreamMux::new();
//! for id in 0..4 {
//!     tx.open(StreamId(id), StreamConfig::new(key.clone()))?;
//!     rx.open(StreamId(id), StreamConfig::new(key.clone()))?;
//! }
//!
//! let batch: Vec<(StreamId, Vec<u8>)> = (0..4)
//!     .map(|id| (StreamId(id), format!("message on {id}").into_bytes()))
//!     .collect();
//! let frames = tx.seal_batch(batch);
//! for frame in frames {
//!     let (id, plain) = rx.open_frame(&frame?)?;
//!     assert_eq!(plain, format!("message on {}", id.0).into_bytes());
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::key::{KeyError, KeyRing, MAX_PAIRS};
use crate::lanes::{seal_lanes, LaneSealJob, LANE_THRESHOLD};
use crate::pipeline::{chunk_seed, WorkerPool};
use crate::session::{CursorDecodeError, DecryptSession, EncryptSession, StreamCursor};
use crate::source::LfsrSource;
use crate::{Algorithm, Key, MhheaError, Profile};

/// Gateway frame magic bytes.
pub const FRAME_MAGIC: [u8; 4] = *b"MHGF";
/// Gateway frame format version.
pub const FRAME_VERSION: u8 = 1;
/// Gateway frame header size in bytes.
pub const FRAME_HEADER_LEN: usize = 24;

/// Stream snapshot magic bytes.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"MHSS";
/// Stream snapshot format version emitted by [`StreamMux::evict`] /
/// [`StreamMux::snapshot`] (v2: carries the key epoch and the keyring).
pub const SNAPSHOT_VERSION: u8 = 2;
/// The legacy snapshot version (no epoch, no keyring);
/// [`StreamMux::restore`] still accepts it.
pub const SNAPSHOT_VERSION_V1: u8 = 1;
/// Snapshot v1 header size (also the v1/v2 shared prefix: everything
/// through the decrypt cursor).
pub const SNAPSHOT_HEADER_LEN: usize = 36;
/// Snapshot v2 header size (v1 prefix + epoch, master seed, ring count).
pub const SNAPSHOT_V2_HEADER_LEN: usize = 44;

/// Default shard count for [`StreamMux::new`].
pub const DEFAULT_SHARDS: usize = 64;

/// Largest message [`StreamMux::seal_batch`] will frame: the frame's bit
/// length travels as a `u32`, so the byte count must stay under
/// `u32::MAX / 8` (a larger message would silently wrap the field).
pub const MAX_FRAME_MESSAGE_BYTES: usize = (u32::MAX / 8) as usize;

/// Identifies one cipher stream within a [`StreamMux`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u64);

impl core::fmt::Display for StreamId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "stream#{}", self.0)
    }
}

/// Per-stream cipher parameters handed to [`StreamMux::open`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// The stream's key (both directions share it).
    pub key: Key,
    /// Cipher variant (default MHHEA).
    pub algorithm: Algorithm,
    /// Buffering profile (default streaming).
    pub profile: Profile,
    /// LFSR seed for the encrypt side's hiding vectors (nonzero; default
    /// `0xACE1`).
    pub seed: u16,
    /// Epoch-numbered key material enabling [`StreamMux::rekey`] /
    /// [`StreamOp::Rekey`] on this stream (default: none — the stream is
    /// pinned to `key` for its whole life and any rekey fails with
    /// [`GatewayError::NoKeyRing`]).
    pub ring: Option<KeyRing>,
}

impl StreamConfig {
    /// A config with the defaults (MHHEA, streaming profile, seed
    /// `0xACE1`, no keyring).
    pub fn new(key: Key) -> Self {
        StreamConfig {
            key,
            algorithm: Algorithm::Mhhea,
            profile: Profile::Streaming,
            seed: 0xACE1,
            ring: None,
        }
    }

    /// Selects the cipher variant.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the buffering profile.
    #[must_use]
    pub fn with_profile(mut self, profile: Profile) -> Self {
        self.profile = profile;
        self
    }

    /// Selects the encrypt-side LFSR seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u16) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches a [`KeyRing`] so the stream can rekey, **and** aligns the
    /// opening materials with the ring's epoch 0: `key` becomes
    /// [`KeyRing::key`]`(0)` and `seed` becomes [`KeyRing::seed`]`(0)`
    /// (the master seed), so the stream's pre-rotation behaviour is
    /// byte-identical to a plain `StreamConfig::new(ring.key(0))` with
    /// that seed.
    #[must_use]
    pub fn with_ring(mut self, ring: KeyRing) -> Self {
        self.key = ring.key(0).clone();
        self.seed = ring.seed(0);
        self.ring = Some(ring);
        self
    }
}

/// Errors decoding a gateway frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameDecodeError {
    /// The frame does not start with [`FRAME_MAGIC`].
    BadMagic,
    /// Unsupported frame version.
    UnsupportedVersion(u8),
    /// The byte stream ended inside the header or block payload.
    Truncated {
        /// Bytes needed.
        need: usize,
        /// Bytes available.
        have: usize,
    },
}

impl core::fmt::Display for FrameDecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameDecodeError::BadMagic => write!(f, "not a gateway frame"),
            FrameDecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported frame version {v}")
            }
            FrameDecodeError::Truncated { need, have } => {
                write!(f, "frame truncated: need {need} bytes, have {have}")
            }
        }
    }
}

impl std::error::Error for FrameDecodeError {}

/// Errors decoding a stream snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotDecodeError {
    /// The snapshot does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// Unsupported snapshot version.
    UnsupportedVersion(u8),
    /// The byte stream ended early.
    Truncated {
        /// Bytes needed.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// Unknown algorithm tag.
    UnknownAlgorithm(u8),
    /// Unknown profile tag.
    UnknownProfile(u8),
    /// Key pair count outside `1..=16`.
    BadPairCount(u8),
    /// The snapshotted LFSR state is zero (the lattice fixed point — a
    /// live stream can never reach it).
    ZeroLfsrState,
    /// A v2 snapshot carries a keyring whose master seed is zero.
    ZeroRingSeed,
    /// A cursor field failed to decode.
    Cursor(CursorDecodeError),
    /// A key pair byte failed validation.
    Key(KeyError),
}

impl core::fmt::Display for SnapshotDecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SnapshotDecodeError::BadMagic => write!(f, "not a stream snapshot"),
            SnapshotDecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotDecodeError::Truncated { need, have } => {
                write!(f, "snapshot truncated: need {need} bytes, have {have}")
            }
            SnapshotDecodeError::UnknownAlgorithm(a) => write!(f, "unknown algorithm tag {a}"),
            SnapshotDecodeError::UnknownProfile(p) => write!(f, "unknown profile tag {p}"),
            SnapshotDecodeError::BadPairCount(n) => {
                write!(f, "key pair count {n} out of range (1..=16)")
            }
            SnapshotDecodeError::ZeroLfsrState => write!(f, "snapshotted LFSR state is zero"),
            SnapshotDecodeError::ZeroRingSeed => {
                write!(f, "snapshotted keyring master seed is zero")
            }
            SnapshotDecodeError::Cursor(e) => write!(f, "cursor field: {e}"),
            SnapshotDecodeError::Key(e) => write!(f, "key field: {e}"),
        }
    }
}

impl std::error::Error for SnapshotDecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotDecodeError::Cursor(e) => Some(e),
            SnapshotDecodeError::Key(e) => Some(e),
            _ => None,
        }
    }
}

/// Errors from gateway operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GatewayError {
    /// [`StreamMux::open`]/[`StreamMux::restore`] hit an id already in the
    /// table.
    StreamExists(StreamId),
    /// The id is not in the table (never opened, closed, or evicted).
    UnknownStream(StreamId),
    /// The message is too large for a gateway frame's 32-bit bit-length
    /// field (limit: [`MAX_FRAME_MESSAGE_BYTES`]). Chunk it — or use
    /// [`crate::container::seal_v2`], which is built for large payloads.
    MessageTooLarge {
        /// The rejected message size.
        bytes: usize,
    },
    /// An engine-level failure on the stream's session.
    Engine(MhheaError),
    /// A gateway frame failed to decode.
    Frame(FrameDecodeError),
    /// A stream snapshot failed to decode.
    Snapshot(SnapshotDecodeError),
    /// [`StreamMux::evict_into`] could not write the snapshot to the
    /// caller's sink. The stream was **not** removed: it is still open and
    /// fully usable.
    SnapshotSink {
        /// The failed write's [`std::io::ErrorKind`].
        kind: std::io::ErrorKind,
    },
    /// A rekey was requested on a stream opened without a [`KeyRing`]
    /// (see [`StreamConfig::with_ring`]). The stream is untouched.
    NoKeyRing(StreamId),
    /// A rekey named an epoch that is not strictly newer than the
    /// stream's current one (a replayed or out-of-order rotation). The
    /// stream is untouched.
    StaleEpoch {
        /// The stream's current epoch.
        current: u32,
        /// The rejected epoch.
        requested: u32,
    },
    /// A batch slot was never filled by the scatter pass. This is an
    /// internal invariant violation that should be unreachable; it is
    /// reported as an error instead of panicking on the serving path.
    MissingResult {
        /// The batch position whose result went missing.
        position: usize,
    },
}

impl core::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GatewayError::StreamExists(id) => write!(f, "stream {} already open", id.0),
            GatewayError::UnknownStream(id) => write!(f, "unknown stream {}", id.0),
            GatewayError::MessageTooLarge { bytes } => write!(
                f,
                "message of {bytes} bytes exceeds the frame limit of {MAX_FRAME_MESSAGE_BYTES}"
            ),
            GatewayError::Engine(e) => write!(f, "engine failure: {e}"),
            GatewayError::Frame(e) => write!(f, "frame decode: {e}"),
            GatewayError::Snapshot(e) => write!(f, "snapshot decode: {e}"),
            GatewayError::SnapshotSink { kind } => {
                write!(f, "snapshot sink write failed ({kind}); stream kept open")
            }
            GatewayError::NoKeyRing(id) => {
                write!(f, "stream {} was opened without a keyring", id.0)
            }
            GatewayError::StaleEpoch { current, requested } => write!(
                f,
                "rekey to epoch {requested} rejected: stream is already at epoch {current}"
            ),
            GatewayError::MissingResult { position } => write!(
                f,
                "internal error: batch position {position} produced no result"
            ),
        }
    }
}

impl std::error::Error for GatewayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GatewayError::Engine(e) => Some(e),
            GatewayError::Frame(e) => Some(e),
            GatewayError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MhheaError> for GatewayError {
    fn from(e: MhheaError) -> Self {
        GatewayError::Engine(e)
    }
}

impl From<FrameDecodeError> for GatewayError {
    fn from(e: FrameDecodeError) -> Self {
        GatewayError::Frame(e)
    }
}

impl From<SnapshotDecodeError> for GatewayError {
    fn from(e: SnapshotDecodeError) -> Self {
        GatewayError::Snapshot(e)
    }
}

/// One unit of work in a [`StreamMux::submit_batch`] call: which half of
/// the duplex stream to drive, and with what.
///
/// A transport serving live connections sees encrypts and decrypts
/// interleaved in one tick; `submit_batch` lets it coalesce the whole
/// mixed tick into a single pool submission instead of one
/// [`StreamMux::encrypt_batch`] plus one [`StreamMux::decrypt_batch`]
/// (which would also reorder operations on streams doing both).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamOp {
    /// Encrypt the plaintext bytes on the stream's encrypt session.
    Encrypt(Vec<u8>),
    /// Decrypt cipher blocks on the stream's decrypt session.
    Decrypt {
        /// The message's cipher blocks.
        blocks: Vec<u16>,
        /// The message's plaintext bit length.
        bit_len: usize,
    },
    /// Rotate the stream (both directions, atomically) to a new
    /// [`KeyRing`] epoch. Because rekeys ride the same per-shard
    /// sequential jobs as encrypts and decrypts, a batch mixing all three
    /// applies them to each stream *in batch order* — operations before
    /// the rekey run under the old epoch, operations after it under the
    /// new one — and a failed rekey is confined to its own slot.
    Rekey {
        /// The epoch to rotate to (must be strictly newer).
        epoch: u32,
    },
}

/// The output of one [`StreamOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamOutput {
    /// Cipher blocks produced by [`StreamOp::Encrypt`].
    Blocks(Vec<u16>),
    /// Plaintext bytes recovered by [`StreamOp::Decrypt`].
    Plain(Vec<u8>),
    /// Acknowledges a [`StreamOp::Rekey`]: the stream now runs `epoch`.
    Rekeyed {
        /// The epoch the stream rotated to.
        epoch: u32,
    },
}

/// One duplex stream: an encrypt endpoint, a decrypt endpoint tracking the
/// peer's encrypt side, and the parameters needed to snapshot both.
#[derive(Debug)]
struct StreamState {
    enc: EncryptSession<LfsrSource>,
    dec: DecryptSession,
    key: Key,
    algorithm: Algorithm,
    profile: Profile,
    /// Present iff the stream can rekey.
    ring: Option<KeyRing>,
    /// Current key epoch (0 until the first rekey).
    epoch: u32,
}

impl StreamState {
    /// Rotates both sessions to `epoch` atomically: the epoch's key from
    /// the ring, a fresh LFSR reseed on the encrypt side, both cursors
    /// back at the stream origin.
    fn rekey(&mut self, id: StreamId, epoch: u32) -> Result<u32, GatewayError> {
        let ring = self.ring.as_ref().ok_or(GatewayError::NoKeyRing(id))?;
        if epoch <= self.epoch {
            return Err(GatewayError::StaleEpoch {
                current: self.epoch,
                requested: epoch,
            });
        }
        let key = ring.key(epoch).clone();
        let source = LfsrSource::new(ring.seed(epoch))
            .map_err(|_| GatewayError::Engine(MhheaError::InvalidSeed))?;
        // The epoch check above already passed, so neither session-level
        // rekey can report a stale epoch; the two sessions always move
        // together.
        self.enc.rekey_with(key.clone(), source, epoch)?;
        self.dec.rekey_with(key.clone(), epoch)?;
        self.key = key;
        self.epoch = epoch;
        Ok(epoch)
    }

    /// Rotates both sessions to `epoch` with externally derived material
    /// (a fresh Diffie–Hellman exchange) instead of a ring lookup. The
    /// stream's ring is replaced by a single-entry ring holding exactly
    /// this key and seed, so snapshots of the stream stay restorable.
    fn rekey_with(&mut self, key: Key, seed: u16, epoch: u32) -> Result<u32, GatewayError> {
        if epoch <= self.epoch {
            return Err(GatewayError::StaleEpoch {
                current: self.epoch,
                requested: epoch,
            });
        }
        // A single-key ring only rejects a zero master seed, exactly the
        // condition `LfsrSource::new` rejects below.
        let ring = KeyRing::single(key.clone(), seed)
            .map_err(|_| GatewayError::Engine(MhheaError::InvalidSeed))?;
        let source =
            LfsrSource::new(seed).map_err(|_| GatewayError::Engine(MhheaError::InvalidSeed))?;
        self.enc.rekey_with(key.clone(), source, epoch)?;
        self.dec.rekey_with(key.clone(), epoch)?;
        self.key = key;
        self.ring = Some(ring);
        self.epoch = epoch;
        Ok(epoch)
    }
}

type Shard = Mutex<HashMap<u64, StreamState>>;

/// Locks a shard, recovering from poisoning. Every gateway operation
/// either completes or leaves its stream untouched, so the table behind a
/// poisoned lock is still consistent stream-by-stream; refusing service
/// on every stream in the shard forever would be strictly worse.
fn lock_shard(shard: &Shard) -> MutexGuard<'_, HashMap<u64, StreamState>> {
    shard.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One shard's share of a batch: original position, stream, payload.
type ShardItems<M> = Vec<(usize, StreamId, M)>;

/// An opened frame: the stream it belongs to and its plaintext.
type OpenedFrame = (StreamId, Vec<u8>);

#[derive(Debug)]
struct MuxInner {
    // lock-order: mux_shard
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; the count is a power of two.
    mask: u64,
    /// Max in-flight pool jobs for batch calls (`0` asks the OS).
    /// Atomic so [`StreamMux::set_workers`] is a plain store shared by
    /// every clone — never a table rebuild.
    workers: AtomicUsize,
}

impl MuxInner {
    /// SplitMix64 avalanche so sequential ids spread across shards.
    fn shard_of(&self, id: StreamId) -> usize {
        let mut z = id.0 ^ 0x9E37_79B9_7F4A_7C15;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) & self.mask) as usize
    }

    /// The shard holding `id`'s state.
    fn shard(&self, id: StreamId) -> &Shard {
        &self.shards[self.shard_of(id)] // lint: allow(panic-path, reason = "shard_of masks the index below shards.len(), a power of two")
    }

    fn with_stream<R>(
        &self,
        id: StreamId,
        f: impl FnOnce(&mut StreamState) -> Result<R, GatewayError>,
    ) -> Result<R, GatewayError> {
        let mut shard = lock_shard(self.shard(id));
        let state = shard
            .get_mut(&id.0)
            .ok_or(GatewayError::UnknownStream(id))?;
        f(state)
    }
}

/// A sharded table of concurrent cipher streams sharing one worker pool.
///
/// See the [module docs](crate::gateway) for the API tour and wire
/// formats. Cloning a `StreamMux` is cheap and shares the table, so one
/// gateway can be driven from many threads.
#[derive(Debug, Clone)]
pub struct StreamMux {
    inner: Arc<MuxInner>,
}

impl Default for StreamMux {
    fn default() -> Self {
        StreamMux::new()
    }
}

impl StreamMux {
    /// A mux with [`DEFAULT_SHARDS`] shards and OS-sized batch
    /// parallelism.
    pub fn new() -> Self {
        StreamMux::with_shards(DEFAULT_SHARDS)
    }

    /// A mux with at least `shards` shards (rounded up to a power of two,
    /// minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        let shards: Box<[Shard]> = (0..count).map(|_| Mutex::new(HashMap::new())).collect();
        StreamMux {
            inner: Arc::new(MuxInner {
                shards,
                mask: (count - 1) as u64,
                workers: AtomicUsize::new(0),
            }),
        }
    }

    /// Builder form of [`StreamMux::set_workers`].
    #[must_use]
    pub fn with_workers(self, workers: usize) -> Self {
        self.set_workers(workers);
        self
    }

    /// Caps in-flight pool jobs for batch calls (`0`, the default, asks
    /// the OS). Takes effect for every clone of this mux from the next
    /// batch call on — the setting lives in the shared table, so no
    /// handle is invalidated.
    pub fn set_workers(&self, workers: usize) {
        self.inner.workers.store(workers, Ordering::Relaxed);
    }

    /// Number of shards in the session table.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Number of open streams (locks each shard briefly).
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| lock_shard(s).len()).sum()
    }

    /// True when no streams are open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when `id` is an open stream.
    pub fn contains(&self, id: StreamId) -> bool {
        lock_shard(self.inner.shard(id)).contains_key(&id.0)
    }

    /// Opens a fresh stream at the cipher-stream origin.
    ///
    /// # Errors
    ///
    /// [`GatewayError::StreamExists`] if `id` is already open;
    /// [`GatewayError::Engine`] ([`MhheaError::InvalidSeed`]) for a zero
    /// seed.
    pub fn open(&self, id: StreamId, config: StreamConfig) -> Result<(), GatewayError> {
        let source = LfsrSource::new(config.seed)
            .map_err(|_| GatewayError::Engine(MhheaError::InvalidSeed))?;
        let state = StreamState {
            enc: EncryptSession::with_options(
                config.key.clone(),
                source,
                config.algorithm,
                config.profile,
            ),
            dec: DecryptSession::with_options(config.key.clone(), config.algorithm, config.profile),
            key: config.key,
            algorithm: config.algorithm,
            profile: config.profile,
            ring: config.ring,
            epoch: 0,
        };
        self.insert(id, state)
    }

    fn insert(&self, id: StreamId, state: StreamState) -> Result<(), GatewayError> {
        let mut shard = lock_shard(self.inner.shard(id));
        if shard.contains_key(&id.0) {
            return Err(GatewayError::StreamExists(id));
        }
        shard.insert(id.0, state);
        Ok(())
    }

    /// Closes a stream, discarding its state.
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownStream`] if `id` is not open.
    pub fn close(&self, id: StreamId) -> Result<(), GatewayError> {
        lock_shard(self.inner.shard(id))
            .remove(&id.0)
            .map(|_| ())
            .ok_or(GatewayError::UnknownStream(id))
    }

    /// Encrypts one message on one stream, advancing its cursor.
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownStream`]; engine failures as
    /// [`GatewayError::Engine`].
    pub fn encrypt(&self, id: StreamId, message: &[u8]) -> Result<Vec<u16>, GatewayError> {
        self.inner.with_stream(id, |s| Ok(s.enc.encrypt(message)?))
    }

    /// Decrypts one message's blocks on one stream, advancing its cursor.
    ///
    /// # Errors
    ///
    /// See [`StreamMux::encrypt`]; additionally
    /// [`MhheaError::CiphertextTruncated`] (wrapped) when `blocks` carry
    /// fewer than `bit_len` bits.
    pub fn decrypt(
        &self,
        id: StreamId,
        blocks: &[u16],
        bit_len: usize,
    ) -> Result<Vec<u8>, GatewayError> {
        self.inner
            .with_stream(id, |s| Ok(s.dec.decrypt(blocks, bit_len)?))
    }

    /// The stream's current encrypt-side cursor (for monitoring).
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownStream`].
    pub fn cursor(&self, id: StreamId) -> Result<StreamCursor, GatewayError> {
        self.inner.with_stream(id, |s| Ok(s.enc.cursor()))
    }

    /// The stream's current key epoch (0 until the first rekey).
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownStream`].
    pub fn epoch(&self, id: StreamId) -> Result<u32, GatewayError> {
        self.inner.with_stream(id, |s| Ok(s.epoch))
    }

    /// Rotates one stream (both directions, atomically) to a new
    /// [`KeyRing`] epoch: the epoch's key, a fresh LFSR reseed derived
    /// via [`KeyRing::seed`], both cursors back at the stream origin.
    /// Returns the epoch now in force. Batched form:
    /// [`StreamOp::Rekey`] through [`StreamMux::submit_batch`].
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownStream`]; [`GatewayError::NoKeyRing`] when
    /// the stream was opened without a ring; [`GatewayError::StaleEpoch`]
    /// unless `epoch` is strictly newer than the stream's current epoch.
    /// On every error the stream is untouched and fully usable.
    pub fn rekey(&self, id: StreamId, epoch: u32) -> Result<u32, GatewayError> {
        self.inner.with_stream(id, |s| s.rekey(id, epoch))
    }

    /// Rotates one stream (both directions, atomically) to `epoch` using
    /// externally derived material — a fresh Diffie–Hellman exchange —
    /// instead of a ring lookup: the supplied key, an LFSR reseed from
    /// the supplied seed, both cursors back at the stream origin. The
    /// stream's ring is replaced by a single-entry ring holding exactly
    /// this material, so later snapshots and ring rekeys stay coherent.
    /// Returns the epoch now in force.
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownStream`]; [`GatewayError::StaleEpoch`]
    /// unless `epoch` is strictly newer than the stream's current epoch;
    /// [`GatewayError::Engine`] for a zero `seed`. On every error the
    /// stream is untouched and fully usable.
    pub fn rekey_with(
        &self,
        id: StreamId,
        epoch: u32,
        key: Key,
        seed: u16,
    ) -> Result<u32, GatewayError> {
        self.inner
            .with_stream(id, |s| s.rekey_with(key, seed, epoch))
    }

    /// Seals one **chunk-addressed** message on a stream: a one-shot
    /// encrypt session seeded with `chunk_seed(ring.seed(epoch),
    /// chunk_index)` — the container-v2 per-chunk derivation — so every
    /// chunk is independently decryptable, in any order, with any subset
    /// delivered. The stream's duplex cursors are **not** advanced: chunk
    /// traffic and the sequential [`StreamMux::encrypt`] path coexist on
    /// one stream without desynchronising each other.
    ///
    /// `epoch` must name the stream's *current* epoch — the caller's view
    /// of which key the chunk is sealed under is checked, not assumed.
    /// Chunk indices must never be reused within an epoch (each index
    /// names one keystream; reuse would be a two-time pad) — the caller
    /// owns that discipline, e.g. with a monotonic per-stream counter and
    /// a receive-side replay window.
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownStream`]; [`GatewayError::NoKeyRing`] when
    /// the stream was opened without a ring (no chunk-seed master to
    /// derive from); [`GatewayError::StaleEpoch`] unless `epoch` is the
    /// stream's current epoch; engine failures as
    /// [`GatewayError::Engine`]. On every error the stream is untouched.
    pub fn seal_chunk(
        &self,
        id: StreamId,
        epoch: u32,
        chunk_index: u32,
        message: &[u8],
    ) -> Result<Vec<u16>, GatewayError> {
        self.inner.with_stream(id, |s| {
            let ring = s.ring.as_ref().ok_or(GatewayError::NoKeyRing(id))?;
            if epoch != s.epoch {
                return Err(GatewayError::StaleEpoch {
                    current: s.epoch,
                    requested: epoch,
                });
            }
            let seed = chunk_seed(ring.seed(epoch), chunk_index);
            let source =
                LfsrSource::new(seed).map_err(|_| GatewayError::Engine(MhheaError::InvalidSeed))?;
            let mut enc =
                EncryptSession::with_options(s.key.clone(), source, s.algorithm, s.profile);
            Ok(enc.encrypt(message)?)
        })
    }

    /// Opens one chunk sealed by [`StreamMux::seal_chunk`] (this mux or
    /// any peer holding the same key): a one-shot decrypt session from the
    /// stream origin — decryption consults only the key, so no seed
    /// derivation is needed and chunks open in any order. The stream's
    /// duplex cursors are **not** advanced.
    ///
    /// `epoch` must name the stream's current epoch (the chunk was sealed
    /// under that epoch's key; opening it under any other would produce
    /// garbage, not an error — so the mismatch is refused up front).
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownStream`]; [`GatewayError::StaleEpoch`]
    /// unless `epoch` is current; [`GatewayError::Engine`] (e.g.
    /// truncated ciphertext). On every error the stream is untouched.
    pub fn open_chunk(
        &self,
        id: StreamId,
        epoch: u32,
        blocks: &[u16],
        bit_len: usize,
    ) -> Result<Vec<u8>, GatewayError> {
        self.inner.with_stream(id, |s| {
            if epoch != s.epoch {
                return Err(GatewayError::StaleEpoch {
                    current: s.epoch,
                    requested: epoch,
                });
            }
            let mut dec = DecryptSession::with_options(s.key.clone(), s.algorithm, s.profile);
            Ok(dec.decrypt(blocks, bit_len)?)
        })
    }

    /// Runs `op` over a whole batch with one pool submission per busy
    /// shard. Messages on the same stream keep their batch order (same
    /// stream → same shard → same sequential job).
    fn batch<M, R>(
        &self,
        batch: Vec<(StreamId, M)>,
        op: impl Fn(&mut StreamState, StreamId, M) -> Result<R, GatewayError> + Send + Sync + 'static,
    ) -> Vec<Result<R, GatewayError>>
    where
        M: Send + 'static,
        R: Send + 'static,
    {
        self.batch_with_prepass(batch, |_, _| Vec::new(), op)
    }

    /// As [`StreamMux::batch`], but each shard first runs `prepass` under
    /// its lock. The prepass may complete items early — removing them from
    /// the shard's list and returning their `(position, result)` pairs —
    /// which is the hook the bitsliced lane engine plugs into. The scalar
    /// `op` loop runs after the prepass, so per-stream batch order holds:
    /// a laned first operation commits its stream state before any of the
    /// stream's later operations run.
    fn batch_with_prepass<M, R>(
        &self,
        batch: Vec<(StreamId, M)>,
        prepass: impl Fn(
                &mut HashMap<u64, StreamState>,
                &mut ShardItems<M>,
            ) -> Vec<(usize, Result<R, GatewayError>)>
            + Send
            + Sync
            + 'static,
        op: impl Fn(&mut StreamState, StreamId, M) -> Result<R, GatewayError> + Send + Sync + 'static,
    ) -> Vec<Result<R, GatewayError>>
    where
        M: Send + 'static,
        R: Send + 'static,
    {
        let inner = Arc::clone(&self.inner);
        let mut groups: HashMap<usize, ShardItems<M>> = HashMap::new();
        for (pos, (id, msg)) in batch.into_iter().enumerate() {
            groups
                .entry(inner.shard_of(id))
                .or_default()
                .push((pos, id, msg));
        }
        let total: usize = groups.values().map(Vec::len).sum();
        let groups: Vec<(usize, ShardItems<M>)> = groups.into_iter().collect();
        let workers = inner.workers.load(Ordering::Relaxed);
        let scattered: Vec<Vec<(usize, Result<R, GatewayError>)>> =
            WorkerPool::global().map(groups, workers, move |_, (shard_idx, mut items)| {
                let Some(shard) = inner.shards.get(shard_idx) else {
                    // Unreachable: shard_of masks into range. Stay total.
                    return items
                        .into_iter()
                        .map(|(pos, id, _)| (pos, Err(GatewayError::UnknownStream(id))))
                        .collect();
                };
                // One lock acquisition covers the shard's whole share of
                // the batch — the coalescing this API exists for.
                let mut shard = lock_shard(shard);
                let mut done = prepass(&mut shard, &mut items);
                done.extend(items.into_iter().map(|(pos, id, msg)| {
                    let r = match shard.get_mut(&id.0) {
                        Some(state) => op(state, id, msg),
                        None => Err(GatewayError::UnknownStream(id)),
                    };
                    (pos, r)
                }));
                done
            });
        // Pre-fill with the (unreachable) internal error so the scatter
        // stays total: every reported position overwrites its slot.
        let mut out: Vec<Result<R, GatewayError>> = (0..total)
            .map(|position| Err(GatewayError::MissingResult { position }))
            .collect();
        for (pos, r) in scattered.into_iter().flatten() {
            if let Some(slot) = out.get_mut(pos) {
                *slot = r;
            }
        }
        out
    }

    /// Encrypts many messages across many streams in one coalesced pool
    /// submission. `results[i]` corresponds to `batch[i]`; messages on the
    /// same stream are processed in batch order.
    pub fn encrypt_batch(
        &self,
        batch: Vec<(StreamId, Vec<u8>)>,
    ) -> Vec<Result<Vec<u16>, GatewayError>> {
        self.batch(batch, |s, _, msg| Ok(s.enc.encrypt(&msg)?))
    }

    /// Decrypts many `(blocks, bit_len)` messages across many streams in
    /// one coalesced pool submission (ordering as
    /// [`StreamMux::encrypt_batch`]).
    pub fn decrypt_batch(
        &self,
        batch: Vec<(StreamId, (Vec<u16>, usize))>,
    ) -> Vec<Result<Vec<u8>, GatewayError>> {
        self.batch(batch, |s, _, (blocks, bit_len)| {
            Ok(s.dec.decrypt(&blocks, bit_len)?)
        })
    }

    /// Encrypts many messages and wraps each in a self-describing gateway
    /// frame (see the [module docs](crate::gateway) for the layout).
    ///
    /// Use [`crate::container::seal_v2`] instead when you have **one large
    /// payload** to chunk across threads; use `seal_batch` when you have
    /// **many small messages on live streams** — sessions persist across
    /// calls, so per-message span-table rebuilds and thread spawns are
    /// both avoided.
    /// When a busy shard's share of the batch holds at least
    /// [`LANE_THRESHOLD`] compatible streaming encrypts (same algorithm
    /// and key), those messages run through the bitsliced lane engine
    /// ([`crate::lanes`]) in lockstep; everything else — small groups,
    /// hardware-faithful streams, repeat messages on one stream — stays on
    /// the scalar path. The output is bit-identical either way.
    pub fn seal_batch(
        &self,
        batch: Vec<(StreamId, Vec<u8>)>,
    ) -> Vec<Result<Vec<u8>, GatewayError>> {
        self.batch_with_prepass(
            batch,
            |shard, items| {
                lane_prepass(shard, items, |msg: &Vec<u8>| {
                    // Oversized messages fall through to the scalar path,
                    // which rejects them without advancing the stream.
                    (msg.len() <= MAX_FRAME_MESSAGE_BYTES).then_some(msg.as_slice())
                })
                .into_iter()
                .map(|(pos, id, msg, blocks)| (pos, Ok(encode_frame(id, msg.len() * 8, &blocks))))
                .collect()
            },
            |s, id, msg| {
                // Reject before encrypting: an oversized message must not
                // advance the stream cursor and then emit a wrapped header.
                if msg.len() > MAX_FRAME_MESSAGE_BYTES {
                    return Err(GatewayError::MessageTooLarge { bytes: msg.len() });
                }
                let blocks = s.enc.encrypt(&msg)?;
                Ok(encode_frame(id, msg.len() * 8, &blocks))
            },
        )
    }

    /// Decodes and decrypts many gateway frames, returning each frame's
    /// stream id and plaintext. `results[i]` corresponds to `frames[i]`.
    pub fn open_batch(
        &self,
        frames: Vec<Vec<u8>>,
    ) -> Vec<Result<(StreamId, Vec<u8>), GatewayError>> {
        // Decode headers up front (cheap) so frames shard by stream; the
        // decryption itself runs pooled. Undecodable frames never reach
        // the batch — their slots are filled with the decode error. Slots
        // start at the (unreachable) internal error so the fill is total.
        let mut out: Vec<Result<OpenedFrame, GatewayError>> = (0..frames.len())
            .map(|position| Err(GatewayError::MissingResult { position }))
            .collect();
        let mut goods: Vec<(StreamId, (Vec<u16>, usize))> = Vec::with_capacity(frames.len());
        let mut positions: Vec<usize> = Vec::with_capacity(frames.len());
        for (pos, frame) in frames.iter().enumerate() {
            match decode_frame(frame) {
                Ok((id, bit_len, blocks)) => {
                    goods.push((id, (blocks, bit_len)));
                    positions.push(pos);
                }
                Err(e) => {
                    if let Some(slot) = out.get_mut(pos) {
                        *slot = Err(GatewayError::Frame(e));
                    }
                }
            }
        }
        let results = self.batch(goods, |s, id, (blocks, bit_len)| {
            Ok((id, s.dec.decrypt(&blocks, bit_len)?))
        });
        for (pos, r) in positions.into_iter().zip(results) {
            if let Some(slot) = out.get_mut(pos) {
                *slot = r;
            }
        }
        out
    }

    /// Runs a mixed batch of encrypts, decrypts and key rotations in one
    /// coalesced pool submission. `results[i]` corresponds to `batch[i]`;
    /// a failing stream fails only its own slots — shard-mates in the
    /// same batch are untouched. Operations on the same stream (in any
    /// direction, including [`StreamOp::Rekey`]) keep their batch order,
    /// so work before a rekey runs under the old epoch and work after it
    /// under the new one.
    ///
    /// ```
    /// use mhhea::gateway::{StreamConfig, StreamId, StreamMux, StreamOp, StreamOutput};
    /// use mhhea::{Key, KeyRing};
    ///
    /// let ring = KeyRing::single(Key::from_nibbles(&[(0, 3), (2, 5)])?, 0xACE1)?;
    /// let mux = StreamMux::new();
    /// mux.open(StreamId(1), StreamConfig::new(ring.key(0).clone()).with_ring(ring))?;
    ///
    /// let results = mux.submit_batch(vec![
    ///     (StreamId(1), StreamOp::Encrypt(b"old epoch".to_vec())),
    ///     (StreamId(1), StreamOp::Rekey { epoch: 1 }),
    ///     (StreamId(1), StreamOp::Encrypt(b"new epoch".to_vec())),
    /// ]);
    /// assert!(matches!(results[0], Ok(StreamOutput::Blocks(_))));
    /// assert_eq!(results[1], Ok(StreamOutput::Rekeyed { epoch: 1 }));
    /// assert!(matches!(results[2], Ok(StreamOutput::Blocks(_))));
    /// assert_eq!(mux.epoch(StreamId(1))?, 1);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn submit_batch(
        &self,
        batch: Vec<(StreamId, StreamOp)>,
    ) -> Vec<Result<StreamOutput, GatewayError>> {
        self.batch_with_prepass(
            batch,
            |shard, items| {
                // Only a stream's first op can lane-pack, and only when it
                // is an encrypt; decrypts and rekeys (and everything after
                // the first op) run scalar, in batch order, afterwards.
                lane_prepass(shard, items, |op: &StreamOp| match op {
                    StreamOp::Encrypt(msg) => Some(msg.as_slice()),
                    _ => None,
                })
                .into_iter()
                .map(|(pos, _, _, blocks)| (pos, Ok(StreamOutput::Blocks(blocks))))
                .collect()
            },
            |s, id, op| match op {
                StreamOp::Encrypt(msg) => Ok(StreamOutput::Blocks(s.enc.encrypt(&msg)?)),
                StreamOp::Decrypt { blocks, bit_len } => {
                    Ok(StreamOutput::Plain(s.dec.decrypt(&blocks, bit_len)?))
                }
                StreamOp::Rekey { epoch } => Ok(StreamOutput::Rekeyed {
                    epoch: s.rekey(id, epoch)?,
                }),
            },
        )
    }

    /// Single-frame convenience over [`StreamMux::open_batch`].
    ///
    /// # Errors
    ///
    /// Frame decode errors as [`GatewayError::Frame`]; unknown ids and
    /// engine failures as for [`StreamMux::decrypt`].
    pub fn open_frame(&self, frame: &[u8]) -> Result<(StreamId, Vec<u8>), GatewayError> {
        let (id, bit_len, blocks) = decode_frame(frame)?;
        let plain = self.decrypt(id, &blocks, bit_len)?;
        Ok((id, plain))
    }

    /// Serialises a stream's full resume state **without** removing it
    /// (format in the [module docs](crate::gateway); **contains the
    /// key**). The stream keeps running; the snapshot is a point-in-time
    /// checkpoint that [`StreamMux::restore`] accepts on any mux where the
    /// id is free.
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownStream`].
    pub fn snapshot(&self, id: StreamId) -> Result<Vec<u8>, GatewayError> {
        self.inner
            .with_stream(id, |state| Ok(encode_snapshot(id, state)))
    }

    /// Removes a stream and serialises its full resume state (format in
    /// the [module docs](crate::gateway); **contains the key**).
    ///
    /// Eviction is atomic: the snapshot is fully encoded *before* the
    /// stream leaves the table, so no failure mode (including a panic in
    /// the encoder) can discard live stream state without handing the
    /// caller the bytes that resume it.
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownStream`].
    pub fn evict(&self, id: StreamId) -> Result<Vec<u8>, GatewayError> {
        let mut shard = lock_shard(self.inner.shard(id));
        let state = shard.get(&id.0).ok_or(GatewayError::UnknownStream(id))?;
        let snapshot = encode_snapshot(id, state);
        shard.remove(&id.0);
        Ok(snapshot)
    }

    /// Like [`StreamMux::evict`], but writes the snapshot straight into a
    /// caller-supplied sink (a file, a socket, an append-only journal).
    ///
    /// The write happens under the stream's shard lock — nothing can
    /// advance the stream between the state being serialised and the
    /// stream being removed — and the stream is removed only after the
    /// sink accepted every byte. If the sink fails midway the stream
    /// **stays open and usable**; prefer a buffered or in-memory sink when
    /// latency on the shard matters.
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownStream`]; [`GatewayError::SnapshotSink`]
    /// when the sink rejects the bytes (stream kept).
    pub fn evict_into(
        &self,
        id: StreamId,
        sink: &mut impl std::io::Write,
    ) -> Result<(), GatewayError> {
        let mut shard = lock_shard(self.inner.shard(id));
        let state = shard.get(&id.0).ok_or(GatewayError::UnknownStream(id))?;
        let snapshot = encode_snapshot(id, state);
        sink.write_all(&snapshot)
            .and_then(|()| sink.flush())
            .map_err(|e| GatewayError::SnapshotSink { kind: e.kind() })?;
        shard.remove(&id.0);
        Ok(())
    }

    /// Resumes a stream from an [`StreamMux::evict`] snapshot, bit-exact:
    /// the next message encrypts and decrypts exactly as it would have on
    /// the uninterrupted stream.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Snapshot`] for malformed bytes;
    /// [`GatewayError::StreamExists`] if the id is already open again.
    pub fn restore(&self, snapshot: &[u8]) -> Result<StreamId, GatewayError> {
        let (id, state) = decode_snapshot(snapshot)?;
        self.insert(id, state)?;
        Ok(id)
    }
}

/// The lane-filling scheduler: one shard's share of a batch enters, and
/// every stream whose *first* operation is an eligible streaming encrypt
/// becomes a lane candidate. Candidates are grouped by cipher parameters
/// (algorithm + key — one span table serves a whole group) and groups of
/// at least [`LANE_THRESHOLD`] run through [`seal_lanes`] in bitsliced
/// lockstep. Smaller groups, ineligible ops, and every stream's later ops
/// stay scalar; the scalar loop runs after the lane commits, so per-stream
/// batch order is preserved.
///
/// Completed items are removed from `items` and returned as
/// `(batch position, id, payload, cipher blocks)`. The prepass is
/// all-or-nothing per stream: state snapshots are read-only, and a stream
/// is only advanced (`lane_commit`) once its kernel output is in hand —
/// any failure leaves the stream untouched for the scalar path to redo.
fn lane_prepass<M>(
    shard: &mut HashMap<u64, StreamState>,
    items: &mut ShardItems<M>,
    as_encrypt: impl Fn(&M) -> Option<&[u8]>,
) -> Vec<(usize, StreamId, M, Vec<u16>)> {
    let mut seen: HashSet<u64> = HashSet::new();
    let mut groups: HashMap<(Algorithm, Key), Vec<usize>> = HashMap::new();
    for (ix, (_pos, id, payload)) in items.iter().enumerate() {
        if !seen.insert(id.0) {
            continue; // only a stream's first op may jump the queue
        }
        if as_encrypt(payload).is_none() {
            continue;
        }
        let Some(state) = shard.get(&id.0) else {
            continue; // unknown stream: the scalar path reports it
        };
        if state.profile != Profile::Streaming {
            continue; // hardware-faithful buffering is inherently serial
        }
        groups
            .entry((state.algorithm, state.key.clone()))
            .or_default()
            .push(ix);
    }
    let mut sealed: HashMap<usize, Vec<u16>> = HashMap::new();
    for group in groups.into_values() {
        if group.len() < LANE_THRESHOLD {
            continue; // too few lanes to beat the scalar path
        }
        let mut jobs: Vec<LaneSealJob> = Vec::with_capacity(group.len());
        for &ix in &group {
            let Some((_, id, payload)) = items.get(ix) else {
                continue;
            };
            let Some(message) = as_encrypt(payload) else {
                continue;
            };
            let Some(state) = shard.get(&id.0) else {
                continue;
            };
            let (block_index, lfsr) = state.enc.lane_snapshot();
            jobs.push(LaneSealJob {
                message,
                state: lfsr,
                block_index,
            });
        }
        if jobs.len() != group.len() {
            continue; // a candidate went missing (unreachable): scalar
        }
        let outs = {
            let Some((_, id0, _)) = group.first().and_then(|&ix| items.get(ix)) else {
                continue;
            };
            let Some(st0) = shard.get(&id0.0) else {
                continue;
            };
            match seal_lanes(&st0.key, st0.algorithm, st0.enc.span_table(), &jobs) {
                Ok(outs) => outs,
                Err(_) => continue, // kernel refused: scalar fallback
            }
        };
        drop(jobs);
        for (&ix, out) in group.iter().zip(outs) {
            let Some((_, id, _)) = items.get(ix) else {
                continue;
            };
            let Some(state) = shard.get_mut(&id.0) else {
                continue;
            };
            if state.enc.lane_commit(out.block_index, out.state).is_err() {
                continue; // stream untouched: the scalar path redoes it
            }
            sealed.insert(ix, out.blocks);
        }
    }
    if sealed.is_empty() {
        return Vec::new();
    }
    let mut done = Vec::with_capacity(sealed.len());
    let rest = std::mem::take(items);
    for (ix, (pos, id, payload)) in rest.into_iter().enumerate() {
        match sealed.remove(&ix) {
            Some(blocks) => done.push((pos, id, payload, blocks)),
            None => items.push((pos, id, payload)),
        }
    }
    done
}

/// Builds the on-wire frame for one sealed message.
fn encode_frame(id: StreamId, bit_len: usize, blocks: &[u16]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + blocks.len() * 2);
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(FRAME_VERSION);
    out.extend_from_slice(&[0, 0, 0]); // reserved
    out.extend_from_slice(&id.0.to_le_bytes());
    // lint: allow(truncating-cast, reason = "callers reject messages over MAX_FRAME_MESSAGE_BYTES = u32::MAX/8, so bit_len = len*8 fits u32")
    out.extend_from_slice(&(bit_len as u32).to_le_bytes());
    // lint: allow(truncating-cast, reason = "the engine emits at most one block per plaintext bit, and bit_len fits u32 (see above)")
    out.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
    for b in blocks {
        out.extend_from_slice(&b.to_le_bytes());
    }
    out
}

/// Little-endian `u16` at `at`, or `None` past the end.
fn le_u16(bytes: &[u8], at: usize) -> Option<u16> {
    bytes
        .get(at..at.checked_add(2)?)?
        .try_into()
        .ok()
        .map(u16::from_le_bytes)
}

/// Little-endian `u32` at `at`, or `None` past the end.
fn le_u32(bytes: &[u8], at: usize) -> Option<u32> {
    bytes
        .get(at..at.checked_add(4)?)?
        .try_into()
        .ok()
        .map(u32::from_le_bytes)
}

/// Little-endian `u64` at `at`, or `None` past the end.
fn le_u64(bytes: &[u8], at: usize) -> Option<u64> {
    bytes
        .get(at..at.checked_add(8)?)?
        .try_into()
        .ok()
        .map(u64::from_le_bytes)
}

/// `u16` from a little-endian byte pair. Total: callers hand it exact
/// two-byte chunks; a short slice reads as zero-padded rather than
/// panicking on the serving path.
fn le_pair(c: &[u8]) -> u16 {
    let lo = c.first().copied().unwrap_or(0);
    let hi = c.get(1).copied().unwrap_or(0);
    u16::from_le_bytes([lo, hi])
}

/// Parses a gateway frame into `(stream id, bit length, blocks)`.
fn decode_frame(frame: &[u8]) -> Result<(StreamId, usize, Vec<u16>), FrameDecodeError> {
    let truncated = |need: usize| FrameDecodeError::Truncated {
        need,
        have: frame.len(),
    };
    if frame.len() < FRAME_HEADER_LEN {
        return Err(truncated(FRAME_HEADER_LEN));
    }
    if frame.get(0..4) != Some(FRAME_MAGIC.as_slice()) {
        return Err(FrameDecodeError::BadMagic);
    }
    match frame.get(4) {
        Some(&FRAME_VERSION) => {}
        Some(&v) => return Err(FrameDecodeError::UnsupportedVersion(v)),
        None => return Err(truncated(FRAME_HEADER_LEN)),
    }
    let Some(id) = le_u64(frame, 8) else {
        return Err(truncated(FRAME_HEADER_LEN));
    };
    let Some(bit_len) = le_u32(frame, 16) else {
        return Err(truncated(FRAME_HEADER_LEN));
    };
    let Some(block_count) = le_u32(frame, 20) else {
        return Err(truncated(FRAME_HEADER_LEN));
    };
    let need = FRAME_HEADER_LEN + (block_count as usize) * 2;
    let Some(body) = frame.get(FRAME_HEADER_LEN..need) else {
        return Err(truncated(need));
    };
    let blocks = body.chunks_exact(2).map(le_pair).collect();
    Ok((StreamId(id), bit_len as usize, blocks))
}

fn algorithm_tag(algorithm: Algorithm) -> u8 {
    match algorithm {
        Algorithm::Hhea => 0,
        Algorithm::Mhhea => 1,
    }
}

fn profile_tag(profile: Profile) -> u8 {
    match profile {
        Profile::Streaming => 0,
        Profile::HardwareFaithful => 1,
    }
}

fn push_pairs(out: &mut Vec<u8>, key: &Key) {
    for p in key.pairs() {
        let (l, r) = p.halves();
        out.push(l | (r << 3));
    }
}

fn encode_snapshot(id: StreamId, state: &StreamState) -> Vec<u8> {
    let pairs = state.key.pairs();
    let mut out = Vec::with_capacity(SNAPSHOT_V2_HEADER_LEN + pairs.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.push(SNAPSHOT_VERSION);
    out.push(algorithm_tag(state.algorithm));
    out.push(profile_tag(state.profile));
    // lint: allow(truncating-cast, reason = "Key::from_nibbles caps a key at MAX_PAIRS = 16 pairs")
    out.push(pairs.len() as u8);
    out.extend_from_slice(&id.0.to_le_bytes());
    out.extend_from_slice(&state.enc.source().state().to_le_bytes());
    out.extend_from_slice(&state.enc.cursor().to_bytes());
    out.extend_from_slice(&state.dec.cursor().to_bytes());
    out.extend_from_slice(&state.epoch.to_le_bytes());
    match &state.ring {
        Some(ring) => {
            out.extend_from_slice(&ring.master_seed().to_le_bytes());
            // lint: allow(truncating-cast, reason = "KeyRing::new caps a ring at MAX_RING_KEYS = 255 keys")
            out.push(ring.len() as u8);
            out.push(0); // reserved
            push_pairs(&mut out, &state.key);
            for key in ring.keys() {
                // lint: allow(truncating-cast, reason = "Key::from_nibbles caps a key at MAX_PAIRS = 16 pairs")
                out.push(key.len() as u8);
                push_pairs(&mut out, key);
            }
        }
        None => {
            out.extend_from_slice(&0u16.to_le_bytes());
            out.push(0);
            out.push(0); // reserved
            push_pairs(&mut out, &state.key);
        }
    }
    out
}

/// Reads one `pair count ∥ pairs` key out of a snapshot's trailing bytes.
fn take_key(bytes: &[u8], at: &mut usize) -> Result<Key, SnapshotDecodeError> {
    let count = *bytes.get(*at).ok_or(SnapshotDecodeError::Truncated {
        need: *at + 1,
        have: bytes.len(),
    })? as usize;
    if count == 0 || count > MAX_PAIRS {
        // lint: allow(truncating-cast, reason = "count was widened from the single snapshot byte read above, so it is < 256")
        return Err(SnapshotDecodeError::BadPairCount(count as u8));
    }
    let need = *at + 1 + count;
    let Some(key_bytes) = bytes.get(*at + 1..need) else {
        return Err(SnapshotDecodeError::Truncated {
            need,
            have: bytes.len(),
        });
    };
    let key = key_from_pair_bytes(key_bytes)?;
    *at = need;
    Ok(key)
}

/// Rebuilds a key from packed `left | right << 3` pair bytes.
fn key_from_pair_bytes(bytes: &[u8]) -> Result<Key, SnapshotDecodeError> {
    let nibbles: Vec<(u8, u8)> = bytes.iter().map(|&b| (b & 0x07, (b >> 3) & 0x07)).collect();
    Key::from_nibbles(&nibbles).map_err(SnapshotDecodeError::Key)
}

fn decode_snapshot(bytes: &[u8]) -> Result<(StreamId, StreamState), SnapshotDecodeError> {
    let truncated = |need: usize| SnapshotDecodeError::Truncated {
        need,
        have: bytes.len(),
    };
    if bytes.len() < SNAPSHOT_HEADER_LEN {
        return Err(truncated(SNAPSHOT_HEADER_LEN));
    }
    if bytes.get(0..4) != Some(SNAPSHOT_MAGIC.as_slice()) {
        return Err(SnapshotDecodeError::BadMagic);
    }
    let (Some(&version), Some(&alg), Some(&prof), Some(&raw_pairs)) =
        (bytes.get(4), bytes.get(5), bytes.get(6), bytes.get(7))
    else {
        return Err(truncated(SNAPSHOT_HEADER_LEN));
    };
    if version != SNAPSHOT_VERSION && version != SNAPSHOT_VERSION_V1 {
        return Err(SnapshotDecodeError::UnsupportedVersion(version));
    }
    let algorithm = match alg {
        0 => Algorithm::Hhea,
        1 => Algorithm::Mhhea,
        other => return Err(SnapshotDecodeError::UnknownAlgorithm(other)),
    };
    let profile = match prof {
        0 => Profile::Streaming,
        1 => Profile::HardwareFaithful,
        other => return Err(SnapshotDecodeError::UnknownProfile(other)),
    };
    let pair_count = raw_pairs as usize;
    if pair_count == 0 || pair_count > MAX_PAIRS {
        return Err(SnapshotDecodeError::BadPairCount(raw_pairs));
    }
    let Some(raw_id) = le_u64(bytes, 8) else {
        return Err(truncated(SNAPSHOT_HEADER_LEN));
    };
    let id = StreamId(raw_id);
    let Some(lfsr_state) = le_u16(bytes, 16) else {
        return Err(truncated(SNAPSHOT_HEADER_LEN));
    };
    if lfsr_state == 0 {
        return Err(SnapshotDecodeError::ZeroLfsrState);
    }
    let Some(enc_bytes) = bytes.get(18..27) else {
        return Err(truncated(SNAPSHOT_HEADER_LEN));
    };
    let enc_cursor = StreamCursor::from_bytes(enc_bytes).map_err(SnapshotDecodeError::Cursor)?;
    let Some(dec_bytes) = bytes.get(27..36) else {
        return Err(truncated(SNAPSHOT_HEADER_LEN));
    };
    let dec_cursor = StreamCursor::from_bytes(dec_bytes).map_err(SnapshotDecodeError::Cursor)?;
    let (epoch, ring, key) = if version == SNAPSHOT_VERSION_V1 {
        // Legacy: key pairs follow the cursors directly; no rotation
        // state, so the stream restores at epoch 0 without a ring.
        let need = SNAPSHOT_HEADER_LEN + pair_count;
        let Some(key_bytes) = bytes.get(SNAPSHOT_HEADER_LEN..need) else {
            return Err(truncated(need));
        };
        let key = key_from_pair_bytes(key_bytes)?;
        (0u32, None, key)
    } else {
        let (Some(epoch), Some(master_seed), Some(&ring_count)) =
            (le_u32(bytes, 36), le_u16(bytes, 40), bytes.get(42))
        else {
            return Err(truncated(SNAPSHOT_V2_HEADER_LEN));
        };
        let ring_count = ring_count as usize;
        let need = SNAPSHOT_V2_HEADER_LEN + pair_count;
        let Some(key_bytes) = bytes.get(SNAPSHOT_V2_HEADER_LEN..need) else {
            return Err(truncated(need));
        };
        let key = key_from_pair_bytes(key_bytes)?;
        let ring = if ring_count > 0 {
            if master_seed == 0 {
                return Err(SnapshotDecodeError::ZeroRingSeed);
            }
            let mut at = need;
            let mut keys = Vec::with_capacity(ring_count);
            for _ in 0..ring_count {
                keys.push(take_key(bytes, &mut at)?);
            }
            // Count and seed were just validated; ring_count is a u8, so
            // the length caps cannot trip.
            Some(KeyRing::new(keys, master_seed).map_err(SnapshotDecodeError::Key)?)
        } else {
            None
        };
        (epoch, ring, key)
    };
    // A fresh LfsrSource at the snapshotted state continues the exact
    // vector sequence: state() is the register before the next leap. The
    // state was validated nonzero above, so the error arm is unreachable
    // but keeps the serving path total.
    let source = LfsrSource::new(lfsr_state).map_err(|_| SnapshotDecodeError::ZeroLfsrState)?;
    let mut enc = EncryptSession::with_options(key.clone(), source, algorithm, profile);
    enc.set_cursor(enc_cursor);
    enc.set_epoch(epoch);
    let mut dec = DecryptSession::with_options(key.clone(), algorithm, profile);
    dec.set_cursor(dec_cursor);
    dec.set_epoch(epoch);
    Ok((
        id,
        StreamState {
            enc,
            dec,
            key,
            algorithm,
            profile,
            ring,
            epoch,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Key {
        Key::from_nibbles(&[(0, 3), (2, 5), (1, 7)]).unwrap()
    }

    #[test]
    fn open_close_contains() {
        let mux = StreamMux::with_shards(4);
        assert!(mux.is_empty());
        mux.open(StreamId(1), StreamConfig::new(key())).unwrap();
        assert!(mux.contains(StreamId(1)));
        assert_eq!(mux.len(), 1);
        assert_eq!(
            mux.open(StreamId(1), StreamConfig::new(key())),
            Err(GatewayError::StreamExists(StreamId(1)))
        );
        mux.close(StreamId(1)).unwrap();
        assert_eq!(
            mux.close(StreamId(1)),
            Err(GatewayError::UnknownStream(StreamId(1)))
        );
    }

    #[test]
    fn per_stream_traffic_roundtrips() {
        let tx = StreamMux::with_shards(8);
        let rx = StreamMux::with_shards(2); // shard counts need not match
        for id in 0..6u64 {
            let cfg = StreamConfig::new(key()).with_seed(0x1000 + id as u16);
            tx.open(StreamId(id), cfg.clone()).unwrap();
            rx.open(StreamId(id), cfg).unwrap();
        }
        // Interleave messages across streams: cursors stay per-stream.
        for round in 0..3 {
            for id in 0..6u64 {
                let msg = format!("round {round} stream {id}");
                let blocks = tx.encrypt(StreamId(id), msg.as_bytes()).unwrap();
                let got = rx.decrypt(StreamId(id), &blocks, msg.len() * 8).unwrap();
                assert_eq!(got, msg.as_bytes());
            }
        }
    }

    #[test]
    fn oversized_message_rejected_before_advancing_cursor() {
        let mux = StreamMux::with_shards(2);
        mux.open(StreamId(1), StreamConfig::new(key())).unwrap();
        // One byte past the frame's u32 bit-length ceiling. The Vec is
        // zeroed and never read: the size check fires before encryption.
        let oversized = vec![0u8; MAX_FRAME_MESSAGE_BYTES + 1];
        let results = mux.seal_batch(vec![(StreamId(1), oversized)]);
        assert_eq!(
            results,
            vec![Err(GatewayError::MessageTooLarge {
                bytes: MAX_FRAME_MESSAGE_BYTES + 1
            })]
        );
        // The stream is untouched and still usable.
        assert_eq!(mux.cursor(StreamId(1)).unwrap().block_index, 0);
        assert!(mux.encrypt(StreamId(1), b"still fine").is_ok());
    }

    #[test]
    fn worker_setting_is_shared_by_clones_without_divorcing_them() {
        let mux = StreamMux::with_shards(2);
        mux.open(StreamId(5), StreamConfig::new(key())).unwrap();
        let peer = mux.clone();
        let mux = mux.with_workers(3); // builder form must not rebuild the table
        assert_eq!(peer.len(), 1, "clone lost the shared table");
        peer.set_workers(1); // either handle can reconfigure
        let blocks = mux.encrypt(StreamId(5), b"shared").unwrap();
        // The clone sees the cursor advance the original produced.
        assert_eq!(
            peer.cursor(StreamId(5)).unwrap().block_index,
            blocks.len() as u64
        );
    }

    /// An `io::Write` sink that accepts `limit` bytes and then fails —
    /// simulates a snapshot serialisation dying midway (disk full, broken
    /// pipe) so the evict-atomicity regression test below can prove the
    /// stream survives.
    struct FailingWriter {
        written: Vec<u8>,
        limit: usize,
    }

    impl std::io::Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let room = self.limit.saturating_sub(self.written.len());
            if room == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "sink full",
                ));
            }
            let take = room.min(buf.len());
            self.written.extend_from_slice(&buf[..take]);
            Ok(take)
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Regression: a snapshot serialisation that fails midway must not
    /// consume the stream — evict is atomic, the stream stays usable, and
    /// a later evict still hands back the full state.
    #[test]
    fn failed_evict_keeps_stream_usable() {
        let mux = StreamMux::with_shards(2);
        mux.open(StreamId(11), StreamConfig::new(key())).unwrap();
        mux.encrypt(StreamId(11), b"advance the cursor").unwrap();
        let reference = mux.snapshot(StreamId(11)).unwrap();

        // The sink dies after 10 bytes — mid-header.
        let mut sink = FailingWriter {
            written: Vec::new(),
            limit: 10,
        };
        assert!(matches!(
            mux.evict_into(StreamId(11), &mut sink),
            Err(GatewayError::SnapshotSink { .. })
        ));
        // The stream is still open, at the same position, and usable.
        assert!(mux.contains(StreamId(11)));
        assert_eq!(mux.snapshot(StreamId(11)).unwrap(), reference);
        mux.encrypt(StreamId(11), b"still alive").unwrap();

        // A working sink evicts; the bytes match a plain evict's.
        let mut ok_sink = FailingWriter {
            written: Vec::new(),
            limit: usize::MAX,
        };
        mux.evict_into(StreamId(11), &mut ok_sink).unwrap();
        assert!(!mux.contains(StreamId(11)));
        let restored = StreamMux::with_shards(4);
        assert_eq!(restored.restore(&ok_sink.written).unwrap(), StreamId(11));
    }

    /// `snapshot` is a checkpoint, not an eviction: the stream keeps
    /// running, and restoring the checkpoint elsewhere replays from that
    /// exact point.
    #[test]
    fn snapshot_is_non_consuming_and_replayable() {
        let mux = StreamMux::with_shards(2);
        mux.open(StreamId(4), StreamConfig::new(key())).unwrap();
        mux.encrypt(StreamId(4), b"before checkpoint").unwrap();
        let checkpoint = mux.snapshot(StreamId(4)).unwrap();
        assert!(mux.contains(StreamId(4)), "snapshot must not evict");

        // Both the live stream and a replica restored from the checkpoint
        // encrypt the next message identically.
        let replica = StreamMux::with_shards(8);
        replica.restore(&checkpoint).unwrap();
        let live = mux.encrypt(StreamId(4), b"after checkpoint").unwrap();
        let replayed = replica.encrypt(StreamId(4), b"after checkpoint").unwrap();
        assert_eq!(live, replayed);
    }

    /// A mixed submit_batch drives both directions of the same stream in
    /// batch order, and failures stay confined to their own slot.
    #[test]
    fn submit_batch_mixes_directions_and_confines_errors() {
        let tx = StreamMux::with_shards(1); // one shard: all streams collide
        let rx = StreamMux::with_shards(1);
        for id in 0..3u64 {
            let cfg = StreamConfig::new(key()).with_seed(0x0B0B + id as u16);
            tx.open(StreamId(id), cfg.clone()).unwrap();
            rx.open(StreamId(id), cfg).unwrap();
        }
        let msgs: Vec<Vec<u8>> = (0..3u64)
            .map(|id| format!("duplex message {id}").into_bytes())
            .collect();
        let sealed = tx.encrypt_batch(
            (0..3u64)
                .map(|id| (StreamId(id), msgs[id as usize].clone()))
                .collect(),
        );
        let blocks: Vec<Vec<u16>> = sealed.into_iter().map(Result::unwrap).collect();

        // One batch: decrypt stream 0, fail stream 1 (truncated), decrypt
        // stream 2, and encrypt a follow-up on stream 0 — all interleaved.
        let batch = vec![
            (
                StreamId(0),
                StreamOp::Decrypt {
                    blocks: blocks[0].clone(),
                    bit_len: msgs[0].len() * 8,
                },
            ),
            (
                StreamId(1),
                StreamOp::Decrypt {
                    blocks: blocks[1][..1].to_vec(),
                    bit_len: msgs[1].len() * 8,
                },
            ),
            (
                StreamId(2),
                StreamOp::Decrypt {
                    blocks: blocks[2].clone(),
                    bit_len: msgs[2].len() * 8,
                },
            ),
            (StreamId(0), StreamOp::Encrypt(b"follow-up".to_vec())),
        ];
        let results = rx.submit_batch(batch);
        assert_eq!(results[0], Ok(StreamOutput::Plain(msgs[0].clone())));
        assert!(matches!(
            results[1],
            Err(GatewayError::Engine(MhheaError::CiphertextTruncated { .. }))
        ));
        assert_eq!(results[2], Ok(StreamOutput::Plain(msgs[2].clone())));
        assert!(matches!(results[3], Ok(StreamOutput::Blocks(_))));
        // The failed decrypt did not advance stream 1: the full blocks
        // still open, bit-exactly.
        assert_eq!(
            rx.decrypt(StreamId(1), &blocks[1], msgs[1].len() * 8)
                .unwrap(),
            msgs[1]
        );
    }

    fn ring() -> KeyRing {
        KeyRing::new(
            vec![key(), Key::from_nibbles(&[(1, 6), (0, 7)]).unwrap()],
            0xACE1,
        )
        .unwrap()
    }

    /// Rekeying both muxes at the same point keeps traffic round-tripping,
    /// each epoch under its own key/seed; errors leave streams untouched.
    #[test]
    fn rekey_rotates_both_directions_atomically() {
        let tx = StreamMux::with_shards(2);
        let rx = StreamMux::with_shards(8);
        let cfg = StreamConfig::new(key()).with_ring(ring());
        tx.open(StreamId(1), cfg.clone()).unwrap();
        rx.open(StreamId(1), cfg).unwrap();

        let before = tx.encrypt(StreamId(1), b"epoch zero").unwrap();
        assert_eq!(rx.decrypt(StreamId(1), &before, 80).unwrap(), b"epoch zero");

        assert_eq!(tx.rekey(StreamId(1), 1).unwrap(), 1);
        assert_eq!(rx.rekey(StreamId(1), 1).unwrap(), 1);
        assert_eq!(tx.epoch(StreamId(1)).unwrap(), 1);
        // The new epoch restarts the schedule from the stream origin.
        assert_eq!(tx.cursor(StreamId(1)).unwrap().block_index, 0);

        let after = tx.encrypt(StreamId(1), b"epoch one!").unwrap();
        assert_ne!(before, after, "rotation must change the keystream");
        assert_eq!(rx.decrypt(StreamId(1), &after, 80).unwrap(), b"epoch one!");

        // Stale and replayed epochs are rejected without touching state.
        assert_eq!(
            tx.rekey(StreamId(1), 1),
            Err(GatewayError::StaleEpoch {
                current: 1,
                requested: 1
            })
        );
        assert_eq!(
            tx.rekey(StreamId(1), 0),
            Err(GatewayError::StaleEpoch {
                current: 1,
                requested: 0
            })
        );
        let more = tx.encrypt(StreamId(1), b"still epoch 1").unwrap();
        assert_eq!(
            rx.decrypt(StreamId(1), &more, 13 * 8).unwrap(),
            b"still epoch 1"
        );
        // Epochs may skip forward (e.g. catching up after downtime).
        assert_eq!(tx.rekey(StreamId(1), 7).unwrap(), 7);
    }

    #[test]
    fn rekey_without_ring_is_rejected_and_confined() {
        let mux = StreamMux::with_shards(1); // one shard: ops share a job
        mux.open(StreamId(1), StreamConfig::new(key())).unwrap();
        mux.open(StreamId(2), StreamConfig::new(key()).with_ring(ring()))
            .unwrap();
        let results = mux.submit_batch(vec![
            (StreamId(1), StreamOp::Rekey { epoch: 1 }),
            (StreamId(2), StreamOp::Rekey { epoch: 1 }),
            (StreamId(1), StreamOp::Encrypt(b"unrotated".to_vec())),
        ]);
        assert_eq!(results[0], Err(GatewayError::NoKeyRing(StreamId(1))));
        assert_eq!(results[1], Ok(StreamOutput::Rekeyed { epoch: 1 }));
        // The failed rekey left its stream fully usable at epoch 0.
        assert!(matches!(results[2], Ok(StreamOutput::Blocks(_))));
        assert_eq!(mux.epoch(StreamId(1)).unwrap(), 0);
        assert_eq!(mux.epoch(StreamId(2)).unwrap(), 1);
    }

    /// Chunk-addressed seal/open: any order, any subset, and the stream's
    /// sequential cursors never move — chunk and stream traffic coexist.
    #[test]
    fn chunk_ops_roundtrip_out_of_order_without_touching_cursors() {
        let tx = StreamMux::with_shards(2);
        let rx = StreamMux::with_shards(4);
        let cfg = StreamConfig::new(key()).with_ring(ring());
        tx.open(StreamId(9), cfg.clone()).unwrap();
        rx.open(StreamId(9), cfg).unwrap();

        let chunks: Vec<Vec<u8>> = (0u32..5)
            .map(|i| format!("chunk payload {i}").into_bytes())
            .collect();
        let sealed: Vec<Vec<u16>> = chunks
            .iter()
            .enumerate()
            .map(|(i, c)| tx.seal_chunk(StreamId(9), 0, i as u32, c).unwrap())
            .collect();
        // Chunk seals leave the sequential encrypt cursor at the origin.
        assert_eq!(tx.cursor(StreamId(9)).unwrap().block_index, 0);
        // Distinct indices must produce distinct keystreams.
        let again = tx.seal_chunk(StreamId(9), 0, 1, &chunks[0]).unwrap();
        assert_ne!(again, sealed[0], "chunk seeds must differ per index");

        // Open in reverse order, skipping one — delivery order and loss
        // are invisible to chunk decryption.
        for i in [4usize, 2, 1, 0] {
            let got = rx
                .open_chunk(StreamId(9), 0, &sealed[i], chunks[i].len() * 8)
                .unwrap();
            assert_eq!(got, chunks[i]);
        }
        // The sequential stream path is byte-identical to a chunk-free
        // stream: cursors were never advanced by the chunk traffic.
        let blocks = tx.encrypt(StreamId(9), b"stream traffic").unwrap();
        assert_eq!(
            rx.decrypt(StreamId(9), &blocks, 14 * 8).unwrap(),
            b"stream traffic"
        );
    }

    /// Pins the chunk-seed derivation: `seal_chunk` is byte-identical to
    /// a one-shot session seeded with `chunk_seed(ring.seed(epoch), i)` —
    /// the contract a remote differential oracle reproduces.
    #[test]
    fn chunk_seal_matches_oracle_session() {
        let mux = StreamMux::with_shards(2);
        let cfg = StreamConfig::new(key()).with_ring(ring());
        mux.open(StreamId(4), cfg).unwrap();
        let msg = b"oracle me";
        for index in [0u32, 1, 7] {
            let sealed = mux.seal_chunk(StreamId(4), 0, index, msg).unwrap();
            let seed = crate::pipeline::chunk_seed(ring().seed(0), index);
            let mut oracle = EncryptSession::with_options(
                key(),
                LfsrSource::new(seed).unwrap(),
                Algorithm::Mhhea,
                Profile::Streaming,
            );
            assert_eq!(sealed, oracle.encrypt(msg).unwrap(), "index {index}");
        }
    }

    /// Chunk ops refuse wrong epochs and ringless streams, and follow the
    /// stream across a rotation.
    #[test]
    fn chunk_ops_check_epoch_and_ring() {
        let mux = StreamMux::with_shards(2);
        mux.open(StreamId(1), StreamConfig::new(key())).unwrap();
        mux.open(StreamId(2), StreamConfig::new(key()).with_ring(ring()))
            .unwrap();
        assert_eq!(
            mux.seal_chunk(StreamId(1), 0, 0, b"no ring"),
            Err(GatewayError::NoKeyRing(StreamId(1)))
        );
        assert_eq!(
            mux.seal_chunk(StreamId(7), 0, 0, b"nobody home"),
            Err(GatewayError::UnknownStream(StreamId(7)))
        );
        // A wrong epoch stamp — stale or future — is refused up front.
        assert_eq!(
            mux.seal_chunk(StreamId(2), 3, 0, b"future"),
            Err(GatewayError::StaleEpoch {
                current: 0,
                requested: 3
            })
        );
        let epoch0 = mux.seal_chunk(StreamId(2), 0, 0, b"rotate me").unwrap();
        mux.rekey(StreamId(2), 1).unwrap();
        assert_eq!(
            mux.open_chunk(StreamId(2), 0, &epoch0, 72),
            Err(GatewayError::StaleEpoch {
                current: 1,
                requested: 0
            })
        );
        // Index 0 is fresh keystream again under the rotated epoch seed.
        let epoch1 = mux.seal_chunk(StreamId(2), 1, 0, b"rotate me").unwrap();
        assert_ne!(epoch0, epoch1, "rotation must change the chunk keystream");
        assert_eq!(
            mux.open_chunk(StreamId(2), 1, &epoch1, 72).unwrap(),
            b"rotate me"
        );
    }

    /// An evict/restore cycle across a rotation keeps everything: epoch,
    /// ring (so the stream can keep rotating), and bit-exact state.
    #[test]
    fn snapshot_v2_roundtrips_epoch_and_ring() {
        let mux = StreamMux::with_shards(2);
        mux.open(StreamId(3), StreamConfig::new(key()).with_ring(ring()))
            .unwrap();
        mux.encrypt(StreamId(3), b"pre-rotation").unwrap();
        mux.rekey(StreamId(3), 2).unwrap();
        mux.encrypt(StreamId(3), b"post-rotation").unwrap();

        let control = mux.clone();
        let snap = mux.evict(StreamId(3)).unwrap();
        assert_eq!(snap[4], SNAPSHOT_VERSION);
        let restored = StreamMux::with_shards(16);
        restored.restore(&snap).unwrap();
        assert_eq!(restored.epoch(StreamId(3)).unwrap(), 2);
        // restore → evict reproduces the exact bytes.
        assert_eq!(restored.snapshot(StreamId(3)).unwrap(), snap);
        // ...and the ring survived: the stream still rotates.
        restored.rekey(StreamId(3), 3).unwrap();
        control.restore(&snap).unwrap();
        control.rekey(StreamId(3), 3).unwrap();
        let a = restored.encrypt(StreamId(3), b"epoch three").unwrap();
        let b = control.encrypt(StreamId(3), b"epoch three").unwrap();
        assert_eq!(a, b, "post-restore rotation diverged");
    }

    /// A legacy v1 snapshot (hand-built to the documented layout) still
    /// restores: epoch 0, no ring — so a later rekey reports NoKeyRing.
    #[test]
    fn snapshot_v1_still_restores() {
        let k = key();
        let mut v1 = Vec::new();
        v1.extend_from_slice(&SNAPSHOT_MAGIC);
        v1.push(SNAPSHOT_VERSION_V1);
        v1.push(1); // MHHEA
        v1.push(0); // streaming
        v1.push(k.pairs().len() as u8);
        v1.extend_from_slice(&8u64.to_le_bytes());
        v1.extend_from_slice(&0xACE1u16.to_le_bytes());
        v1.extend_from_slice(&StreamCursor::start().to_bytes());
        v1.extend_from_slice(&StreamCursor::start().to_bytes());
        push_pairs(&mut v1, &k);

        let mux = StreamMux::with_shards(2);
        assert_eq!(mux.restore(&v1).unwrap(), StreamId(8));
        assert_eq!(mux.epoch(StreamId(8)).unwrap(), 0);
        assert_eq!(
            mux.rekey(StreamId(8), 1),
            Err(GatewayError::NoKeyRing(StreamId(8)))
        );
        // The restored stream matches a freshly opened one bit for bit.
        let fresh = StreamMux::with_shards(2);
        fresh.open(StreamId(8), StreamConfig::new(k)).unwrap();
        assert_eq!(
            mux.encrypt(StreamId(8), b"legacy").unwrap(),
            fresh.encrypt(StreamId(8), b"legacy").unwrap()
        );
    }

    #[test]
    fn snapshot_v2_ring_garbage_rejected() {
        let mux = StreamMux::with_shards(2);
        mux.open(StreamId(5), StreamConfig::new(key()).with_ring(ring()))
            .unwrap();
        let snap = mux.evict(StreamId(5)).unwrap();
        // Zero the ring master seed while keeping the ring count.
        let mut bad = snap.clone();
        bad[40] = 0;
        bad[41] = 0;
        assert_eq!(
            decode_snapshot(&bad).unwrap_err(),
            SnapshotDecodeError::ZeroRingSeed
        );
        // Truncate inside the trailing ring keys.
        assert!(matches!(
            decode_snapshot(&snap[..snap.len() - 1]),
            Err(SnapshotDecodeError::Truncated { .. })
        ));
        // Inflate a ring key's pair count past the cache depth.
        let mut bad = snap;
        let first_ring_key_count = SNAPSHOT_V2_HEADER_LEN + key().pairs().len();
        bad[first_ring_key_count] = 17;
        assert_eq!(
            decode_snapshot(&bad).unwrap_err(),
            SnapshotDecodeError::BadPairCount(17)
        );
    }

    /// White-box: the lane prepass engages for a compatible group, removes
    /// the laned items (bit-exact vs scalar), and leaves ineligible ops —
    /// hardware-faithful streams, repeat messages — on the scalar path.
    #[test]
    fn lane_prepass_packs_compatible_first_ops() {
        let mux = StreamMux::with_shards(1);
        for id in 0..19u64 {
            mux.open(StreamId(id), StreamConfig::new(key())).unwrap();
        }
        // Stream 19 is hardware-faithful: never laned.
        mux.open(
            StreamId(19),
            StreamConfig::new(key()).with_profile(Profile::HardwareFaithful),
        )
        .unwrap();
        let reference = StreamMux::with_shards(1);
        for id in 0..19u64 {
            reference
                .open(StreamId(id), StreamConfig::new(key()))
                .unwrap();
        }
        let mut items: ShardItems<Vec<u8>> = (0..20u64)
            .map(|id| (id as usize, StreamId(id), format!("msg {id}").into_bytes()))
            .collect();
        // A second message on stream 0 must stay scalar (order!).
        items.push((20, StreamId(0), b"second".to_vec()));
        let mut shard = lock_shard(&mux.inner.shards[0]);
        let done = lane_prepass(&mut shard, &mut items, |m: &Vec<u8>| Some(m.as_slice()));
        drop(shard);
        assert_eq!(done.len(), 19, "19 compatible first ops lane-pack");
        assert_eq!(items.len(), 2, "HW stream + repeat message stay scalar");
        for (pos, id, msg, blocks) in done {
            assert_eq!(pos, id.0 as usize);
            assert_eq!(blocks, reference.encrypt(id, &msg).unwrap());
        }
    }

    #[test]
    fn lane_prepass_skips_below_threshold() {
        let mux = StreamMux::with_shards(1);
        let few = LANE_THRESHOLD as u64 - 1;
        for id in 0..few {
            mux.open(StreamId(id), StreamConfig::new(key())).unwrap();
        }
        let mut items: ShardItems<Vec<u8>> = (0..few)
            .map(|id| (id as usize, StreamId(id), vec![0xAB; 8]))
            .collect();
        let mut shard = lock_shard(&mux.inner.shards[0]);
        let done = lane_prepass(&mut shard, &mut items, |m: &Vec<u8>| Some(m.as_slice()));
        assert!(done.is_empty(), "below threshold nothing lanes");
        assert_eq!(items.len(), few as usize);
    }

    #[test]
    fn zero_seed_rejected() {
        let mux = StreamMux::new();
        assert_eq!(
            mux.open(StreamId(9), StreamConfig::new(key()).with_seed(0)),
            Err(GatewayError::Engine(MhheaError::InvalidSeed))
        );
    }

    #[test]
    fn frame_decode_rejects_garbage() {
        assert_eq!(
            decode_frame(b"nope"),
            Err(FrameDecodeError::Truncated { need: 24, have: 4 })
        );
        let mut f = encode_frame(StreamId(7), 8, &[0xABCD]);
        f[0] = b'X';
        assert_eq!(decode_frame(&f), Err(FrameDecodeError::BadMagic));
        let mut f = encode_frame(StreamId(7), 8, &[0xABCD]);
        f[4] = 9;
        assert_eq!(
            decode_frame(&f),
            Err(FrameDecodeError::UnsupportedVersion(9))
        );
        let f = encode_frame(StreamId(7), 8, &[0xABCD, 0x1234]);
        assert!(matches!(
            decode_frame(&f[..f.len() - 1]),
            Err(FrameDecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn snapshot_decode_rejects_garbage() {
        let mux = StreamMux::new();
        mux.open(StreamId(3), StreamConfig::new(key())).unwrap();
        let snap = mux.evict(StreamId(3)).unwrap();
        assert!(matches!(
            decode_snapshot(&snap[..10]),
            Err(SnapshotDecodeError::Truncated { .. })
        ));
        let mut bad = snap.clone();
        bad[0] = b'X';
        assert_eq!(
            decode_snapshot(&bad).unwrap_err(),
            SnapshotDecodeError::BadMagic
        );
        let mut bad = snap.clone();
        bad[4] = 9;
        assert_eq!(
            decode_snapshot(&bad).unwrap_err(),
            SnapshotDecodeError::UnsupportedVersion(9)
        );
        let mut bad = snap.clone();
        bad[5] = 5;
        assert_eq!(
            decode_snapshot(&bad).unwrap_err(),
            SnapshotDecodeError::UnknownAlgorithm(5)
        );
        let mut bad = snap.clone();
        bad[7] = 0;
        assert_eq!(
            decode_snapshot(&bad).unwrap_err(),
            SnapshotDecodeError::BadPairCount(0)
        );
        let mut bad = snap.clone();
        bad[16] = 0;
        bad[17] = 0;
        assert_eq!(
            decode_snapshot(&bad).unwrap_err(),
            SnapshotDecodeError::ZeroLfsrState
        );
        // Buffered byte of the encrypt cursor out of range.
        let mut bad = snap;
        bad[26] = 16;
        assert!(matches!(
            decode_snapshot(&bad),
            Err(SnapshotDecodeError::Cursor(
                CursorDecodeError::InvalidBuffered(16)
            ))
        ));
    }
}
