//! A self-describing ciphertext container.
//!
//! Raw MHHEA output is a sequence of 16-bit vectors; decryption
//! additionally needs the message bit length, the cipher variant and the
//! buffering profile. The container serialises all of that with a key
//! fingerprint so wrong-key attempts fail loudly instead of returning
//! noise.
//!
//! Layout (little-endian):
//!
//! ```text
//! offset size field
//! 0      4    magic  "MHEA"
//! 4      1    version (1)
//! 5      1    algorithm (0 = HHEA, 1 = MHHEA)
//! 6      1    profile   (0 = streaming, 1 = hardware-faithful)
//! 7      1    reserved  (0)
//! 8      8    key fingerprint (FNV-1a; integrity hint, not authentication)
//! 16     8    message bit length
//! 24     4    block count
//! 28     2n   blocks (u16 little-endian)
//! ```

use crate::source::LfsrSource;
use crate::{Algorithm, Decryptor, Encryptor, Key, MhheaError, Profile};

/// Container magic bytes.
pub const MAGIC: [u8; 4] = *b"MHEA";
/// Current container version.
pub const VERSION: u8 = 1;
/// Header size in bytes.
pub const HEADER_LEN: usize = 28;

/// Errors opening or building containers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ContainerError {
    /// The payload does not start with [`MAGIC`].
    BadMagic,
    /// Unsupported container version.
    UnsupportedVersion(u8),
    /// Unknown algorithm tag.
    UnknownAlgorithm(u8),
    /// Unknown profile tag.
    UnknownProfile(u8),
    /// The byte stream ended inside the header or block payload.
    Truncated {
        /// Bytes needed.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// The supplied key does not match the container's fingerprint.
    KeyMismatch,
    /// An engine-level failure.
    Engine(MhheaError),
}

impl core::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ContainerError::BadMagic => write!(f, "not an MHHEA container"),
            ContainerError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            ContainerError::UnknownAlgorithm(a) => write!(f, "unknown algorithm tag {a}"),
            ContainerError::UnknownProfile(p) => write!(f, "unknown profile tag {p}"),
            ContainerError::Truncated { need, have } => {
                write!(f, "container truncated: need {need} bytes, have {have}")
            }
            ContainerError::KeyMismatch => write!(f, "key fingerprint mismatch"),
            ContainerError::Engine(e) => write!(f, "engine failure: {e}"),
        }
    }
}

impl std::error::Error for ContainerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ContainerError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MhheaError> for ContainerError {
    fn from(e: MhheaError) -> Self {
        ContainerError::Engine(e)
    }
}

/// Options for [`seal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealOptions {
    /// Cipher variant (default MHHEA).
    pub algorithm: Algorithm,
    /// Buffering profile (default streaming).
    pub profile: Profile,
    /// LFSR seed for the hiding-vector generator (nonzero; default
    /// `0xACE1`).
    pub lfsr_seed: u16,
}

impl Default for SealOptions {
    fn default() -> Self {
        SealOptions {
            algorithm: Algorithm::Mhhea,
            profile: Profile::Streaming,
            lfsr_seed: 0xACE1,
        }
    }
}

/// Encrypts `message` under `key` into a self-describing container.
///
/// # Errors
///
/// Returns [`ContainerError::Engine`] for engine failures (e.g. a zero
/// LFSR seed is rejected as source construction failure).
pub fn seal(key: &Key, message: &[u8], opts: &SealOptions) -> Result<Vec<u8>, ContainerError> {
    let source = LfsrSource::new(opts.lfsr_seed)
        .map_err(|_| ContainerError::Engine(MhheaError::SourceExhausted { blocks_produced: 0 }))?;
    let mut enc = Encryptor::new(key.clone(), source)
        .with_algorithm(opts.algorithm)
        .with_profile(opts.profile);
    let blocks = enc.encrypt(message)?;
    let bit_len = (message.len() * 8) as u64;

    let mut out = Vec::with_capacity(HEADER_LEN + blocks.len() * 2);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(match opts.algorithm {
        Algorithm::Hhea => 0,
        Algorithm::Mhhea => 1,
    });
    out.push(match opts.profile {
        Profile::Streaming => 0,
        Profile::HardwareFaithful => 1,
    });
    out.push(0); // reserved
    out.extend_from_slice(&key.fingerprint().to_le_bytes());
    out.extend_from_slice(&bit_len.to_le_bytes());
    out.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
    for b in blocks {
        out.extend_from_slice(&b.to_le_bytes());
    }
    Ok(out)
}

/// Parsed container header (exposed for diagnostics and tooling).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Cipher variant.
    pub algorithm: Algorithm,
    /// Buffering profile.
    pub profile: Profile,
    /// Key fingerprint.
    pub fingerprint: u64,
    /// Message bit length.
    pub bit_len: u64,
    /// Number of 16-bit blocks.
    pub block_count: u32,
}

/// Parses and validates a container header.
///
/// # Errors
///
/// All structural [`ContainerError`] variants except `KeyMismatch`.
pub fn parse_header(bytes: &[u8]) -> Result<Header, ContainerError> {
    if bytes.len() < HEADER_LEN {
        return Err(ContainerError::Truncated {
            need: HEADER_LEN,
            have: bytes.len(),
        });
    }
    if bytes[0..4] != MAGIC {
        return Err(ContainerError::BadMagic);
    }
    if bytes[4] != VERSION {
        return Err(ContainerError::UnsupportedVersion(bytes[4]));
    }
    let algorithm = match bytes[5] {
        0 => Algorithm::Hhea,
        1 => Algorithm::Mhhea,
        other => return Err(ContainerError::UnknownAlgorithm(other)),
    };
    let profile = match bytes[6] {
        0 => Profile::Streaming,
        1 => Profile::HardwareFaithful,
        other => return Err(ContainerError::UnknownProfile(other)),
    };
    let fingerprint = u64::from_le_bytes(bytes[8..16].try_into().expect("sized"));
    let bit_len = u64::from_le_bytes(bytes[16..24].try_into().expect("sized"));
    let block_count = u32::from_le_bytes(bytes[24..28].try_into().expect("sized"));
    Ok(Header {
        algorithm,
        profile,
        fingerprint,
        bit_len,
        block_count,
    })
}

/// Decrypts a container sealed with [`seal`].
///
/// # Errors
///
/// Structural errors from [`parse_header`], [`ContainerError::KeyMismatch`]
/// for a wrong key, and [`ContainerError::Engine`] for decryption failures.
pub fn open(key: &Key, bytes: &[u8]) -> Result<Vec<u8>, ContainerError> {
    let header = parse_header(bytes)?;
    if header.fingerprint != key.fingerprint() {
        return Err(ContainerError::KeyMismatch);
    }
    let need = HEADER_LEN + header.block_count as usize * 2;
    if bytes.len() < need {
        return Err(ContainerError::Truncated {
            need,
            have: bytes.len(),
        });
    }
    let blocks: Vec<u16> = bytes[HEADER_LEN..need]
        .chunks_exact(2)
        .map(|c| u16::from_le_bytes([c[0], c[1]]))
        .collect();
    let dec = Decryptor::new(key.clone())
        .with_algorithm(header.algorithm)
        .with_profile(header.profile);
    Ok(dec.decrypt(&blocks, header.bit_len as usize)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Key {
        Key::from_nibbles(&[(0, 3), (2, 5), (1, 7)]).unwrap()
    }

    #[test]
    fn seal_open_roundtrip_all_modes() {
        for algorithm in [Algorithm::Hhea, Algorithm::Mhhea] {
            for profile in [Profile::Streaming, Profile::HardwareFaithful] {
                let opts = SealOptions {
                    algorithm,
                    profile,
                    lfsr_seed: 0x1234,
                };
                let sealed = seal(&key(), b"hello container", &opts).unwrap();
                let opened = open(&key(), &sealed).unwrap();
                assert_eq!(opened, b"hello container");
            }
        }
    }

    #[test]
    fn header_fields_roundtrip() {
        let sealed = seal(&key(), b"abc", &SealOptions::default()).unwrap();
        let h = parse_header(&sealed).unwrap();
        assert_eq!(h.algorithm, Algorithm::Mhhea);
        assert_eq!(h.profile, Profile::Streaming);
        assert_eq!(h.bit_len, 24);
        assert_eq!(h.fingerprint, key().fingerprint());
        assert_eq!(sealed.len(), HEADER_LEN + h.block_count as usize * 2);
    }

    #[test]
    fn wrong_key_detected() {
        let sealed = seal(&key(), b"secret", &SealOptions::default()).unwrap();
        let wrong = Key::from_nibbles(&[(4, 4)]).unwrap();
        assert_eq!(open(&wrong, &sealed), Err(ContainerError::KeyMismatch));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut sealed = seal(&key(), b"x", &SealOptions::default()).unwrap();
        sealed[0] = b'X';
        assert_eq!(open(&key(), &sealed), Err(ContainerError::BadMagic));
    }

    #[test]
    fn bad_version_and_tags_rejected() {
        let good = seal(&key(), b"x", &SealOptions::default()).unwrap();
        let mut v = good.clone();
        v[4] = 9;
        assert_eq!(open(&key(), &v), Err(ContainerError::UnsupportedVersion(9)));
        let mut a = good.clone();
        a[5] = 7;
        assert_eq!(open(&key(), &a), Err(ContainerError::UnknownAlgorithm(7)));
        let mut p = good;
        p[6] = 7;
        assert_eq!(open(&key(), &p), Err(ContainerError::UnknownProfile(7)));
    }

    #[test]
    fn truncation_detected() {
        let sealed = seal(&key(), b"a longer message here", &SealOptions::default()).unwrap();
        assert!(matches!(
            open(&key(), &sealed[..10]),
            Err(ContainerError::Truncated { .. })
        ));
        assert!(matches!(
            open(&key(), &sealed[..sealed.len() - 3]),
            Err(ContainerError::Truncated { .. })
        ));
    }

    #[test]
    fn empty_message_container() {
        let sealed = seal(&key(), b"", &SealOptions::default()).unwrap();
        assert_eq!(open(&key(), &sealed).unwrap(), b"");
        let h = parse_header(&sealed).unwrap();
        assert_eq!(h.block_count, 0);
        assert_eq!(h.bit_len, 0);
    }

    #[test]
    fn zero_seed_rejected() {
        let opts = SealOptions {
            lfsr_seed: 0,
            ..Default::default()
        };
        assert!(seal(&key(), b"x", &opts).is_err());
    }
}
