//! Self-describing ciphertext containers (v1 single-stream, v2 chunked).
//!
//! Raw MHHEA output is a sequence of 16-bit vectors; decryption
//! additionally needs the message bit length, the cipher variant and the
//! buffering profile. The containers serialise all of that with a key
//! fingerprint so wrong-key attempts fail loudly instead of returning
//! noise.
//!
//! **v1** ([`seal`]) is one stream sealed by one session from the stream
//! origin. **v2** ([`seal_v2`]) frames the payload into fixed-size chunks,
//! each encrypted by an independent session whose LFSR seed derives from
//! the master seed and the chunk number ([`crate::pipeline::chunk_seed`]),
//! so a large payload seals *and* opens chunk-parallel across threads.
//! [`open`] reads both versions.
//!
//! v1 layout (little-endian):
//!
//! ```text
//! offset size field
//! 0      4    magic  "MHEA"
//! 4      1    version (1)
//! 5      1    algorithm (0 = HHEA, 1 = MHHEA)
//! 6      1    profile   (0 = streaming, 1 = hardware-faithful)
//! 7      1    reserved  (0)
//! 8      8    key fingerprint (FNV-1a; integrity hint, not authentication)
//! 16     8    message bit length
//! 24     4    block count
//! 28     2n   blocks (u16 little-endian)
//! ```
//!
//! v2 layout (little-endian):
//!
//! ```text
//! offset size field
//! 0      4    magic  "MHEA"
//! 4      1    version (2)
//! 5      1    algorithm (0 = HHEA, 1 = MHHEA)
//! 6      1    profile   (0 = streaming, 1 = hardware-faithful)
//! 7      1    reserved  (0)
//! 8      8    key fingerprint
//! 16     8    total message bit length
//! 24     2    master LFSR seed (per-chunk seeds derive from it)
//! 26     2    reserved (0)
//! 28     4    chunk count
//! 32     —    chunk frames, in index order:
//!               +0   4    chunk index (consistency check)
//!               +4   4    chunk bit length
//!               +8   4    block count n
//!               +12  2n   blocks (u16 little-endian)
//! ```
//!
//! Every chunk but the last carries a whole number of bytes, so opened
//! chunks concatenate without bit shifting.

use crate::block::SpanTable;
use crate::lanes::{open_lanes, seal_lanes, LaneOpenJob, LaneSealJob, LANE_THRESHOLD, MAX_LANES};
use crate::pipeline::{chunk_ranges, chunk_seed, parallel_map, DEFAULT_CHUNK_BYTES};
use crate::session::{DecryptSession, EncryptSession};
use crate::source::LfsrSource;
use crate::{Algorithm, Decryptor, Encryptor, Key, MhheaError, Profile};

/// Container magic bytes.
pub const MAGIC: [u8; 4] = *b"MHEA";
/// Single-stream container version.
pub const VERSION: u8 = 1;
/// Chunked container version.
pub const VERSION_V2: u8 = 2;
/// v1 header size in bytes.
pub const HEADER_LEN: usize = 28;
/// v2 header size in bytes.
pub const HEADER_V2_LEN: usize = 32;
/// Per-chunk frame header size in bytes (index, bit length, block count).
pub const CHUNK_HEADER_LEN: usize = 12;

/// Errors opening or building containers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ContainerError {
    /// The payload does not start with [`MAGIC`].
    BadMagic,
    /// Unsupported container version.
    UnsupportedVersion(u8),
    /// Unknown algorithm tag.
    UnknownAlgorithm(u8),
    /// Unknown profile tag.
    UnknownProfile(u8),
    /// The byte stream ended inside the header or block payload.
    Truncated {
        /// Bytes needed.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// The supplied key does not match the container's fingerprint.
    KeyMismatch,
    /// A v2 chunk frame is inconsistent (out-of-order index, a mid-stream
    /// chunk with a fractional byte count, or bit lengths that do not sum
    /// to the header total).
    ChunkFraming {
        /// Index of the offending chunk frame.
        index: u32,
    },
    /// [`SealV2Options::chunk_bytes`] is unusable: zero, not a multiple of
    /// 4 (the hardware profile consumes whole 32-bit words), or too large
    /// to frame.
    InvalidChunkSize {
        /// The rejected size.
        chunk_bytes: usize,
    },
    /// An engine-level failure.
    Engine(MhheaError),
}

impl core::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ContainerError::BadMagic => write!(f, "not an MHHEA container"),
            ContainerError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            ContainerError::UnknownAlgorithm(a) => write!(f, "unknown algorithm tag {a}"),
            ContainerError::UnknownProfile(p) => write!(f, "unknown profile tag {p}"),
            ContainerError::Truncated { need, have } => {
                write!(f, "container truncated: need {need} bytes, have {have}")
            }
            ContainerError::KeyMismatch => write!(f, "key fingerprint mismatch"),
            ContainerError::ChunkFraming { index } => {
                write!(f, "inconsistent chunk frame at index {index}")
            }
            ContainerError::InvalidChunkSize { chunk_bytes } => {
                write!(
                    f,
                    "chunk size {chunk_bytes} is invalid (must be a nonzero multiple of 4)"
                )
            }
            ContainerError::Engine(e) => write!(f, "engine failure: {e}"),
        }
    }
}

impl std::error::Error for ContainerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ContainerError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MhheaError> for ContainerError {
    fn from(e: MhheaError) -> Self {
        ContainerError::Engine(e)
    }
}

fn algorithm_tag(algorithm: Algorithm) -> u8 {
    match algorithm {
        Algorithm::Hhea => 0,
        Algorithm::Mhhea => 1,
    }
}

fn profile_tag(profile: Profile) -> u8 {
    match profile {
        Profile::Streaming => 0,
        Profile::HardwareFaithful => 1,
    }
}

/// Options for [`seal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealOptions {
    /// Cipher variant (default MHHEA).
    pub algorithm: Algorithm,
    /// Buffering profile (default streaming).
    pub profile: Profile,
    /// LFSR seed for the hiding-vector generator (nonzero; default
    /// `0xACE1`).
    pub lfsr_seed: u16,
}

impl Default for SealOptions {
    fn default() -> Self {
        SealOptions {
            algorithm: Algorithm::Mhhea,
            profile: Profile::Streaming,
            lfsr_seed: 0xACE1,
        }
    }
}

/// Encrypts `message` under `key` into a self-describing v1 container.
///
/// # Errors
///
/// Returns [`ContainerError::Engine`] for engine failures; a zero LFSR
/// seed is rejected as [`MhheaError::InvalidSeed`].
pub fn seal(key: &Key, message: &[u8], opts: &SealOptions) -> Result<Vec<u8>, ContainerError> {
    let source = LfsrSource::new(opts.lfsr_seed)
        .map_err(|_| ContainerError::Engine(MhheaError::InvalidSeed))?;
    let mut enc = Encryptor::new(key.clone(), source)
        .with_algorithm(opts.algorithm)
        .with_profile(opts.profile);
    let blocks = enc.encrypt(message)?;
    let bit_len = (message.len() * 8) as u64;

    let mut out = Vec::with_capacity(HEADER_LEN + blocks.len() * 2);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(algorithm_tag(opts.algorithm));
    out.push(profile_tag(opts.profile));
    out.push(0); // reserved
    out.extend_from_slice(&key.fingerprint().to_le_bytes());
    out.extend_from_slice(&bit_len.to_le_bytes());
    out.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
    for b in blocks {
        out.extend_from_slice(&b.to_le_bytes());
    }
    Ok(out)
}

/// Options for [`seal_v2`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealV2Options {
    /// Cipher variant (default MHHEA).
    pub algorithm: Algorithm,
    /// Buffering profile (default streaming).
    pub profile: Profile,
    /// Master LFSR seed; each chunk runs on
    /// [`chunk_seed`]`(master_seed, index)` (nonzero; default `0xACE1`).
    pub master_seed: u16,
    /// Payload bytes per chunk (nonzero multiple of 4; default 64 KiB).
    pub chunk_bytes: usize,
    /// Worker threads for sealing; `0` (default) asks the OS.
    pub workers: usize,
}

impl Default for SealV2Options {
    fn default() -> Self {
        SealV2Options {
            algorithm: Algorithm::Mhhea,
            profile: Profile::Streaming,
            master_seed: 0xACE1,
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            workers: 0,
        }
    }
}

fn validate_chunk_bytes(chunk_bytes: usize) -> Result<(), ContainerError> {
    // The 4-byte floor keeps every non-final chunk a whole number of the
    // hardware profile's 32-bit message words; the ceiling keeps the
    // per-chunk bit length inside its u32 frame field.
    if chunk_bytes == 0 || !chunk_bytes.is_multiple_of(4) || chunk_bytes > (u32::MAX / 8) as usize {
        return Err(ContainerError::InvalidChunkSize { chunk_bytes });
    }
    Ok(())
}

/// Encrypts `message` under `key` into a chunked v2 container,
/// parallelising across chunks.
///
/// # Errors
///
/// [`ContainerError::InvalidChunkSize`] for an unusable chunk size,
/// [`MhheaError::InvalidSeed`] (wrapped in [`ContainerError::Engine`]) for
/// a zero master seed, and [`ContainerError::Engine`] for engine failures.
pub fn seal_v2(key: &Key, message: &[u8], opts: &SealV2Options) -> Result<Vec<u8>, ContainerError> {
    validate_chunk_bytes(opts.chunk_bytes)?;
    if opts.master_seed == 0 {
        return Err(ContainerError::Engine(MhheaError::InvalidSeed));
    }
    let ranges = chunk_ranges(message.len(), opts.chunk_bytes);
    let chunk_count = ranges.len() as u32;
    let chunk_lens: Vec<usize> = ranges.iter().map(std::ops::Range::len).collect();

    // Pool jobs outlive this stack frame, so each chunk owns its bytes
    // (one payload-sized copy total) and the key travels behind an Arc.
    let jobs: Vec<(u32, Vec<u8>)> = ranges
        .into_iter()
        .enumerate()
        .map(|(i, r)| (i as u32, message[r].to_vec()))
        .collect();
    let shared_key = std::sync::Arc::new(key.clone());
    let (algorithm, profile, master_seed) = (opts.algorithm, opts.profile, opts.master_seed);
    // Enough independently-seeded streaming chunks fill the bitsliced
    // lane engine: batches of up to MAX_LANES chunks march in lockstep,
    // and the pool still parallelises across batches. Below the
    // threshold (or on the serial hardware profile) each chunk seals on
    // the scalar session path.
    let sealed: Vec<Result<Vec<u16>, MhheaError>> = if profile == Profile::Streaming
        && jobs.len() >= LANE_THRESHOLD
    {
        let batches: Vec<Vec<(u32, Vec<u8>)>> = jobs.chunks(MAX_LANES).map(<[_]>::to_vec).collect();
        let lane_key = shared_key.clone();
        let per_batch: Vec<Result<Vec<Vec<u16>>, MhheaError>> =
            parallel_map(batches, opts.workers, move |_, batch| {
                let table = SpanTable::new(&lane_key, algorithm);
                let lane_jobs: Vec<LaneSealJob> = batch
                    .iter()
                    .map(|(index, chunk)| LaneSealJob {
                        message: chunk,
                        state: chunk_seed(master_seed, *index),
                        block_index: 0,
                    })
                    .collect();
                seal_lanes(&lane_key, algorithm, &table, &lane_jobs)
                    .map(|outs| outs.into_iter().map(|o| o.blocks).collect())
            });
        let mut flat = Vec::with_capacity(chunk_count as usize);
        for batch in per_batch {
            match batch {
                Ok(outs) => flat.extend(outs.into_iter().map(Ok)),
                Err(e) => flat.push(Err(e)),
            }
        }
        flat
    } else {
        parallel_map(jobs, opts.workers, move |_, (index, chunk)| {
            let seed = chunk_seed(master_seed, index);
            let source = LfsrSource::new(seed).expect("derived seeds are nonzero");
            let mut session =
                EncryptSession::with_options((*shared_key).clone(), source, algorithm, profile);
            session.encrypt(&chunk)
        })
    };

    let mut out = Vec::with_capacity(HEADER_V2_LEN + message.len() * 5);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION_V2);
    out.push(algorithm_tag(opts.algorithm));
    out.push(profile_tag(opts.profile));
    out.push(0); // reserved
    out.extend_from_slice(&key.fingerprint().to_le_bytes());
    out.extend_from_slice(&((message.len() * 8) as u64).to_le_bytes());
    out.extend_from_slice(&opts.master_seed.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // reserved
    out.extend_from_slice(&chunk_count.to_le_bytes());
    for (i, blocks) in sealed.into_iter().enumerate() {
        let blocks = blocks?;
        let bit_len = (chunk_lens[i] * 8) as u32;
        out.extend_from_slice(&(i as u32).to_le_bytes());
        out.extend_from_slice(&bit_len.to_le_bytes());
        out.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
        for b in blocks {
            out.extend_from_slice(&b.to_le_bytes());
        }
    }
    Ok(out)
}

/// Parsed v1 container header (exposed for diagnostics and tooling).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Cipher variant.
    pub algorithm: Algorithm,
    /// Buffering profile.
    pub profile: Profile,
    /// Key fingerprint.
    pub fingerprint: u64,
    /// Message bit length.
    pub bit_len: u64,
    /// Number of 16-bit blocks.
    pub block_count: u32,
}

/// Parsed v2 container header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeaderV2 {
    /// Cipher variant.
    pub algorithm: Algorithm,
    /// Buffering profile.
    pub profile: Profile,
    /// Key fingerprint.
    pub fingerprint: u64,
    /// Total message bit length across all chunks.
    pub bit_len: u64,
    /// Master LFSR seed the per-chunk seeds derive from.
    pub master_seed: u16,
    /// Number of chunk frames.
    pub chunk_count: u32,
}

fn parse_common(bytes: &[u8], want_version: u8, header_len: usize) -> Result<(), ContainerError> {
    if bytes.len() < header_len {
        return Err(ContainerError::Truncated {
            need: header_len,
            have: bytes.len(),
        });
    }
    if bytes[0..4] != MAGIC {
        return Err(ContainerError::BadMagic);
    }
    if bytes[4] != want_version {
        return Err(ContainerError::UnsupportedVersion(bytes[4]));
    }
    Ok(())
}

fn parse_tags(bytes: &[u8]) -> Result<(Algorithm, Profile), ContainerError> {
    let algorithm = match bytes[5] {
        0 => Algorithm::Hhea,
        1 => Algorithm::Mhhea,
        other => return Err(ContainerError::UnknownAlgorithm(other)),
    };
    let profile = match bytes[6] {
        0 => Profile::Streaming,
        1 => Profile::HardwareFaithful,
        other => return Err(ContainerError::UnknownProfile(other)),
    };
    Ok((algorithm, profile))
}

/// Parses and validates a v1 container header.
///
/// # Errors
///
/// All structural [`ContainerError`] variants except `KeyMismatch`; a v2
/// container reports [`ContainerError::UnsupportedVersion`]`(2)` — use
/// [`parse_header_v2`] for those.
pub fn parse_header(bytes: &[u8]) -> Result<Header, ContainerError> {
    parse_common(bytes, VERSION, HEADER_LEN)?;
    let (algorithm, profile) = parse_tags(bytes)?;
    let fingerprint = u64::from_le_bytes(bytes[8..16].try_into().expect("sized"));
    let bit_len = u64::from_le_bytes(bytes[16..24].try_into().expect("sized"));
    let block_count = u32::from_le_bytes(bytes[24..28].try_into().expect("sized"));
    Ok(Header {
        algorithm,
        profile,
        fingerprint,
        bit_len,
        block_count,
    })
}

/// Parses and validates a v2 container header.
///
/// # Errors
///
/// All structural [`ContainerError`] variants except `KeyMismatch`.
pub fn parse_header_v2(bytes: &[u8]) -> Result<HeaderV2, ContainerError> {
    parse_common(bytes, VERSION_V2, HEADER_V2_LEN)?;
    let (algorithm, profile) = parse_tags(bytes)?;
    let fingerprint = u64::from_le_bytes(bytes[8..16].try_into().expect("sized"));
    let bit_len = u64::from_le_bytes(bytes[16..24].try_into().expect("sized"));
    let master_seed = u16::from_le_bytes(bytes[24..26].try_into().expect("sized"));
    let chunk_count = u32::from_le_bytes(bytes[28..32].try_into().expect("sized"));
    Ok(HeaderV2 {
        algorithm,
        profile,
        fingerprint,
        bit_len,
        master_seed,
        chunk_count,
    })
}

/// Decrypts a container sealed with [`seal`] **or** [`seal_v2`] (the
/// version byte selects the path; v2 opens with automatic worker count).
///
/// # Errors
///
/// Structural errors from header parsing, [`ContainerError::KeyMismatch`]
/// for a wrong key, and [`ContainerError::Engine`] for decryption
/// failures.
pub fn open(key: &Key, bytes: &[u8]) -> Result<Vec<u8>, ContainerError> {
    match bytes.get(4) {
        Some(&VERSION_V2) => open_v2_with(key, bytes, 0),
        _ => open_v1(key, bytes),
    }
}

fn open_v1(key: &Key, bytes: &[u8]) -> Result<Vec<u8>, ContainerError> {
    let header = parse_header(bytes)?;
    if header.fingerprint != key.fingerprint() {
        return Err(ContainerError::KeyMismatch);
    }
    let need = HEADER_LEN + header.block_count as usize * 2;
    if bytes.len() < need {
        return Err(ContainerError::Truncated {
            need,
            have: bytes.len(),
        });
    }
    let blocks: Vec<u16> = bytes[HEADER_LEN..need]
        .chunks_exact(2)
        .map(|c| u16::from_le_bytes([c[0], c[1]]))
        .collect();
    let dec = Decryptor::new(key.clone())
        .with_algorithm(header.algorithm)
        .with_profile(header.profile);
    Ok(dec.decrypt(&blocks, header.bit_len as usize)?)
}

/// Decrypts a v2 container with automatic worker count.
///
/// # Errors
///
/// See [`open`].
pub fn open_v2(key: &Key, bytes: &[u8]) -> Result<Vec<u8>, ContainerError> {
    open_v2_with(key, bytes, 0)
}

/// Decrypts a v2 container across `workers` threads (`0` asks the OS).
///
/// # Errors
///
/// See [`open`].
pub fn open_v2_with(key: &Key, bytes: &[u8], workers: usize) -> Result<Vec<u8>, ContainerError> {
    let header = parse_header_v2(bytes)?;
    if header.fingerprint != key.fingerprint() {
        return Err(ContainerError::KeyMismatch);
    }

    // Walk the frames sequentially (cheap: header reads plus one slice per
    // chunk), validating indices and lengths before any decryption work.
    // Capacity hints come from what the byte stream can physically hold,
    // never from header fields alone — a corrupted chunk count or bit
    // length must fail with Truncated/ChunkFraming, not abort on a huge
    // allocation.
    let plausible_chunks = (header.chunk_count as usize).min(bytes.len() / CHUNK_HEADER_LEN);
    let mut frames: Vec<(u32, usize, Vec<u8>)> = Vec::with_capacity(plausible_chunks);
    let mut offset = HEADER_V2_LEN;
    let mut total_bits: u64 = 0;
    for i in 0..header.chunk_count {
        if bytes.len() < offset + CHUNK_HEADER_LEN {
            return Err(ContainerError::Truncated {
                need: offset + CHUNK_HEADER_LEN,
                have: bytes.len(),
            });
        }
        let frame = &bytes[offset..];
        let index = u32::from_le_bytes(frame[0..4].try_into().expect("sized"));
        let bit_len = u32::from_le_bytes(frame[4..8].try_into().expect("sized"));
        let block_count = u32::from_le_bytes(frame[8..12].try_into().expect("sized"));
        if index != i {
            return Err(ContainerError::ChunkFraming { index });
        }
        // Mid-stream chunks must hold whole bytes or the concatenation
        // below would need bit shifting (seal_v2 never produces that).
        if i + 1 != header.chunk_count && bit_len % 8 != 0 {
            return Err(ContainerError::ChunkFraming { index });
        }
        let body = offset + CHUNK_HEADER_LEN;
        let need = body + block_count as usize * 2;
        if bytes.len() < need {
            return Err(ContainerError::Truncated {
                need,
                have: bytes.len(),
            });
        }
        // Owned body: pool jobs must not borrow the caller's buffer (a
        // memcpy per chunk, overlapped with decryption across workers).
        frames.push((index, bit_len as usize, bytes[body..need].to_vec()));
        total_bits += bit_len as u64;
        offset = need;
    }
    if total_bits != header.bit_len {
        return Err(ContainerError::ChunkFraming {
            index: header.chunk_count,
        });
    }

    // Each chunk was sealed by an independent session from the stream
    // origin, so chunks decrypt in any order on any thread (each worker
    // clones a fresh-cursor template, so the span table is built once).
    // The hiding vectors travel inside the blocks themselves — the decrypt
    // side never re-derives the per-chunk seeds (the master seed in the
    // header exists so a holder of the key can reproduce the seal
    // bit-for-bit). With enough streaming chunks the lane engine opens
    // batches of up to MAX_LANES chunks in bitsliced lockstep instead.
    let opened: Vec<Result<Vec<u8>, MhheaError>> =
        if header.profile == Profile::Streaming && frames.len() >= LANE_THRESHOLD {
            let batches: Vec<Vec<(u32, usize, Vec<u8>)>> =
                frames.chunks(MAX_LANES).map(<[_]>::to_vec).collect();
            let lane_key = std::sync::Arc::new(key.clone());
            let algorithm = header.algorithm;
            let per_batch: Vec<Result<Vec<Vec<u8>>, MhheaError>> =
                parallel_map(batches, workers, move |_, batch| {
                    let table = SpanTable::new(&lane_key, algorithm);
                    let blocks_per: Vec<Vec<u16>> = batch
                        .iter()
                        .map(|(_, _, body)| {
                            body.chunks_exact(2)
                                .map(|c| u16::from_le_bytes([c[0], c[1]]))
                                .collect()
                        })
                        .collect();
                    let lane_jobs: Vec<LaneOpenJob> = blocks_per
                        .iter()
                        .zip(&batch)
                        .map(|(blocks, (_, bit_len, _))| LaneOpenJob {
                            blocks,
                            bit_len: *bit_len,
                            block_index: 0,
                        })
                        .collect();
                    open_lanes(&lane_key, algorithm, &table, &lane_jobs)
                });
            let mut flat = Vec::with_capacity(header.chunk_count as usize);
            for batch in per_batch {
                match batch {
                    Ok(outs) => flat.extend(outs.into_iter().map(Ok)),
                    Err(e) => flat.push(Err(e)),
                }
            }
            flat
        } else {
            let template = std::sync::Arc::new(DecryptSession::with_options(
                key.clone(),
                header.algorithm,
                header.profile,
            ));
            parallel_map(frames, workers, move |_, (_index, bit_len, body)| {
                let blocks: Vec<u16> = body
                    .chunks_exact(2)
                    .map(|c| u16::from_le_bytes([c[0], c[1]]))
                    .collect();
                (*template).clone().decrypt(&blocks, bit_len)
            })
        };

    // A chunk yields at most one plaintext byte per two sealed bytes, so
    // the input length bounds the output regardless of the header total.
    let out_cap = ((header.bit_len as usize) / 8).min(bytes.len());
    let mut out = Vec::with_capacity(out_cap);
    for chunk in opened {
        // Non-final chunks are whole bytes (validated above), so plain
        // byte concatenation reassembles the payload.
        out.extend_from_slice(&chunk?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Key {
        Key::from_nibbles(&[(0, 3), (2, 5), (1, 7)]).unwrap()
    }

    #[test]
    fn seal_open_roundtrip_all_modes() {
        for algorithm in [Algorithm::Hhea, Algorithm::Mhhea] {
            for profile in [Profile::Streaming, Profile::HardwareFaithful] {
                let opts = SealOptions {
                    algorithm,
                    profile,
                    lfsr_seed: 0x1234,
                };
                let sealed = seal(&key(), b"hello container", &opts).unwrap();
                let opened = open(&key(), &sealed).unwrap();
                assert_eq!(opened, b"hello container");
            }
        }
    }

    #[test]
    fn header_fields_roundtrip() {
        let sealed = seal(&key(), b"abc", &SealOptions::default()).unwrap();
        let h = parse_header(&sealed).unwrap();
        assert_eq!(h.algorithm, Algorithm::Mhhea);
        assert_eq!(h.profile, Profile::Streaming);
        assert_eq!(h.bit_len, 24);
        assert_eq!(h.fingerprint, key().fingerprint());
        assert_eq!(sealed.len(), HEADER_LEN + h.block_count as usize * 2);
    }

    #[test]
    fn wrong_key_detected() {
        let sealed = seal(&key(), b"secret", &SealOptions::default()).unwrap();
        let wrong = Key::from_nibbles(&[(4, 4)]).unwrap();
        assert_eq!(open(&wrong, &sealed), Err(ContainerError::KeyMismatch));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut sealed = seal(&key(), b"x", &SealOptions::default()).unwrap();
        sealed[0] = b'X';
        assert_eq!(open(&key(), &sealed), Err(ContainerError::BadMagic));
    }

    #[test]
    fn bad_version_and_tags_rejected() {
        let good = seal(&key(), b"x", &SealOptions::default()).unwrap();
        let mut v = good.clone();
        v[4] = 9;
        assert_eq!(open(&key(), &v), Err(ContainerError::UnsupportedVersion(9)));
        let mut a = good.clone();
        a[5] = 7;
        assert_eq!(open(&key(), &a), Err(ContainerError::UnknownAlgorithm(7)));
        let mut p = good;
        p[6] = 7;
        assert_eq!(open(&key(), &p), Err(ContainerError::UnknownProfile(7)));
    }

    #[test]
    fn truncation_detected() {
        let sealed = seal(&key(), b"a longer message here", &SealOptions::default()).unwrap();
        assert!(matches!(
            open(&key(), &sealed[..10]),
            Err(ContainerError::Truncated { .. })
        ));
        assert!(matches!(
            open(&key(), &sealed[..sealed.len() - 3]),
            Err(ContainerError::Truncated { .. })
        ));
    }

    #[test]
    fn empty_message_container() {
        let sealed = seal(&key(), b"", &SealOptions::default()).unwrap();
        assert_eq!(open(&key(), &sealed).unwrap(), b"");
        let h = parse_header(&sealed).unwrap();
        assert_eq!(h.block_count, 0);
        assert_eq!(h.bit_len, 0);
    }

    #[test]
    fn zero_seed_rejected() {
        let opts = SealOptions {
            lfsr_seed: 0,
            ..Default::default()
        };
        assert_eq!(
            seal(&key(), b"x", &opts),
            Err(ContainerError::Engine(MhheaError::InvalidSeed))
        );
    }

    fn v2_opts(profile: Profile, chunk_bytes: usize, workers: usize) -> SealV2Options {
        SealV2Options {
            profile,
            chunk_bytes,
            workers,
            ..Default::default()
        }
    }

    #[test]
    fn v2_roundtrip_all_modes_multichunk() {
        let message: Vec<u8> = (0..1000u32).map(|i| (i * 7 + 3) as u8).collect();
        for algorithm in [Algorithm::Hhea, Algorithm::Mhhea] {
            for profile in [Profile::Streaming, Profile::HardwareFaithful] {
                let opts = SealV2Options {
                    algorithm,
                    ..v2_opts(profile, 256, 3)
                };
                let sealed = seal_v2(&key(), &message, &opts).unwrap();
                let h = parse_header_v2(&sealed).unwrap();
                assert_eq!(h.chunk_count, 4); // 1000 bytes / 256
                assert_eq!(h.bit_len, 8000);
                // `open` dispatches on the version byte.
                assert_eq!(open(&key(), &sealed).unwrap(), message);
                // Explicit worker counts agree.
                assert_eq!(open_v2_with(&key(), &sealed, 4).unwrap(), message);
            }
        }
    }

    #[test]
    fn v2_empty_and_single_chunk() {
        let opts = v2_opts(Profile::Streaming, 256, 2);
        let sealed = seal_v2(&key(), b"", &opts).unwrap();
        assert_eq!(parse_header_v2(&sealed).unwrap().chunk_count, 0);
        assert_eq!(open(&key(), &sealed).unwrap(), b"");
        let sealed = seal_v2(&key(), b"small", &opts).unwrap();
        assert_eq!(parse_header_v2(&sealed).unwrap().chunk_count, 1);
        assert_eq!(open(&key(), &sealed).unwrap(), b"small");
    }

    #[test]
    fn v2_wrong_key_and_corruption_detected() {
        let message = vec![0x5Au8; 600];
        let sealed = seal_v2(&key(), &message, &v2_opts(Profile::Streaming, 256, 2)).unwrap();
        let wrong = Key::from_nibbles(&[(4, 4)]).unwrap();
        assert_eq!(open(&wrong, &sealed), Err(ContainerError::KeyMismatch));
        // Truncation inside a chunk body.
        assert!(matches!(
            open(&key(), &sealed[..sealed.len() - 3]),
            Err(ContainerError::Truncated { .. })
        ));
        // Corrupt the first chunk's index field.
        let mut bad = sealed.clone();
        bad[HEADER_V2_LEN] ^= 0x01;
        assert!(matches!(
            open(&key(), &bad),
            Err(ContainerError::ChunkFraming { .. })
        ));
    }

    #[test]
    fn v2_invalid_options_rejected() {
        for chunk_bytes in [0usize, 6, (u32::MAX / 8) as usize + 4] {
            assert_eq!(
                seal_v2(&key(), b"x", &v2_opts(Profile::Streaming, chunk_bytes, 1)),
                Err(ContainerError::InvalidChunkSize { chunk_bytes })
            );
        }
        let opts = SealV2Options {
            master_seed: 0,
            ..Default::default()
        };
        assert_eq!(
            seal_v2(&key(), b"x", &opts),
            Err(ContainerError::Engine(MhheaError::InvalidSeed))
        );
    }

    #[test]
    fn v2_chunks_use_distinct_seeds() {
        // Identical chunk plaintexts must not produce identical chunk
        // frames (each chunk reseeds from the master + index).
        let message = vec![0xA5u8; 512];
        let sealed = seal_v2(&key(), &message, &v2_opts(Profile::Streaming, 256, 1)).unwrap();
        let h = parse_header_v2(&sealed).unwrap();
        assert_eq!(h.chunk_count, 2);
        // Locate both frames and compare their block payloads.
        let c0_blocks = u32::from_le_bytes(
            sealed[HEADER_V2_LEN + 8..HEADER_V2_LEN + 12]
                .try_into()
                .unwrap(),
        );
        let c0_start = HEADER_V2_LEN + CHUNK_HEADER_LEN;
        let c0_end = c0_start + c0_blocks as usize * 2;
        let c1_start = c0_end + CHUNK_HEADER_LEN;
        assert_ne!(
            &sealed[c0_start..c0_start + 32.min(sealed.len() - c1_start)],
            &sealed[c1_start..c1_start + 32.min(sealed.len() - c1_start)]
        );
    }
}
