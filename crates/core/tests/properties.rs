//! Property tests for the cipher's block-level invariants.

use mhhea::block::{self, embed, extract, locations, scramble_locations};
use mhhea::session::EncryptSession;
use mhhea::source::{CoverSource, VectorSource};
use mhhea::stats::expected_span_pair;
use mhhea::{Algorithm, Key, KeyPair};
use proptest::prelude::*;

fn arb_pair() -> impl Strategy<Value = KeyPair> {
    (0u8..=7, 0u8..=7).prop_map(|(l, r)| KeyPair::new(l, r).expect("in range"))
}

fn arb_key() -> impl Strategy<Value = Key> {
    proptest::collection::vec((0u8..=7, 0u8..=7), 1..=16)
        .prop_map(|pairs| Key::from_nibbles(&pairs).expect("in range"))
}

/// The per-bit streaming engine, transcribed from the paper's pseudocode
/// (the seed implementation) — the reference the word-level span-table
/// path must reproduce block for block.
fn per_bit_streaming(
    key: &Key,
    algorithm: Algorithm,
    vectors: &mut impl VectorSource,
    message: &[u8],
) -> Vec<u16> {
    let mut bits = bitkit::BitReader::new(message);
    let mut blocks = Vec::new();
    let mut i = 0usize;
    while !bits.is_eof() {
        let v = vectors.next_vector().expect("enough cover words");
        let out = embed(algorithm, key.pair(i), v, &mut bits);
        blocks.push(out.cipher);
        i += 1;
    }
    blocks
}

/// The per-bit hardware-faithful engine (16-bit alignment buffer, blind
/// full-span replacement), transcribed from the seed implementation.
fn per_bit_hw(
    key: &Key,
    algorithm: Algorithm,
    vectors: &mut impl VectorSource,
    message: &[u8],
) -> Vec<u16> {
    use bitkit::word;
    let hw_key = key.expand_cyclic(16);
    let mut reader = bitkit::BitReader::new(message);
    let mut blocks = Vec::new();
    let mut produced = 0usize;
    let half_count = (message.len() * 8).div_ceil(32) * 2;
    for _ in 0..half_count {
        let mut reg: u16 = 0;
        for t in 0..16 {
            if let Some(true) = reader.next() {
                reg |= 1 << t;
            }
        }
        let mut consumed = 0usize;
        while consumed < 16 {
            let v = vectors.next_vector().expect("enough cover words");
            let pair = hw_key.pair(produced);
            let (lo, hi) = locations(algorithm, pair, v);
            let ml = word::rotl16(reg, lo as u32);
            let mut cipher = v;
            for j in lo..=hi {
                let m = word::bit16(ml, j as u32);
                let b = m ^ block::pattern_bit(algorithm, pair, (j - lo) as usize);
                cipher = word::replace16(cipher, j as u32, j as u32, b as u16);
            }
            blocks.push(cipher);
            reg = word::rotr16(ml, hi as u32 + 1);
            consumed += (hi - lo + 1) as usize;
            produced += 1;
        }
    }
    blocks
}

proptest! {
    #[test]
    fn scramble_stays_in_low_byte(pair in arb_pair(), v in any::<u16>()) {
        let (lo, hi) = scramble_locations(pair, v);
        prop_assert!(lo <= hi);
        prop_assert!(hi <= 7);
    }

    #[test]
    fn scramble_depends_only_on_high_byte(pair in arb_pair(), v in any::<u16>(), low in any::<u8>()) {
        let a = scramble_locations(pair, v);
        let b = scramble_locations(pair, (v & 0xFF00) | low as u16);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn embed_then_extract_roundtrips(
        pair in arb_pair(),
        v in any::<u16>(),
        bits in proptest::collection::vec(any::<bool>(), 0..12),
        alg in prop_oneof![Just(Algorithm::Hhea), Just(Algorithm::Mhhea)],
    ) {
        let mut it = bits.clone().into_iter();
        let out = embed(alg, pair, v, &mut it);
        let got = extract(alg, pair, out.cipher, out.consumed);
        prop_assert_eq!(&got[..], &bits[..out.consumed]);
    }

    #[test]
    fn embed_consumes_at_most_span(
        pair in arb_pair(),
        v in any::<u16>(),
        n_bits in 0usize..20,
    ) {
        let mut it = std::iter::repeat_n(true, n_bits);
        let out = embed(Algorithm::Mhhea, pair, v, &mut it);
        let span_width = (out.span.1 - out.span.0 + 1) as usize;
        prop_assert!(out.consumed <= span_width);
        prop_assert_eq!(out.consumed, span_width.min(n_bits));
    }

    #[test]
    fn embed_touches_only_the_span(
        pair in arb_pair(),
        v in any::<u16>(),
        bits in proptest::collection::vec(any::<bool>(), 8),
    ) {
        let mut it = bits.into_iter();
        let out = embed(Algorithm::Mhhea, pair, v, &mut it);
        let (lo, hi) = out.span;
        for j in 0..16u32 {
            if j < lo as u32 || j > hi as u32 {
                prop_assert_eq!(
                    (out.cipher >> j) & 1,
                    (v >> j) & 1,
                    "bit {} outside span {:?} changed", j, out.span
                );
            }
        }
    }

    #[test]
    fn cipher_locations_match_vector_locations(pair in arb_pair(), v in any::<u16>()) {
        // Embedding never changes the high byte, so the receiver's span
        // computation from the cipher equals the sender's from the vector.
        let mut it = std::iter::repeat_n(false, 8);
        let out = embed(Algorithm::Mhhea, pair, v, &mut it);
        prop_assert_eq!(
            locations(Algorithm::Mhhea, pair, out.cipher),
            locations(Algorithm::Mhhea, pair, v)
        );
    }

    #[test]
    fn expected_span_within_bounds(pair in arb_pair()) {
        for alg in [Algorithm::Hhea, Algorithm::Mhhea] {
            let e = expected_span_pair(pair, alg);
            prop_assert!((1.0..=8.0).contains(&e), "{alg}: {e}");
        }
    }

    #[test]
    fn key_fingerprint_is_order_sensitive(
        pairs in proptest::collection::vec((0u8..=7, 0u8..=7), 2..=16),
    ) {
        let key = Key::from_nibbles(&pairs).unwrap();
        let mut swapped = pairs.clone();
        swapped.swap(0, 1);
        let other = Key::from_nibbles(&swapped).unwrap();
        if pairs[0] != pairs[1] {
            prop_assert_ne!(key.fingerprint(), other.fingerprint());
        } else {
            prop_assert_eq!(key.fingerprint(), other.fingerprint());
        }
    }

    #[test]
    fn word_level_path_matches_per_bit_streaming(
        key in arb_key(),
        message in proptest::collection::vec(any::<u8>(), 0..96),
        // Worst case one bit per block: 96 bytes can need 768 vectors.
        cover in proptest::collection::vec(any::<u16>(), 1024),
        alg in prop_oneof![Just(Algorithm::Hhea), Just(Algorithm::Mhhea)],
    ) {
        let reference = per_bit_streaming(
            &key, alg, &mut CoverSource::new(cover.clone()), &message,
        );
        let mut session = EncryptSession::new(key, CoverSource::new(cover))
            .with_algorithm(alg);
        let word_level = session.encrypt(&message).unwrap();
        prop_assert_eq!(word_level, reference);
    }

    #[test]
    fn word_level_path_matches_per_bit_hw(
        key in arb_key(),
        message in proptest::collection::vec(any::<u8>(), 0..48),
        cover in proptest::collection::vec(any::<u16>(), 1024),
        alg in prop_oneof![Just(Algorithm::Hhea), Just(Algorithm::Mhhea)],
    ) {
        let reference = per_bit_hw(
            &key, alg, &mut CoverSource::new(cover.clone()), &message,
        );
        let mut session = EncryptSession::new(key, CoverSource::new(cover))
            .with_algorithm(alg)
            .with_profile(mhhea::Profile::HardwareFaithful);
        let word_level = session.encrypt(&message).unwrap();
        prop_assert_eq!(word_level, reference);
    }

    #[test]
    fn hw_key_schedule_agrees_with_mod_l(
        pairs in proptest::collection::vec((0u8..=7, 0u8..=7), 1..=16),
        i in 0usize..64,
    ) {
        let key = Key::from_nibbles(&pairs).unwrap();
        let hw = key.expand_cyclic(16);
        // When L divides 16 the schedules agree everywhere.
        if 16 % key.len() == 0 {
            prop_assert_eq!(hw.pair(i), key.pair(i));
        }
        // The first 16 indices always agree by construction.
        if i < 16 {
            prop_assert_eq!(hw.pair(i), key.pair(i));
        }
    }
}
