//! Differential tests for the bitsliced lane engine: every path through
//! the lane-filling scheduler must be bit-identical to the scalar
//! `SpanTable` path it replaces.
//!
//! The gateway tests run two muxes with identical configurations: one
//! drives whole batches (so busy shards engage the lane engine), the
//! other applies the same operations one at a time (pure scalar). The
//! outputs — and the stream states left behind — must match exactly.

use mhhea::gateway::{StreamConfig, StreamId, StreamMux, StreamOp, StreamOutput};
use mhhea::lanes::{seal_lanes, LaneSealJob, LANE_THRESHOLD, MAX_LANES};
use mhhea::session::EncryptSession;
use mhhea::source::LfsrSource;
use mhhea::{Algorithm, Key, KeyRing, Profile};
use proptest::prelude::*;

fn arb_key() -> impl Strategy<Value = Key> {
    proptest::collection::vec((0u8..=7, 0u8..=7), 1..=16)
        .prop_map(|pairs| Key::from_nibbles(&pairs).expect("in range"))
}

fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![Just(Algorithm::Hhea), Just(Algorithm::Mhhea)]
}

/// Deterministic message bytes so shrinking stays meaningful.
fn message(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt) ^ (i >> 8) as u8)
        .collect()
}

/// Parses a gateway frame (layout from the gateway module docs).
fn parse_frame(frame: &[u8]) -> (u64, usize, Vec<u16>) {
    assert_eq!(&frame[0..4], b"MHGF");
    let id = u64::from_le_bytes(frame[8..16].try_into().unwrap());
    let bit_len = u32::from_le_bytes(frame[16..20].try_into().unwrap()) as usize;
    let blocks = frame[24..]
        .chunks_exact(2)
        .map(|c| u16::from_le_bytes([c[0], c[1]]))
        .collect();
    (id, bit_len, blocks)
}

/// Opens `count` identical-key streams on both muxes, all in one shard so
/// the batch path sees a laneable group.
fn open_streams(count: u64, key: &Key, algorithm: Algorithm) -> (StreamMux, StreamMux) {
    let lane = StreamMux::with_shards(1);
    let scalar = StreamMux::with_shards(1);
    for id in 0..count {
        let cfg = StreamConfig::new(key.clone())
            .with_algorithm(algorithm)
            .with_seed(0x1000u16.wrapping_add(id as u16 * 7) | 1);
        lane.open(StreamId(id), cfg.clone()).unwrap();
        scalar.open(StreamId(id), cfg).unwrap();
    }
    (lane, scalar)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `seal_batch` with enough compatible streams to fill lanes produces
    /// the exact frames the scalar path produces — across two consecutive
    /// batches, so the second one lane-packs mid-stream states (nonzero
    /// block indices, mid-sequence LFSR registers).
    #[test]
    fn seal_batch_lanes_match_scalar_reference(
        key in arb_key(),
        algorithm in arb_algorithm(),
        lens in proptest::collection::vec(0usize..=96, LANE_THRESHOLD..=70),
        salt in any::<u8>(),
    ) {
        let (lane, scalar) = open_streams(lens.len() as u64, &key, algorithm);
        for round in 0..2u8 {
            let batch: Vec<(StreamId, Vec<u8>)> = lens
                .iter()
                .enumerate()
                .map(|(i, &len)| (StreamId(i as u64), message(len, salt.wrapping_add(round))))
                .collect();
            let frames = lane.seal_batch(batch.clone());
            for ((id, msg), frame) in batch.into_iter().zip(frames) {
                let frame = frame.unwrap();
                let (fid, bit_len, blocks) = parse_frame(&frame);
                prop_assert_eq!(fid, id.0);
                prop_assert_eq!(bit_len, msg.len() * 8);
                let want = scalar.encrypt(id, &msg).unwrap();
                prop_assert_eq!(blocks, want, "stream {} round {}", id.0, round);
            }
        }
        // The lane commits left every stream exactly where scalar did.
        for i in 0..lens.len() as u64 {
            prop_assert_eq!(
                lane.cursor(StreamId(i)).unwrap().block_index,
                scalar.cursor(StreamId(i)).unwrap().block_index
            );
        }
    }

    /// A mixed `submit_batch` — lane-packed encrypts, scalar decrypts, and
    /// mid-batch rekeys on lane-packed streams — matches applying the same
    /// ops one at a time.
    #[test]
    fn submit_batch_mixed_ops_match_scalar_reference(
        key in arb_key(),
        algorithm in arb_algorithm(),
        lens in proptest::collection::vec(1usize..=64, LANE_THRESHOLD..=32),
        rekey_mask in proptest::collection::vec(any::<bool>(), LANE_THRESHOLD..=32),
        salt in any::<u8>(),
    ) {
        let ring = KeyRing::new(
            vec![key.clone(), Key::from_nibbles(&[(1, 6), (0, 7)]).unwrap()],
            0xBEE1,
        )
        .unwrap();
        let n = lens.len() as u64;
        let lane = StreamMux::with_shards(1);
        let scalar = StreamMux::with_shards(1);
        let feeder = StreamMux::with_shards(1);
        for id in 0..n {
            let cfg = StreamConfig::new(key.clone())
                .with_algorithm(algorithm)
                .with_ring(ring.clone());
            lane.open(StreamId(id), cfg.clone()).unwrap();
            scalar.open(StreamId(id), cfg.clone()).unwrap();
            // Decrypt-side streams (ids offset by 1000) track a feeder
            // that seals the traffic they will open mid-batch.
            lane.open(StreamId(1000 + id), cfg.clone()).unwrap();
            scalar.open(StreamId(1000 + id), cfg.clone()).unwrap();
            feeder.open(StreamId(1000 + id), cfg).unwrap();
        }
        let mut batch: Vec<(StreamId, StreamOp)> = Vec::new();
        for (i, &len) in lens.iter().enumerate() {
            let id = StreamId(i as u64);
            batch.push((id, StreamOp::Encrypt(message(len, salt))));
            if rekey_mask.get(i).copied().unwrap_or(false) {
                // Mid-batch rotation on a lane-packed stream: the laned
                // encrypt must commit before this runs.
                batch.push((id, StreamOp::Rekey { epoch: 1 }));
                batch.push((id, StreamOp::Encrypt(message(len / 2, salt ^ 0x55))));
            }
            let plain = message(len, salt.wrapping_add(3));
            let blocks = feeder.encrypt(StreamId(1000 + i as u64), &plain).unwrap();
            batch.push((
                StreamId(1000 + i as u64),
                StreamOp::Decrypt { blocks, bit_len: plain.len() * 8 },
            ));
        }
        let got = lane.submit_batch(batch.clone());
        let want: Vec<_> = batch
            .iter()
            .map(|(id, op)| match op {
                StreamOp::Encrypt(msg) => {
                    scalar.encrypt(*id, msg).map(StreamOutput::Blocks)
                }
                StreamOp::Decrypt { blocks, bit_len } => {
                    scalar.decrypt(*id, blocks, *bit_len).map(StreamOutput::Plain)
                }
                StreamOp::Rekey { epoch } => {
                    scalar.rekey(*id, *epoch).map(|epoch| StreamOutput::Rekeyed { epoch })
                }
            })
            .collect();
        prop_assert_eq!(got, want);
        for id in 0..n {
            prop_assert_eq!(
                lane.epoch(StreamId(id)).unwrap(),
                scalar.epoch(StreamId(id)).unwrap()
            );
            prop_assert_eq!(
                lane.cursor(StreamId(id)).unwrap().block_index,
                scalar.cursor(StreamId(id)).unwrap().block_index
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The kernel itself, from the stream origin: arbitrary keys, both
    /// algorithms, message sizes that leave scalar tails.
    #[test]
    fn seal_lanes_matches_scalar_sessions(
        key in arb_key(),
        algorithm in arb_algorithm(),
        specs in proptest::collection::vec((1u16..=0xFFFF, 0usize..=48), 1..=70),
        salt in any::<u8>(),
    ) {
        let table = mhhea::block::SpanTable::new(&key, algorithm);
        let messages: Vec<Vec<u8>> = specs
            .iter()
            .enumerate()
            .map(|(i, &(_, len))| message(len, salt.wrapping_add(i as u8)))
            .collect();
        let jobs: Vec<LaneSealJob> = specs
            .iter()
            .zip(&messages)
            .map(|(&(seed, _), msg)| LaneSealJob { message: msg, state: seed, block_index: 0 })
            .collect();
        let outs = seal_lanes(&key, algorithm, &table, &jobs).unwrap();
        for ((&(seed, _), msg), out) in specs.iter().zip(&messages).zip(outs) {
            let source = LfsrSource::new(seed).unwrap();
            let mut session = EncryptSession::with_options(
                key.clone(),
                source,
                algorithm,
                Profile::Streaming,
            );
            let want = session.encrypt(msg).unwrap();
            prop_assert_eq!(out.blocks, want);
            prop_assert_eq!(out.block_index, session.cursor().block_index);
        }
    }
}

/// The exact lane-boundary geometries: one short of a full lane word, one
/// full word, and one over (forcing a second kernel group).
#[test]
fn seal_batch_at_lane_word_boundaries() {
    let key = Key::from_nibbles(&[(0, 3), (2, 5), (1, 7)]).unwrap();
    for count in [
        LANE_THRESHOLD as u64,
        MAX_LANES as u64 - 1,
        MAX_LANES as u64,
        MAX_LANES as u64 + 1,
    ] {
        let (lane, scalar) = open_streams(count, &key, Algorithm::Mhhea);
        let batch: Vec<(StreamId, Vec<u8>)> = (0..count)
            .map(|id| (StreamId(id), message(17 + (id as usize % 5), id as u8)))
            .collect();
        let frames = lane.seal_batch(batch.clone());
        for ((id, msg), frame) in batch.into_iter().zip(frames) {
            let (_, _, blocks) = parse_frame(&frame.unwrap());
            assert_eq!(
                blocks,
                scalar.encrypt(id, &msg).unwrap(),
                "stream {} of {count}",
                id.0
            );
        }
    }
}
