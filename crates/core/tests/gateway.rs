//! Integration tests for the multi-stream gateway: batched traffic across
//! many streams, wire frames, and the evict/restore snapshot cycle.

use mhhea::gateway::{GatewayError, StreamConfig, StreamId, StreamMux};
use mhhea::{Algorithm, Key, Profile};
use proptest::prelude::*;

fn key() -> Key {
    Key::from_nibbles(&[(0, 3), (2, 5), (7, 1), (4, 4)]).unwrap()
}

fn duplex_pair(ids: impl Iterator<Item = u64>, profile: Profile) -> (StreamMux, StreamMux) {
    let tx = StreamMux::with_shards(16);
    let rx = StreamMux::with_shards(16);
    for id in ids {
        let cfg = StreamConfig::new(key())
            .with_profile(profile)
            .with_seed(0x1111u16.wrapping_add(id as u16) | 1);
        tx.open(StreamId(id), cfg.clone()).unwrap();
        rx.open(StreamId(id), cfg).unwrap();
    }
    (tx, rx)
}

/// A batch mixing several messages per stream must round-trip with
/// per-stream ordering preserved — in both profiles and both variants.
#[test]
fn batched_traffic_roundtrips_all_modes() {
    for algorithm in [Algorithm::Hhea, Algorithm::Mhhea] {
        for profile in [Profile::Streaming, Profile::HardwareFaithful] {
            let tx = StreamMux::with_shards(8);
            let rx = StreamMux::with_shards(8);
            for id in 0..10u64 {
                let cfg = StreamConfig::new(key())
                    .with_algorithm(algorithm)
                    .with_profile(profile);
                tx.open(StreamId(id), cfg.clone()).unwrap();
                rx.open(StreamId(id), cfg).unwrap();
            }
            // Three messages per stream, interleaved across the batch.
            let mut batch = Vec::new();
            for round in 0..3 {
                for id in 0..10u64 {
                    batch.push((
                        StreamId(id),
                        format!("r{round} on {id} ({algorithm}/{profile})").into_bytes(),
                    ));
                }
            }
            let expected: Vec<Vec<u8>> = batch.iter().map(|(_, m)| m.clone()).collect();
            let sealed = tx.encrypt_batch(batch.clone());
            let dec_batch: Vec<(StreamId, (Vec<u16>, usize))> = sealed
                .iter()
                .zip(&batch)
                .map(|(blocks, (id, msg))| (*id, (blocks.as_ref().unwrap().clone(), msg.len() * 8)))
                .collect();
            let opened = rx.decrypt_batch(dec_batch);
            for (got, want) in opened.into_iter().zip(expected) {
                assert_eq!(got.unwrap(), want, "alg={algorithm} profile={profile}");
            }
        }
    }
}

/// Batched and one-at-a-time encryption must produce identical bytes —
/// the batch API is a throughput plan, not a different cipher.
#[test]
fn batch_equals_sequential_singles() {
    let (tx_batch, _) = duplex_pair(0..12, Profile::Streaming);
    let (tx_single, _) = duplex_pair(0..12, Profile::Streaming);
    let mut batch = Vec::new();
    for round in 0..4 {
        for id in 0..12u64 {
            batch.push((
                StreamId(id),
                format!("round {round} stream {id}").into_bytes(),
            ));
        }
    }
    let batched = tx_batch.encrypt_batch(batch.clone());
    for ((id, msg), got) in batch.into_iter().zip(batched) {
        let single = tx_single.encrypt(id, &msg).unwrap();
        assert_eq!(got.unwrap(), single, "stream {id}");
    }
}

/// Gateway frames carry everything the receiver needs: id, bit length,
/// blocks. Unknown ids and corrupt frames error without disturbing the
/// healthy streams in the same batch.
#[test]
fn seal_open_batch_with_errors_interleaved() {
    let (tx, rx) = duplex_pair(0..5, Profile::Streaming);
    let batch: Vec<(StreamId, Vec<u8>)> = (0..5u64)
        .map(|id| (StreamId(id), format!("payload {id}").into_bytes()))
        .collect();
    let mut frames: Vec<Vec<u8>> = tx
        .seal_batch(batch)
        .into_iter()
        .map(Result::unwrap)
        .collect();
    // Frame 1 gets corrupted magic; frame 3 is retargeted to an unknown
    // stream id (id bytes live at offset 8).
    frames[1][0] = b'X';
    frames[3][8..16].copy_from_slice(&999u64.to_le_bytes());
    let opened = rx.open_batch(frames);
    assert_eq!(opened.len(), 5);
    for (i, result) in opened.iter().enumerate() {
        match i {
            1 => assert!(
                matches!(result, Err(GatewayError::Frame(_))),
                "frame 1: {result:?}"
            ),
            3 => assert_eq!(
                result,
                &Err(GatewayError::UnknownStream(StreamId(999))),
                "frame 3"
            ),
            _ => {
                let (id, plain) = result.as_ref().unwrap();
                assert_eq!(plain, &format!("payload {}", id.0).into_bytes());
            }
        }
    }
}

/// A poisoned slot inside `seal_batch` — an oversized message that is
/// rejected before encryption — must fail only its own stream: shard-mates
/// in the same batch stay bit-exact with a control mux that never saw the
/// poison, and the poisoned stream itself is left untouched and usable.
#[test]
fn seal_batch_poison_leaves_shardmates_bit_exact() {
    use mhhea::gateway::MAX_FRAME_MESSAGE_BYTES;
    // One shard forces every stream into the same lock and the same
    // sequential pool job as the poisoned one.
    let victim = StreamMux::with_shards(1);
    let control = StreamMux::with_shards(1);
    for id in 0..6u64 {
        let cfg = StreamConfig::new(key()).with_seed(0x3000 + id as u16);
        victim.open(StreamId(id), cfg.clone()).unwrap();
        control.open(StreamId(id), cfg).unwrap();
    }

    let clean: Vec<(StreamId, Vec<u8>)> = (0..6u64)
        .filter(|id| *id != 3)
        .map(|id| (StreamId(id), format!("healthy message {id}").into_bytes()))
        .collect();
    let mut poisoned = clean.clone();
    // The rejection fires on the declared length; the buffer is never read.
    poisoned.insert(3, (StreamId(3), vec![0u8; MAX_FRAME_MESSAGE_BYTES + 1]));

    let control_frames = control.seal_batch(clean.clone());
    let victim_frames = victim.seal_batch(poisoned);

    assert!(matches!(
        victim_frames[3],
        Err(GatewayError::MessageTooLarge { .. })
    ));
    // Every healthy stream's wire frame is byte-identical to the control's.
    let healthy = victim_frames
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i != 3)
        .map(|(_, f)| f.unwrap());
    for (got, want) in healthy.zip(control_frames.into_iter().map(Result::unwrap)) {
        assert_eq!(got, want, "shard-mate diverged from control");
    }
    // The poisoned stream never advanced: it still encrypts from block 0.
    assert_eq!(victim.cursor(StreamId(3)).unwrap().block_index, 0);
    let after = victim.encrypt(StreamId(3), b"recovered").unwrap();
    assert_eq!(after, control.encrypt(StreamId(3), b"recovered").unwrap());
}

/// The decrypt-side counterpart: a stream fed truncated ciphertext inside
/// `decrypt_batch` fails alone — shard-mates' plaintexts are bit-exact and
/// the poisoned stream's cursor is untouched (the full blocks still open).
#[test]
fn decrypt_batch_poison_leaves_shardmates_bit_exact() {
    let (tx, rx) = duplex_pair(0..5, Profile::Streaming);
    let (_, rx_control) = duplex_pair(0..5, Profile::Streaming);

    let msgs: Vec<Vec<u8>> = (0..5u64)
        .map(|id| format!("batch message for stream {id}").into_bytes())
        .collect();
    let sealed: Vec<Vec<u16>> = tx
        .encrypt_batch(
            (0..5u64)
                .map(|id| (StreamId(id), msgs[id as usize].clone()))
                .collect(),
        )
        .into_iter()
        .map(Result::unwrap)
        .collect();

    let make_batch = |truncate: bool| -> Vec<(StreamId, (Vec<u16>, usize))> {
        (0..5u64)
            .map(|id| {
                let mut blocks = sealed[id as usize].clone();
                if truncate && id == 2 {
                    blocks.truncate(1);
                }
                (StreamId(id), (blocks, msgs[id as usize].len() * 8))
            })
            .collect()
    };

    let control_out = rx_control.decrypt_batch(make_batch(false));
    let victim_out = rx.decrypt_batch(make_batch(true));

    assert!(matches!(
        victim_out[2],
        Err(GatewayError::Engine(
            mhhea::MhheaError::CiphertextTruncated { .. }
        ))
    ));
    for (i, (got, want)) in victim_out.iter().zip(&control_out).enumerate() {
        if i != 2 {
            assert_eq!(got, want, "stream {i} diverged");
            assert_eq!(got.as_ref().unwrap(), &msgs[i]);
        }
    }
    // The failed decrypt rolled back: the untruncated blocks still open
    // on the same mux, bit-exactly.
    assert_eq!(
        rx.decrypt(StreamId(2), &sealed[2], msgs[2].len() * 8)
            .unwrap(),
        msgs[2]
    );
}

/// Unknown stream ids inside a mixed `submit_batch` fail their own slots
/// only, in both directions.
#[test]
fn submit_batch_unknown_streams_fail_alone() {
    use mhhea::gateway::{StreamOp, StreamOutput};
    let (tx, _) = duplex_pair(0..2, Profile::Streaming);
    let results = tx.submit_batch(vec![
        (StreamId(0), StreamOp::Encrypt(b"fine".to_vec())),
        (StreamId(99), StreamOp::Encrypt(b"ghost".to_vec())),
        (
            StreamId(98),
            StreamOp::Decrypt {
                blocks: vec![0xABCD],
                bit_len: 8,
            },
        ),
        (StreamId(1), StreamOp::Encrypt(b"also fine".to_vec())),
    ]);
    assert!(matches!(results[0], Ok(StreamOutput::Blocks(_))));
    assert_eq!(results[1], Err(GatewayError::UnknownStream(StreamId(99))));
    assert_eq!(results[2], Err(GatewayError::UnknownStream(StreamId(98))));
    assert!(matches!(results[3], Ok(StreamOutput::Blocks(_))));
}

/// The acceptance bar: the gateway sustains well over 1,000 concurrent
/// streams, and every one of them round-trips through a batched
/// seal/open cycle.
/// `rekey_with` installs externally derived material (the MHKX path):
/// the rotated stream matches a fresh session built from the same key
/// and seed, the stale-epoch guard holds, a zero seed is refused without
/// touching the stream, and the installed single-key ring survives an
/// evict/restore cycle.
#[test]
fn rekey_with_installs_derived_material() {
    use mhhea::session::{DecryptSession, EncryptSession};
    use mhhea::LfsrSource;

    let mux = StreamMux::with_shards(4);
    // Opened without a ring: `rekey` has nothing to rotate to, but
    // `rekey_with` brings its own material.
    mux.open(StreamId(1), StreamConfig::new(key())).unwrap();
    mux.encrypt(StreamId(1), b"epoch zero traffic").unwrap();
    assert!(matches!(
        mux.rekey(StreamId(1), 1),
        Err(GatewayError::NoKeyRing(StreamId(1)))
    ));

    let derived = Key::from_nibbles(&[(1, 6), (3, 2), (5, 5)]).unwrap();
    // A zero seed is rejected and the stream is untouched.
    assert!(mux.rekey_with(StreamId(1), 1, derived.clone(), 0).is_err());
    assert_eq!(mux.epoch(StreamId(1)).unwrap(), 0);

    assert_eq!(
        mux.rekey_with(StreamId(1), 1, derived.clone(), 0xBEEF)
            .unwrap(),
        1
    );
    // Not newer: refused, both for rekey_with and a ring rekey against
    // the single-entry ring it installed.
    assert!(matches!(
        mux.rekey_with(StreamId(1), 1, derived.clone(), 0xBEEF),
        Err(GatewayError::StaleEpoch {
            current: 1,
            requested: 1
        })
    ));

    // The rotated stream seals exactly like a fresh session built from
    // the derived material.
    let mut enc = EncryptSession::with_options(
        derived.clone(),
        LfsrSource::new(0xBEEF).unwrap(),
        Algorithm::Mhhea,
        Profile::Streaming,
    );
    enc.set_epoch(1);
    let msg = b"fresh-DH epoch one";
    let want = enc.encrypt(msg).unwrap();
    assert_eq!(mux.encrypt(StreamId(1), msg).unwrap(), want);
    let mut dec =
        DecryptSession::with_options(derived.clone(), Algorithm::Mhhea, Profile::Streaming);
    dec.set_epoch(1);
    dec.decrypt(&want, msg.len() * 8).unwrap();

    // The single-key ring rides the snapshot: evict, restore, continue
    // bit-exactly, and a *ring* rekey now works (reseed-only rotation).
    let snap = mux.evict(StreamId(1)).unwrap();
    let mux = StreamMux::with_shards(7);
    assert_eq!(mux.restore(&snap).unwrap(), StreamId(1));
    assert_eq!(mux.epoch(StreamId(1)).unwrap(), 1);
    let probe = b"post-restore probe";
    assert_eq!(
        mux.encrypt(StreamId(1), probe).unwrap(),
        enc.encrypt(probe).unwrap()
    );
    assert_eq!(mux.rekey(StreamId(1), 2).unwrap(), 2);
}

#[test]
fn thousand_streams_concurrent_roundtrip() {
    const STREAMS: u64 = 1200;
    let (tx, rx) = duplex_pair(0..STREAMS, Profile::Streaming);
    assert_eq!(tx.len(), STREAMS as usize);
    let batch: Vec<(StreamId, Vec<u8>)> = (0..STREAMS)
        .map(|id| (StreamId(id), format!("stream {id} says hello").into_bytes()))
        .collect();
    let frames = tx.seal_batch(batch);
    let opened = rx.open_batch(frames.into_iter().map(Result::unwrap).collect());
    let mut seen = 0u64;
    for result in opened {
        let (id, plain) = result.unwrap();
        assert_eq!(plain, format!("stream {} says hello", id.0).into_bytes());
        seen += 1;
    }
    assert_eq!(seen, STREAMS);
}

/// A mux shared across OS threads (clone-and-go) stays consistent:
/// distinct streams progress independently under concurrent submitters.
#[test]
fn mux_is_shareable_across_threads() {
    let (tx, rx) = duplex_pair(0..8, Profile::Streaming);
    let handles: Vec<_> = (0..8u64)
        .map(|id| {
            let tx = tx.clone();
            std::thread::spawn(move || {
                (0..5)
                    .map(|round| {
                        let msg = format!("t{id} r{round}");
                        (tx.encrypt(StreamId(id), msg.as_bytes()).unwrap(), msg)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for (id, handle) in handles.into_iter().enumerate() {
        for (blocks, msg) in handle.join().unwrap() {
            let got = rx
                .decrypt(StreamId(id as u64), &blocks, msg.len() * 8)
                .unwrap();
            assert_eq!(got, msg.as_bytes());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance proptest: evicting a stream mid-conversation and
    /// restoring it from the snapshot bytes resumes **bit-exactly** — the
    /// restored mux produces the same ciphertext as an uninterrupted one,
    /// for random keys, messages, split points and both profiles.
    #[test]
    fn snapshot_restore_resumes_bit_exactly(
        pairs in proptest::collection::vec((0u8..=7, 0u8..=7), 1..=16),
        msgs in proptest::collection::vec(
            proptest::collection::vec(proptest::arbitrary::any::<u8>(), 1..48),
            2..6,
        ),
        split in 1usize..5,
        hw in proptest::arbitrary::any::<bool>(),
        seed in 1u16..,
    ) {
        let split = split.min(msgs.len() - 1);
        let profile = if hw { Profile::HardwareFaithful } else { Profile::Streaming };
        let k = Key::from_nibbles(&pairs).unwrap();
        let cfg = StreamConfig::new(k).with_profile(profile).with_seed(seed);

        // Control: one uninterrupted stream.
        let control = StreamMux::with_shards(4);
        control.open(StreamId(1), cfg.clone()).unwrap();
        let want: Vec<Vec<u16>> = msgs
            .iter()
            .map(|m| control.encrypt(StreamId(1), m).unwrap())
            .collect();

        // Candidate: same stream, evicted and restored at `split`.
        let mux = StreamMux::with_shards(4);
        mux.open(StreamId(1), cfg.clone()).unwrap();
        let mut got: Vec<Vec<u16>> = Vec::new();
        let rx = StreamMux::with_shards(4);
        rx.open(StreamId(1), cfg).unwrap();
        for m in &msgs[..split] {
            got.push(mux.encrypt(StreamId(1), m).unwrap());
        }
        // Decrypt-side progress must survive the snapshot too.
        for (m, blocks) in msgs[..split].iter().zip(&got) {
            prop_assert_eq!(&rx.decrypt(StreamId(1), blocks, m.len() * 8).unwrap(), m);
        }
        let snap_tx = mux.evict(StreamId(1)).unwrap();
        let snap_rx = rx.evict(StreamId(1)).unwrap();
        prop_assert!(!mux.contains(StreamId(1)));

        let mux2 = StreamMux::with_shards(32); // shard geometry may differ
        prop_assert_eq!(mux2.restore(&snap_tx).unwrap(), StreamId(1));
        let rx2 = StreamMux::with_shards(2);
        prop_assert_eq!(rx2.restore(&snap_rx).unwrap(), StreamId(1));
        for m in &msgs[split..] {
            got.push(mux2.encrypt(StreamId(1), m).unwrap());
        }
        prop_assert_eq!(&got, &want, "ciphertext diverged after restore");
        // And the restored decrypt side opens the post-restore traffic.
        for (m, blocks) in msgs[split..].iter().zip(&got[split..]) {
            prop_assert_eq!(&rx2.decrypt(StreamId(1), blocks, m.len() * 8).unwrap(), m);
        }
    }

    /// Snapshot bytes round-trip structurally: restore → evict yields the
    /// identical byte string (the format has no lossy fields).
    #[test]
    fn snapshot_bytes_roundtrip(
        pairs in proptest::collection::vec((0u8..=7, 0u8..=7), 1..=16),
        id in proptest::arbitrary::any::<u64>(),
        n_msgs in 0usize..4,
        hw in proptest::arbitrary::any::<bool>(),
        seed in 1u16..,
    ) {
        let profile = if hw { Profile::HardwareFaithful } else { Profile::Streaming };
        let cfg = StreamConfig::new(Key::from_nibbles(&pairs).unwrap())
            .with_profile(profile)
            .with_seed(seed);
        let mux = StreamMux::with_shards(8);
        mux.open(StreamId(id), cfg).unwrap();
        for i in 0..n_msgs {
            mux.encrypt(StreamId(id), format!("warmup {i}").as_bytes()).unwrap();
        }
        let snap = mux.evict(StreamId(id)).unwrap();
        let mux2 = StreamMux::with_shards(1);
        mux2.restore(&snap).unwrap();
        prop_assert_eq!(mux2.evict(StreamId(id)).unwrap(), snap);
    }

    /// The rekey acceptance proptest: a stream rotated at random points —
    /// interleaved with traffic in both directions and with evict/restore
    /// cycles, under both profiles — stays bit-exact against an oracle
    /// that is nothing but an [`mhhea::EncryptSession`]/
    /// [`mhhea::DecryptSession`] pair rekeyed at the same points, and
    /// stale-epoch rotations are rejected without perturbing the stream.
    #[test]
    fn rekey_schedules_match_session_oracle(
        pairs_a in proptest::collection::vec((0u8..=7, 0u8..=7), 1..=16),
        pairs_b in proptest::collection::vec((0u8..=7, 0u8..=7), 1..=16),
        ops in proptest::collection::vec(
            (0u8..5, proptest::collection::vec(proptest::arbitrary::any::<u8>(), 1..32)),
            1..14,
        ),
        hw in proptest::arbitrary::any::<bool>(),
        seed in 1u16..,
    ) {
        use mhhea::session::{DecryptSession, EncryptSession};
        use mhhea::{KeyRing, LfsrSource};

        let profile = if hw { Profile::HardwareFaithful } else { Profile::Streaming };
        let ring = KeyRing::new(
            vec![
                Key::from_nibbles(&pairs_a).unwrap(),
                Key::from_nibbles(&pairs_b).unwrap(),
            ],
            seed,
        ).unwrap();

        let mut mux = StreamMux::with_shards(4);
        mux.open(
            StreamId(1),
            StreamConfig::new(ring.key(0).clone())
                .with_profile(profile)
                .with_ring(ring.clone()),
        ).unwrap();
        let mut enc = EncryptSession::with_options(
            ring.key(0).clone(),
            LfsrSource::new(ring.seed(0)).unwrap(),
            mhhea::Algorithm::Mhhea,
            profile,
        );
        let mut dec = DecryptSession::with_options(
            ring.key(0).clone(),
            mhhea::Algorithm::Mhhea,
            profile,
        );

        let mut epoch = 0u32;
        let mut shards = 8;
        for (kind, msg) in ops {
            match kind {
                // Traffic: gateway ciphertext == oracle ciphertext, and
                // the gateway's decrypt side opens it (advancing in
                // lockstep with the oracle's).
                0 | 1 => {
                    let got = mux.encrypt(StreamId(1), &msg).unwrap();
                    let want = enc.encrypt(&msg).unwrap();
                    prop_assert_eq!(&got, &want, "ciphertext drift at epoch {}", epoch);
                    let plain = mux.decrypt(StreamId(1), &got, msg.len() * 8).unwrap();
                    prop_assert_eq!(&plain, &msg);
                    dec.decrypt(&want, msg.len() * 8).unwrap();
                }
                // Rotate, sometimes skipping epochs; a replay of the
                // now-stale epoch must bounce without touching state.
                2 | 3 => {
                    epoch += 1 + u32::from(kind == 3);
                    prop_assert_eq!(mux.rekey(StreamId(1), epoch).unwrap(), epoch);
                    enc.rekey(&ring, epoch).unwrap();
                    dec.rekey(&ring, epoch).unwrap();
                    prop_assert_eq!(
                        mux.rekey(StreamId(1), epoch),
                        Err(GatewayError::StaleEpoch { current: epoch, requested: epoch })
                    );
                }
                // Evict → restore on a different shard geometry; the
                // snapshot must carry the rotation state.
                _ => {
                    let snap = mux.evict(StreamId(1)).unwrap();
                    shards = (shards * 2) % 31 + 1;
                    mux = StreamMux::with_shards(shards);
                    prop_assert_eq!(mux.restore(&snap).unwrap(), StreamId(1));
                    prop_assert_eq!(mux.epoch(StreamId(1)).unwrap(), epoch);
                }
            }
        }
        // Final probe: one more rotation and message after the schedule.
        epoch += 1;
        mux.rekey(StreamId(1), epoch).unwrap();
        enc.rekey(&ring, epoch).unwrap();
        let probe = b"post-schedule probe";
        prop_assert_eq!(
            mux.encrypt(StreamId(1), probe).unwrap(),
            enc.encrypt(probe).unwrap()
        );
    }
}
