//! Negative-path container tests: every malformed byte stream must come
//! back as a typed [`ContainerError`] — never a panic, never a huge
//! allocation, never garbage plaintext.
//!
//! The table covers the attacker-reachable corruptions: truncation at
//! every structurally interesting boundary, unknown tags, header fields
//! inflated past what the byte stream can hold, and cross-version
//! confusion (v1 bytes fed to the v2-only entry point).

use mhhea::container::{
    open, open_v2, parse_header_v2, seal, seal_v2, ContainerError, SealOptions, SealV2Options,
    HEADER_V2_LEN,
};
use mhhea::{Key, MhheaError, Profile};

fn key() -> Key {
    Key::from_nibbles(&[(0, 3), (2, 5), (1, 7)]).unwrap()
}

fn sealed_v1() -> Vec<u8> {
    seal(
        &key(),
        b"negative-path corpus message",
        &SealOptions::default(),
    )
    .unwrap()
}

fn sealed_v2() -> Vec<u8> {
    let opts = SealV2Options {
        chunk_bytes: 8,
        workers: 1,
        ..Default::default()
    };
    seal_v2(&key(), b"negative-path corpus message", &opts).unwrap()
}

/// One corruption case: a name, a mutation of valid container bytes, and
/// the predicate the typed error must satisfy.
struct Case {
    name: &'static str,
    bytes: Vec<u8>,
    expect: fn(&ContainerError) -> bool,
}

#[test]
fn corrupted_containers_fail_typed_not_panicking() {
    let v1 = sealed_v1();
    let v2 = sealed_v2();
    assert_eq!(parse_header_v2(&v2).unwrap().chunk_count, 4); // 28 bytes / 8

    let cases = vec![
        Case {
            name: "empty input",
            bytes: Vec::new(),
            expect: |e| matches!(e, ContainerError::Truncated { .. }),
        },
        Case {
            name: "v1 header cut short",
            bytes: v1[..10].to_vec(),
            expect: |e| matches!(e, ContainerError::Truncated { .. }),
        },
        Case {
            name: "v1 body cut short",
            bytes: v1[..v1.len() - 1].to_vec(),
            expect: |e| matches!(e, ContainerError::Truncated { .. }),
        },
        Case {
            name: "v2 header cut short",
            bytes: v2[..HEADER_V2_LEN - 1].to_vec(),
            expect: |e| matches!(e, ContainerError::Truncated { .. }),
        },
        Case {
            name: "v2 cut inside a chunk frame header",
            bytes: v2[..HEADER_V2_LEN + 5].to_vec(),
            expect: |e| matches!(e, ContainerError::Truncated { .. }),
        },
        Case {
            name: "v2 cut inside a chunk body",
            bytes: v2[..v2.len() - 3].to_vec(),
            expect: |e| matches!(e, ContainerError::Truncated { .. }),
        },
        Case {
            name: "unknown version byte",
            bytes: {
                let mut b = v1.clone();
                b[4] = 9;
                b
            },
            expect: |e| matches!(e, ContainerError::UnsupportedVersion(9)),
        },
        Case {
            name: "version byte zero",
            bytes: {
                let mut b = v1.clone();
                b[4] = 0;
                b
            },
            expect: |e| matches!(e, ContainerError::UnsupportedVersion(0)),
        },
        Case {
            name: "wrong magic",
            bytes: {
                let mut b = v2.clone();
                b[0] = b'Z';
                b
            },
            expect: |e| matches!(e, ContainerError::BadMagic),
        },
        Case {
            name: "unknown algorithm tag",
            bytes: {
                let mut b = v2.clone();
                b[5] = 0xFE;
                b
            },
            expect: |e| matches!(e, ContainerError::UnknownAlgorithm(0xFE)),
        },
        Case {
            name: "unknown profile tag",
            bytes: {
                let mut b = v2.clone();
                b[6] = 0xFE;
                b
            },
            expect: |e| matches!(e, ContainerError::UnknownProfile(0xFE)),
        },
        Case {
            name: "chunk count inflated to u32::MAX (must not allocate)",
            bytes: {
                let mut b = v2.clone();
                b[28..32].copy_from_slice(&u32::MAX.to_le_bytes());
                b
            },
            expect: |e| matches!(e, ContainerError::Truncated { .. }),
        },
        Case {
            name: "chunk block count inflated to u32::MAX (must not allocate)",
            bytes: {
                let mut b = v2.clone();
                b[HEADER_V2_LEN + 8..HEADER_V2_LEN + 12].copy_from_slice(&u32::MAX.to_le_bytes());
                b
            },
            expect: |e| matches!(e, ContainerError::Truncated { .. }),
        },
        Case {
            name: "chunk bit length inflated (sum exceeds header total)",
            bytes: {
                let mut b = v2.clone();
                b[HEADER_V2_LEN + 4..HEADER_V2_LEN + 8].copy_from_slice(&u32::MAX.to_le_bytes());
                b
            },
            expect: |e| matches!(e, ContainerError::ChunkFraming { .. }),
        },
        Case {
            name: "chunk index out of order",
            bytes: {
                let mut b = v2.clone();
                b[HEADER_V2_LEN] ^= 0x01;
                b
            },
            expect: |e| matches!(e, ContainerError::ChunkFraming { .. }),
        },
        Case {
            name: "total bit length in header does not match chunk sum",
            bytes: {
                let mut b = v2.clone();
                b[16] ^= 0x01;
                b
            },
            expect: |e| matches!(e, ContainerError::ChunkFraming { .. }),
        },
    ];

    for case in cases {
        let err = open(&key(), &case.bytes).expect_err(&format!("case `{}` must fail", case.name));
        assert!(
            (case.expect)(&err),
            "case `{}`: unexpected error {err:?}",
            case.name
        );
    }
}

/// `open_v2` is the v2-only entry point: v1 bytes must be rejected by
/// version, not misparsed.
#[test]
fn v1_bytes_fed_to_open_v2_rejected() {
    let v1 = sealed_v1();
    assert_eq!(
        open_v2(&key(), &v1),
        Err(ContainerError::UnsupportedVersion(1))
    );
    // And the reverse stays covered: v2 bytes through the dispatching
    // `open` succeed, so the rejection above is about version, not shape.
    assert!(open(&key(), &sealed_v2()).is_ok());
}

/// Zero seeds are the LFSR's fixed point: both sealers refuse them with a
/// typed engine error.
#[test]
fn zero_seeds_rejected_by_both_versions() {
    let v1_opts = SealOptions {
        lfsr_seed: 0,
        ..Default::default()
    };
    assert_eq!(
        seal(&key(), b"x", &v1_opts),
        Err(ContainerError::Engine(MhheaError::InvalidSeed))
    );
    let v2_opts = SealV2Options {
        master_seed: 0,
        ..Default::default()
    };
    assert_eq!(
        seal_v2(&key(), b"x", &v2_opts),
        Err(ContainerError::Engine(MhheaError::InvalidSeed))
    );
}

/// The unusable chunk sizes: zero, non-multiple-of-4 (the hardware
/// profile consumes whole 32-bit words), and too large to frame.
#[test]
fn invalid_chunk_sizes_rejected() {
    for chunk_bytes in [0usize, 2, 6, 10, (u32::MAX / 8) as usize + 4] {
        let opts = SealV2Options {
            chunk_bytes,
            ..Default::default()
        };
        assert_eq!(
            seal_v2(&key(), b"x", &opts),
            Err(ContainerError::InvalidChunkSize { chunk_bytes }),
            "chunk_bytes={chunk_bytes}"
        );
    }
}

/// Corruption in every single byte position of a small v2 container must
/// produce either a typed error or a *wrong-looking* but sized output —
/// never a panic. (A catch-all sweep on top of the targeted table.)
#[test]
fn byte_flip_sweep_never_panics() {
    let sealed = {
        let opts = SealV2Options {
            chunk_bytes: 8,
            workers: 1,
            profile: Profile::HardwareFaithful,
            ..Default::default()
        };
        seal_v2(&key(), b"sweep target", &opts).unwrap()
    };
    for pos in 0..sealed.len() {
        let mut bad = sealed.clone();
        bad[pos] ^= 0xA5;
        // Any outcome but a panic is acceptable; opened-but-different is
        // possible when the flip lands in block payload bits.
        let _ = open(&key(), &bad);
    }
}
