//! Integration tests for the session layer and the chunked container:
//! multi-message traffic, cursor lockstep, and chunk-parallel round-trips.

use mhhea::container::{
    open, open_v2_with, parse_header_v2, seal, seal_v2, SealOptions, SealV2Options,
};
use mhhea::session::{DecryptSession, EncryptSession};
use mhhea::{Algorithm, Key, LfsrSource, Profile};

fn multi_pair_key() -> Key {
    Key::from_nibbles(&[(0, 3), (2, 5), (7, 1), (4, 4), (6, 0)]).unwrap()
}

/// The seed-code desync: message two (and every one after) garbles unless
/// both endpoints share the stream position. One session per side, three
/// messages, both profiles, a multi-pair key.
#[test]
fn sessions_roundtrip_multi_message_traffic() {
    let messages: [&[u8]; 3] = [b"first message", b"the second, longer message", b"#3"];
    for algorithm in [Algorithm::Hhea, Algorithm::Mhhea] {
        for profile in [Profile::Streaming, Profile::HardwareFaithful] {
            let mut enc = EncryptSession::new(multi_pair_key(), LfsrSource::new(0xACE1).unwrap())
                .with_algorithm(algorithm)
                .with_profile(profile);
            let mut dec = DecryptSession::new(multi_pair_key())
                .with_algorithm(algorithm)
                .with_profile(profile);
            for msg in messages {
                let blocks = enc.encrypt(msg).unwrap();
                let got = dec.decrypt(&blocks, msg.len() * 8).unwrap();
                assert_eq!(got, msg, "alg={algorithm} profile={profile}");
                assert_eq!(
                    enc.cursor(),
                    dec.cursor(),
                    "cursors desynced: alg={algorithm} profile={profile}"
                );
            }
            assert!(enc.cursor().block_index > 0);
        }
    }
}

/// A decryptor that restarts at zero (the seed behaviour) must NOT open
/// the second message from a shared-cursor stream — proving the cursor is
/// load-bearing, not decorative.
#[test]
fn stateless_decrypt_fails_mid_stream() {
    let mut enc = EncryptSession::new(multi_pair_key(), LfsrSource::new(0xACE1).unwrap());
    let first = enc.encrypt(b"first message").unwrap();
    let second = enc.encrypt(b"second message").unwrap();
    // The first message decrypts from the origin…
    let mut dec = DecryptSession::new(multi_pair_key());
    assert_eq!(dec.decrypt(&first, 13 * 8).unwrap(), b"first message");
    // …but replaying the *second* from the origin garbles it (a span
    // mismatch may instead under-run the bit count, which is an Err and
    // proves the desync just as well).
    let mut stateless = DecryptSession::new(multi_pair_key());
    if let Ok(got) = stateless.decrypt(&second, 14 * 8) {
        assert_ne!(got, b"second message");
    }
}

/// Chunk-parallel container v2: a ≥1 MiB payload round-trips in both
/// profiles across ≥4 threads.
#[test]
fn v2_megabyte_roundtrip_four_threads() {
    let payload: Vec<u8> = (0..(1 << 20) + 5)
        .map(|i: u32| (i.wrapping_mul(2654435761) >> 11) as u8)
        .collect();
    assert!(payload.len() >= 1 << 20);
    for profile in [Profile::Streaming, Profile::HardwareFaithful] {
        let opts = SealV2Options {
            profile,
            chunk_bytes: 128 * 1024,
            workers: 4,
            ..Default::default()
        };
        let sealed = seal_v2(&multi_pair_key(), &payload, &opts).unwrap();
        let header = parse_header_v2(&sealed).unwrap();
        assert_eq!(header.chunk_count, 9); // ceil((2^20 + 5) / 2^17)
        assert_eq!(header.bit_len, payload.len() as u64 * 8);
        let opened = open_v2_with(&multi_pair_key(), &sealed, 4).unwrap();
        assert_eq!(opened, payload, "profile={profile}");
    }
}

/// Worker count must not change the bytes: sealing with 1 and 4 workers
/// yields identical containers (the chunk seeds depend only on the master
/// seed and chunk index).
#[test]
fn v2_container_is_worker_count_invariant() {
    let payload = vec![0x42u8; 96 * 1024];
    let mk = |workers| SealV2Options {
        chunk_bytes: 16 * 1024,
        workers,
        ..Default::default()
    };
    let serial = seal_v2(&multi_pair_key(), &payload, &mk(1)).unwrap();
    let parallel = seal_v2(&multi_pair_key(), &payload, &mk(4)).unwrap();
    assert_eq!(serial, parallel);
}

/// Rekeying both sessions at the same message boundary hands the cursor
/// off bit-exactly in every mode: traffic before and after the rotation
/// round-trips, the new epoch restarts the schedule at block 0, and a
/// session rotated to epoch `e` is indistinguishable from a fresh session
/// built from the ring's epoch-`e` materials.
#[test]
fn rekey_hands_off_bit_exactly_in_all_modes() {
    use mhhea::{KeyRing, MhheaError};
    let ring = KeyRing::new(
        vec![
            multi_pair_key(),
            Key::from_nibbles(&[(3, 6), (1, 1)]).unwrap(),
        ],
        0xACE1,
    )
    .unwrap();
    for algorithm in [Algorithm::Hhea, Algorithm::Mhhea] {
        for profile in [Profile::Streaming, Profile::HardwareFaithful] {
            let mut enc = EncryptSession::with_options(
                ring.key(0).clone(),
                LfsrSource::new(ring.seed(0)).unwrap(),
                algorithm,
                profile,
            );
            let mut dec = DecryptSession::with_options(ring.key(0).clone(), algorithm, profile);
            for (epoch, msg) in [
                (0u32, b"epoch zero traffic".as_slice()),
                (1, b"rotated once"),
                (2, b"rotated twice; longer message this time"),
            ] {
                if epoch > 0 {
                    enc.rekey(&ring, epoch).unwrap();
                    dec.rekey(&ring, epoch).unwrap();
                    assert_eq!(enc.cursor().block_index, 0, "schedule must restart");
                }
                assert_eq!((enc.epoch(), dec.epoch()), (epoch, epoch));
                let blocks = enc.encrypt(msg).unwrap();
                assert_eq!(
                    dec.decrypt(&blocks, msg.len() * 8).unwrap(),
                    msg,
                    "alg={algorithm} profile={profile} epoch={epoch}"
                );
                assert_eq!(enc.cursor(), dec.cursor());
            }

            // A rotated session equals a fresh one built at that epoch.
            let mut fresh = EncryptSession::with_options(
                ring.key(3).clone(),
                LfsrSource::new(ring.seed(3)).unwrap(),
                algorithm,
                profile,
            );
            fresh.set_epoch(3);
            enc.rekey(&ring, 3).unwrap();
            assert_eq!(
                enc.encrypt(b"equivalence probe").unwrap(),
                fresh.encrypt(b"equivalence probe").unwrap(),
                "alg={algorithm} profile={profile}"
            );

            // Epochs only move forward.
            assert_eq!(
                enc.rekey(&ring, 3),
                Err(MhheaError::StaleEpoch {
                    current: 3,
                    requested: 3
                })
            );
            assert_eq!(
                dec.rekey(&ring, 0),
                Err(MhheaError::StaleEpoch {
                    current: 2,
                    requested: 0
                })
            );
        }
    }
}

/// Opening pre-rotation ciphertext after the receiver rekeyed to a new
/// key garbles (or errors) — the epoch boundary is a hard cut in both
/// directions, which is why the transport must reject stale-epoch frames
/// instead of decrypting them. (A *single*-key ring changes only the
/// encrypt-side reseed, which decryption never consults — the key switch
/// is what retires old ciphertext.)
#[test]
fn stale_epoch_ciphertext_does_not_open_after_rekey() {
    use mhhea::KeyRing;
    let ring = KeyRing::new(
        vec![
            multi_pair_key(),
            Key::from_nibbles(&[(7, 7), (0, 0)]).unwrap(),
        ],
        0x7A31,
    )
    .unwrap();
    let mut enc = EncryptSession::new(ring.key(0).clone(), LfsrSource::new(ring.seed(0)).unwrap());
    let stale = enc.encrypt(b"sealed before the rotation").unwrap();

    let mut dec = DecryptSession::new(ring.key(0).clone());
    dec.rekey(&ring, 1).unwrap();
    if let Ok(got) = dec.decrypt(&stale, 26 * 8) {
        assert_ne!(got, b"sealed before the rotation");
    }
}

/// v1 containers remain readable through the same `open` entry point.
#[test]
fn v1_containers_still_open() {
    for profile in [Profile::Streaming, Profile::HardwareFaithful] {
        let opts = SealOptions {
            profile,
            ..Default::default()
        };
        let sealed = seal(&multi_pair_key(), b"legacy container payload", &opts).unwrap();
        assert_eq!(sealed[4], 1, "v1 version byte");
        assert_eq!(
            open(&multi_pair_key(), &sealed).unwrap(),
            b"legacy container payload",
            "profile={profile}"
        );
    }
}
