//! Integration tests for the session layer and the chunked container:
//! multi-message traffic, cursor lockstep, and chunk-parallel round-trips.

use mhhea::container::{
    open, open_v2_with, parse_header_v2, seal, seal_v2, SealOptions, SealV2Options,
};
use mhhea::session::{DecryptSession, EncryptSession};
use mhhea::{Algorithm, Key, LfsrSource, Profile};

fn multi_pair_key() -> Key {
    Key::from_nibbles(&[(0, 3), (2, 5), (7, 1), (4, 4), (6, 0)]).unwrap()
}

/// The seed-code desync: message two (and every one after) garbles unless
/// both endpoints share the stream position. One session per side, three
/// messages, both profiles, a multi-pair key.
#[test]
fn sessions_roundtrip_multi_message_traffic() {
    let messages: [&[u8]; 3] = [b"first message", b"the second, longer message", b"#3"];
    for algorithm in [Algorithm::Hhea, Algorithm::Mhhea] {
        for profile in [Profile::Streaming, Profile::HardwareFaithful] {
            let mut enc = EncryptSession::new(multi_pair_key(), LfsrSource::new(0xACE1).unwrap())
                .with_algorithm(algorithm)
                .with_profile(profile);
            let mut dec = DecryptSession::new(multi_pair_key())
                .with_algorithm(algorithm)
                .with_profile(profile);
            for msg in messages {
                let blocks = enc.encrypt(msg).unwrap();
                let got = dec.decrypt(&blocks, msg.len() * 8).unwrap();
                assert_eq!(got, msg, "alg={algorithm} profile={profile}");
                assert_eq!(
                    enc.cursor(),
                    dec.cursor(),
                    "cursors desynced: alg={algorithm} profile={profile}"
                );
            }
            assert!(enc.cursor().block_index > 0);
        }
    }
}

/// A decryptor that restarts at zero (the seed behaviour) must NOT open
/// the second message from a shared-cursor stream — proving the cursor is
/// load-bearing, not decorative.
#[test]
fn stateless_decrypt_fails_mid_stream() {
    let mut enc = EncryptSession::new(multi_pair_key(), LfsrSource::new(0xACE1).unwrap());
    let first = enc.encrypt(b"first message").unwrap();
    let second = enc.encrypt(b"second message").unwrap();
    // The first message decrypts from the origin…
    let mut dec = DecryptSession::new(multi_pair_key());
    assert_eq!(dec.decrypt(&first, 13 * 8).unwrap(), b"first message");
    // …but replaying the *second* from the origin garbles it (a span
    // mismatch may instead under-run the bit count, which is an Err and
    // proves the desync just as well).
    let mut stateless = DecryptSession::new(multi_pair_key());
    if let Ok(got) = stateless.decrypt(&second, 14 * 8) {
        assert_ne!(got, b"second message");
    }
}

/// Chunk-parallel container v2: a ≥1 MiB payload round-trips in both
/// profiles across ≥4 threads.
#[test]
fn v2_megabyte_roundtrip_four_threads() {
    let payload: Vec<u8> = (0..(1 << 20) + 5)
        .map(|i: u32| (i.wrapping_mul(2654435761) >> 11) as u8)
        .collect();
    assert!(payload.len() >= 1 << 20);
    for profile in [Profile::Streaming, Profile::HardwareFaithful] {
        let opts = SealV2Options {
            profile,
            chunk_bytes: 128 * 1024,
            workers: 4,
            ..Default::default()
        };
        let sealed = seal_v2(&multi_pair_key(), &payload, &opts).unwrap();
        let header = parse_header_v2(&sealed).unwrap();
        assert_eq!(header.chunk_count, 9); // ceil((2^20 + 5) / 2^17)
        assert_eq!(header.bit_len, payload.len() as u64 * 8);
        let opened = open_v2_with(&multi_pair_key(), &sealed, 4).unwrap();
        assert_eq!(opened, payload, "profile={profile}");
    }
}

/// Worker count must not change the bytes: sealing with 1 and 4 workers
/// yields identical containers (the chunk seeds depend only on the master
/// seed and chunk index).
#[test]
fn v2_container_is_worker_count_invariant() {
    let payload = vec![0x42u8; 96 * 1024];
    let mk = |workers| SealV2Options {
        chunk_bytes: 16 * 1024,
        workers,
        ..Default::default()
    };
    let serial = seal_v2(&multi_pair_key(), &payload, &mk(1)).unwrap();
    let parallel = seal_v2(&multi_pair_key(), &payload, &mk(4)).unwrap();
    assert_eq!(serial, parallel);
}

/// v1 containers remain readable through the same `open` entry point.
#[test]
fn v1_containers_still_open() {
    for profile in [Profile::Streaming, Profile::HardwareFaithful] {
        let opts = SealOptions {
            profile,
            ..Default::default()
        };
        let sealed = seal(&multi_pair_key(), b"legacy container payload", &opts).unwrap();
        assert_eq!(sealed[4], 1, "v1 version byte");
        assert_eq!(
            open(&multi_pair_key(), &sealed).unwrap(),
            b"legacy container payload",
            "profile={profile}"
        );
    }
}
