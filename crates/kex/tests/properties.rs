//! Property tests for the X25519 exchange and the session KDF.

use mhhea_kex::{derive_session, scalar_mult, transcript, EphemeralSecret};
use proptest::prelude::*;

fn arb_scalar() -> impl Strategy<Value = [u8; 32]> {
    proptest::collection::vec(any::<u8>(), 32).prop_map(|v| {
        let mut s = [0u8; 32];
        s.copy_from_slice(&v);
        s
    })
}

proptest! {
    /// The Diffie–Hellman identity: `kex(a, B) == kex(b, A)` for random
    /// scalars — both sides of the handshake always derive the same
    /// shared secret.
    #[test]
    fn dh_commutes(a in arb_scalar(), b in arb_scalar()) {
        let sa = EphemeralSecret::from_bytes(a);
        let sb = EphemeralSecret::from_bytes(b);
        let ab = scalar_mult(&a, &sb.public_key());
        let ba = scalar_mult(&b, &sa.public_key());
        prop_assert_eq!(ab, ba);
        // Honest public keys are never low-order, so the checked DH
        // accepts and agrees too.
        let ab = sa.diffie_hellman(&sb.public_key()).expect("honest peer");
        let ba = sb.diffie_hellman(&sa.public_key()).expect("honest peer");
        prop_assert_eq!(ab.as_bytes(), ba.as_bytes());
    }

    /// Both ends of a handshake derive identical session material, with
    /// a nonzero LFSR seed, for any scalars and stream coordinates.
    #[test]
    fn derived_material_agrees(
        a in arb_scalar(),
        b in arb_scalar(),
        stream in any::<u64>(),
        epoch in any::<u32>(),
    ) {
        let sa = EphemeralSecret::from_bytes(a);
        let sb = EphemeralSecret::from_bytes(b);
        let t = transcript(stream, epoch, 1, 0, &sa.public_key(), &sb.public_key());
        let ma = derive_session(&sa.diffie_hellman(&sb.public_key()).unwrap(), &t);
        let mb = derive_session(&sb.diffie_hellman(&sa.public_key()).unwrap(), &t);
        prop_assert_eq!(ma.key_bytes, mb.key_bytes);
        prop_assert_eq!(ma.seed, mb.seed);
        prop_assert_eq!(ma.tag_server, mb.tag_server);
        prop_assert_eq!(ma.tag_client, mb.tag_client);
        prop_assert_ne!(ma.seed, 0);
    }
}
