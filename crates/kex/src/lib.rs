//! # mhhea-kex — MHKX, ephemeral key agreement for MHNP
//!
//! The MHNP `Hello` handshake names a pre-shared key; this crate is the
//! keyless alternative: a zero-dependency X25519 implementation
//! (RFC 7748 — fixed-width 5×51-bit field limbs, constant-time
//! Montgomery ladder, clamping, all-zero shared-secret rejection) plus
//! the small KDF that turns a Diffie–Hellman shared secret and a
//! handshake transcript into exactly the material an MHHEA stream
//! needs: 16 bytes of key-pair schedule (fed to `mhhea`'s
//! `Key::from_bytes`), a nonzero 16-bit LFSR master seed, and the two
//! key-confirmation tags the `KeyEx`/`KeyExAck` frames carry.
//!
//! The wire protocol that uses this crate is specified in
//! `docs/PROTOCOL.md` §5.1; the server/client wiring lives in
//! `mhhea-net`.
//!
//! ## Example
//!
//! ```
//! use mhhea_kex::{derive_session, transcript, EphemeralSecret};
//!
//! let client = EphemeralSecret::generate();
//! let server = EphemeralSecret::generate();
//!
//! // Each side sends its public key; both build the same transcript.
//! let t = transcript(7, 0, 1, 0, &client.public_key(), &server.public_key());
//!
//! let c_shared = client.diffie_hellman(&server.public_key()).unwrap();
//! let s_shared = server.diffie_hellman(&client.public_key()).unwrap();
//!
//! let c = derive_session(&c_shared, &t);
//! let s = derive_session(&s_shared, &t);
//! assert_eq!(c.key_bytes, s.key_bytes);
//! assert_eq!(c.seed, s.seed);
//! ```

#![deny(missing_docs)]

pub mod blake2s;
mod field;
pub mod x25519;

use std::sync::atomic::{AtomicU64, Ordering};

pub use x25519::{base_point_mul, clamp, x25519 as scalar_mult, BASE_POINT, POINT_LEN};

use blake2s::blake2s;

/// Errors a key exchange can fail with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KexError {
    /// The peer's public key is a low-order point: the shared secret
    /// came out all-zero, so it would be attacker-chosen. RFC 7748 §6.1
    /// requires checking for and rejecting exactly this.
    LowOrderPoint,
}

impl std::fmt::Display for KexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KexError::LowOrderPoint => {
                write!(
                    f,
                    "peer public key is a low-order point (zero shared secret)"
                )
            }
        }
    }
}

impl std::error::Error for KexError {}

/// An ephemeral X25519 secret scalar. Generated per handshake and
/// meant to be dropped as soon as the shared secret is derived — that
/// discipline, not anything in the type, is what buys forward secrecy.
pub struct EphemeralSecret {
    scalar: [u8; 32],
}

impl EphemeralSecret {
    /// Generates a fresh secret from process-local entropy.
    ///
    /// The container has no RNG crate, so entropy is gathered the same
    /// way the server mints resume tokens: the standard library's
    /// `RandomState` (whose SipHash keys are drawn from OS entropy),
    /// a monotonic clock reading, and a process-global counter, all
    /// mixed through BLAKE2s. Clamping then forces the scalar into the
    /// right coset regardless of the bytes drawn.
    pub fn generate() -> EphemeralSecret {
        use std::hash::{BuildHasher, Hasher};
        static COUNTER: AtomicU64 = AtomicU64::new(0);

        let mut pool = [0u8; 32];
        let state = std::collections::hash_map::RandomState::new();
        for (i, chunk) in pool.chunks_mut(8).enumerate() {
            let mut h = state.build_hasher();
            h.write_u64(i as u64);
            h.write_u64(COUNTER.fetch_add(1, Ordering::Relaxed));
            h.write_u128(std::time::UNIX_EPOCH.elapsed().map_or(0, |d| d.as_nanos()));
            chunk.copy_from_slice(&h.finish().to_le_bytes());
        }
        EphemeralSecret::from_bytes(blake2s(b"", &pool))
    }

    /// Builds a secret from caller-supplied bytes (clamped on use).
    /// This is the deterministic entry point tests and KATs use.
    pub fn from_bytes(scalar: [u8; 32]) -> EphemeralSecret {
        EphemeralSecret { scalar }
    }

    /// The matching public key, `X25519(scalar, 9)`.
    pub fn public_key(&self) -> [u8; 32] {
        base_point_mul(&self.scalar)
    }

    /// Runs the Diffie–Hellman step against a peer public key,
    /// rejecting low-order peer points (all-zero shared secret).
    pub fn diffie_hellman(&self, peer_public: &[u8; 32]) -> Result<SharedSecret, KexError> {
        let shared = x25519::x25519(&self.scalar, peer_public);
        if shared == [0u8; 32] {
            return Err(KexError::LowOrderPoint);
        }
        Ok(SharedSecret(shared))
    }
}

impl std::fmt::Debug for EphemeralSecret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the scalar.
        f.write_str("EphemeralSecret(..)")
    }
}

/// A non-zero X25519 shared secret (the raw u-coordinate). Only ever
/// fed to [`derive_session`] — the raw secret must not be used as key
/// material directly.
pub struct SharedSecret([u8; 32]);

impl SharedSecret {
    /// The raw 32 bytes. Exposed for tests and the KDF.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl std::fmt::Debug for SharedSecret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SharedSecret(..)")
    }
}

/// Length of the key-confirmation tags carried in `KeyEx`/`KeyExAck`.
pub const TAG_LEN: usize = 16;

/// Length of the derived key-pair schedule bytes (16 bytes → 16 MHHEA
/// key pairs via `Key::from_bytes`).
pub const KEY_BYTES_LEN: usize = 16;

/// Domain-separation prefix of every MHKX transcript.
pub const TRANSCRIPT_LABEL: &[u8] = b"MHKX/1";

/// Builds the canonical handshake transcript both ends hash:
///
/// ```text
/// "MHKX/1" ∥ stream_id (u64 LE) ∥ epoch (u32 LE) ∥ algorithm (u8)
///          ∥ profile (u8) ∥ client_pub (32) ∥ server_pub (32)
/// ```
///
/// Binding the stream id, target epoch and negotiated cipher options
/// into the tag input means a handshake message replayed under any
/// other stream, epoch or option set produces a mismatching tag.
pub fn transcript(
    stream_id: u64,
    epoch: u32,
    algorithm: u8,
    profile: u8,
    client_pub: &[u8; 32],
    server_pub: &[u8; 32],
) -> Vec<u8> {
    let mut t = Vec::with_capacity(TRANSCRIPT_LABEL.len() + 8 + 4 + 2 + 64);
    t.extend_from_slice(TRANSCRIPT_LABEL);
    t.extend_from_slice(&stream_id.to_le_bytes());
    t.extend_from_slice(&epoch.to_le_bytes());
    t.push(algorithm);
    t.push(profile);
    t.extend_from_slice(client_pub);
    t.extend_from_slice(server_pub);
    t
}

/// Everything [`derive_session`] extracts from one handshake.
#[derive(Clone)]
pub struct SessionMaterial {
    /// 16 bytes of key-pair schedule; `mhhea::Key::from_bytes` turns
    /// each byte into one (low-nibble, high-nibble) 3-bit pair.
    pub key_bytes: [u8; KEY_BYTES_LEN],
    /// The stream's LFSR master seed — nonzero by construction.
    pub seed: u16,
    /// The tag the **server** sends in `KeyExAck` phase 1, proving it
    /// derived the same secret over the same transcript.
    pub tag_server: [u8; TAG_LEN],
    /// The tag the **client** sends in `KeyEx` phase 2. The two tags
    /// use distinct labels, so reflecting one side's tag back at it
    /// never verifies.
    pub tag_client: [u8; TAG_LEN],
}

impl std::fmt::Debug for SessionMaterial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Key material and seeds stay out of logs; tags are public.
        f.write_str("SessionMaterial(..)")
    }
}

/// Derives a stream's session material from the DH shared secret and
/// the handshake transcript.
///
/// Extraction and expansion are both keyed BLAKE2s:
///
/// ```text
/// prk        = BLAKE2s(key = shared_secret, transcript)
/// key_bytes  = BLAKE2s(key = prk, "key-pairs")[..16]
/// seed       = first nonzero u16 LE of BLAKE2s(key = prk, "lfsr-seed")  (else 1)
/// tag_server = BLAKE2s(key = prk, "server-confirm")[..16]
/// tag_client = BLAKE2s(key = prk, "client-confirm")[..16]
/// ```
pub fn derive_session(shared: &SharedSecret, transcript: &[u8]) -> SessionMaterial {
    let prk = blake2s(shared.as_bytes(), transcript);

    let key_full = blake2s(&prk, b"key-pairs");
    let mut key_bytes = [0u8; KEY_BYTES_LEN];
    key_bytes.copy_from_slice(&key_full[..KEY_BYTES_LEN]);

    // The LFSR rejects a zero master seed, so scan the expansion for
    // the first nonzero 16-bit word; all 16 words zero is a 2⁻²⁵⁶-class
    // event, where 1 keeps the derivation total.
    let seed_full = blake2s(&prk, b"lfsr-seed");
    let seed = seed_full
        .chunks_exact(2)
        .map(|c| u16::from_le_bytes([c[0], c[1]]))
        .find(|&s| s != 0)
        .unwrap_or(1);

    let mut tag_server = [0u8; TAG_LEN];
    tag_server.copy_from_slice(&blake2s(&prk, b"server-confirm")[..TAG_LEN]);
    let mut tag_client = [0u8; TAG_LEN];
    tag_client.copy_from_slice(&blake2s(&prk, b"client-confirm")[..TAG_LEN]);

    SessionMaterial {
        key_bytes,
        seed,
        tag_server,
        tag_client,
    }
}

/// Constant-time tag comparison: XOR-accumulates every byte pair so the
/// comparison never early-exits on the first mismatch.
pub fn tags_equal(a: &[u8; TAG_LEN], b: &[u8; TAG_LEN]) -> bool {
    let mut acc = 0u8;
    for i in 0..TAG_LEN {
        acc |= a[i] ^ b[i];
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dh_agreement_end_to_end() {
        let a = EphemeralSecret::from_bytes([0x11; 32]);
        let b = EphemeralSecret::from_bytes([0x22; 32]);
        let s_ab = a.diffie_hellman(&b.public_key()).unwrap();
        let s_ba = b.diffie_hellman(&a.public_key()).unwrap();
        assert_eq!(s_ab.as_bytes(), s_ba.as_bytes());
    }

    #[test]
    fn low_order_peer_is_rejected() {
        let a = EphemeralSecret::generate();
        for u in [[0u8; 32], {
            let mut one = [0u8; 32];
            one[0] = 1;
            one
        }] {
            assert_eq!(a.diffie_hellman(&u).unwrap_err(), KexError::LowOrderPoint);
        }
    }

    #[test]
    fn generate_yields_distinct_secrets() {
        let a = EphemeralSecret::generate();
        let b = EphemeralSecret::generate();
        assert_ne!(a.public_key(), b.public_key());
    }

    #[test]
    fn derivation_is_deterministic_and_transcript_bound() {
        let a = EphemeralSecret::from_bytes([3; 32]);
        let b = EphemeralSecret::from_bytes([7; 32]);
        let shared = a.diffie_hellman(&b.public_key()).unwrap();
        let t1 = transcript(1, 0, 1, 0, &a.public_key(), &b.public_key());
        let m1 = derive_session(&shared, &t1);
        let m2 = derive_session(&shared, &t1);
        assert_eq!(m1.key_bytes, m2.key_bytes);
        assert_eq!(m1.seed, m2.seed);
        assert_eq!(m1.tag_server, m2.tag_server);

        // Any transcript change — here the stream id — moves every output.
        let t2 = transcript(2, 0, 1, 0, &a.public_key(), &b.public_key());
        let m3 = derive_session(&shared, &t2);
        assert_ne!(m1.key_bytes, m3.key_bytes);
        assert_ne!(m1.tag_server, m3.tag_server);
        assert_ne!(m1.tag_client, m3.tag_client);
    }

    #[test]
    fn seed_is_never_zero() {
        let a = EphemeralSecret::from_bytes([9; 32]);
        let b = EphemeralSecret::from_bytes([4; 32]);
        let shared = a.diffie_hellman(&b.public_key()).unwrap();
        for stream in 0..64u64 {
            let t = transcript(stream, 0, 1, 0, &a.public_key(), &b.public_key());
            assert_ne!(derive_session(&shared, &t).seed, 0);
        }
    }

    #[test]
    fn tags_are_asymmetric() {
        let a = EphemeralSecret::from_bytes([5; 32]);
        let b = EphemeralSecret::from_bytes([6; 32]);
        let shared = a.diffie_hellman(&b.public_key()).unwrap();
        let t = transcript(1, 0, 1, 0, &a.public_key(), &b.public_key());
        let m = derive_session(&shared, &t);
        // Reflection defence: the two confirmation tags never collide.
        assert_ne!(m.tag_server, m.tag_client);
    }

    #[test]
    fn tags_equal_is_exact() {
        let a = [1u8; TAG_LEN];
        let mut b = a;
        assert!(tags_equal(&a, &b));
        b[TAG_LEN - 1] ^= 1;
        assert!(!tags_equal(&a, &b));
    }
}
