//! X25519 (RFC 7748): constant-time Montgomery-ladder scalar
//! multiplication on Curve25519's u-coordinate.

use crate::field::Fe;

/// Length of scalars, u-coordinates and shared secrets, in bytes.
pub const POINT_LEN: usize = 32;

/// The base point's u-coordinate, `u = 9`.
pub const BASE_POINT: [u8; 32] = {
    let mut u = [0u8; 32];
    u[0] = 9;
    u
};

/// RFC 7748 §5 scalar clamping: clear the low 3 bits (force a multiple
/// of the cofactor 8), clear bit 255, set bit 254 (fix the scalar's
/// top bit so the ladder's trip count never depends on the value).
pub fn clamp(scalar: &mut [u8; 32]) {
    scalar[0] &= 248;
    scalar[31] &= 127;
    scalar[31] |= 64;
}

/// Scalar-multiplies `point` by the clamped `scalar` and returns the
/// resulting u-coordinate.
///
/// This is the raw RFC 7748 `X25519` function: it clamps internally and
/// performs no result checking — [`crate::EphemeralSecret::diffie_hellman`]
/// layers the all-zero (low-order point) rejection on top.
///
/// The ladder is constant-time: 255 fixed iterations, each doing the
/// same field ops, with the conditional state exchange expressed as a
/// masked `Fe::cswap` on the XOR of successive scalar bits.
pub fn x25519(scalar: &[u8; 32], point: &[u8; 32]) -> [u8; 32] {
    let mut k = *scalar;
    clamp(&mut k);

    let x1 = Fe::from_bytes(point);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;

    for t in (0..255).rev() {
        let k_t = u64::from((k[t >> 3] >> (t & 7)) & 1);
        swap ^= k_t;
        Fe::cswap(swap, &mut x2, &mut x3);
        Fe::cswap(swap, &mut z2, &mut z3);
        swap = k_t;

        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        // a24 = (486662 − 2) / 4 = 121665.
        z2 = e.mul(aa.add(e.mul_small(121_665)));
    }
    Fe::cswap(swap, &mut x2, &mut x3);
    Fe::cswap(swap, &mut z2, &mut z3);

    x2.mul(z2.invert()).to_bytes()
}

/// The public key for `scalar`: `X25519(scalar, 9)`.
pub fn base_point_mul(scalar: &[u8; 32]) -> [u8; 32] {
    x25519(scalar, &BASE_POINT)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> [u8; 32] {
        assert_eq!(s.len(), 64);
        let mut out = [0u8; 32];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).expect("hex");
        }
        out
    }

    #[test]
    fn rfc7748_vector_1() {
        let scalar = unhex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let point = unhex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let expect = unhex("c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
        assert_eq!(x25519(&scalar, &point), expect);
    }

    #[test]
    fn rfc7748_vector_2() {
        let scalar = unhex("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let point = unhex("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        let expect = unhex("95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
        assert_eq!(x25519(&scalar, &point), expect);
    }

    #[test]
    fn rfc7748_diffie_hellman_vector() {
        let alice_priv = unhex("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let alice_pub = unhex("8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
        let bob_priv = unhex("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let bob_pub = unhex("de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");
        let shared = unhex("4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
        assert_eq!(base_point_mul(&alice_priv), alice_pub);
        assert_eq!(base_point_mul(&bob_priv), bob_pub);
        assert_eq!(x25519(&alice_priv, &bob_pub), shared);
        assert_eq!(x25519(&bob_priv, &alice_pub), shared);
    }

    #[test]
    fn rfc7748_iterated_1000() {
        // RFC 7748 §5.2: start with k = u = 9; each iteration computes
        // X25519(k, u), then shifts k → u, result → k.
        let after_1 = unhex("422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079");
        let after_1000 = unhex("684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51");
        let mut k = BASE_POINT;
        let mut u = BASE_POINT;
        for i in 1..=1000u32 {
            let r = x25519(&k, &u);
            u = k;
            k = r;
            if i == 1 {
                assert_eq!(k, after_1);
            }
        }
        assert_eq!(k, after_1000);
    }

    #[test]
    fn low_order_points_map_to_zero() {
        // The 8 low-order points of Curve25519 (and non-canonical
        // encodings of them): a clamped scalar is a multiple of 8, so
        // the ladder sends each to the point at infinity — encoded as
        // all-zero output. This table is what the DH layer's all-zero
        // check rejects.
        let low_order = [
            // u = 0 and u = 1 (order 1/2 subgroup)
            "0000000000000000000000000000000000000000000000000000000000000000",
            "0100000000000000000000000000000000000000000000000000000000000000",
            // the two order-8 points
            "e0eb7a7c3b41b8ae1656e3faf19fc46ada098deb9c32b1fd866205165f49b800",
            "5f9c95bca3508c24b1d0b1559c83ef5b04445cc4581c8e86d8224eddd09f1157",
            // p − 1 ≡ −1, p ≡ 0, p + 1 ≡ 1 (non-canonical aliases)
            "ecffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f",
            "edffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f",
            "eeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f",
        ];
        let scalar = unhex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        for hex in low_order {
            let point = unhex(hex);
            assert_eq!(x25519(&scalar, &point), [0u8; 32], "u = {hex}");
        }
    }

    #[test]
    fn clamping_is_idempotent_and_shapes_bits() {
        let mut s = [0xFFu8; 32];
        clamp(&mut s);
        assert_eq!(s[0] & 7, 0);
        assert_eq!(s[31] & 0x80, 0);
        assert_eq!(s[31] & 0x40, 0x40);
        let once = s;
        clamp(&mut s);
        assert_eq!(s, once);
    }
}
