//! BLAKE2s-256 (RFC 7693), one-shot, optionally keyed.
//!
//! The KDF and key-confirmation tags of MHKX need one hash primitive;
//! BLAKE2s is chosen because it is small enough to carry in-repo
//! (one compression function, ten rounds, no tables beyond the
//! sigma schedule) and publicly verifiable against RFC 7693 / the
//! reference implementation's test vectors, which the tests below pin.

/// Digest length in bytes (BLAKE2s-256).
pub const DIGEST_LEN: usize = 32;

/// Maximum key length for the keyed mode, per RFC 7693.
pub const MAX_KEY_LEN: usize = 32;

/// The BLAKE2s IV — the same constants as SHA-256's.
const IV: [u32; 8] = [
    0x6A09_E667,
    0xBB67_AE85,
    0x3C6E_F372,
    0xA54F_F53A,
    0x510E_527F,
    0x9B05_688C,
    0x1F83_D9AB,
    0x5BE0_CD19,
];

/// Message-word permutation schedule, one row per round.
const SIGMA: [[usize; 16]; 10] = [
    [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
    [14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3],
    [11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4],
    [7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8],
    [9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13],
    [2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9],
    [12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11],
    [13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10],
    [6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5],
    [10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0],
];

/// The G mixing function (rotations 16, 12, 8, 7).
#[inline]
fn g(v: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize, x: u32, y: u32) {
    v[a] = v[a].wrapping_add(v[b]).wrapping_add(x);
    v[d] = (v[d] ^ v[a]).rotate_right(16);
    v[c] = v[c].wrapping_add(v[d]);
    v[b] = (v[b] ^ v[c]).rotate_right(12);
    v[a] = v[a].wrapping_add(v[b]).wrapping_add(y);
    v[d] = (v[d] ^ v[a]).rotate_right(8);
    v[c] = v[c].wrapping_add(v[d]);
    v[b] = (v[b] ^ v[c]).rotate_right(7);
}

/// Compresses one 64-byte block into the state. `t` is the total byte
/// count fed so far including this block; `last` finalizes.
fn compress(h: &mut [u32; 8], block: &[u8; 64], t: u64, last: bool) {
    let mut m = [0u32; 16];
    for (i, word) in m.iter_mut().enumerate() {
        let mut w = [0u8; 4];
        w.copy_from_slice(&block[4 * i..4 * i + 4]);
        *word = u32::from_le_bytes(w);
    }

    let mut v = [0u32; 16];
    v[..8].copy_from_slice(h);
    v[8..].copy_from_slice(&IV);
    v[12] ^= t as u32;
    v[13] ^= (t >> 32) as u32;
    if last {
        v[14] = !v[14];
    }

    for s in &SIGMA {
        g(&mut v, 0, 4, 8, 12, m[s[0]], m[s[1]]);
        g(&mut v, 1, 5, 9, 13, m[s[2]], m[s[3]]);
        g(&mut v, 2, 6, 10, 14, m[s[4]], m[s[5]]);
        g(&mut v, 3, 7, 11, 15, m[s[6]], m[s[7]]);
        g(&mut v, 0, 5, 10, 15, m[s[8]], m[s[9]]);
        g(&mut v, 1, 6, 11, 12, m[s[10]], m[s[11]]);
        g(&mut v, 2, 7, 8, 13, m[s[12]], m[s[13]]);
        g(&mut v, 3, 4, 9, 14, m[s[14]], m[s[15]]);
    }

    for i in 0..8 {
        h[i] ^= v[i] ^ v[i + 8];
    }
}

/// BLAKE2s-256 of `data` under an optional `key` (≤ 32 bytes; an empty
/// key selects the unkeyed mode). The keyed mode is RFC 7693's: the key
/// is zero-padded to a full first block and counted as 64 input bytes.
pub fn blake2s(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    assert!(key.len() <= MAX_KEY_LEN, "BLAKE2s key exceeds 32 bytes");

    let mut h = IV;
    // Parameter block word 0: digest length, key length, fanout 1,
    // depth 1 — the sequential-mode header.
    h[0] ^= 0x0101_0000 ^ ((key.len() as u32) << 8) ^ DIGEST_LEN as u32;

    let mut t: u64 = 0;
    if !key.is_empty() {
        let mut block = [0u8; 64];
        block[..key.len()].copy_from_slice(key);
        t += 64;
        // A keyed hash of an empty message ends on the key block.
        if data.is_empty() {
            compress(&mut h, &block, t, true);
            return digest_of(&h);
        }
        compress(&mut h, &block, t, false);
    }

    // Process every full block except the final one, which is padded
    // and compressed with the finalization flag even when exactly full.
    let mut chunks = data.chunks(64).peekable();
    loop {
        let Some(chunk) = chunks.next() else {
            // Unkeyed empty input: one all-zero final block, t = 0.
            let block = [0u8; 64];
            compress(&mut h, &block, 0, true);
            break;
        };
        let mut block = [0u8; 64];
        block[..chunk.len()].copy_from_slice(chunk);
        t += chunk.len() as u64;
        let last = chunks.peek().is_none();
        compress(&mut h, &block, t, last);
        if last {
            break;
        }
    }
    digest_of(&h)
}

fn digest_of(h: &[u32; 8]) -> [u8; DIGEST_LEN] {
    let mut out = [0u8; DIGEST_LEN];
    for (i, word) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_message_kat() {
        // RFC 7693 reference vector: BLAKE2s-256("").
        assert_eq!(
            hex(&blake2s(b"", b"")),
            "69217a3079908094e11121d042354a7c1f55b6482ca1a51e1b250dfd1ed0eef9"
        );
    }

    #[test]
    fn abc_kat() {
        // RFC 7693 Appendix B: BLAKE2s-256("abc").
        assert_eq!(
            hex(&blake2s(b"", b"abc")),
            "508c5e8c327c14e2e1a72ba34eeb452f37458b209ed63a294d999b4c86675982"
        );
    }

    #[test]
    fn multi_block_input() {
        // 129 bytes = two full blocks + 1: exercises the non-final /
        // final compress split and the running byte counter.
        let data: Vec<u8> = (0..129u8).collect();
        let d = blake2s(b"", &data);
        // Self-consistency (prefixes differ) rather than an external
        // vector; the one-block KATs above pin the primitive itself.
        assert_ne!(d, blake2s(b"", &data[..128]));
        assert_ne!(d, blake2s(b"", &data[..64]));
        assert_eq!(d, blake2s(b"", &data));
    }

    #[test]
    fn keyed_mode_separates_from_prefixing() {
        // Keyed BLAKE2s is not hash(key ∥ msg): the key block is padded
        // to 64 bytes and the parameter word changes.
        let key = b"0123456789abcdef";
        let msg = b"message";
        let keyed = blake2s(key, msg);
        let mut cat = key.to_vec();
        cat.extend_from_slice(msg);
        assert_ne!(keyed, blake2s(b"", &cat));
        // Deterministic, and sensitive to the key.
        assert_eq!(keyed, blake2s(key, msg));
        assert_ne!(keyed, blake2s(b"0123456789abcdeX", msg));
    }

    #[test]
    fn keyed_empty_message_is_defined() {
        // Ends on the key block with the final flag; must not panic and
        // must depend on the key.
        assert_ne!(blake2s(b"k1", b""), blake2s(b"k2", b""));
    }

    #[test]
    #[should_panic(expected = "key exceeds")]
    fn oversized_key_panics() {
        let _ = blake2s(&[0u8; 33], b"");
    }
}
