//! Arithmetic in GF(2²⁵⁵ − 19) on fixed-width 5×51-bit limbs.
//!
//! The representation is the classic "donna" radix-2⁵¹ layout: limb `i`
//! carries bits `[51·i, 51·i + 51)` of the value, each limb a `u64`
//! holding at most a few bits of slack above 2⁵¹, and every product
//! accumulates in `u128` before one carry pass folds the overflow back
//! through the `19·x` reduction identity (`2²⁵⁵ ≡ 19 (mod p)`).
//!
//! Every operation here is branch-free in the data: limb counts, loop
//! trip counts and carry chains are fixed, and conditional state moves
//! go through [`Fe::cswap`]'s mask arithmetic — the property the
//! Montgomery ladder in [`crate::x25519`] relies on.

/// Mask of one full 51-bit limb.
const MASK51: u64 = (1 << 51) - 1;

/// A field element of GF(2²⁵⁵ − 19), five 51-bit limbs, little-endian.
///
/// Values are kept *loosely* reduced (limbs may exceed 2⁵¹ by a few
/// bits between operations); [`Fe::to_bytes`] performs the canonical
/// reduction to `[0, p)`.
#[derive(Clone, Copy, Debug)]
pub struct Fe(pub [u64; 5]);

impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe([0; 5]);
    /// The multiplicative identity.
    pub const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    /// Loads a little-endian 32-byte string, ignoring the top bit of
    /// the final byte as RFC 7748 §5 prescribes for u-coordinates.
    pub fn from_bytes(b: &[u8; 32]) -> Fe {
        let load8 = |s: &[u8]| -> u64 {
            let mut w = [0u8; 8];
            w.copy_from_slice(s);
            u64::from_le_bytes(w)
        };
        Fe([
            load8(&b[0..8]) & MASK51,
            (load8(&b[6..14]) >> 3) & MASK51,
            (load8(&b[12..20]) >> 6) & MASK51,
            (load8(&b[19..27]) >> 1) & MASK51,
            // The >> 12 places bit 204 at position 0; the mask keeps 51
            // bits, dropping bit 255 of the input (the RFC's mask).
            (load8(&b[24..32]) >> 12) & MASK51,
        ])
    }

    /// Serializes to the canonical little-endian representative in
    /// `[0, p)`.
    pub fn to_bytes(self) -> [u8; 32] {
        // One weak pass brings every limb under 2⁵¹ + ε.
        let mut l = Fe::reduce(self.0).0;

        // Compute q = ⌊(value + 19) / 2²⁵⁵⌋ ∈ {0, 1}: 1 exactly when the
        // value is in [p, 2²⁵⁵), i.e. when adding 19 overflows bit 255.
        let mut q = (l[0] + 19) >> 51;
        q = (l[1] + q) >> 51;
        q = (l[2] + q) >> 51;
        q = (l[3] + q) >> 51;
        q = (l[4] + q) >> 51;

        // value mod p = value + 19·q, truncated at bit 255.
        l[0] += 19 * q;
        let c = l[0] >> 51;
        l[0] &= MASK51;
        l[1] += c;
        let c = l[1] >> 51;
        l[1] &= MASK51;
        l[2] += c;
        let c = l[2] >> 51;
        l[2] &= MASK51;
        l[3] += c;
        let c = l[3] >> 51;
        l[3] &= MASK51;
        l[4] += c;
        l[4] &= MASK51;

        let w0 = l[0] | (l[1] << 51);
        let w1 = (l[1] >> 13) | (l[2] << 38);
        let w2 = (l[2] >> 26) | (l[3] << 25);
        let w3 = (l[3] >> 39) | (l[4] << 12);
        let mut out = [0u8; 32];
        out[0..8].copy_from_slice(&w0.to_le_bytes());
        out[8..16].copy_from_slice(&w1.to_le_bytes());
        out[16..24].copy_from_slice(&w2.to_le_bytes());
        out[24..32].copy_from_slice(&w3.to_le_bytes());
        out
    }

    /// One carry pass: folds every limb's overflow into its neighbour
    /// and the top limb's overflow into limb 0 via `2²⁵⁵ ≡ 19`.
    fn reduce(mut l: [u64; 5]) -> Fe {
        let c0 = l[0] >> 51;
        let c1 = l[1] >> 51;
        let c2 = l[2] >> 51;
        let c3 = l[3] >> 51;
        let c4 = l[4] >> 51;
        l[0] &= MASK51;
        l[1] &= MASK51;
        l[2] &= MASK51;
        l[3] &= MASK51;
        l[4] &= MASK51;
        l[0] += c4 * 19;
        l[1] += c0;
        l[2] += c1;
        l[3] += c2;
        l[4] += c3;
        Fe(l)
    }

    /// Sum; no carry needed between a bounded number of additions.
    pub fn add(self, rhs: Fe) -> Fe {
        Fe([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
            self.0[3] + rhs.0[3],
            self.0[4] + rhs.0[4],
        ])
    }

    /// Difference. To keep the subtraction branch-free and underflow-
    /// free for any loosely-reduced operand, 16·p (≡ 0 mod p) is added
    /// first; the constants are 16·p's limbs with 16 borrowed across
    /// each limb boundary (2⁵⁵ − 304 for limb 0, 2⁵⁵ − 16 above).
    pub fn sub(self, rhs: Fe) -> Fe {
        Fe::reduce([
            (self.0[0] + 36_028_797_018_963_664) - rhs.0[0],
            (self.0[1] + 36_028_797_018_963_952) - rhs.0[1],
            (self.0[2] + 36_028_797_018_963_952) - rhs.0[2],
            (self.0[3] + 36_028_797_018_963_952) - rhs.0[3],
            (self.0[4] + 36_028_797_018_963_952) - rhs.0[4],
        ])
    }

    /// Schoolbook product with the wrap-around columns pre-scaled by 19
    /// (`a_i·b_j·2^(51(i+j)) ≡ 19·a_i·b_j·2^(51(i+j−5))` once
    /// `i + j ≥ 5`), accumulated in `u128`, then one carry chain.
    pub fn mul(self, rhs: Fe) -> Fe {
        let a = self.0;
        let b = rhs.0;
        let m = |x: u64, y: u64| -> u128 { (x as u128) * (y as u128) };
        let b1 = b[1] * 19;
        let b2 = b[2] * 19;
        let b3 = b[3] * 19;
        let b4 = b[4] * 19;

        let c0 = m(a[0], b[0]) + m(a[4], b1) + m(a[3], b2) + m(a[2], b3) + m(a[1], b4);
        let mut c1 = m(a[1], b[0]) + m(a[0], b[1]) + m(a[4], b2) + m(a[3], b3) + m(a[2], b4);
        let mut c2 = m(a[2], b[0]) + m(a[1], b[1]) + m(a[0], b[2]) + m(a[4], b3) + m(a[3], b4);
        let mut c3 = m(a[3], b[0]) + m(a[2], b[1]) + m(a[1], b[2]) + m(a[0], b[3]) + m(a[4], b4);
        let mut c4 = m(a[4], b[0]) + m(a[3], b[1]) + m(a[2], b[2]) + m(a[1], b[3]) + m(a[0], b[4]);

        let mut l = [0u64; 5];
        l[0] = (c0 as u64) & MASK51;
        c1 += c0 >> 51;
        l[1] = (c1 as u64) & MASK51;
        c2 += c1 >> 51;
        l[2] = (c2 as u64) & MASK51;
        c3 += c2 >> 51;
        l[3] = (c3 as u64) & MASK51;
        c4 += c3 >> 51;
        l[4] = (c4 as u64) & MASK51;
        let carry = (c4 >> 51) as u64;

        l[0] += carry * 19;
        let carry = l[0] >> 51;
        l[0] &= MASK51;
        l[1] += carry;
        Fe(l)
    }

    /// Square (the ladder's hottest op; routed through [`Fe::mul`] —
    /// this crate optimizes for auditability over cycle counts).
    pub fn square(self) -> Fe {
        self.mul(self)
    }

    /// `n` successive squarings.
    fn sqn(self, n: u32) -> Fe {
        let mut f = self;
        for _ in 0..n {
            f = f.square();
        }
        f
    }

    /// Product with a small scalar (the ladder's `a24 = 121665`).
    pub fn mul_small(self, k: u32) -> Fe {
        let k = k as u128;
        let mut c = [0u128; 5];
        for (wide, &limb) in c.iter_mut().zip(self.0.iter()) {
            *wide = (limb as u128) * k;
        }
        let mut l = [0u64; 5];
        l[0] = (c[0] as u64) & MASK51;
        c[1] += c[0] >> 51;
        l[1] = (c[1] as u64) & MASK51;
        c[2] += c[1] >> 51;
        l[2] = (c[2] as u64) & MASK51;
        c[3] += c[2] >> 51;
        l[3] = (c[3] as u64) & MASK51;
        c[4] += c[3] >> 51;
        l[4] = (c[4] as u64) & MASK51;
        let carry = (c[4] >> 51) as u64;
        l[0] += carry * 19;
        Fe(l)
    }

    /// Multiplicative inverse by Fermat: `z^(p−2) = z^(2²⁵⁵ − 21)`,
    /// computed with the standard 254-squaring addition chain. The
    /// exponent is fixed, so the operation is constant-time; `1/0`
    /// yields 0, which is exactly the behaviour the ladder's final
    /// `x₂·z₂⁻¹` needs for low-order inputs (z₂ = 0 ⇒ output 0).
    pub fn invert(self) -> Fe {
        let z = self;
        let z2 = z.square(); // 2
        let z9 = z2.sqn(2).mul(z); // 9
        let z11 = z9.mul(z2); // 11
        let z2_5_0 = z11.square().mul(z9); // 2⁵ − 1
        let z2_10_0 = z2_5_0.sqn(5).mul(z2_5_0); // 2¹⁰ − 1
        let z2_20_0 = z2_10_0.sqn(10).mul(z2_10_0); // 2²⁰ − 1
        let z2_40_0 = z2_20_0.sqn(20).mul(z2_20_0); // 2⁴⁰ − 1
        let z2_50_0 = z2_40_0.sqn(10).mul(z2_10_0); // 2⁵⁰ − 1
        let z2_100_0 = z2_50_0.sqn(50).mul(z2_50_0); // 2¹⁰⁰ − 1
        let z2_200_0 = z2_100_0.sqn(100).mul(z2_100_0); // 2²⁰⁰ − 1
        let z2_250_0 = z2_200_0.sqn(50).mul(z2_50_0); // 2²⁵⁰ − 1
        z2_250_0.sqn(5).mul(z11) // 2²⁵⁵ − 21
    }

    /// Constant-time conditional swap: exchanges `a` and `b` iff
    /// `swap == 1`, via a full-width mask — no data-dependent branch.
    pub fn cswap(swap: u64, a: &mut Fe, b: &mut Fe) {
        debug_assert!(swap <= 1, "cswap takes a single bit");
        let mask = swap.wrapping_neg();
        for i in 0..5 {
            let t = mask & (a.0[i] ^ b.0[i]);
            a.0[i] ^= t;
            b.0[i] ^= t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(n: u64) -> Fe {
        Fe([n, 0, 0, 0, 0])
    }

    #[test]
    fn roundtrip_small_values() {
        for n in [0u64, 1, 2, 19, 255, MASK51] {
            let mut b = [0u8; 32];
            b[0..8].copy_from_slice(&n.to_le_bytes());
            assert_eq!(Fe::from_bytes(&b).to_bytes(), b, "n = {n}");
        }
    }

    #[test]
    fn p_canonicalizes_to_zero() {
        // p = 2²⁵⁵ − 19 serialized little-endian.
        let mut p = [0xFF; 32];
        p[0] = 0xED;
        p[31] = 0x7F;
        assert_eq!(Fe::from_bytes(&p).to_bytes(), [0u8; 32]);
        // p + 1 ≡ 1.
        let mut p1 = p;
        p1[0] = 0xEE;
        let mut one = [0u8; 32];
        one[0] = 1;
        assert_eq!(Fe::from_bytes(&p1).to_bytes(), one);
    }

    #[test]
    fn top_bit_is_masked_on_load() {
        // 2²⁵⁵ + 5 loads as 5: bit 255 is ignored per RFC 7748.
        let mut b = [0u8; 32];
        b[0] = 5;
        b[31] = 0x80;
        let mut five = [0u8; 32];
        five[0] = 5;
        assert_eq!(Fe::from_bytes(&b).to_bytes(), five);
    }

    #[test]
    fn field_algebra_holds() {
        let a = fe(0x1234_5678_9ABC);
        let b = fe(0xFEDC_BA98);
        // a − b + b = a
        assert_eq!(a.sub(b).add(b).to_bytes(), a.to_bytes());
        // a · 1 = a, a · 0 = 0
        assert_eq!(a.mul(Fe::ONE).to_bytes(), a.to_bytes());
        assert_eq!(a.mul(Fe::ZERO).to_bytes(), [0u8; 32]);
        // distributivity: a·(b + c) = a·b + a·c
        let c = fe(777);
        assert_eq!(
            a.mul(b.add(c)).to_bytes(),
            a.mul(b).add(a.mul(c)).to_bytes()
        );
        // mul_small agrees with mul
        assert_eq!(
            a.mul_small(121_665).to_bytes(),
            a.mul(fe(121_665)).to_bytes()
        );
    }

    #[test]
    fn inversion_in_the_group() {
        let a = fe(0xDEAD_BEEF);
        let mut one = [0u8; 32];
        one[0] = 1;
        assert_eq!(a.mul(a.invert()).to_bytes(), one);
        // 0⁻¹ = 0 by the Fermat chain — the ladder's low-order escape.
        assert_eq!(Fe::ZERO.invert().to_bytes(), [0u8; 32]);
    }

    #[test]
    fn cswap_swaps_iff_bit_set() {
        let mut a = fe(1);
        let mut b = fe(2);
        Fe::cswap(0, &mut a, &mut b);
        assert_eq!((a.0[0], b.0[0]), (1, 2));
        Fe::cswap(1, &mut a, &mut b);
        assert_eq!((a.0[0], b.0[0]), (2, 1));
    }
}
