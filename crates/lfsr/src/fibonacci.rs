//! Fibonacci (external-XOR) LFSR.

use crate::matrix::Gf2Matrix;
use crate::taps::{primitive_taps, taps_to_mask, validate_taps};
use crate::{mask, LfsrError};

/// A Fibonacci LFSR: the feedback bit is the XOR of the tap bits and is
/// shifted into the least significant position.
///
/// State bits are numbered `0..width`, LSB first; taps use the 1-indexed
/// XAPP052 convention (see [`crate::taps`]).
///
/// This is the exact structure elaborated in hardware by the `mhhea-hw`
/// crate; [`Fibonacci::leap`] performs the multi-step advance that the
/// hardware realises as a combinational leap-forward network (see
/// [`Fibonacci::leap_matrix`]).
///
/// # Examples
///
/// ```
/// use lfsr::Fibonacci;
///
/// let mut l = Fibonacci::from_table(16, 1).unwrap();
/// let first = l.state();
/// let steps: Vec<u64> = (0..5).map(|_| { l.step(); l.state() }).collect();
/// assert!(steps.iter().all(|&s| s != first));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fibonacci {
    width: usize,
    tap_mask: u64,
    state: u64,
}

impl Fibonacci {
    /// Creates an LFSR with explicit 1-indexed taps.
    ///
    /// # Errors
    ///
    /// Returns [`LfsrError::ZeroSeed`] for a zero seed (after masking to
    /// `width` bits), or a tap/width validation error.
    pub fn new(width: usize, taps: &[usize], seed: u64) -> Result<Self, LfsrError> {
        validate_taps(width, taps)?;
        let state = seed & mask(width);
        if state == 0 {
            return Err(LfsrError::ZeroSeed);
        }
        Ok(Fibonacci {
            width,
            tap_mask: taps_to_mask(taps),
            state,
        })
    }

    /// Creates an LFSR using the XAPP052 primitive taps for `width`.
    ///
    /// # Errors
    ///
    /// Returns [`LfsrError::UnsupportedWidth`] if `width` is not tabulated,
    /// or [`LfsrError::ZeroSeed`] for a zero seed.
    pub fn from_table(width: usize, seed: u64) -> Result<Self, LfsrError> {
        Self::new(width, primitive_taps(width)?, seed)
    }

    /// Register width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Current register contents (the hiding vector when `width == 16`).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// The feedback tap positions as a bit mask over state bits.
    pub fn tap_mask(&self) -> u64 {
        self.tap_mask
    }

    /// Advances one step; returns the bit shifted out of the MSB.
    pub fn step(&mut self) -> bool {
        let out = (self.state >> (self.width - 1)) & 1 == 1;
        let fb = ((self.state & self.tap_mask).count_ones() & 1) as u64;
        self.state = ((self.state << 1) | fb) & mask(self.width);
        out
    }

    /// Advances `n` steps.
    pub fn leap(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Returns the GF(2) matrix of a single step.
    ///
    /// Row `i` is the mask of current-state bits whose XOR forms next-state
    /// bit `i`.
    pub fn step_matrix(&self) -> Gf2Matrix {
        let mut rows = vec![0u64; self.width];
        rows[0] = self.tap_mask;
        for (i, row) in rows.iter_mut().enumerate().skip(1) {
            *row = 1u64 << (i - 1);
        }
        Gf2Matrix::from_rows(self.width, rows)
    }

    /// Returns the GF(2) matrix advancing the register `n` steps at once.
    ///
    /// The `mhhea-hw` crate turns each row of this matrix into an XOR tree,
    /// producing the combinational network that advances the hiding-vector
    /// LFSR a full 16 steps per clock.
    pub fn leap_matrix(&self, n: usize) -> Gf2Matrix {
        self.step_matrix().pow(n)
    }

    /// Produces the next `width`-bit hiding vector by leaping `width` steps.
    ///
    /// This matches the hardware contract: one clock ⇒ one fresh vector.
    pub fn next_vector(&mut self) -> u64 {
        self.leap(self.width);
        self.state
    }

    /// Iterates output bits (MSB-out per step).
    pub fn bits(&mut self) -> impl Iterator<Item = bool> + '_ {
        core::iter::repeat_with(move || self.step())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_seed() {
        assert_eq!(Fibonacci::from_table(8, 0), Err(LfsrError::ZeroSeed));
        // Seed masked to width: 0x100 & 0xFF == 0.
        assert_eq!(Fibonacci::from_table(8, 0x100), Err(LfsrError::ZeroSeed));
    }

    #[test]
    fn never_reaches_zero_state() {
        let mut l = Fibonacci::from_table(8, 1).unwrap();
        for _ in 0..300 {
            l.step();
            assert_ne!(l.state(), 0);
        }
    }

    #[test]
    fn step_shifts_left_and_inserts_feedback() {
        // width 3, taps [3, 2]: fb = bit2 ^ bit1.
        let mut l = Fibonacci::new(3, &[3, 2], 0b100).unwrap();
        let out = l.step();
        assert!(out); // MSB was 1
        assert_eq!(l.state(), 0b001); // fb = 1 ^ 0 = 1
    }

    #[test]
    fn width3_sequence_is_maximal() {
        let mut l = Fibonacci::from_table(3, 1).unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..7 {
            seen.insert(l.state());
            l.step();
        }
        assert_eq!(seen.len(), 7);
        assert_eq!(l.state(), 1); // back to seed after 2^3-1 steps
    }

    #[test]
    fn leap_equals_repeated_steps() {
        let mut a = Fibonacci::from_table(16, 0xBEEF).unwrap();
        let mut b = a.clone();
        a.leap(37);
        for _ in 0..37 {
            b.step();
        }
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn leap_matrix_matches_leap() {
        let l = Fibonacci::from_table(16, 0xACE1).unwrap();
        let m = l.leap_matrix(16);
        let mut stepped = l.clone();
        stepped.leap(16);
        assert_eq!(m.apply(l.state()), stepped.state());
    }

    #[test]
    fn next_vector_changes_state() {
        let mut l = Fibonacci::from_table(16, 0xACE1).unwrap();
        let a = l.next_vector();
        let b = l.next_vector();
        assert_ne!(a, b);
        assert_ne!(a, 0);
    }

    #[test]
    fn width64_runs() {
        let mut l = Fibonacci::from_table(64, 0xDEAD_BEEF_CAFE_F00D).unwrap();
        let before = l.state();
        l.leap(64);
        assert_ne!(l.state(), before);
    }

    #[test]
    fn bits_iterator_streams() {
        let mut l = Fibonacci::from_table(8, 0x5A).unwrap();
        let n: usize = l.bits().take(100).filter(|&b| b).count();
        assert!(n > 20 && n < 80, "ones count {n} wildly unbalanced");
    }
}
