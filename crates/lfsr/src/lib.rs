//! Linear feedback shift registers for the MHHEA hiding-vector generator.
//!
//! The paper's random-number-generator module is "designed using Linear
//! Feedback Shift Register (LFSR) with primitive feedback polynomial to
//! ensure a maximal-length sequence". This crate provides:
//!
//! * [`Fibonacci`] and [`Galois`] LFSRs of width 2–64 bits,
//! * the classic XAPP052 primitive-tap table ([`taps::primitive_taps`]),
//! * GF(2) transition matrices ([`matrix::Gf2Matrix`]) used both for
//!   leap-forward software stepping and for elaborating the combinational
//!   leap network in the hardware model,
//! * period measurement and maximal-length verification ([`period`]),
//! * a FIPS-140-1-style randomness battery ([`randomness`]).
//!
//! # Examples
//!
//! ```
//! use lfsr::Fibonacci;
//!
//! // The 16-bit hiding-vector generator of the MHHEA core.
//! let mut rng = Fibonacci::from_table(16, 0xACE1).unwrap();
//! let v0 = rng.state();
//! rng.leap(16); // one hardware clock advances the LFSR 16 steps
//! assert_ne!(rng.state(), v0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fibonacci;
mod galois;
pub mod matrix;
pub mod period;
pub mod randomness;
pub mod taps;

pub use fibonacci::Fibonacci;
pub use galois::Galois;

/// Errors produced when constructing or running an LFSR.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LfsrError {
    /// Requested register width is outside the supported 2..=64 range, or
    /// has no entry in the primitive-tap table.
    UnsupportedWidth(usize),
    /// The all-zero state is a fixed point of an XOR-feedback LFSR and is
    /// rejected as a seed.
    ZeroSeed,
    /// A tap position was zero or larger than the register width.
    InvalidTap {
        /// Offending tap position (1-indexed).
        tap: usize,
        /// Register width.
        width: usize,
    },
}

impl core::fmt::Display for LfsrError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LfsrError::UnsupportedWidth(w) => write!(f, "unsupported LFSR width {w}"),
            LfsrError::ZeroSeed => write!(f, "all-zero seed is a fixed point of an XOR LFSR"),
            LfsrError::InvalidTap { tap, width } => {
                write!(f, "tap {tap} invalid for width {width}")
            }
        }
    }
}

impl std::error::Error for LfsrError {}

/// Masks a value to `width` low bits.
pub(crate) fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}
