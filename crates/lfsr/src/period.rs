//! Period measurement and maximal-length verification.
//!
//! A primitive feedback polynomial guarantees the LFSR walks all `2^w − 1`
//! nonzero states before repeating. These helpers verify that claim — the
//! paper relies on it for the quality of the hiding vector.

use crate::{Fibonacci, LfsrError};

/// Measures the period of `lfsr` from its current state, giving up after
/// `limit` steps.
///
/// Returns `None` if the state does not recur within `limit` steps.
pub fn period_of(lfsr: &mut Fibonacci, limit: u64) -> Option<u64> {
    let seed = lfsr.state();
    for n in 1..=limit {
        lfsr.step();
        if lfsr.state() == seed {
            return Some(n);
        }
    }
    None
}

/// Verifies that the tabulated taps for `width` generate a maximal-length
/// sequence (`period == 2^width − 1`).
///
/// Cost is `O(2^width)`; keep `width ≤ 24` in tests.
///
/// # Errors
///
/// Propagates construction errors for untabulated widths.
///
/// ```
/// assert!(lfsr::period::is_maximal_length(10).unwrap());
/// ```
pub fn is_maximal_length(width: usize) -> Result<bool, LfsrError> {
    let mut l = Fibonacci::from_table(width, 1)?;
    let expected = (1u64 << width) - 1;
    Ok(period_of(&mut l, expected + 1) == Some(expected))
}

/// Counts distinct states visited in `steps` steps (diagnostic).
pub fn distinct_states(lfsr: &mut Fibonacci, steps: usize) -> usize {
    let mut seen = std::collections::HashSet::with_capacity(steps);
    seen.insert(lfsr.state());
    for _ in 0..steps {
        lfsr.step();
        seen.insert(lfsr.state());
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_widths_are_maximal() {
        for w in [2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12] {
            assert!(is_maximal_length(w).unwrap(), "width {w} not maximal");
        }
    }

    #[test]
    fn width16_is_maximal() {
        // The exact generator used for the MHHEA hiding vector.
        assert!(is_maximal_length(16).unwrap());
    }

    #[test]
    fn period_respects_limit() {
        let mut l = Fibonacci::from_table(16, 0xACE1).unwrap();
        assert_eq!(period_of(&mut l, 10), None);
    }

    #[test]
    fn period_independent_of_seed() {
        for seed in [1u64, 0x7F, 0xFF] {
            let mut l = Fibonacci::from_table(8, seed).unwrap();
            assert_eq!(period_of(&mut l, 300), Some(255), "seed {seed}");
        }
    }

    #[test]
    fn distinct_states_saturates_at_period() {
        let mut l = Fibonacci::from_table(4, 1).unwrap();
        assert_eq!(distinct_states(&mut l, 100), 15);
    }
}
