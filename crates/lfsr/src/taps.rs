//! Primitive feedback-tap table (Xilinx application note XAPP052).
//!
//! Tap positions are 1-indexed from the least significant bit, so an entry
//! `[16, 15, 13, 4]` denotes the primitive polynomial
//! `x^16 + x^15 + x^13 + x^4 + 1`. Every entry yields a maximal-length
//! sequence of `2^w − 1` states; [`crate::period::is_maximal_length`]
//! verifies this exhaustively for small widths in the test suite.

use crate::LfsrError;

/// XAPP052 primitive taps for widths 2..=32 plus selected wider registers.
const TABLE: &[(usize, &[usize])] = &[
    (2, &[2, 1]),
    (3, &[3, 2]),
    (4, &[4, 3]),
    (5, &[5, 3]),
    (6, &[6, 5]),
    (7, &[7, 6]),
    (8, &[8, 6, 5, 4]),
    (9, &[9, 5]),
    (10, &[10, 7]),
    (11, &[11, 9]),
    (12, &[12, 6, 4, 1]),
    (13, &[13, 4, 3, 1]),
    (14, &[14, 5, 3, 1]),
    (15, &[15, 14]),
    (16, &[16, 15, 13, 4]),
    (17, &[17, 14]),
    (18, &[18, 11]),
    (19, &[19, 6, 2, 1]),
    (20, &[20, 17]),
    (21, &[21, 19]),
    (22, &[22, 21]),
    (23, &[23, 18]),
    (24, &[24, 23, 22, 17]),
    (25, &[25, 22]),
    (26, &[26, 6, 2, 1]),
    (27, &[27, 5, 2, 1]),
    (28, &[28, 25]),
    (29, &[29, 27]),
    (30, &[30, 6, 4, 1]),
    (31, &[31, 28]),
    (32, &[32, 22, 2, 1]),
    (40, &[40, 38, 21, 19]),
    (48, &[48, 47, 21, 20]),
    (64, &[64, 63, 61, 60]),
];

/// Returns the primitive taps for `width`, if tabulated.
///
/// # Errors
///
/// Returns [`LfsrError::UnsupportedWidth`] when `width` has no table entry.
///
/// ```
/// assert_eq!(lfsr::taps::primitive_taps(16).unwrap(), &[16, 15, 13, 4]);
/// assert!(lfsr::taps::primitive_taps(33).is_err());
/// ```
pub fn primitive_taps(width: usize) -> Result<&'static [usize], LfsrError> {
    TABLE
        .iter()
        .find(|(w, _)| *w == width)
        .map(|(_, t)| *t)
        .ok_or(LfsrError::UnsupportedWidth(width))
}

/// All tabulated widths, ascending.
pub fn tabulated_widths() -> impl Iterator<Item = usize> {
    TABLE.iter().map(|(w, _)| *w)
}

/// Validates a custom tap set against a register width.
///
/// # Errors
///
/// Returns [`LfsrError::InvalidTap`] for taps of zero or above `width`, and
/// [`LfsrError::UnsupportedWidth`] for empty tap sets or widths outside
/// 2..=64.
pub fn validate_taps(width: usize, taps: &[usize]) -> Result<(), LfsrError> {
    if !(2..=64).contains(&width) || taps.is_empty() {
        return Err(LfsrError::UnsupportedWidth(width));
    }
    for &tap in taps {
        if tap == 0 || tap > width {
            return Err(LfsrError::InvalidTap { tap, width });
        }
    }
    Ok(())
}

/// Converts 1-indexed taps into a bit mask over register bits `0..width`.
pub fn taps_to_mask(taps: &[usize]) -> u64 {
    taps.iter().fold(0u64, |m, &t| m | (1u64 << (t - 1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lookup_known_entries() {
        assert_eq!(primitive_taps(3).unwrap(), &[3, 2]);
        assert_eq!(primitive_taps(16).unwrap(), &[16, 15, 13, 4]);
        assert_eq!(primitive_taps(32).unwrap(), &[32, 22, 2, 1]);
    }

    #[test]
    fn missing_width_is_error() {
        assert_eq!(primitive_taps(33), Err(LfsrError::UnsupportedWidth(33)));
        assert_eq!(primitive_taps(1), Err(LfsrError::UnsupportedWidth(1)));
        assert_eq!(primitive_taps(0), Err(LfsrError::UnsupportedWidth(0)));
    }

    #[test]
    fn every_entry_validates() {
        for w in tabulated_widths() {
            let taps = primitive_taps(w).unwrap();
            validate_taps(w, taps).unwrap();
            // The highest tap must equal the width for a degree-w polynomial.
            assert_eq!(*taps.iter().max().unwrap(), w, "width {w}");
        }
    }

    #[test]
    fn validate_rejects_bad_taps() {
        assert_eq!(
            validate_taps(8, &[9]),
            Err(LfsrError::InvalidTap { tap: 9, width: 8 })
        );
        assert_eq!(
            validate_taps(8, &[0]),
            Err(LfsrError::InvalidTap { tap: 0, width: 8 })
        );
        assert_eq!(validate_taps(8, &[]), Err(LfsrError::UnsupportedWidth(8)));
        assert_eq!(
            validate_taps(65, &[1]),
            Err(LfsrError::UnsupportedWidth(65))
        );
    }

    #[test]
    fn mask_conversion() {
        assert_eq!(taps_to_mask(&[16, 15, 13, 4]), 0b1101_0000_0000_1000);
        assert_eq!(taps_to_mask(&[1]), 1);
        assert_eq!(taps_to_mask(&[64]), 1 << 63);
    }
}
