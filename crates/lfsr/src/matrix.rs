//! Square GF(2) matrices up to 64×64, used for leap-forward LFSR stepping.
//!
//! Each row is stored as a `u64` bit mask: row `i` lists the input bits
//! whose XOR produces output bit `i`. Matrix multiplication is boolean
//! (AND/XOR), so powers of the one-step LFSR transition give multi-step
//! "leap" networks — exactly the structure synthesised into XOR trees by the
//! hardware model.

use crate::mask;

/// A dense GF(2) matrix of dimension `width ≤ 64`.
///
/// # Examples
///
/// ```
/// use lfsr::matrix::Gf2Matrix;
///
/// let id = Gf2Matrix::identity(4);
/// assert_eq!(id.apply(0b1011), 0b1011);
/// assert_eq!(id.pow(10), id);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gf2Matrix {
    width: usize,
    rows: Vec<u64>,
}

impl Gf2Matrix {
    /// Builds a matrix from per-output-bit input masks.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != width`, `width` is 0 or exceeds 64, or a row
    /// uses bits outside `0..width`.
    pub fn from_rows(width: usize, rows: Vec<u64>) -> Self {
        assert!((1..=64).contains(&width), "width {width} out of range");
        assert_eq!(rows.len(), width, "row count must equal width");
        for (i, &r) in rows.iter().enumerate() {
            assert_eq!(r & !mask(width), 0, "row {i} uses bits beyond width");
        }
        Gf2Matrix { width, rows }
    }

    /// The identity transformation.
    pub fn identity(width: usize) -> Self {
        Gf2Matrix::from_rows(width, (0..width).map(|i| 1u64 << i).collect())
    }

    /// Matrix dimension.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Row `i`: the mask of input bits feeding output bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn row(&self, i: usize) -> u64 {
        self.rows[i]
    }

    /// Applies the transformation to a state vector.
    pub fn apply(&self, state: u64) -> u64 {
        let state = state & mask(self.width);
        let mut out = 0u64;
        for (i, &row) in self.rows.iter().enumerate() {
            let bit = ((state & row).count_ones() & 1) as u64;
            out |= bit << i;
        }
        out
    }

    /// Returns `self ∘ other`: apply `other` first, then `self`.
    #[must_use]
    pub fn compose(&self, other: &Gf2Matrix) -> Gf2Matrix {
        assert_eq!(self.width, other.width, "dimension mismatch");
        let rows = self
            .rows
            .iter()
            .map(|&arow| {
                let mut r = 0u64;
                for j in 0..self.width {
                    if (arow >> j) & 1 == 1 {
                        r ^= other.rows[j];
                    }
                }
                r
            })
            .collect();
        Gf2Matrix::from_rows(self.width, rows)
    }

    /// Computes `self^n` by square-and-multiply; `pow(0)` is the identity.
    #[must_use]
    pub fn pow(&self, mut n: usize) -> Gf2Matrix {
        let mut result = Gf2Matrix::identity(self.width);
        let mut base = self.clone();
        while n > 0 {
            if n & 1 == 1 {
                result = base.compose(&result);
            }
            base = base.compose(&base.clone());
            n >>= 1;
        }
        result
    }

    /// Total number of ones (XOR-network input count — a hardware cost
    /// proxy used by area estimation).
    pub fn popcount(&self) -> usize {
        self.rows.iter().map(|r| r.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_applies_and_composes() {
        let id = Gf2Matrix::identity(8);
        assert_eq!(id.apply(0xA5), 0xA5);
        assert_eq!(id.compose(&id), id);
    }

    #[test]
    fn apply_masks_input() {
        let id = Gf2Matrix::identity(4);
        assert_eq!(id.apply(0xFF), 0x0F);
    }

    #[test]
    fn compose_order_matters() {
        // A: swap bits 0 and 1. B: bit0 ^= bit2 (bit0 = bit0 xor bit2).
        let a = Gf2Matrix::from_rows(3, vec![0b010, 0b001, 0b100]);
        let b = Gf2Matrix::from_rows(3, vec![0b101, 0b010, 0b100]);
        let ab = a.compose(&b); // b first, then a
        let ba = b.compose(&a); // a first, then b
        assert_ne!(ab, ba);
        // apply manually: state 0b100. b: bit0 = 1^0... state->0b101. a: swap -> 0b110.
        assert_eq!(ab.apply(0b100), 0b110);
        // a first: 0b100 -> swap -> 0b100 ; b: bit0 ^= bit2 -> 0b101.
        assert_eq!(ba.apply(0b100), 0b101);
    }

    #[test]
    fn pow_matches_repeated_compose() {
        let m = Gf2Matrix::from_rows(3, vec![0b110, 0b001, 0b010]);
        let m3 = m.compose(&m.compose(&m));
        assert_eq!(m.pow(3), m3);
        assert_eq!(m.pow(0), Gf2Matrix::identity(3));
        assert_eq!(m.pow(1), m);
    }

    #[test]
    fn pow_apply_matches_iterated_apply() {
        let m = Gf2Matrix::from_rows(4, vec![0b1001, 0b0001, 0b0010, 0b0100]);
        let mut s = 0b0110u64;
        for _ in 0..11 {
            s = m.apply(s);
        }
        assert_eq!(m.pow(11).apply(0b0110), s);
    }

    #[test]
    #[should_panic(expected = "row count")]
    fn wrong_row_count_panics() {
        Gf2Matrix::from_rows(3, vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "beyond width")]
    fn row_beyond_width_panics() {
        Gf2Matrix::from_rows(3, vec![0b1000, 0, 0]);
    }

    #[test]
    fn popcount_counts_all_ones() {
        let m = Gf2Matrix::from_rows(3, vec![0b111, 0b010, 0b000]);
        assert_eq!(m.popcount(), 4);
    }
}
