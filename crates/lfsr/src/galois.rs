//! Galois (internal-XOR) LFSR.

use crate::taps::{primitive_taps, taps_to_mask, validate_taps};
use crate::{mask, LfsrError};

/// A Galois LFSR: when the output bit is 1, the tap mask is XORed into the
/// shifted state.
///
/// Produces the same maximal-length cycle structure as the Fibonacci form
/// with the same primitive polynomial (the state sequences are different but
/// both have period `2^w − 1`). The Galois form needs only one XOR level per
/// step, which is why serial hardware often prefers it; the suite uses it as
/// an independent cross-check on the [`crate::Fibonacci`] implementation.
///
/// # Examples
///
/// ```
/// use lfsr::Galois;
///
/// let mut g = Galois::from_table(16, 0xACE1).unwrap();
/// g.step();
/// assert_ne!(g.state(), 0xACE1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Galois {
    width: usize,
    tap_mask: u64,
    state: u64,
}

impl Galois {
    /// Creates a Galois LFSR with explicit 1-indexed taps.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::Fibonacci::new`].
    pub fn new(width: usize, taps: &[usize], seed: u64) -> Result<Self, LfsrError> {
        validate_taps(width, taps)?;
        let state = seed & mask(width);
        if state == 0 {
            return Err(LfsrError::ZeroSeed);
        }
        Ok(Galois {
            width,
            tap_mask: taps_to_mask(taps),
            state,
        })
    }

    /// Creates a Galois LFSR from the XAPP052 table.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::Fibonacci::from_table`].
    pub fn from_table(width: usize, seed: u64) -> Result<Self, LfsrError> {
        Self::new(width, primitive_taps(width)?, seed)
    }

    /// Register width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Current register contents.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Advances one step; returns the bit shifted out (LSB).
    pub fn step(&mut self) -> bool {
        let out = self.state & 1 == 1;
        self.state >>= 1;
        if out {
            // In the right-shift LSB-out Galois form, polynomial exponent t
            // toggles state bit t-1, which is exactly `taps_to_mask`.
            self.state ^= self.tap_mask;
        }
        out
    }

    /// Advances `n` steps.
    pub fn leap(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_seed() {
        assert_eq!(Galois::from_table(8, 0), Err(LfsrError::ZeroSeed));
    }

    #[test]
    fn never_zero_state() {
        let mut g = Galois::from_table(8, 0xA5).unwrap();
        for _ in 0..1000 {
            g.step();
            assert_ne!(g.state(), 0);
        }
    }

    #[test]
    fn maximal_period_small_width() {
        // width 4 => period 15.
        let mut g = Galois::from_table(4, 0b1000).unwrap();
        let seed = g.state();
        let mut period = 0usize;
        loop {
            g.step();
            period += 1;
            if g.state() == seed || period > 16 {
                break;
            }
        }
        assert_eq!(period, 15);
    }

    #[test]
    fn galois_and_fibonacci_have_same_period_w8() {
        let count_period = |mut f: Box<dyn FnMut() -> u64>, seed: u64| -> usize {
            let mut n = 0;
            loop {
                let s = f();
                n += 1;
                if s == seed || n > 300 {
                    return n;
                }
            }
        };
        let mut g = Galois::from_table(8, 1).unwrap();
        let gseed = g.state();
        let gp = count_period(
            Box::new(move || {
                g.step();
                g.state()
            }),
            gseed,
        );
        let mut f = crate::Fibonacci::from_table(8, 1).unwrap();
        let fseed = f.state();
        let fp = count_period(
            Box::new(move || {
                f.step();
                f.state()
            }),
            fseed,
        );
        assert_eq!(gp, 255);
        assert_eq!(fp, 255);
    }
}
