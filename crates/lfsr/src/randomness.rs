//! FIPS-140-1-style statistical battery for bit streams.
//!
//! The paper claims the LFSR-driven hiding vector makes the ciphertext "as
//! scrambled as possible"; these tests quantify that claim for the
//! randomness experiments in the analysis crate. The bounds are the classic
//! FIPS 140-1 single-stream limits over exactly 20 000 bits, plus a simple
//! autocorrelation check.

/// Number of bits consumed by the battery.
pub const BATTERY_BITS: usize = 20_000;

/// Outcome of a single statistical test.
#[derive(Debug, Clone, PartialEq)]
pub struct TestOutcome {
    /// Test name.
    pub name: &'static str,
    /// Measured statistic (interpretation depends on the test).
    pub statistic: f64,
    /// Whether the statistic fell inside the acceptance region.
    pub pass: bool,
}

/// Results of the full battery.
#[derive(Debug, Clone, PartialEq)]
pub struct BatteryReport {
    /// Individual test outcomes.
    pub outcomes: Vec<TestOutcome>,
}

impl BatteryReport {
    /// `true` when every test passed.
    pub fn all_pass(&self) -> bool {
        self.outcomes.iter().all(|o| o.pass)
    }

    /// Looks up one outcome by test name.
    pub fn outcome(&self, name: &str) -> Option<&TestOutcome> {
        self.outcomes.iter().find(|o| o.name == name)
    }
}

impl core::fmt::Display for BatteryReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for o in &self.outcomes {
            writeln!(
                f,
                "{:<16} {:>12.3}  {}",
                o.name,
                o.statistic,
                if o.pass { "PASS" } else { "FAIL" }
            )?;
        }
        Ok(())
    }
}

/// Error returned when fewer than [`BATTERY_BITS`] bits are supplied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotEnoughBits {
    /// Number of bits actually supplied.
    pub got: usize,
}

impl core::fmt::Display for NotEnoughBits {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "battery needs {BATTERY_BITS} bits, got {}", self.got)
    }
}

impl std::error::Error for NotEnoughBits {}

/// Runs the battery over the first [`BATTERY_BITS`] bits of `bits`.
///
/// # Errors
///
/// Returns [`NotEnoughBits`] when the stream is too short.
///
/// ```
/// use lfsr::{randomness, Fibonacci};
///
/// let mut l = Fibonacci::from_table(16, 0xACE1).unwrap();
/// let bits: Vec<bool> = (0..randomness::BATTERY_BITS).map(|_| l.step()).collect();
/// let report = randomness::fips_battery(&bits).unwrap();
/// assert!(report.all_pass());
/// ```
pub fn fips_battery(bits: &[bool]) -> Result<BatteryReport, NotEnoughBits> {
    if bits.len() < BATTERY_BITS {
        return Err(NotEnoughBits { got: bits.len() });
    }
    let bits = &bits[..BATTERY_BITS];
    let outcomes = vec![
        monobit(bits),
        poker(bits),
        runs(bits),
        long_run(bits),
        autocorrelation(bits, 8),
    ];
    Ok(BatteryReport { outcomes })
}

/// Monobit test: number of ones must lie in (9725, 10275).
fn monobit(bits: &[bool]) -> TestOutcome {
    let ones = bits.iter().filter(|&&b| b).count();
    TestOutcome {
        name: "monobit",
        statistic: ones as f64,
        pass: (9725..=10275).contains(&ones),
    }
}

/// Poker test over 5000 4-bit segments: 2.16 < X < 46.17.
fn poker(bits: &[bool]) -> TestOutcome {
    let mut freq = [0u32; 16];
    for chunk in bits.chunks_exact(4) {
        let idx = chunk
            .iter()
            .enumerate()
            .fold(0usize, |acc, (i, &b)| acc | ((b as usize) << i));
        freq[idx] += 1;
    }
    let sum_sq: f64 = freq.iter().map(|&f| (f as f64) * (f as f64)).sum();
    let x = (16.0 / 5000.0) * sum_sq - 5000.0;
    TestOutcome {
        name: "poker",
        statistic: x,
        pass: x > 2.16 && x < 46.17,
    }
}

/// Runs test: counts of runs of each length 1..=6+ must be within the FIPS
/// intervals for both zeros and ones.
fn runs(bits: &[bool]) -> TestOutcome {
    const BOUNDS: [(usize, usize); 6] = [
        (2315, 2685),
        (1114, 1386),
        (527, 723),
        (240, 384),
        (103, 209),
        (103, 209),
    ];
    let mut counts = [[0usize; 6]; 2]; // [value][len-1 capped at 6]
    let mut i = 0;
    while i < bits.len() {
        let v = bits[i];
        let mut len = 1;
        while i + len < bits.len() && bits[i + len] == v {
            len += 1;
        }
        counts[v as usize][len.min(6) - 1] += 1;
        i += len;
    }
    let mut pass = true;
    let mut worst: f64 = 0.0;
    for value_counts in &counts {
        for (len, &(lo, hi)) in BOUNDS.iter().enumerate() {
            let c = value_counts[len];
            if !(lo..=hi).contains(&c) {
                pass = false;
            }
            let mid = (lo + hi) as f64 / 2.0;
            let dev = ((c as f64) - mid).abs() / ((hi - lo) as f64 / 2.0);
            worst = worst.max(dev);
        }
    }
    TestOutcome {
        name: "runs",
        statistic: worst,
        pass,
    }
}

/// Long-run test: no run of 34 or more identical bits.
fn long_run(bits: &[bool]) -> TestOutcome {
    let mut longest = 0usize;
    let mut current = 0usize;
    let mut prev: Option<bool> = None;
    for &b in bits {
        if Some(b) == prev {
            current += 1;
        } else {
            current = 1;
            prev = Some(b);
        }
        longest = longest.max(current);
    }
    TestOutcome {
        name: "long_run",
        statistic: longest as f64,
        pass: longest < 34,
    }
}

/// Autocorrelation at shift `d`: |z| < 4 where z is the normal approximation
/// of matches between the stream and its shift.
fn autocorrelation(bits: &[bool], d: usize) -> TestOutcome {
    let n = bits.len() - d;
    let matches = (0..n).filter(|&i| bits[i] == bits[i + d]).count();
    let z = (matches as f64 - n as f64 / 2.0) / ((n as f64) / 4.0).sqrt();
    TestOutcome {
        name: "autocorrelation",
        statistic: z,
        pass: z.abs() < 4.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fibonacci;

    fn lfsr_bits(n: usize) -> Vec<bool> {
        let mut l = Fibonacci::from_table(16, 0xACE1).unwrap();
        (0..n).map(|_| l.step()).collect()
    }

    #[test]
    fn lfsr16_passes_battery() {
        let report = fips_battery(&lfsr_bits(BATTERY_BITS)).unwrap();
        assert!(report.all_pass(), "\n{report}");
    }

    #[test]
    fn constant_stream_fails_everything_it_should() {
        let bits = vec![true; BATTERY_BITS];
        let report = fips_battery(&bits).unwrap();
        assert!(!report.all_pass());
        assert!(!report.outcome("monobit").unwrap().pass);
        assert!(!report.outcome("long_run").unwrap().pass);
    }

    #[test]
    fn alternating_stream_fails_runs() {
        let bits: Vec<bool> = (0..BATTERY_BITS).map(|i| i % 2 == 0).collect();
        let report = fips_battery(&bits).unwrap();
        // Monobit is perfectly balanced but the runs histogram is degenerate.
        assert!(report.outcome("monobit").unwrap().pass);
        assert!(!report.outcome("runs").unwrap().pass);
    }

    #[test]
    fn short_stream_is_rejected() {
        assert_eq!(fips_battery(&[false; 100]), Err(NotEnoughBits { got: 100 }));
    }

    #[test]
    fn report_display_lists_every_test() {
        let report = fips_battery(&lfsr_bits(BATTERY_BITS)).unwrap();
        let text = report.to_string();
        for name in ["monobit", "poker", "runs", "long_run", "autocorrelation"] {
            assert!(text.contains(name), "missing {name} in\n{text}");
        }
    }
}
