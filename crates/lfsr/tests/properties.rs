//! Property tests for LFSR invariants.

use lfsr::matrix::Gf2Matrix;
use lfsr::{taps, Fibonacci};
use proptest::prelude::*;

proptest! {
    #[test]
    fn state_never_zero(width in 2usize..=16, seed in 1u64..u64::MAX, steps in 1usize..500) {
        if taps::primitive_taps(width).is_ok() {
            let masked = seed & ((1u64 << width) - 1);
            prop_assume!(masked != 0);
            let mut l = Fibonacci::from_table(width, masked).unwrap();
            for _ in 0..steps {
                l.step();
                prop_assert_ne!(l.state(), 0);
            }
        }
    }

    #[test]
    fn leap_matrix_equals_stepping(seed in 1u64..=0xFFFF, n in 0usize..60) {
        let l = Fibonacci::from_table(16, seed).unwrap();
        let m = l.leap_matrix(n);
        let mut stepped = l.clone();
        stepped.leap(n);
        prop_assert_eq!(m.apply(l.state()), stepped.state());
    }

    #[test]
    fn matrix_pow_additive(a in 0usize..20, b in 0usize..20) {
        let l = Fibonacci::from_table(12, 1).unwrap();
        let m = l.step_matrix();
        prop_assert_eq!(m.pow(a).compose(&m.pow(b)), m.pow(a + b));
    }

    #[test]
    fn step_is_linear(s1 in 1u64..=0xFFFF, s2 in 1u64..=0xFFFF) {
        // LFSR transition is linear over GF(2): T(a ^ b) = T(a) ^ T(b).
        let l = Fibonacci::from_table(16, 1).unwrap();
        let m = l.step_matrix();
        prop_assert_eq!(m.apply(s1 ^ s2), m.apply(s1) ^ m.apply(s2));
    }

    #[test]
    fn identity_is_pow_zero(width in 2usize..=16) {
        if taps::primitive_taps(width).is_ok() {
            let l = Fibonacci::from_table(width, 1).unwrap();
            prop_assert_eq!(l.step_matrix().pow(0), Gf2Matrix::identity(width));
        }
    }

    #[test]
    fn next_vector_deterministic(seed in 1u64..=0xFFFF) {
        let mut a = Fibonacci::from_table(16, seed).unwrap();
        let mut b = Fibonacci::from_table(16, seed).unwrap();
        for _ in 0..8 {
            prop_assert_eq!(a.next_vector(), b.next_vector());
        }
    }
}
