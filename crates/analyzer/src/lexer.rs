//! A string/char/comment-aware token scanner for Rust source.
//!
//! This is deliberately *not* a parser: the lints in this crate work on
//! token shapes (`ident . lock (`, `let _ =`, `as u8`, …), so all the
//! lexer has to get right is the part where naive `grep` goes wrong —
//! string literals, char literals vs. lifetimes, raw strings, and
//! (nested) block comments. Everything else is a flat token stream with
//! line/column positions.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `registry`, `_`).
    Ident,
    /// Integer or float literal, including suffixes (`1`, `0xFF`, `1_000u64`).
    Number,
    /// Single punctuation character (`.`, `{`, `<`). Multi-char operators
    /// arrive as adjacent single-char tokens; lints that care (the const
    /// expression evaluator's `<<`) merge them by position.
    Punct,
    /// String, raw string, byte string, or char literal — content opaque.
    Literal,
    /// `// …` line comment (including doc comments), text preserved.
    LineComment,
    /// `/* … */` block comment, text preserved.
    BlockComment,
}

/// One lexeme with its position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexeme kind.
    pub kind: TokenKind,
    /// The raw source text of the token.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True for comment tokens (which most lints skip over).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `src` into a flat token stream. Unterminated literals or
/// comments are tolerated (the remainder becomes one token): the lints
/// must degrade gracefully on code rustc itself would reject.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (start, line, col) = (self.pos, self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => {
                    while let Some(c) = self.peek(0) {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                    self.push(TokenKind::LineComment, start, line, col);
                }
                '/' if self.peek(1) == Some('*') => {
                    self.bump();
                    self.bump();
                    let mut depth = 1u32;
                    while depth > 0 {
                        match (self.peek(0), self.peek(1)) {
                            (Some('/'), Some('*')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => break,
                        }
                    }
                    self.push(TokenKind::BlockComment, start, line, col);
                }
                '"' => {
                    self.string_literal();
                    self.push(TokenKind::Literal, start, line, col);
                }
                'r' | 'b' if self.starts_raw_or_byte() => {
                    self.raw_or_byte_literal();
                    self.push(TokenKind::Literal, start, line, col);
                }
                '\'' => {
                    if self.char_literal() {
                        self.push(TokenKind::Literal, start, line, col);
                    } else {
                        self.push(TokenKind::Ident, start, line, col); // lifetime
                    }
                }
                c if c.is_alphabetic() || c == '_' => {
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokenKind::Ident, start, line, col);
                }
                c if c.is_ascii_digit() => {
                    self.number();
                    self.push(TokenKind::Number, start, line, col);
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }

    /// True when the `r`/`b` at the cursor begins a raw/byte literal
    /// (`r"`, `r#`, `b"`, `b'`, `br`, `rb` is not a thing) rather than
    /// an identifier.
    fn starts_raw_or_byte(&self) -> bool {
        matches!(
            (self.peek(0), self.peek(1), self.peek(2)),
            (Some('r'), Some('"'), _)
                | (Some('r'), Some('#'), _)
                | (Some('b'), Some('"'), _)
                | (Some('b'), Some('\''), _)
                | (Some('b'), Some('r'), Some('"'))
                | (Some('b'), Some('r'), Some('#'))
        )
    }

    /// Consumes a `"…"` string starting at the opening quote.
    fn string_literal(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Consumes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, or `b'…'`.
    fn raw_or_byte_literal(&mut self) {
        let mut raw = false;
        while let Some(c) = self.peek(0) {
            match c {
                'r' => {
                    raw = true;
                    self.bump();
                }
                'b' => {
                    self.bump();
                }
                _ => break,
            }
        }
        if self.peek(0) == Some('\'') {
            self.bump();
            if self.peek(0) == Some('\\') {
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
            if self.peek(0) == Some('\'') {
                self.bump();
            }
            return;
        }
        let mut hashes = 0usize;
        while raw && self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some('"') {
            return; // `r#` in attribute-like position; lex loosely
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '\\' && !raw {
                self.bump();
                continue;
            }
            if c == '"' {
                for ahead in 0..hashes {
                    if self.peek(ahead) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
    }

    /// At a `'`: consumes a char literal and returns true, or consumes a
    /// lifetime/label and returns false.
    fn char_literal(&mut self) -> bool {
        // Lookahead decides: '\…' or 'x' followed by a closing quote is a
        // char literal; 'ident not followed by ' is a lifetime.
        if self.peek(1) == Some('\\') {
            self.bump(); // '
            self.bump(); // \
            self.bump(); // escape head
            while let Some(c) = self.peek(0) {
                self.bump();
                if c == '\'' {
                    break;
                }
            }
            return true;
        }
        let mut ahead = 1usize;
        while let Some(c) = self.peek(ahead) {
            if c.is_alphanumeric() || c == '_' {
                ahead += 1;
            } else {
                break;
            }
        }
        if ahead == 2 && self.peek(2) == Some('\'') {
            self.bump();
            self.bump();
            self.bump();
            return true;
        }
        // Lifetime or label: consume ' plus the identifier.
        self.bump();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        false
    }

    /// Consumes a numeric literal (ints, floats, hex/oct/bin, suffixes).
    fn number(&mut self) {
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else if c == '.' {
                // `1.5` continues the number; `1..n` and `1.method()` do not.
                match self.peek(1) {
                    Some(d) if d.is_ascii_digit() => {
                        self.bump();
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_hide_tokens() {
        let toks = kinds(r#"let s = "a.unwrap() // not a comment";"#);
        assert!(toks.iter().all(|(_, t)| t != "unwrap"));
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Literal)
                .count(),
            1
        );
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = kinds(r##"let s = r#"quote " inside"#; x"##);
        assert!(toks.iter().any(|(_, t)| t == "x"));
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Literal)
                .count(),
            1
        );
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("fn f<'a>(x: &'a u8) { let c = 'x'; let q = '\\n'; }");
        let lits = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Literal)
            .count();
        assert_eq!(lits, 2);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "'a"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still outer */ real");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].1, "real");
    }

    #[test]
    fn comments_preserved_with_text() {
        let toks = lex("// lock-order: registry < mux_shard\nx");
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert!(toks[0].text.contains("lock-order"));
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
