//! CLI for the workspace analyzer.
//!
//! ```text
//! cargo run -p mhhea-analyzer -- check [--root DIR] [--baseline FILE]
//! cargo run -p mhhea-analyzer -- bless [--root DIR] [--baseline FILE]
//! ```
//!
//! `check` exits 0 when every finding is absorbed by the baseline, 1
//! when there are new findings, 2 on usage or I/O errors. `bless`
//! rewrites the baseline to the current finding set (the burn-down
//! ratchet: run it after *fixing* findings, never to bury new ones).

use std::path::PathBuf;
use std::process::ExitCode;

use mhhea_analyzer::baseline::Baseline;
use mhhea_analyzer::load_workspace;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root = PathBuf::from(".");
    let mut baseline_path = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" | "bless" if cmd.is_none() => cmd = Some(a.clone()),
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--baseline" => match it.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage("--baseline needs a value"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let Some(cmd) = cmd else {
        return usage("expected a command: check | bless");
    };
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("analyzer-baseline.toml"));

    let ws = match load_workspace(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("error: failed to load workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let findings = ws.run_lints();

    if cmd == "bless" {
        let text = Baseline::render(&findings);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("error: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "blessed {} finding(s) into {}",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => Baseline::default(),
    };
    let cmp = baseline.compare(&findings);

    for f in &cmp.new {
        println!("{}", f.render());
    }
    for e in &cmp.stale {
        println!(
            "note: stale baseline entry ({} in {} near line {}): fixed — remove it or re-bless",
            e.lint, e.file, e.line
        );
    }
    println!(
        "analyzer: {} file(s) scanned, {} finding(s): {} new, {} baselined, {} stale baseline entr{}",
        ws.files.len(),
        findings.len(),
        cmp.new.len(),
        cmp.matched,
        cmp.stale.len(),
        if cmp.stale.len() == 1 { "y" } else { "ies" }
    );
    if cmp.new.is_empty() {
        ExitCode::SUCCESS
    } else {
        println!(
            "error: new findings above are not in {}",
            baseline_path.display()
        );
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\nusage: mhhea-analyzer <check|bless> [--root DIR] [--baseline FILE]");
    ExitCode::from(2)
}
