//! L1 `lock-order`: `.lock()` nesting must respect the declared order.
//!
//! `// lock-order: a < b` annotations at `Mutex` field (or parameter)
//! declarations do two things: they bind the declared identifier to a
//! *lock class* (the first name), and the `<` chain declares edges of a
//! global partial order — class `a` locks are always taken before class
//! `b` locks. The lint then walks every non-test function, tracking
//! which classes are held:
//!
//! - a let-bound guard (`let g = x.lock()…;`) is held until its
//!   enclosing brace closes or an explicit `drop(g)`;
//! - anything else (`x.lock().unwrap().len()`, `*x.lock().unwrap()`) is
//!   a temporary, held to the end of the statement;
//! - a function returning `MutexGuard` is an acquisition *at the call
//!   site* (the guard escapes to the caller), with the same let/temporary
//!   scoping;
//! - acquiring class `A` while holding `B` when the order says `A < B`
//!   is an inversion — finding;
//! - acquiring a class already held is a self-deadlock with
//!   `std::sync::Mutex` — finding;
//! - calling a same-crate function whose (transitive) acquire-set
//!   contains `A` while holding `B` with `A < B` is also an inversion.
//!
//! Receiver attribution is token-shaped: for `self.inner.shards[i].lock()`
//! the receiver identifier is `shards`. Locks whose receiver has no
//! declared class are ignored — the lint enforces the declared order, it
//! does not guess one. Callee resolution is by bare name within the
//! crate; same-class re-acquisition through a *callee* is deliberately
//! not flagged (name-based resolution would confuse `HashMap::insert`
//! with a workspace `insert`).

use std::collections::{HashMap, HashSet};

use crate::lexer::{Token, TokenKind};
use crate::lints::{is_call, is_keyword, next_code, prev_code};
use crate::model::{lock_annotations, Finding, FnSpan, SourceFile};
use crate::Workspace;

const LINT: &str = "lock-order";

/// The declared world: ident→class bindings and the closed `<` relation.
struct Order {
    class_of: HashMap<String, String>,
    /// `(a, b)` present means `a` must be acquired before `b`.
    before: HashSet<(String, String)>,
}

impl Order {
    /// True when the declared order requires `a` before `b`.
    fn requires_before(&self, a: &str, b: &str) -> bool {
        self.before.contains(&(a.to_string(), b.to_string()))
    }
}

fn collect_order(ws: &Workspace) -> Order {
    let mut class_of = HashMap::new();
    let mut edges: HashSet<(String, String)> = HashSet::new();
    for file in &ws.files {
        for ann in lock_annotations(file) {
            class_of.insert(ann.binds.clone(), ann.class.clone());
            edges.extend(ann.edges.iter().cloned());
        }
    }
    // Transitive closure (the class count is tiny).
    let mut before = edges.clone();
    loop {
        let mut added = false;
        let snapshot: Vec<_> = before.iter().cloned().collect();
        for (a, b) in &snapshot {
            for (c, d) in &snapshot {
                if b == c && before.insert((a.clone(), d.clone())) {
                    added = true;
                }
            }
        }
        if !added {
            break;
        }
    }
    Order { class_of, before }
}

/// Attributes the receiver of the `.lock()` whose `lock` ident is at
/// token `i`: walks the field chain left (`a.b.c[i].lock()` → tries `c`,
/// then `b`, then `a`) and returns the first identifier with a class.
fn receiver_class<'a>(toks: &[Token], i: usize, order: &'a Order) -> Option<&'a str> {
    let dot = prev_code(toks, i)?;
    if !toks[dot].is_punct('.') {
        return None;
    }
    let mut cur = prev_code(toks, dot)?;
    loop {
        let t = &toks[cur];
        if t.is_punct(']') {
            // Skip back over the `[…]` index to its opening bracket.
            let mut depth = 1i32;
            let mut j = cur;
            while depth > 0 {
                j = prev_code(toks, j)?;
                if toks[j].is_punct(']') {
                    depth += 1;
                } else if toks[j].is_punct('[') {
                    depth -= 1;
                }
            }
            cur = prev_code(toks, j)?;
            continue;
        }
        if t.kind == TokenKind::Ident && !is_keyword(t) {
            if let Some(class) = order.class_of.get(&t.text) {
                return Some(class.as_str());
            }
            // Walk one field deeper left if the chain continues: `a.b`.
            let p = prev_code(toks, cur)?;
            if toks[p].is_punct('.') {
                cur = prev_code(toks, p)?;
                continue;
            }
            return None;
        }
        // `self.x` ends at the keyword; `foo().lock()` at `)` — unattributed.
        return None;
    }
}

/// One held lock.
struct Held {
    class: String,
    /// Brace depth at acquisition; a `}` closing to below this releases it.
    depth: i32,
    /// Some(var) for let-bound guards (released by `drop(var)` too).
    var: Option<String>,
}

/// Per-crate call facts: transitive acquire sets by fn name, and the
/// subset of fns whose return type is a `MutexGuard` (their acquisition
/// escapes to the caller).
struct CrateLocks {
    acquires: HashMap<String, HashSet<String>>,
    guard_fns: HashMap<String, HashSet<String>>,
}

fn crate_locks(files: &[&SourceFile], order: &Order) -> CrateLocks {
    let mut acquires: HashMap<String, HashSet<String>> = HashMap::new();
    let mut calls: HashMap<String, HashSet<String>> = HashMap::new();
    let mut guard_names: HashSet<String> = HashSet::new();
    for file in files {
        for f in &file.functions {
            if f.is_test || f.body.0 == f.body.1 {
                continue;
            }
            if file.tokens[f.sig.0..f.sig.1]
                .iter()
                .any(|t| t.is_ident("MutexGuard"))
            {
                guard_names.insert(f.name.clone());
            }
            let acq = acquires.entry(f.name.clone()).or_default();
            let callees = calls.entry(f.name.clone()).or_default();
            for i in f.body.0..f.body.1 {
                let t = &file.tokens[i];
                if t.is_ident("lock") && is_call(&file.tokens, i) {
                    if let Some(class) = receiver_class(&file.tokens, i, order) {
                        acq.insert(class.to_string());
                    }
                } else if is_call(&file.tokens, i) {
                    callees.insert(t.text.clone());
                }
            }
        }
    }
    // Fixpoint propagation through same-crate calls.
    loop {
        let mut changed = false;
        let names: Vec<String> = acquires.keys().cloned().collect();
        for name in &names {
            let mut gained: Vec<String> = Vec::new();
            if let Some(callees) = calls.get(name) {
                for callee in callees {
                    if callee == name {
                        continue;
                    }
                    if let Some(sub) = acquires.get(callee) {
                        let own = &acquires[name];
                        gained.extend(sub.iter().filter(|c| !own.contains(*c)).cloned());
                    }
                }
            }
            if !gained.is_empty() {
                let own = acquires.get_mut(name).expect("name from keys");
                let before = own.len();
                own.extend(gained);
                changed |= own.len() > before;
            }
        }
        if !changed {
            break;
        }
    }
    let guard_fns = guard_names
        .into_iter()
        .filter_map(|n| acquires.get(&n).map(|s| (n, s.clone())))
        .filter(|(_, s)| !s.is_empty())
        .collect();
    CrateLocks {
        acquires,
        guard_fns,
    }
}

/// Runs the lint over the whole workspace, crate by crate.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let order = collect_order(ws);
    if order.class_of.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut crates: HashMap<&str, Vec<&SourceFile>> = HashMap::new();
    for file in &ws.files {
        crates
            .entry(file.crate_name.as_str())
            .or_default()
            .push(file);
    }
    for files in crates.values() {
        let locks = crate_locks(files, &order);
        for file in files {
            for f in &file.functions {
                if f.is_test || f.body.0 == f.body.1 {
                    continue;
                }
                scan_fn(file, f, &order, &locks, &mut out);
            }
        }
    }
    out
}

/// Emits self-deadlock / inversion findings for acquiring `class` at
/// token `i` against the currently `held` set. `how` prefixes the
/// message for guard-returning call sites.
fn check_acquire(
    file: &SourceFile,
    order: &Order,
    held: &[Held],
    i: usize,
    class: &str,
    how: &str,
    out: &mut Vec<Finding>,
) {
    if file.allowed(LINT, file.tokens[i].line, i) {
        return;
    }
    for h in held {
        if h.class == class {
            out.push(file.finding_at(
                LINT,
                i,
                format!(
                    "{how}re-acquires lock class `{class}` while already holding it \
                     (self-deadlock with `std::sync::Mutex`)"
                ),
            ));
        } else if order.requires_before(class, &h.class) {
            out.push(file.finding_at(
                LINT,
                i,
                format!(
                    "{how}acquires `{class}` while holding `{}`, inverting the \
                     declared order `{class} < {}`",
                    h.class, h.class
                ),
            ));
        }
    }
}

fn scan_fn(
    file: &SourceFile,
    f: &FnSpan,
    order: &Order,
    locks: &CrateLocks,
    out: &mut Vec<Finding>,
) {
    let toks = &file.tokens;
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    let mut i = f.body.0;
    while i < f.body.1 {
        let t = &toks[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            held.retain(|h| h.depth < depth);
            depth -= 1;
        } else if t.is_punct(';') {
            // Temporaries die at the end of their statement.
            held.retain(|h| !(h.var.is_none() && h.depth >= depth));
        } else if t.is_ident("drop") && is_call(toks, i) {
            // `drop(g)` releases the named guard.
            if let Some(open) = next_code(toks, i) {
                if let Some(argi) = next_code(toks, open) {
                    if toks[argi].kind == TokenKind::Ident {
                        let name = toks[argi].text.clone();
                        if let Some(pos) = held
                            .iter()
                            .rposition(|h| h.var.as_deref() == Some(name.as_str()))
                        {
                            held.remove(pos);
                        }
                    }
                }
            }
        } else if t.is_ident("lock") && is_call(toks, i) {
            if let Some(class) = receiver_class(toks, i, order) {
                let class = class.to_string();
                check_acquire(file, order, &held, i, &class, "", out);
                held.push(Held {
                    class,
                    depth,
                    var: guard_binding(toks, f.body.0, i),
                });
            }
        } else if is_call(toks, i) {
            if let Some(classes) = locks.guard_fns.get(&t.text) {
                // Guard-returning helper: the acquisition escapes here.
                for class in classes {
                    check_acquire(file, order, &held, i, class, "guard-returning call ", out);
                    held.push(Held {
                        class: class.clone(),
                        depth,
                        var: guard_binding(toks, f.body.0, i),
                    });
                }
            } else if let Some(callee_acq) = locks.acquires.get(&t.text) {
                if !held.is_empty() && !file.allowed(LINT, t.line, i) {
                    for class in callee_acq {
                        for h in &held {
                            // Same-class via plain callee deliberately not
                            // flagged (see module docs).
                            if order.requires_before(class, &h.class) {
                                out.push(file.finding_at(
                                    LINT,
                                    i,
                                    format!(
                                        "calls `{}` (which acquires `{class}`) while holding \
                                         `{}`, inverting the declared order `{class} < {}`",
                                        t.text, h.class, h.class
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

/// Index just past the `)` matching the `(` at `open`.
fn skip_balanced(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('(') {
            depth += 1;
        } else if toks[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(i + 1);
            }
        }
        i += 1;
    }
    None
}

/// Chain methods through which a guard still escapes into a binding.
const GUARD_CHAIN: &[&str] = &["unwrap", "expect", "unwrap_or_else", "into_inner"];

/// Classifies the acquisition whose call ident is at `i`: `Some(var)`
/// when the statement let-binds the guard itself (`let g = x.lock()….;`),
/// `None` when the guard is a temporary (derefs, further method calls,
/// tail expressions).
fn guard_binding(toks: &[Token], body_start: usize, i: usize) -> Option<String> {
    // Forward: after `lock(…)` only unwrap/expect-style adapters and `?`
    // may appear before the `;` for the guard to be what gets bound.
    let open = next_code(toks, i)?;
    if !toks[open].is_punct('(') {
        return None;
    }
    let mut j = skip_balanced(toks, open)?;
    loop {
        let t = toks.get(j)?;
        if t.is_comment() {
            j += 1;
        } else if t.is_punct(';') {
            break;
        } else if t.is_punct('?') {
            j += 1;
        } else if t.is_punct('.') {
            let m = next_code(toks, j)?;
            if toks[m].kind != TokenKind::Ident || !GUARD_CHAIN.contains(&toks[m].text.as_str()) {
                return None;
            }
            let o = next_code(toks, m)?;
            if !toks[o].is_punct('(') {
                return None;
            }
            j = skip_balanced(toks, o)?;
        } else {
            return None;
        }
    }
    let_binding_var(toks, body_start, i)
}

/// If the statement containing token `i` starts with `let` and binds the
/// expression directly (no leading `*` deref), returns the first
/// identifier of the pattern. Walks back to the nearest statement
/// boundary.
fn let_binding_var(toks: &[Token], body_start: usize, i: usize) -> Option<String> {
    let mut j = i;
    while j > body_start {
        let p = prev_code(toks, j)?;
        let t = &toks[p];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        j = p;
    }
    let mut k = j;
    // `if let` / `while let`: skip leading control keywords.
    while toks[k].is_ident("if") || toks[k].is_ident("while") || toks[k].is_ident("else") {
        k = next_code(toks, k)?;
    }
    if !toks[k].is_ident("let") {
        return None;
    }
    let mut v = next_code(toks, k)?;
    while toks[v].is_ident("mut")
        || toks[v].is_punct('(')
        || toks[v].is_ident("Some")
        || toks[v].is_ident("Ok")
    {
        v = next_code(toks, v)?;
    }
    if toks[v].kind != TokenKind::Ident {
        return None;
    }
    let var = toks[v].text.clone();
    // A leading `*` after `=` means the binding copies *out of* the
    // guard; the guard itself is a temporary.
    let mut e = v;
    while e < i {
        if toks[e].is_punct('=') {
            let after = next_code(toks, e)?;
            if toks[after].is_punct('*') {
                return None;
            }
            break;
        }
        e = next_code(toks, e)?;
    }
    Some(var)
}

#[cfg(test)]
mod tests {
    use crate::model::SourceFile;
    use crate::{Config, Workspace};

    fn ws(src: &str) -> Workspace {
        Workspace {
            files: vec![SourceFile::parse("crates/x/src/lib.rs", "x", src)],
            spec: None,
            config: Config::default(),
        }
    }

    const DECLS: &str = "struct S {\n\
        // lock-order: registry < mux_shard\n\
        registry: Mutex<u8>,\n\
        // lock-order: mux_shard\n\
        shards: Vec<Mutex<u8>>,\n\
    }\n";

    #[test]
    fn correct_order_is_clean() {
        let src = format!(
            "{DECLS}fn ok(s: &S) {{ let reg = s.registry.lock().unwrap(); \
             let sh = s.shards[0].lock().unwrap(); }}"
        );
        assert!(super::run(&ws(&src)).is_empty());
    }

    #[test]
    fn inversion_is_flagged() {
        let src = format!(
            "{DECLS}fn bad(s: &S) {{ let sh = s.shards[0].lock().unwrap(); \
             let reg = s.registry.lock().unwrap(); }}"
        );
        let f = super::run(&ws(&src));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("inverting"));
    }

    #[test]
    fn temporary_releases_at_statement_end() {
        let src = format!(
            "{DECLS}fn ok(s: &S) {{ let n = *s.shards[0].lock().unwrap(); \
             let reg = s.registry.lock().unwrap(); let _ = (n, reg); }}"
        );
        assert!(
            super::run(&ws(&src)).is_empty(),
            "deref copy should release the shard guard at the `;`"
        );
    }

    #[test]
    fn chained_method_is_a_temporary() {
        let src = format!(
            "{DECLS}fn ok(s: &S) {{ let n = s.shards[0].lock().unwrap().count_ones(); \
             let reg = s.registry.lock().unwrap(); let _ = (n, reg); }}"
        );
        assert!(super::run(&ws(&src)).is_empty());
    }

    #[test]
    fn drop_releases_guard() {
        let src = format!(
            "{DECLS}fn ok(s: &S) {{ let sh = s.shards[0].lock().unwrap(); drop(sh); \
             let reg = s.registry.lock().unwrap(); }}"
        );
        assert!(super::run(&ws(&src)).is_empty());
    }

    #[test]
    fn self_deadlock_is_flagged() {
        let src = format!(
            "{DECLS}fn bad(s: &S) {{ let a = s.registry.lock().unwrap(); \
             let b = s.registry.lock().unwrap(); }}"
        );
        let f = super::run(&ws(&src));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("self-deadlock"));
    }

    #[test]
    fn inversion_through_callee_is_flagged() {
        let src = format!(
            "{DECLS}fn helper(s: &S) {{ let reg = s.registry.lock().unwrap(); }}\n\
             fn bad(s: &S) {{ let sh = s.shards[0].lock().unwrap(); helper(s); }}"
        );
        let f = super::run(&ws(&src));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("helper"));
    }

    #[test]
    fn guard_returning_fn_counts_at_call_site() {
        let src = format!(
            "{DECLS}impl S {{ fn reg(&self) -> MutexGuard<'_, u8> {{ \
             self.registry.lock().unwrap() }} }}\n\
             fn bad(s: &S) {{ let sh = s.shards[0].lock().unwrap(); let r = s.reg(); }}"
        );
        let f = super::run(&ws(&src));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("guard-returning"));
    }

    #[test]
    fn block_scope_releases_guard() {
        let src = format!(
            "{DECLS}fn ok(s: &S) {{ {{ let sh = s.shards[0].lock().unwrap(); }} \
             let reg = s.registry.lock().unwrap(); }}"
        );
        assert!(super::run(&ws(&src)).is_empty());
    }
}
