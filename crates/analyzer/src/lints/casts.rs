//! L4 `truncating-cast`: narrowing `as` casts in codec paths.
//!
//! A `len as u8` in an encoder silently wraps at 256 and produces a
//! frame that decodes to the wrong thing — the worst kind of wire bug.
//! In the frame encode/decode and snapshot serialization files, every
//! `as u8/u16/u32/i8/i16/i32` cast must either be removed (prefer
//! `try_from` + error) or carry
//! `// lint: allow(truncating-cast, reason = "…")` proving the value
//! fits.
//!
//! Widening casts (`as u64`, `as usize`, `as u128`) are not findings.

use crate::lexer::TokenKind;
use crate::lints::next_code;
use crate::model::Finding;
use crate::Workspace;

const LINT: &str = "truncating-cast";
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Runs the lint over the configured codec files.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !ws.config.is_cast_path(&file.rel_path) {
            continue;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if file.in_test(i) || !toks[i].is_ident("as") {
                continue;
            }
            let Some(n) = next_code(toks, i) else {
                continue;
            };
            let target = &toks[n];
            if target.kind != TokenKind::Ident || !NARROW_TARGETS.contains(&target.text.as_str()) {
                continue;
            }
            if file.allowed(LINT, toks[i].line, i) {
                continue;
            }
            out.push(file.finding_at(
                LINT,
                i,
                format!(
                    "narrowing `as {}` in a codec path can silently truncate; use \
                     `{}::try_from` or justify the bound",
                    target.text, target.text
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::model::SourceFile;
    use crate::{Config, Workspace};

    fn ws(path: &str, src: &str) -> Workspace {
        Workspace {
            files: vec![SourceFile::parse(path, "net", src)],
            spec: None,
            config: Config::default(),
        }
    }

    #[test]
    fn flags_narrowing_not_widening() {
        let src = "fn f(n: usize) { let a = n as u8; let b = n as u64; let c = n as usize; }";
        let w = ws("crates/net/src/frame.rs", src);
        let f = super::run(&w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("as u8"));
    }

    #[test]
    fn respects_allow_and_path_scope() {
        let allowed =
            "fn f(n: usize) { let a = n as u8; // lint: allow(truncating-cast, reason = \"n <= 3\")\n }";
        assert!(super::run(&ws("crates/net/src/frame.rs", allowed)).is_empty());
        let other = "fn f(n: usize) { let a = n as u8; }";
        assert!(super::run(&ws("crates/net/src/client.rs", other)).is_empty());
    }
}
