//! L2 `panic-path`: the serving path must not be able to panic.
//!
//! A panic in a reactor thread kills every connection that thread owns;
//! a panic while a mux shard is locked poisons the shard for everyone.
//! So in non-test code of the serving path (`crates/net/src`,
//! `gateway.rs`, `pipeline.rs`) the following are findings unless the
//! line (or enclosing fn) carries `// lint: allow(panic-path, reason = "…")`:
//!
//! - `.unwrap()` / `.expect(…)`
//! - `panic!` / `unreachable!` / `todo!` / `unimplemented!`
//! - bare slice/array indexing `expr[i]` (which panics out of bounds)
//!
//! `assert!`/`debug_assert!` are deliberately *not* flagged: asserts
//! document preconditions at API boundaries and `debug_assert!` is free
//! in release builds.

use crate::lints::{is_keyword, next_code, prev_code};
use crate::model::Finding;
use crate::Workspace;

const LINT: &str = "panic-path";
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Runs the lint over every serving-path file in the workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !ws.config.is_serving(&file.rel_path) {
            continue;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if file.in_test(i) || toks[i].is_comment() {
                continue;
            }
            let t = &toks[i];
            // `.unwrap()` / `.expect(…)`
            if (t.is_ident("unwrap") || t.is_ident("expect"))
                && prev_code(toks, i).is_some_and(|p| toks[p].is_punct('.'))
                && next_code(toks, i).is_some_and(|n| toks[n].is_punct('('))
                && !file.allowed(LINT, t.line, i)
            {
                out.push(file.finding_at(
                    LINT,
                    i,
                    format!(
                        "`.{}()` on the serving path can panic a reactor thread; \
                         handle the failure or justify with \
                         `// lint: allow(panic-path, reason = \"…\")`",
                        t.text
                    ),
                ));
                continue;
            }
            // panic-family macros
            if t.kind == crate::lexer::TokenKind::Ident
                && PANIC_MACROS.contains(&t.text.as_str())
                && next_code(toks, i).is_some_and(|n| toks[n].is_punct('!'))
                && !file.allowed(LINT, t.line, i)
            {
                out.push(file.finding_at(
                    LINT,
                    i,
                    format!(
                        "`{}!` on the serving path; return a protocol/engine error instead",
                        t.text
                    ),
                ));
                continue;
            }
            // Bare indexing: `[` directly after an expression tail.
            if t.is_punct('[') && i > 0 {
                let Some(p) = prev_code(toks, i) else {
                    continue;
                };
                let prev = &toks[p];
                let is_expr_tail = (prev.kind == crate::lexer::TokenKind::Ident
                    && !is_keyword(prev))
                    || prev.is_punct(']')
                    || prev.is_punct(')');
                if is_expr_tail && !file.allowed(LINT, t.line, i) {
                    out.push(
                        file.finding_at(
                            LINT,
                            i,
                            "bare indexing panics when out of bounds; use `.get()`/pattern \
                         matching or justify the bound"
                                .to_string(),
                        ),
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::model::SourceFile;
    use crate::{Config, Workspace};

    fn ws(path: &str, src: &str) -> Workspace {
        Workspace {
            files: vec![SourceFile::parse(path, "net", src)],
            spec: None,
            config: Config::default(),
        }
    }

    #[test]
    fn flags_unwrap_on_serving_path() {
        let w = ws("crates/net/src/conn.rs", "fn f() { x.unwrap(); }");
        let f = super::run(&w);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("unwrap"));
    }

    #[test]
    fn ignores_non_serving_files() {
        let w = ws("crates/bitkit/src/lib.rs", "fn f() { x.unwrap(); }");
        assert!(super::run(&w).is_empty());
    }

    #[test]
    fn ignores_test_code_and_allows() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n\
                   fn g() { y.expect(\"ok\"); // lint: allow(panic-path, reason = \"proven\")\n }";
        let w = ws("crates/net/src/conn.rs", src);
        assert!(super::run(&w).is_empty());
    }

    #[test]
    fn flags_indexing_but_not_types_or_macros() {
        let src = "fn f(b: &[u8]) -> [u8; 4] { let v = vec![1]; let _x: Vec<[u8; 2]> = vec![]; b[0]; [0u8; 4] }";
        let w = ws("crates/net/src/conn.rs", src);
        let f = super::run(&w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("indexing"));
    }

    #[test]
    fn flags_panic_macros() {
        let w = ws(
            "crates/net/src/reactor.rs",
            "fn f() { unreachable!(\"nope\") }",
        );
        assert_eq!(super::run(&w).len(), 1);
    }
}
