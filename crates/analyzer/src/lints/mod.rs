//! The five lints. Each module exposes `run(&Workspace) -> Vec<Finding>`.

pub mod casts;
pub mod lock_order;
pub mod panic_path;
pub mod protocol_drift;
pub mod results;

use crate::lexer::{Token, TokenKind};

/// Keywords that can directly precede `[` or `(` without being an
/// expression the lints should treat as a value (indexing receiver or
/// callee name).
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while", "yield",
];

/// True when `t` is an identifier that is a Rust keyword.
pub(crate) fn is_keyword(t: &Token) -> bool {
    t.kind == TokenKind::Ident && KEYWORDS.contains(&t.text.as_str())
}

/// Index of the previous non-comment token before `i`, if any.
pub(crate) fn prev_code(tokens: &[Token], i: usize) -> Option<usize> {
    (0..i).rev().find(|&j| !tokens[j].is_comment())
}

/// Index of the next non-comment token after `i`, if any.
pub(crate) fn next_code(tokens: &[Token], i: usize) -> Option<usize> {
    ((i + 1)..tokens.len()).find(|&j| !tokens[j].is_comment())
}

/// True when the ident at `i` is a call: followed by `(` (or by `::<`
/// turbofish then `(`), and not a definition (`fn name(`) or macro
/// (`name!(`).
pub(crate) fn is_call(tokens: &[Token], i: usize) -> bool {
    if tokens[i].kind != TokenKind::Ident || is_keyword(&tokens[i]) {
        return false;
    }
    if let Some(p) = prev_code(tokens, i) {
        if tokens[p].is_ident("fn") {
            return false;
        }
    }
    let Some(n) = next_code(tokens, i) else {
        return false;
    };
    if tokens[n].is_punct('(') {
        return true;
    }
    // Turbofish: name::<T>(…)
    if tokens[n].is_punct(':') {
        let Some(n2) = next_code(tokens, n) else {
            return false;
        };
        if !tokens[n2].is_punct(':') {
            return false;
        }
        let Some(n3) = next_code(tokens, n2) else {
            return false;
        };
        return tokens[n3].is_punct('<');
    }
    false
}
