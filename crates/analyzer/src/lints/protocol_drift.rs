//! L3 `protocol-drift`: `docs/PROTOCOL.md` must match the wire code.
//!
//! The spec carries three machine-readable tables, each marked by a
//! stable HTML-comment anchor the parser keys on:
//!
//! - `<!-- analyzer:frame-kinds -->` — rows `| <value> | `Name` | … |`,
//!   checked against `enum FrameKind` discriminants;
//! - `<!-- analyzer:error-codes -->` — same shape, against `enum
//!   ErrorCode`;
//! - `<!-- analyzer:size-caps -->` — rows `` | `CONST_NAME` | <value> | … | ``,
//!   checked against `const` items (a tiny const-expression evaluator
//!   handles `1 << 20` and `(MAX_PAYLOAD - 4) / 16`).
//!
//! Drift in *either* direction is a finding: a spec row with no code
//! counterpart, a code variant missing from the spec, or a value
//! mismatch.

use std::collections::HashMap;

use crate::lexer::{Token, TokenKind};
use crate::model::{matching_brace, Finding, SourceFile};
use crate::Workspace;

const LINT: &str = "protocol-drift";

/// The enums the frame-kind and error-code tables are checked against.
const KIND_ENUM: &str = "FrameKind";
const CODE_ENUM: &str = "ErrorCode";

/// Runs the lint: parses the spec tables and the code, cross-checks.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let Some((spec_path, spec_text)) = &ws.spec else {
        return Vec::new();
    };
    let code_files: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| ws.config.spec_code_paths.iter().any(|p| p == &f.rel_path))
        .collect();
    if code_files.is_empty() {
        return Vec::new();
    }

    let mut out = Vec::new();
    let spec = parse_spec(spec_path, spec_text, &mut out);
    let code = parse_code(&code_files);

    check_enum(spec_path, &spec.frame_kinds, &code, KIND_ENUM, &mut out);
    check_enum(spec_path, &spec.error_codes, &code, CODE_ENUM, &mut out);

    for cap in &spec.size_caps {
        match code.consts.get(&cap.name) {
            None => out.push(spec_finding(
                spec_path,
                cap.line,
                format!(
                    "size-cap row `{}` has no matching `const` in {}",
                    cap.name,
                    path_list(&code_files)
                ),
            )),
            Some(&(value, _, _)) if value != cap.value => out.push(spec_finding(
                spec_path,
                cap.line,
                format!(
                    "size-cap `{}` is {} in the spec but {} in the code",
                    cap.name, cap.value, value
                ),
            )),
            Some(_) => {}
        }
    }
    out
}

fn check_enum(
    spec_path: &str,
    rows: &[SpecRow],
    code: &Code,
    enum_name: &str,
    out: &mut Vec<Finding>,
) {
    let Some(variants) = code.enums.get(enum_name) else {
        if !rows.is_empty() {
            out.push(spec_finding(
                spec_path,
                rows[0].line,
                format!("spec table present but `enum {enum_name}` was not found in the code"),
            ));
        }
        return;
    };
    for row in rows {
        match variants.get(&row.name) {
            None => out.push(spec_finding(
                spec_path,
                row.line,
                format!(
                    "spec lists `{}` = {} but `enum {enum_name}` has no such variant",
                    row.name, row.value
                ),
            )),
            Some(&(value, _, _)) if value != row.value => out.push(spec_finding(
                spec_path,
                row.line,
                format!(
                    "spec says `{}` = {} but `enum {enum_name}` declares {}",
                    row.name, row.value, value
                ),
            )),
            Some(_) => {}
        }
    }
    for (name, &(value, line, ref file)) in variants {
        if !rows.iter().any(|r| &r.name == name) {
            out.push(Finding {
                lint: LINT,
                file: file.clone(),
                line,
                col: 1,
                message: format!(
                    "`{enum_name}::{name}` = {value} is not listed in the spec table \
                     (docs/PROTOCOL.md must describe every wire value)"
                ),
                key: String::new(),
            });
        }
    }
}

fn path_list(files: &[&SourceFile]) -> String {
    files
        .iter()
        .map(|f| f.rel_path.as_str())
        .collect::<Vec<_>>()
        .join(", ")
}

fn spec_finding(spec_path: &str, line: u32, message: String) -> Finding {
    Finding {
        lint: LINT,
        file: spec_path.to_string(),
        line,
        col: 1,
        message,
        key: String::new(),
    }
}

struct SpecRow {
    name: String,
    value: i64,
    line: u32,
}

#[derive(Default)]
struct Spec {
    frame_kinds: Vec<SpecRow>,
    error_codes: Vec<SpecRow>,
    size_caps: Vec<SpecRow>,
}

/// Parses the three anchored tables out of the spec markdown.
fn parse_spec(spec_path: &str, text: &str, out: &mut Vec<Finding>) -> Spec {
    let mut spec = Spec::default();
    let mut section: Option<&str> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.trim();
        if let Some(anchor) = line
            .strip_prefix("<!-- analyzer:")
            .and_then(|r| r.strip_suffix("-->"))
        {
            section = match anchor.trim() {
                "frame-kinds" => Some("frame-kinds"),
                "error-codes" => Some("error-codes"),
                "size-caps" => Some("size-caps"),
                other => {
                    out.push(spec_finding(
                        spec_path,
                        line_no,
                        format!("unknown analyzer anchor `{other}`"),
                    ));
                    None
                }
            };
            continue;
        }
        let Some(sec) = section else { continue };
        if !line.starts_with('|') {
            if !line.is_empty() {
                section = None; // table ended
            }
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 2 || cells[0].starts_with('-') || is_header(cells[0]) {
            continue;
        }
        let parsed = match sec {
            // `| <value> | `Name` | … |`
            "frame-kinds" | "error-codes" => parse_int(cells[0]).map(|value| SpecRow {
                name: strip_ticks(cells[1]),
                value,
                line: line_no,
            }),
            // `` | `CONST` | <value> | … | ``
            _ => parse_int(cells[1]).map(|value| SpecRow {
                name: strip_ticks(cells[0]),
                value,
                line: line_no,
            }),
        };
        match parsed {
            Some(row) => match sec {
                "frame-kinds" => spec.frame_kinds.push(row),
                "error-codes" => spec.error_codes.push(row),
                _ => spec.size_caps.push(row),
            },
            None => out.push(spec_finding(
                spec_path,
                line_no,
                format!("anchored `{sec}` table row has no parseable integer value"),
            )),
        }
    }
    spec
}

fn is_header(cell: &str) -> bool {
    !cell.is_empty()
        && cell.chars().next().is_some_and(|c| c.is_alphabetic())
        && parse_int(cell).is_none()
        && !cell.starts_with('`')
}

fn strip_ticks(cell: &str) -> String {
    cell.trim_matches('`').to_string()
}

/// First integer in the cell; `_` separators allowed; `0x` hex allowed.
fn parse_int(cell: &str) -> Option<i64> {
    let s = cell.trim();
    if let Some(hex) = s.strip_prefix("0x") {
        let digits: String = hex
            .chars()
            .take_while(|c| c.is_ascii_hexdigit() || *c == '_')
            .filter(|c| *c != '_')
            .collect();
        return i64::from_str_radix(&digits, 16).ok();
    }
    let digits: String = s
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '_')
        .filter(|c| *c != '_')
        .collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

/// Code-side facts: `name -> (value, line, file)` maps.
#[derive(Default)]
struct Code {
    /// Enum name → variant name → (discriminant, line, file).
    enums: HashMap<String, HashMap<String, (i64, u32, String)>>,
    /// Const name → (value, line, file).
    consts: HashMap<String, (i64, u32, String)>,
}

fn parse_code(files: &[&SourceFile]) -> Code {
    let mut code = Code::default();
    // Two passes so consts may reference consts from any listed file.
    for _ in 0..2 {
        for file in files {
            parse_code_file(file, &mut code);
        }
    }
    code
}

fn parse_code_file(file: &SourceFile, code: &mut Code) {
    let toks = &file.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("enum") && !file.in_test(i) {
            if let Some(name_i) = crate::lints::next_code(toks, i) {
                let name = toks[name_i].text.clone();
                let mut j = name_i;
                while j < toks.len() && !toks[j].is_punct('{') {
                    j += 1;
                }
                if j < toks.len() {
                    let close = matching_brace(toks, j);
                    let variants = code.enums.entry(name).or_default();
                    parse_variants(file, &toks[j..=close], variants);
                    i = close + 1;
                    continue;
                }
            }
        } else if t.is_ident("const") && !file.in_test(i) {
            // `const NAME : Ty = expr ;`
            if let Some((name, value, line)) = parse_const(toks, i, &code.consts) {
                code.consts
                    .insert(name, (value, line, file.rel_path.clone()));
            }
        }
        i += 1;
    }
}

/// Collects `Variant = <int>` pairs inside an enum body slice.
fn parse_variants(
    file: &SourceFile,
    body: &[Token],
    variants: &mut HashMap<String, (i64, u32, String)>,
) {
    let mut k = 0usize;
    while k + 2 < body.len() {
        if body[k].kind == TokenKind::Ident
            && body[k + 1].is_punct('=')
            && body[k + 2].kind == TokenKind::Number
        {
            if let Some(v) = parse_int(&body[k + 2].text) {
                variants.insert(
                    body[k].text.clone(),
                    (v, body[k].line, file.rel_path.clone()),
                );
            }
            k += 3;
            continue;
        }
        k += 1;
    }
}

/// Parses `const NAME: Ty = <expr>;` at `i` and evaluates the expression
/// against already-known consts. Returns None for consts whose value the
/// evaluator cannot compute (non-integer, unresolved names).
fn parse_const(
    toks: &[Token],
    i: usize,
    known: &HashMap<String, (i64, u32, String)>,
) -> Option<(String, i64, u32)> {
    let name_i = crate::lints::next_code(toks, i)?;
    if toks[name_i].kind != TokenKind::Ident {
        return None;
    }
    let name = toks[name_i].text.clone();
    let mut j = name_i + 1;
    while j < toks.len() && !toks[j].is_punct('=') {
        if toks[j].is_punct(';') || toks[j].is_punct('{') {
            return None;
        }
        j += 1;
    }
    let mut end = j + 1;
    while end < toks.len() && !toks[end].is_punct(';') {
        end += 1;
    }
    let expr: Vec<&Token> = toks[j + 1..end]
        .iter()
        .filter(|t| !t.is_comment())
        .collect();
    let value = eval(&expr, known)?;
    Some((name, value, toks[name_i].line))
}

/// Evaluates a const expression: integers, known-const idents, `+ - * /
/// << >> | &`, parens. Returns None on anything else.
fn eval(toks: &[&Token], known: &HashMap<String, (i64, u32, String)>) -> Option<i64> {
    let mut pos = 0usize;
    let v = eval_shift(toks, &mut pos, known)?;
    (pos == toks.len()).then_some(v)
}

fn eval_shift(
    toks: &[&Token],
    pos: &mut usize,
    known: &HashMap<String, (i64, u32, String)>,
) -> Option<i64> {
    let mut acc = eval_bits(toks, pos, known)?;
    loop {
        if *pos + 1 < toks.len() && toks[*pos].is_punct('<') && toks[*pos + 1].is_punct('<') {
            *pos += 2;
            let rhs = eval_bits(toks, pos, known)?;
            acc = acc.checked_shl(u32::try_from(rhs).ok()?)?;
        } else if *pos + 1 < toks.len() && toks[*pos].is_punct('>') && toks[*pos + 1].is_punct('>')
        {
            *pos += 2;
            let rhs = eval_bits(toks, pos, known)?;
            acc = acc.checked_shr(u32::try_from(rhs).ok()?)?;
        } else {
            return Some(acc);
        }
    }
}

fn eval_bits(
    toks: &[&Token],
    pos: &mut usize,
    known: &HashMap<String, (i64, u32, String)>,
) -> Option<i64> {
    let mut acc = eval_add(toks, pos, known)?;
    while *pos < toks.len() && (toks[*pos].is_punct('|') || toks[*pos].is_punct('&')) {
        let or = toks[*pos].is_punct('|');
        *pos += 1;
        let rhs = eval_add(toks, pos, known)?;
        acc = if or { acc | rhs } else { acc & rhs };
    }
    Some(acc)
}

fn eval_add(
    toks: &[&Token],
    pos: &mut usize,
    known: &HashMap<String, (i64, u32, String)>,
) -> Option<i64> {
    let mut acc = eval_mul(toks, pos, known)?;
    while *pos < toks.len() && (toks[*pos].is_punct('+') || toks[*pos].is_punct('-')) {
        let add = toks[*pos].is_punct('+');
        *pos += 1;
        let rhs = eval_mul(toks, pos, known)?;
        acc = if add {
            acc.checked_add(rhs)?
        } else {
            acc.checked_sub(rhs)?
        };
    }
    Some(acc)
}

fn eval_mul(
    toks: &[&Token],
    pos: &mut usize,
    known: &HashMap<String, (i64, u32, String)>,
) -> Option<i64> {
    let mut acc = eval_prim(toks, pos, known)?;
    while *pos < toks.len() && (toks[*pos].is_punct('*') || toks[*pos].is_punct('/')) {
        let mul = toks[*pos].is_punct('*');
        *pos += 1;
        let rhs = eval_prim(toks, pos, known)?;
        acc = if mul {
            acc.checked_mul(rhs)?
        } else {
            acc.checked_div(rhs)?
        };
    }
    Some(acc)
}

fn eval_prim(
    toks: &[&Token],
    pos: &mut usize,
    known: &HashMap<String, (i64, u32, String)>,
) -> Option<i64> {
    let t = toks.get(*pos)?;
    if t.is_punct('(') {
        *pos += 1;
        let v = eval_shift(toks, pos, known)?;
        if !toks.get(*pos)?.is_punct(')') {
            return None;
        }
        *pos += 1;
        return Some(v);
    }
    if t.kind == TokenKind::Number {
        *pos += 1;
        // Strip a type suffix (`20usize`, `0xFFu32`).
        let text: &str = &t.text;
        let (body, _) = split_suffix(text);
        return parse_int(body);
    }
    if t.kind == TokenKind::Ident {
        *pos += 1;
        return known.get(&t.text).map(|&(v, _, _)| v);
    }
    None
}

/// Splits a numeric literal into (digits, suffix).
fn split_suffix(text: &str) -> (&str, &str) {
    let body_len = if let Some(hex) = text.strip_prefix("0x") {
        2 + hex
            .find(|c: char| !(c.is_ascii_hexdigit() || c == '_'))
            .unwrap_or(hex.len())
    } else {
        text.find(|c: char| !(c.is_ascii_digit() || c == '_'))
            .unwrap_or(text.len())
    };
    text.split_at(body_len)
}

#[cfg(test)]
mod tests {
    use crate::model::SourceFile;
    use crate::{Config, Workspace};

    const SPEC: &str = "\
# Spec

<!-- analyzer:frame-kinds -->

| kind | name | dir |
|------|------|-----|
| 1 | `Hello` | c→s |
| 2 | `Data` | c→s |

<!-- analyzer:size-caps -->

| cap | value | notes |
|-----|-------|-------|
| `MAX_PAYLOAD` | 1048576 | 1 MiB |
";

    fn ws(spec: &str, code: &str) -> Workspace {
        let config = Config {
            spec_code_paths: vec!["crates/net/src/frame.rs".to_string()],
            ..Config::default()
        };
        Workspace {
            files: vec![SourceFile::parse("crates/net/src/frame.rs", "net", code)],
            spec: Some(("docs/PROTOCOL.md".to_string(), spec.to_string())),
            config,
        }
    }

    #[test]
    fn matching_spec_is_clean() {
        let code = "pub const MAX_PAYLOAD: usize = 1 << 20;\n\
                    pub enum FrameKind { Hello = 1, Data = 2 }\n";
        let f = super::run(&ws(SPEC, code));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn value_mismatch_is_flagged() {
        let code = "pub const MAX_PAYLOAD: usize = 1 << 20;\n\
                    pub enum FrameKind { Hello = 1, Data = 3 }\n";
        let f = super::run(&ws(SPEC, code));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Data"));
    }

    #[test]
    fn code_variant_missing_from_spec_is_flagged() {
        let code = "pub const MAX_PAYLOAD: usize = 1 << 20;\n\
                    pub enum FrameKind { Hello = 1, Data = 2, Bye = 5 }\n";
        let f = super::run(&ws(SPEC, code));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Bye"));
        assert_eq!(f[0].file, "crates/net/src/frame.rs");
    }

    #[test]
    fn cap_mismatch_and_const_expr_eval() {
        let code = "pub const MAX_PAYLOAD: usize = (1 << 19) + 1;\n\
                    pub enum FrameKind { Hello = 1, Data = 2 }\n";
        let f = super::run(&ws(SPEC, code));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("MAX_PAYLOAD"));
        assert!(f[0].message.contains("524289"));
    }

    #[test]
    fn const_referencing_const() {
        let spec = "<!-- analyzer:size-caps -->\n| cap | value |\n|--|--|\n| `HALF` | 512 |\n";
        let code = "const FULL: usize = 1024;\nconst HALF: usize = FULL / 2;\n";
        let f = super::run(&ws(spec, code));
        assert!(f.is_empty(), "{f:?}");
    }
}
