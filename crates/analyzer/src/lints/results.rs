//! L5 `swallowed-result`: `let _ =` over workspace `Result` functions.
//!
//! `let _ = x` is Rust's loudest way to say "I don't care whether this
//! failed". For std calls that is often fine (`join`, `set_nodelay`);
//! for this workspace's own fallible functions it usually hides a bug.
//! The lint builds, per crate, an index of function names whose return
//! type mentions `Result`, then flags any non-test `let _ = …;`
//! statement whose right-hand side calls one of them, unless justified
//! with `// lint: allow(swallowed-result, reason = "…")`.
//!
//! Name-based resolution is deliberate (this is a token scanner, not a
//! type checker): it can over-match a std method that shares a name with
//! a workspace function — the annotation escape hatch exists for that.

use std::collections::{HashMap, HashSet};

use crate::lints::{is_call, next_code};
use crate::model::Finding;
use crate::Workspace;

const LINT: &str = "swallowed-result";

/// Runs the lint over all files, with a per-crate `-> Result` index.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    // crate name -> set of fn names returning Result
    let mut index: HashMap<&str, HashSet<&str>> = HashMap::new();
    for file in &ws.files {
        for f in &file.functions {
            let sig = &file.tokens[f.sig.0..f.sig.1];
            let mut arrow = false;
            let mut returns_result = false;
            for w in sig.windows(2) {
                if w[0].is_punct('-') && w[1].is_punct('>') {
                    arrow = true;
                }
                if arrow && (w[0].is_ident("Result") || w[1].is_ident("Result")) {
                    returns_result = true;
                    break;
                }
            }
            if returns_result {
                index
                    .entry(file.crate_name.as_str())
                    .or_default()
                    .insert(f.name.as_str());
            }
        }
    }

    let mut out = Vec::new();
    for file in &ws.files {
        let Some(result_fns) = index.get(file.crate_name.as_str()) else {
            continue;
        };
        let toks = &file.tokens;
        let mut i = 0usize;
        while i + 2 < toks.len() {
            if file.in_test(i) || !toks[i].is_ident("let") {
                i += 1;
                continue;
            }
            let Some(u) = next_code(toks, i) else { break };
            let Some(eq) = next_code(toks, u) else { break };
            if !toks[u].is_ident("_") || !toks[eq].is_punct('=') {
                i += 1;
                continue;
            }
            // Scan the right-hand side to the statement's `;` for calls
            // into the crate's Result index.
            let mut j = eq + 1;
            let mut depth = 0i32;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if depth == 0 && t.is_punct(';') {
                    break;
                } else if is_call(toks, j) && result_fns.contains(t.text.as_str()) {
                    if !file.allowed(LINT, toks[i].line, i) && !file.allowed(LINT, t.line, j) {
                        out.push(file.finding_at(
                            LINT,
                            j,
                            format!(
                                "`let _ =` swallows the `Result` of `{}` (defined in this \
                                 workspace); handle the error or justify the discard",
                                t.text
                            ),
                        ));
                    }
                    break; // one finding per statement
                }
                j += 1;
            }
            i = j;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::model::SourceFile;
    use crate::{Config, Workspace};

    fn ws(files: Vec<(&str, &str, &str)>) -> Workspace {
        Workspace {
            files: files
                .into_iter()
                .map(|(p, c, s)| SourceFile::parse(p, c, s))
                .collect(),
            spec: None,
            config: Config::default(),
        }
    }

    #[test]
    fn flags_swallowed_workspace_result() {
        let w = ws(vec![(
            "crates/x/src/lib.rs",
            "x",
            "fn close(a: u8) -> Result<(), ()> { Ok(()) }\nfn f() { let _ = close(1); }",
        )]);
        let f = super::run(&w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("close"));
    }

    #[test]
    fn ignores_std_names_and_named_bindings() {
        let w = ws(vec![(
            "crates/x/src/lib.rs",
            "x",
            "fn f(h: std::thread::JoinHandle<()>) { let _ = h.join(); let _ignored = close(1); }\n\
             fn close(a: u8) -> Result<(), ()> { Ok(()) }",
        )]);
        // `join` is not in the workspace index; `_ignored` is a named
        // binding, not the `_` wildcard.
        assert!(super::run(&w).is_empty());
    }

    #[test]
    fn index_is_per_crate() {
        let w = ws(vec![
            (
                "crates/a/src/lib.rs",
                "a",
                "fn fail() -> Result<(), ()> { Err(()) }",
            ),
            ("crates/b/src/lib.rs", "b", "fn f() { let _ = fail(); }"),
        ]);
        assert!(super::run(&w).is_empty());
    }

    #[test]
    fn respects_allow() {
        let w = ws(vec![(
            "crates/x/src/lib.rs",
            "x",
            "fn close(a: u8) -> Result<(), ()> { Ok(()) }\n\
             fn f() {\n    // lint: allow(swallowed-result, reason = \"best-effort\")\n    let _ = close(1);\n}",
        )]);
        assert!(super::run(&w).is_empty());
    }
}
