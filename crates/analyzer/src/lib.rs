//! `mhhea-analyzer` — project-specific static analysis for the MHHEA
//! workspace.
//!
//! Five lints, each enforcing an invariant that PRs 4–6 established in
//! prose (module docs, `docs/PROTOCOL.md`) but nothing enforced:
//!
//! | lint | invariant |
//! |------|-----------|
//! | `lock-order` | `.lock()` nesting never inverts the declared `// lock-order:` partial order |
//! | `panic-path` | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/bare indexing in serving-path non-test code |
//! | `protocol-drift` | the tables in `docs/PROTOCOL.md` match the constants and enums in `crates/net` |
//! | `truncating-cast` | no unjustified narrowing `as` casts in codec/serialization paths |
//! | `swallowed-result` | no `let _ =` over calls to workspace functions returning `Result` |
//!
//! The scanner is a hand-rolled lexer ([`lexer`]) — string, char, and
//! comment aware, but not a parser. See `docs/ARCHITECTURE.md` § "Static
//! analysis layer" for the annotation grammar and baseline workflow.

pub mod baseline;
pub mod lexer;
pub mod lints;
pub mod model;

use std::path::{Path, PathBuf};

use model::{Finding, SourceFile};

/// Path-classification for the lints: which files are on the serving
/// path (L2), which hold codec casts (L4), and where the protocol spec
/// and its code counterparts live (L3).
pub struct Config {
    /// Repo-relative prefixes/files whose non-test code must be
    /// panic-free (L2).
    pub serving_paths: Vec<String>,
    /// Repo-relative files checked for narrowing casts (L4).
    pub cast_paths: Vec<String>,
    /// Repo-relative path of the protocol spec markdown (L3).
    pub spec_path: String,
    /// Repo-relative files holding the spec's code counterparts (L3).
    pub spec_code_paths: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            serving_paths: vec![
                "crates/net/src/".to_string(),
                "crates/core/src/gateway.rs".to_string(),
                "crates/core/src/pipeline.rs".to_string(),
            ],
            cast_paths: vec![
                "crates/net/src/frame.rs".to_string(),
                "crates/net/src/conn.rs".to_string(),
                "crates/core/src/gateway.rs".to_string(),
            ],
            spec_path: "docs/PROTOCOL.md".to_string(),
            spec_code_paths: vec![
                "crates/net/src/frame.rs".to_string(),
                "crates/net/src/server.rs".to_string(),
                "crates/net/src/dgram/frame.rs".to_string(),
            ],
        }
    }
}

impl Config {
    /// True when `rel_path` is on the serving path (L2 applies).
    pub fn is_serving(&self, rel_path: &str) -> bool {
        self.serving_paths
            .iter()
            .any(|p| rel_path == p || rel_path.starts_with(p.as_str()))
    }

    /// True when `rel_path` is a codec/serialization file (L4 applies).
    pub fn is_cast_path(&self, rel_path: &str) -> bool {
        self.cast_paths.iter().any(|p| rel_path == p)
    }
}

/// The loaded analysis input: parsed sources plus the spec text.
pub struct Workspace {
    /// Parsed Rust sources, each tagged with its crate name.
    pub files: Vec<SourceFile>,
    /// `(rel_path, text)` of the protocol spec, when present.
    pub spec: Option<(String, String)>,
    /// Path classification.
    pub config: Config,
}

impl Workspace {
    /// Runs all five lints and returns findings sorted by file/line/col.
    pub fn run_lints(&self) -> Vec<Finding> {
        let mut findings = Vec::new();
        findings.extend(lints::lock_order::run(self));
        findings.extend(lints::panic_path::run(self));
        findings.extend(lints::protocol_drift::run(self));
        findings.extend(lints::casts::run(self));
        findings.extend(lints::results::run(self));
        findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.col, a.lint).cmp(&(b.file.as_str(), b.line, b.col, b.lint))
        });
        findings
    }
}

/// Directory names never scanned: generated/vendored code and code that
/// is allowed to panic by design (tests, benches, examples, CLI bins).
const SKIP_DIRS: &[&str] = &[
    "target", "vendor", "tests", "benches", "examples", "bin", "fixtures", ".git",
];

/// Loads the real workspace rooted at `root`: `src/` of the facade and
/// of every crate under `crates/`, plus `docs/PROTOCOL.md`.
pub fn load_workspace(root: &Path) -> std::io::Result<Workspace> {
    let skip = |p: &Path| {
        p.file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| SKIP_DIRS.contains(&n))
    };
    let mut files = Vec::new();
    let mut load_src = |src_dir: PathBuf, crate_name: String| -> std::io::Result<()> {
        if !src_dir.is_dir() {
            return Ok(());
        }
        for path in model::rust_files(&src_dir, &skip) {
            files.push(SourceFile::load(root, &path, &crate_name)?);
        }
        Ok(())
    };

    load_src(root.join("src"), "mhhea-suite".to_string())?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(&crates_dir)?
            .flatten()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for krate in entries {
            if !krate.is_dir() {
                continue;
            }
            let name = krate
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("unknown")
                .to_string();
            load_src(krate.join("src"), name)?;
        }
    }

    let config = Config::default();
    let spec_file = root.join(&config.spec_path);
    let spec = match std::fs::read_to_string(&spec_file) {
        Ok(text) => Some((config.spec_path.clone(), text)),
        Err(_) => None,
    };
    Ok(Workspace {
        files,
        spec,
        config,
    })
}
