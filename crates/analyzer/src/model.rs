//! Source model: lexed files plus the structural facts the lints share —
//! function spans, test-code spans, and the two annotation grammars
//! (`// lock-order: …` declarations and `// lint: allow(…)` suppressions).

use std::path::{Path, PathBuf};

use crate::lexer::{lex, Token, TokenKind};

/// One finding, printed rustc-style and matched against the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint name (`panic-path`, `lock-order`, …).
    pub lint: &'static str,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// 1-based column of the finding.
    pub col: u32,
    /// Human-facing rationale.
    pub message: String,
    /// The trimmed source line text — the baseline's drift-stable key.
    pub key: String,
}

impl Finding {
    /// Renders the finding in `file:line:col: lint: message` form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.lint, self.message
        )
    }
}

/// A lexed source file plus derived spans.
pub struct SourceFile {
    /// Repo-relative path (the path findings and baselines use).
    pub rel_path: String,
    /// Name of the crate the file belongs to (`net`, `core`, …) —
    /// scopes L1 callee resolution and L5's function index.
    pub crate_name: String,
    /// Source lines, for baseline keys and annotation lookup.
    pub lines: Vec<String>,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Token index ranges that are test-only code (`#[cfg(test)]` mods,
    /// `#[test]` fns): half-open `[start, end)`.
    pub test_spans: Vec<(usize, usize)>,
    /// Function spans found in the file.
    pub functions: Vec<FnSpan>,
}

/// One `fn` item: where its signature and body live in the token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token range of the signature, `[fn_tok, body_start)`.
    pub sig: (usize, usize),
    /// Token range of the body including braces; empty for bodyless fns.
    pub body: (usize, usize),
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True when the fn sits inside a test span.
    pub is_test: bool,
}

impl SourceFile {
    /// Lexes `text` and derives spans. `rel_path` should be repo-relative
    /// with forward slashes.
    pub fn parse(rel_path: &str, crate_name: &str, text: &str) -> SourceFile {
        let tokens = lex(text);
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        let test_spans = find_test_spans(&tokens);
        let functions = find_functions(&tokens, &test_spans);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            lines,
            tokens,
            test_spans,
            functions,
        }
    }

    /// Reads and parses a file from disk. `root` is stripped to form the
    /// repo-relative path.
    pub fn load(root: &Path, path: &Path, crate_name: &str) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(path)?;
        let rel = path.strip_prefix(root).unwrap_or(path);
        let rel = rel.to_string_lossy().replace('\\', "/");
        Ok(SourceFile::parse(&rel, crate_name, &text))
    }

    /// True when token index `i` falls inside test-only code.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// The trimmed text of 1-based line `line` (baseline key).
    pub fn line_key(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// Builds a finding at token `i`.
    pub fn finding_at(&self, lint: &'static str, i: usize, message: String) -> Finding {
        let tok = &self.tokens[i];
        Finding {
            lint,
            file: self.rel_path.clone(),
            line: tok.line,
            col: tok.col,
            message,
            key: self.line_key(tok.line),
        }
    }

    /// True when a `// lint: allow(<lint>, reason = "…")` suppression
    /// covers 1-based line `line`: same line, the line above, or a
    /// function-level allow directly above the enclosing `fn`.
    pub fn allowed(&self, lint: &str, line: u32, tok_idx: usize) -> bool {
        if line_has_allow(self.lines.get(line as usize - 1), lint)
            || (line >= 2 && comment_line_has_allow(self.lines.get(line as usize - 2), lint))
        {
            return true;
        }
        // Function-level: an allow on the line(s) directly above the `fn`
        // keyword of the function whose body contains this token.
        for f in &self.functions {
            if tok_idx >= f.body.0 && tok_idx < f.body.1 && f.body.0 != f.body.1 {
                let fn_line = f.line as usize;
                for back in 1..=3 {
                    if fn_line < back + 1 {
                        break;
                    }
                    let candidate = self.lines.get(fn_line - 1 - back);
                    if comment_line_has_allow(candidate, lint) {
                        return true;
                    }
                    // Keep walking only past attributes/doc lines.
                    match candidate.map(|l| l.trim()) {
                        Some(l) if l.starts_with("#[") || l.starts_with("///") => continue,
                        _ => break,
                    }
                }
            }
        }
        false
    }
}

/// An allow on the *previous* line only counts when that line is purely
/// a comment — a trailing allow on a line of code must not bless its
/// neighbours.
fn comment_line_has_allow(line: Option<&String>, lint: &str) -> bool {
    line.is_some_and(|l| l.trim_start().starts_with("//")) && line_has_allow(line, lint)
}

fn line_has_allow(line: Option<&String>, lint: &str) -> bool {
    let Some(line) = line else { return false };
    let Some(pos) = line.find("// lint: allow(") else {
        return false;
    };
    let rest = &line[pos + "// lint: allow(".len()..];
    let Some(close) = rest.find(')') else {
        return false;
    };
    let inner = &rest[..close];
    let mut parts = inner.splitn(2, ',');
    let name = parts.next().unwrap_or("").trim();
    let reason = parts.next().unwrap_or("").trim();
    // A suppression without a justification does not count.
    name == lint
        && reason.strip_prefix("reason").is_some_and(|r| {
            let r = r.trim_start();
            r.strip_prefix('=')
                .is_some_and(|v| v.trim().len() > 2 && v.trim().starts_with('"'))
        })
}

/// Finds `#[cfg(test)] mod … { … }` and `#[test] fn … { … }` spans.
fn find_test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            // Scan the attribute body for the bare ident `test`.
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut has_test = false;
            while j < tokens.len() && depth > 0 {
                let t = &tokens[j];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                } else if t.is_ident("test") {
                    has_test = true;
                }
                j += 1;
            }
            if has_test {
                // The attributed item: skip further attributes, then find
                // the item's opening brace (or terminating `;`).
                let mut k = j;
                while k + 1 < tokens.len() && tokens[k].is_punct('#') && tokens[k + 1].is_punct('[')
                {
                    let mut depth = 1i32;
                    k += 2;
                    while k < tokens.len() && depth > 0 {
                        if tokens[k].is_punct('[') {
                            depth += 1;
                        } else if tokens[k].is_punct(']') {
                            depth -= 1;
                        }
                        k += 1;
                    }
                }
                let mut body_open = None;
                let mut m = k;
                while m < tokens.len() {
                    let t = &tokens[m];
                    if t.is_punct('{') {
                        body_open = Some(m);
                        break;
                    }
                    if t.is_punct(';') {
                        break;
                    }
                    m += 1;
                }
                if let Some(open) = body_open {
                    let close = matching_brace(tokens, open);
                    spans.push((i, close + 1));
                    i = close + 1;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}

/// Index of the `}` matching the `{` at `open` (or the last token).
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Finds every `fn` item and its signature/body token ranges.
fn find_functions(tokens: &[Token], test_spans: &[(usize, usize)]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let in_test = |i: usize| -> bool { test_spans.iter().any(|&(s, e)| i >= s && i < e) };
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            let Some(name_tok) = tokens.get(i + 1) else {
                break;
            };
            if name_tok.kind != TokenKind::Ident {
                i += 1;
                continue; // `fn(` in a fn-pointer type
            }
            // Find the body `{` at zero paren/bracket depth, or `;`.
            let mut j = i + 2;
            let mut pdepth = 0i32;
            let mut body = (0usize, 0usize);
            let mut sig_end = tokens.len();
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('(') || t.is_punct('[') {
                    pdepth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    pdepth -= 1;
                } else if pdepth == 0 && t.is_punct('{') {
                    let close = matching_brace(tokens, j);
                    body = (j, close + 1);
                    sig_end = j;
                    break;
                } else if pdepth == 0 && t.is_punct(';') {
                    sig_end = j;
                    break;
                }
                j += 1;
            }
            fns.push(FnSpan {
                name: name_tok.text.clone(),
                fn_tok: i,
                sig: (i, sig_end),
                body,
                line: tokens[i].line,
                is_test: in_test(i),
            });
            // Continue scanning *inside* the body too (nested fns/closures
            // are rare but legal); just advance past the name.
            i += 2;
            continue;
        }
        i += 1;
    }
    fns
}

/// A parsed `// lock-order:` annotation.
#[derive(Debug, Clone)]
pub struct LockAnnotation {
    /// The identifier (field or binding name) the annotation binds to.
    pub binds: String,
    /// The lock class assigned to that identifier.
    pub class: String,
    /// Declared `before < after` edges (global partial order).
    pub edges: Vec<(String, String)>,
    /// File and line of the annotation, for diagnostics.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

/// Extracts `// lock-order: a < b < c` annotations. Each binds its class
/// list's *first* name to the next `ident :` declaration after the
/// comment (a struct field or fn parameter), and contributes `<` edges.
pub fn lock_annotations(file: &SourceFile) -> Vec<LockAnnotation> {
    let mut out = Vec::new();
    for (i, tok) in file.tokens.iter().enumerate() {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let Some(rest) = tok.text.strip_prefix("//") else {
            continue;
        };
        let rest = rest.trim_start_matches(['/', '!']).trim_start();
        let Some(spec) = rest.strip_prefix("lock-order:") else {
            continue;
        };
        let classes: Vec<String> = spec
            .split('<')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty() && s.chars().all(|c| c.is_alphanumeric() || c == '_'))
            .collect();
        if classes.is_empty() {
            continue;
        }
        // Bind to the next `ident :` pair after the comment.
        let mut binds = None;
        let mut j = i + 1;
        while j + 1 < file.tokens.len() {
            let t = &file.tokens[j];
            if t.kind == TokenKind::Ident
                && !t.is_ident("pub")
                && !t.is_ident("mut")
                && !t.is_ident("fn")
                && !t.is_ident("crate")
                && file.tokens[j + 1].is_punct(':')
                && !file.tokens.get(j + 2).is_some_and(|n| n.is_punct(':'))
            {
                binds = Some(t.text.clone());
                break;
            }
            j += 1;
            if j > i + 40 {
                break; // annotation must sit near its declaration
            }
        }
        let Some(binds) = binds else { continue };
        let edges = classes
            .windows(2)
            .map(|w| (w[0].clone(), w[1].clone()))
            .collect();
        out.push(LockAnnotation {
            binds,
            class: classes[0].clone(),
            edges,
            file: file.rel_path.clone(),
            line: tok.line,
        });
    }
    out
}

/// Recursively collects `.rs` files under `dir`, skipping anything for
/// which `skip` returns true.
pub fn rust_files(dir: &Path, skip: &dyn Fn(&Path) -> bool) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if skip(&path) {
            continue;
        }
        if path.is_dir() {
            out.extend(rust_files(&path, skip));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_spans_cover_cfg_test_mod() {
        let f = SourceFile::parse(
            "x.rs",
            "x",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { a.unwrap(); }\n}\n",
        );
        let unwrap_idx = f.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(f.in_test(unwrap_idx));
        let live = f.functions.iter().find(|f| f.name == "live").unwrap();
        assert!(!live.is_test);
        let helper = f.functions.iter().find(|f| f.name == "helper").unwrap();
        assert!(helper.is_test);
    }

    #[test]
    fn fn_bodies_span_braces() {
        let f = SourceFile::parse(
            "x.rs",
            "x",
            "fn a(x: u8) -> u8 { if x > 0 { x } else { 1 } }",
        );
        let a = &f.functions[0];
        assert_eq!(f.tokens[a.body.0].text, "{");
        assert_eq!(f.tokens[a.body.1 - 1].text, "}");
    }

    #[test]
    fn lock_annotation_binds_next_field() {
        let f = SourceFile::parse(
            "x.rs",
            "x",
            "struct S {\n    // lock-order: registry < mux_shard\n    pub registry: Mutex<u8>,\n}\n",
        );
        let anns = lock_annotations(&f);
        assert_eq!(anns.len(), 1);
        assert_eq!(anns[0].binds, "registry");
        assert_eq!(anns[0].class, "registry");
        assert_eq!(anns[0].edges, vec![("registry".into(), "mux_shard".into())]);
    }

    #[test]
    fn allow_requires_reason() {
        let f = SourceFile::parse(
            "x.rs",
            "x",
            "fn a() {\n    x.unwrap(); // lint: allow(panic-path, reason = \"proven\")\n    y.unwrap(); // lint: allow(panic-path)\n}\n",
        );
        let idxs: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert!(f.allowed("panic-path", f.tokens[idxs[0]].line, idxs[0]));
        assert!(!f.allowed("panic-path", f.tokens[idxs[1]].line, idxs[1]));
    }
}
