//! The burn-down baseline: `analyzer-baseline.toml`.
//!
//! Pre-existing findings live in a committed baseline so the analyzer
//! can be adopted without fixing the world first, while any *new*
//! finding fails CI. Matching is by `(lint, file, trimmed line text)` —
//! not line numbers — so unrelated edits that shift lines do not
//! invalidate entries; the stored `line` is informational.
//!
//! The file is TOML by shape (`[[finding]]` tables with string/integer
//! keys), written and parsed by the minimal reader below — no external
//! TOML crate in this environment.

use std::collections::HashMap;

use crate::model::Finding;

/// One baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Lint name.
    pub lint: String,
    /// Repo-relative file.
    pub file: String,
    /// Informational 1-based line (not used for matching).
    pub line: u32,
    /// The trimmed source line text — the matching key.
    pub key: String,
}

/// A parsed baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<Entry>,
}

/// The result of matching findings against a baseline.
pub struct Comparison {
    /// Findings not covered by the baseline — these fail the run.
    pub new: Vec<Finding>,
    /// Baseline entries with no current finding — fixed; safe to remove.
    pub stale: Vec<Entry>,
    /// Number of findings absorbed by the baseline.
    pub matched: usize,
}

impl Baseline {
    /// Parses the baseline text. Unknown keys are ignored; a structurally
    /// broken file is an error (better loud than silently empty).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        let mut current: Option<Entry> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[finding]]" {
                if let Some(e) = current.take() {
                    entries.push(validate(e, idx)?);
                }
                current = Some(Entry {
                    lint: String::new(),
                    file: String::new(),
                    line: 0,
                    key: String::new(),
                });
                continue;
            }
            let Some(entry) = current.as_mut() else {
                return Err(format!("line {}: key outside [[finding]]", idx + 1));
            };
            let Some((k, v)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", idx + 1));
            };
            let (k, v) = (k.trim(), v.trim());
            match k {
                "lint" => entry.lint = unquote(v, idx)?,
                "file" => entry.file = unquote(v, idx)?,
                "text" => entry.key = unquote(v, idx)?,
                "line" => {
                    entry.line = v
                        .parse()
                        .map_err(|_| format!("line {}: bad line number", idx + 1))?
                }
                _ => {}
            }
        }
        if let Some(e) = current.take() {
            entries.push(validate(e, 0)?);
        }
        Ok(Baseline { entries })
    }

    /// Renders findings as a fresh baseline file.
    pub fn render(findings: &[Finding]) -> String {
        let mut out = String::from(
            "# mhhea-analyzer baseline — pre-existing findings being burned down.\n\
             # Matching is by (lint, file, text); `line` is informational.\n\
             # Regenerate with: cargo run -p mhhea-analyzer -- bless\n",
        );
        for f in findings {
            out.push_str("\n[[finding]]\n");
            out.push_str(&format!("lint = {}\n", quote(f.lint)));
            out.push_str(&format!("file = {}\n", quote(&f.file)));
            out.push_str(&format!("line = {}\n", f.line));
            out.push_str(&format!("text = {}\n", quote(&f.key)));
        }
        out
    }

    /// Matches `findings` against the baseline (multiset semantics per
    /// `(lint, file, text)` key).
    pub fn compare(&self, findings: &[Finding]) -> Comparison {
        let mut budget: HashMap<(&str, &str, &str), usize> = HashMap::new();
        for e in &self.entries {
            *budget
                .entry((e.lint.as_str(), e.file.as_str(), e.key.as_str()))
                .or_insert(0) += 1;
        }
        let mut new = Vec::new();
        let mut matched = 0usize;
        for f in findings {
            match budget.get_mut(&(f.lint, f.file.as_str(), f.key.as_str())) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    matched += 1;
                }
                _ => new.push(f.clone()),
            }
        }
        let mut stale = Vec::new();
        for e in &self.entries {
            let slot = budget
                .get_mut(&(e.lint.as_str(), e.file.as_str(), e.key.as_str()))
                .expect("entry inserted above");
            if *slot > 0 {
                *slot -= 1;
                stale.push(e.clone());
            }
        }
        Comparison {
            new,
            stale,
            matched,
        }
    }
}

fn validate(e: Entry, idx: usize) -> Result<Entry, String> {
    if e.lint.is_empty() || e.file.is_empty() {
        return Err(format!(
            "entry ending near line {}: `lint` and `file` are required",
            idx + 1
        ));
    }
    Ok(e)
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

fn unquote(v: &str, idx: usize) -> Result<String, String> {
    let inner = v
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("line {}: expected a quoted string", idx + 1))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: &'static str, file: &str, line: u32, key: &str) -> Finding {
        Finding {
            lint,
            file: file.to_string(),
            line,
            col: 1,
            message: "m".to_string(),
            key: key.to_string(),
        }
    }

    #[test]
    fn roundtrip_and_match() {
        let fs = vec![
            finding("panic-path", "a.rs", 10, "x.unwrap();"),
            finding("panic-path", "a.rs", 20, "x.unwrap();"),
            finding("truncating-cast", "b.rs", 5, "n as u8, \"quoted\""),
        ];
        let text = Baseline::render(&fs);
        let base = Baseline::parse(&text).expect("parse");
        assert_eq!(base.entries.len(), 3);
        let cmp = base.compare(&fs);
        assert!(cmp.new.is_empty());
        assert!(cmp.stale.is_empty());
        assert_eq!(cmp.matched, 3);
    }

    #[test]
    fn line_drift_still_matches() {
        let base = Baseline::render(&[finding("panic-path", "a.rs", 10, "x.unwrap();")]);
        let base = Baseline::parse(&base).expect("parse");
        let cmp = base.compare(&[finding("panic-path", "a.rs", 99, "x.unwrap();")]);
        assert!(cmp.new.is_empty());
    }

    #[test]
    fn new_finding_and_stale_entry_detected() {
        let base = Baseline::render(&[
            finding("panic-path", "a.rs", 10, "gone.unwrap();"),
            finding("panic-path", "a.rs", 11, "kept.unwrap();"),
        ]);
        let base = Baseline::parse(&base).expect("parse");
        let cmp = base.compare(&[
            finding("panic-path", "a.rs", 11, "kept.unwrap();"),
            finding("panic-path", "a.rs", 50, "brand_new.unwrap();"),
        ]);
        assert_eq!(cmp.new.len(), 1);
        assert_eq!(cmp.new[0].key, "brand_new.unwrap();");
        assert_eq!(cmp.stale.len(), 1);
        assert_eq!(cmp.stale[0].key, "gone.unwrap();");
    }

    #[test]
    fn multiset_counts_matter() {
        // Two identical lines in the baseline, three in the code: one new.
        let base = Baseline::render(&[
            finding("panic-path", "a.rs", 1, "x.unwrap();"),
            finding("panic-path", "a.rs", 2, "x.unwrap();"),
        ]);
        let base = Baseline::parse(&base).expect("parse");
        let cmp = base.compare(&[
            finding("panic-path", "a.rs", 1, "x.unwrap();"),
            finding("panic-path", "a.rs", 2, "x.unwrap();"),
            finding("panic-path", "a.rs", 3, "x.unwrap();"),
        ]);
        assert_eq!(cmp.new.len(), 1);
        assert!(cmp.stale.is_empty());
    }

    #[test]
    fn broken_file_is_an_error() {
        assert!(Baseline::parse("lint = \"x\"\n").is_err());
        assert!(Baseline::parse("[[finding]]\nlint = unquoted\n").is_err());
    }
}
