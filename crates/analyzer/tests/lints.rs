//! Integration tests: every lint against the seeded fixture corpus
//! (`tests/fixtures/` — a miniature workspace tree with labelled
//! positive/negative cases), plus the self-check that the *real*
//! workspace is clean against the committed baseline.

use std::path::{Path, PathBuf};

use mhhea_analyzer::baseline::Baseline;
use mhhea_analyzer::load_workspace;
use mhhea_analyzer::model::Finding;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture_findings() -> Vec<Finding> {
    load_workspace(&fixture_root())
        .expect("load fixture workspace")
        .run_lints()
}

fn rendered(findings: &[Finding]) -> String {
    findings
        .iter()
        .map(Finding::render)
        .collect::<Vec<_>>()
        .join("\n")
}

fn of_lint<'a>(findings: &'a [Finding], lint: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.lint == lint).collect()
}

#[test]
fn lock_order_catches_each_seeded_violation_and_nothing_else() {
    let findings = fixture_findings();
    let locks = of_lint(&findings, "lock-order");
    assert_eq!(
        locks.len(),
        3,
        "lock-order findings:\n{}",
        rendered(&findings)
    );
    assert!(locks.iter().all(|f| f.file == "crates/core/src/locks.rs"));
    // One plain inversion, one self-deadlock, one through a callee — and
    // nothing in `good` / `good_sequential` (lines 19..35 are clean).
    assert!(
        locks.iter().all(|f| f.line >= 36),
        "false positive in a compliant fn:\n{}",
        rendered(&findings)
    );
    assert!(locks
        .iter()
        .any(|f| f.message.contains("inverting the declared order")));
    assert!(locks.iter().any(|f| f.message.contains("self-deadlock")));
    assert!(locks
        .iter()
        .any(|f| f.message.contains("calls `touch_registry`")));
}

#[test]
fn panic_path_catches_seeded_sites_and_honours_reasons() {
    let findings = fixture_findings();
    let panics = of_lint(&findings, "panic-path");
    assert_eq!(
        panics.len(),
        3,
        "panic-path findings:\n{}",
        rendered(&findings)
    );
    assert!(panics.iter().all(|f| f.file == "crates/net/src/frame.rs"));
    // `decode` (unwrap), `first_byte` (index), `flags` (reason-less
    // allow) — but not `version` (reasoned allow) and not the test mod.
    let lines: Vec<u32> = panics.iter().map(|f| f.line).collect();
    assert!(lines.contains(&30), "decode's unwrap missed: {lines:?}");
    assert!(lines.contains(&35), "first_byte's index missed: {lines:?}");
    assert!(lines.contains(&47), "reason-less allow honoured: {lines:?}");
}

#[test]
fn truncating_cast_catches_the_unjustified_narrowing_only() {
    let findings = fixture_findings();
    let casts = of_lint(&findings, "truncating-cast");
    assert_eq!(casts.len(), 1, "cast findings:\n{}", rendered(&findings));
    assert_eq!(casts[0].file, "crates/net/src/frame.rs");
    assert!(casts[0].message.contains("u16"));
}

#[test]
fn protocol_drift_catches_both_directions_and_the_caps() {
    let findings = fixture_findings();
    let drift = of_lint(&findings, "protocol-drift");
    assert_eq!(drift.len(), 5, "drift findings:\n{}", rendered(&findings));
    let all = rendered(&findings);
    // Value mismatch (Data 3 vs 2), spec-only row (Bye), code-only
    // variant (Rekey), cap mismatch (MAX_PAYLOAD), cap without a const.
    assert!(all.contains("Data"), "value mismatch missed:\n{all}");
    assert!(all.contains("Bye"), "spec-only row missed:\n{all}");
    assert!(all.contains("Rekey"), "code-only variant missed:\n{all}");
    assert!(all.contains("MAX_PAYLOAD"), "cap mismatch missed:\n{all}");
    assert!(all.contains("MAX_NOPE"), "missing const missed:\n{all}");
}

#[test]
fn swallowed_result_catches_the_bare_let_underscore_only() {
    let findings = fixture_findings();
    let swallowed = of_lint(&findings, "swallowed-result");
    assert_eq!(
        swallowed.len(),
        1,
        "swallowed-result findings:\n{}",
        rendered(&findings)
    );
    assert!(swallowed[0].message.contains("checked_write"));
}

/// The self-check the CI `analyze` job re-runs from the CLI: the real
/// workspace must be clean against the committed baseline — no new
/// findings, no stale (already-fixed) entries left behind.
#[test]
fn real_workspace_is_clean_against_committed_baseline() {
    let root = repo_root();
    let ws = load_workspace(&root).expect("load real workspace");
    assert!(
        ws.files.len() > 50,
        "suspiciously few files scanned: {}",
        ws.files.len()
    );
    assert!(ws.spec.is_some(), "docs/PROTOCOL.md missing");
    let findings = ws.run_lints();
    let text = std::fs::read_to_string(root.join("analyzer-baseline.toml"))
        .expect("committed analyzer-baseline.toml");
    let baseline = Baseline::parse(&text).expect("baseline parses");
    let cmp = baseline.compare(&findings);
    assert!(
        cmp.new.is_empty(),
        "new findings not in the baseline:\n{}",
        rendered(&cmp.new)
    );
    assert!(
        cmp.stale.is_empty(),
        "stale baseline entries (fixed findings still listed): {:?}",
        cmp.stale
            .iter()
            .map(|e| format!("{} {}:{}", e.lint, e.file, e.line))
            .collect::<Vec<_>>()
    );
}

/// PR 7's burn-down promise: the serving-path net crate carries **zero**
/// baselined findings — every panic-path/cast site there was either
/// fixed or explicitly justified with a reasoned allow.
#[test]
fn net_crate_baseline_is_empty() {
    let text = std::fs::read_to_string(repo_root().join("analyzer-baseline.toml"))
        .expect("committed analyzer-baseline.toml");
    let baseline = Baseline::parse(&text).expect("baseline parses");
    let net: Vec<String> = baseline
        .entries
        .iter()
        .filter(|e| e.file.starts_with("crates/net/"))
        .map(|e| format!("{} {}:{}", e.lint, e.file, e.line))
        .collect();
    assert!(
        net.is_empty(),
        "crates/net findings still baselined: {net:?}"
    );
}
