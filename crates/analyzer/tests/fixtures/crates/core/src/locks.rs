//! Fixture lock-order file — two annotated mutex classes with one
//! compliant path and three seeded violations.
//!
//! Never compiled; lexed by `tests/lints.rs`. The class annotations
//! mirror the real workspace's `registry < mux_shard` order.

use std::sync::Mutex;

/// The fixture's shared state.
pub struct World {
    // lock-order: registry < mux_shard
    registry: Mutex<u32>,
    // lock-order: mux_shard
    shard: Mutex<u32>,
}

impl World {
    /// Negative: takes the classes in the declared order.
    pub fn good(&self) {
        let reg = self.registry.lock().unwrap();
        let sh = self.shard.lock().unwrap();
        drop(sh);
        drop(reg);
    }

    /// Negative: the first guard is dropped before the second class is
    /// taken, so nesting never happens.
    pub fn good_sequential(&self) {
        let sh = self.shard.lock().unwrap();
        drop(sh);
        let reg = self.registry.lock().unwrap();
        drop(reg);
    }

    /// Positive (lock-order): the shard guard is still held when the
    /// registry — ordered *before* it — is taken.
    pub fn bad_inversion(&self) {
        let sh = self.shard.lock().unwrap();
        let reg = self.registry.lock().unwrap();
        drop(reg);
        drop(sh);
    }

    /// Positive (lock-order): same class twice is a self-deadlock.
    pub fn bad_double(&self) {
        let a = self.registry.lock().unwrap();
        let b = self.registry.lock().unwrap();
        drop(b);
        drop(a);
    }

    /// Positive (lock-order): the inversion hides in a same-crate callee.
    pub fn bad_via_callee(&self) {
        let sh = self.shard.lock().unwrap();
        self.touch_registry();
        drop(sh);
    }

    fn touch_registry(&self) {
        let reg = self.registry.lock().unwrap();
        drop(reg);
    }
}
