//! Fixture codec file — seeded violations for the panic-path,
//! truncating-cast, swallowed-result, and protocol-drift lints.
//!
//! This file is never compiled; it is lexed by the analyzer integration
//! tests (`tests/lints.rs`), which pin the exact finding set. Each item
//! below is labelled **positive** (must be flagged) or **negative**
//! (must stay clean — the false-positive guard).

/// Spec-checked enum; the fixture PROTOCOL.md drifts from it on purpose.
pub enum FrameKind {
    /// Negative: matches the spec row exactly.
    Hello = 1,
    /// Positive (protocol-drift): the spec table says 3.
    Data = 2,
    /// Positive (protocol-drift): missing from the spec table entirely.
    Rekey = 8,
}

/// Negative: matches the spec's error-codes table exactly.
pub enum ErrorCode {
    /// The one fixture code.
    Protocol = 1,
}

/// Positive (protocol-drift): the spec's size-caps row says 512.
pub const MAX_PAYLOAD: usize = 1024;

/// Positive (panic-path): unannotated `unwrap` on the serving path.
pub fn decode(buf: &[u8]) -> u8 {
    *buf.first().unwrap()
}

/// Positive (panic-path): bare indexing on the serving path.
pub fn first_byte(buf: &[u8]) -> u8 {
    buf[0]
}

/// Negative: the allow carries a reason, so the index is justified.
pub fn version(buf: &[u8]) -> u8 {
    // lint: allow(panic-path, reason = "caller guarantees a non-empty header")
    buf[0]
}

/// Positive (panic-path): a reason-less allow is ignored, not honoured.
pub fn flags(buf: &[u8]) -> u8 {
    // lint: allow(panic-path)
    buf[1]
}

/// Positive (truncating-cast): unjustified narrowing in a codec file.
pub fn encode_len(len: usize) -> u16 {
    len as u16
}

/// Negative: the cast is annotated with a reason.
pub fn encode_kind(kind: FrameKind) -> u8 {
    // lint: allow(truncating-cast, reason = "repr(u8) discriminant is the wire byte")
    kind as u8
}

/// A `Result`-returning function for the swallowed-result index.
pub fn checked_write(v: u8) -> Result<u8, ()> {
    if v > 0 {
        Ok(v)
    } else {
        Err(())
    }
}

/// Positive (swallowed-result): the `Result` is dropped on the floor.
pub fn swallow() {
    let _ = checked_write(7);
}

/// Negative: an annotated swallow is a recorded decision.
pub fn swallow_justified() {
    // lint: allow(swallowed-result, reason = "fixture: best-effort write")
    let _ = checked_write(7);
}

#[cfg(test)]
mod tests {
    /// Negative: test code may panic freely.
    #[test]
    fn panics_are_fine_in_tests() {
        let buf = [1u8, 2];
        assert_eq!(super::decode(&buf), buf[0]);
        super::checked_write(0).unwrap_err();
    }
}
