//! Adversarial MHNP-D suite: malformed, replayed, stale and cross-peer
//! datagrams against a live server's UDP path.
//!
//! Every case checks three things: the datagram driver answers abuse per
//! its refusal policy (an attributed `Error` frame for packets it can
//! pin to a stream, **silence** for packets it cannot — no UDP
//! amplification), the abuse burns no usable cipher state, and the blast
//! radius is zero — a healthy TCP stream pumping oracle-checked traffic
//! through the same mux, and a healthy datagram stream on the same
//! driver, both come out bit-exact after every attack.

use std::io::Write;
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::time::Duration;

use mhhea::pipeline::chunk_seed;
use mhhea::session::EncryptSession;
use mhhea::{Key, KeyRing, LfsrSource};
use mhhea_net::client::NetClient;
use mhhea_net::dgram::{decode_datagram, DgramClient, DGRAM_MAX_PACKET_BYTES};
use mhhea_net::frame::{self, encode_blocks, flags, join_seq, ErrorCode, Frame, FrameKind, Hello};
use mhhea_net::server::{NetServer, ServerConfig, ServerHandle};

fn key() -> Key {
    Key::from_nibbles(&[(0, 3), (2, 5), (7, 1), (4, 4)]).unwrap()
}

/// Reactor threads for every per-test server: 1 by default, overridable
/// with `MHNP_REACTORS` (the datagram driver is a single thread either
/// way, but attach/rekey races differ with the TCP side's parallelism).
fn reactors() -> usize {
    std::env::var("MHNP_REACTORS")
        .ok()
        .map(|v| v.parse().expect("MHNP_REACTORS must be a positive integer"))
        .unwrap_or(1)
}

fn spawn_server() -> ServerHandle {
    NetServer::spawn(
        "127.0.0.1:0",
        ServerConfig::new([(1, key())])
            .with_dgram()
            .with_reactors(reactors()),
    )
    .expect("bind server")
}

fn dgram_addr(handle: &ServerHandle) -> SocketAddr {
    handle.dgram_addr().expect("dgram path enabled")
}

/// A healthy TCP client+oracle pair, used to prove an attack on the UDP
/// path desynchronised nothing on the shared mux.
struct Witness {
    client: NetClient,
    oracle: EncryptSession<LfsrSource>,
    stream: u64,
    round: u32,
}

impl Witness {
    fn open(addr: SocketAddr, stream: u64) -> Witness {
        let mut client = NetClient::connect(addr).unwrap();
        client.open_stream(stream, Hello::new(1, 0xD1CE)).unwrap();
        Witness {
            client,
            oracle: EncryptSession::new(key().clone(), LfsrSource::new(0xD1CE).unwrap()),
            stream,
            round: 0,
        }
    }

    /// One oracle-checked message; panics on any drift.
    fn pump(&mut self) {
        let msg = format!("witness round {} on stream {}", self.round, self.stream);
        self.round += 1;
        let sealed = self.client.seal(self.stream, msg.as_bytes()).unwrap();
        let want = self.oracle.encrypt(msg.as_bytes()).unwrap();
        assert_eq!(sealed.blocks, want, "witness TCP stream desynchronised");
    }
}

/// A raw attacker socket: full control over every header field.
struct Raw {
    sock: UdpSocket,
}

impl Raw {
    fn connect(addr: SocketAddr) -> Raw {
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.connect(addr).unwrap();
        sock.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        Raw { sock }
    }

    fn send(&self, frame: &Frame) {
        self.sock.send(&frame.encode()).unwrap();
    }

    fn send_bytes(&self, bytes: &[u8]) {
        self.sock.send(bytes).unwrap();
    }

    /// One decodable reply, or `None` on timeout (the silent-drop case).
    fn recv(&self) -> Option<Frame> {
        let mut buf = [0u8; DGRAM_MAX_PACKET_BYTES];
        loop {
            match self.sock.recv(&mut buf) {
                Ok(n) => {
                    if let Ok(frame) = decode_datagram(&buf[..n]) {
                        return Some(frame);
                    }
                }
                Err(_) => return None,
            }
        }
    }

    fn exchange(&self, frame: &Frame) -> Option<Frame> {
        self.send(frame);
        self.recv()
    }

    /// Attaches `stream` by token and asserts the acked epoch.
    fn attach(&self, stream: u64, token: u64, want_epoch: u32) {
        let ack = self
            .exchange(
                &Frame::new(FrameKind::DgramResume, stream, 0)
                    .with_payload(token.to_le_bytes().to_vec()),
            )
            .expect("attach should be acked");
        assert_eq!(ack.kind, FrameKind::DgramAck);
        assert_eq!(frame::decode_rekey(&ack.payload).unwrap(), want_epoch);
    }
}

/// Unpacks an `Error` reply and asserts it is attributed to the frame
/// that provoked it.
fn expect_error(reply: Option<Frame>, stream: u64, seq: u64, code: ErrorCode) -> String {
    let reply = reply.expect("abuse should be answered, not ignored");
    assert_eq!(reply.kind, FrameKind::Error);
    assert_eq!(reply.stream, stream, "error not attributed to the stream");
    assert_eq!(reply.seq, seq, "error not attributed to the offending seq");
    let (got, detail) = frame::decode_error(&reply.payload);
    assert_eq!(got, Some(code), "wrong refusal code: {detail}");
    detail
}

/// Opens a stream over TCP and returns `(tcp, token, ring)` ready for
/// datagram attachment.
fn open_stream(handle: &ServerHandle, stream: u64, seed: u16) -> (NetClient, u64, KeyRing) {
    let mut tcp = NetClient::connect(handle.addr()).unwrap();
    let token = tcp.open_stream(stream, Hello::new(1, seed)).unwrap();
    (tcp, token, KeyRing::single(key(), seed).unwrap())
}

fn oracle_seal_chunk(ring: &KeyRing, epoch: u32, index: u32, chunk: &[u8]) -> Vec<u16> {
    let mut enc = EncryptSession::new(
        ring.key(epoch).clone(),
        LfsrSource::new(chunk_seed(ring.seed(epoch), index)).unwrap(),
    );
    enc.encrypt(chunk).unwrap()
}

/// Asserts a raw seal exchange succeeds and the ciphertext matches the
/// oracle — the liveness probe proving abuse burned no cipher state.
fn seal_exact(raw: &Raw, stream: u64, ring: &KeyRing, epoch: u32, index: u32, plain: &[u8]) {
    let reply = raw
        .exchange(
            &Frame::new(FrameKind::DgramData, stream, join_seq(epoch, index))
                .with_payload(plain.to_vec()),
        )
        .expect("healthy seal should be answered");
    assert_eq!(reply.kind, FrameKind::DgramReply, "healthy seal refused");
    assert_eq!(reply.seq, join_seq(epoch, index));
    let (bit_len, blocks) = frame::decode_blocks(&reply.payload).unwrap();
    assert_eq!(bit_len as usize, plain.len() * 8);
    assert_eq!(
        blocks,
        oracle_seal_chunk(ring, epoch, index, plain),
        "sealed chunk drifted after abuse"
    );
}

// ---------------------------------------------------------------------
// Unattributable garbage: silence, not amplification.
// ---------------------------------------------------------------------

#[test]
fn garbage_packets_are_dropped_silently() {
    let server = spawn_server();
    let mut witness = Witness::open(server.addr(), 900);
    let (_tcp, token, ring) = open_stream(&server, 901, 0x5EED);
    let raw = Raw::connect(dgram_addr(&server));
    raw.attach(901, token, 0);

    let valid = Frame::new(FrameKind::DgramData, 901, join_seq(0, 7)).with_payload(vec![9; 8]);
    let bytes = valid.encode();

    // Truncated at every interesting boundary: mid-header, exactly a
    // header, mid-payload.
    for cut in [1, 8, frame::HEADER_LEN, bytes.len() - 1] {
        raw.send_bytes(&bytes[..cut]);
    }
    // Flipped payload byte (CRC fails), flipped magic, empty datagram.
    let mut flipped = bytes.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0xFF;
    raw.send_bytes(&flipped);
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    raw.send_bytes(&bad_magic);
    raw.send_bytes(&[]);
    // Trailing garbage glued onto a valid frame.
    let mut padded = bytes.clone();
    padded.extend_from_slice(b"tail");
    raw.send_bytes(&padded);
    // A perfectly well-formed frame of a TCP-only kind: refused without
    // a reply, because an attacker could forge any source address.
    raw.send(&Frame::new(FrameKind::Data, 901, 0).with_payload(vec![1; 4]));

    assert!(raw.recv().is_none(), "garbage must not be answered");
    let rejected = server
        .stats()
        .dgram_rejected
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(rejected >= 8, "driver counted {rejected} of 8 rejections");

    // The driver is still alive and the attached stream still seals
    // bit-exactly: nothing above consumed an index or a keystream.
    seal_exact(&raw, 901, &ring, 0, 0, b"still alive after the garbage");
    witness.pump();
}

// ---------------------------------------------------------------------
// Attach abuse.
// ---------------------------------------------------------------------

#[test]
fn wrong_token_and_malformed_attach_are_dropped_silently() {
    let server = spawn_server();
    let mut witness = Witness::open(server.addr(), 910);
    let (_tcp, token, ring) = open_stream(&server, 911, 0x0AD5);
    let raw = Raw::connect(dgram_addr(&server));

    // Wrong token, unknown stream, malformed (7-byte) token payload:
    // none of these sources has passed the token check, so each gets
    // the same uniform answer — silence. An `Error` reply would be ~2x
    // amplification toward a spoofed source and would leak whether the
    // stream exists, is live, or is parked.
    raw.send(
        &Frame::new(FrameKind::DgramResume, 911, 0)
            .with_payload((token ^ 0xBAD).to_le_bytes().to_vec()),
    );
    raw.send(
        &Frame::new(FrameKind::DgramResume, 987_654, 0).with_payload(token.to_le_bytes().to_vec()),
    );
    raw.send(&Frame::new(FrameKind::DgramResume, 911, 0).with_payload(vec![0; 7]));
    assert!(raw.recv().is_none(), "attach refusals must not be answered");
    let rejected = server
        .stats()
        .dgram_rejected
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(rejected >= 3, "driver counted {rejected} of 3 refusals");

    // The real token still works after all three refusals.
    raw.attach(911, token, 0);
    seal_exact(&raw, 911, &ring, 0, 0, b"attach abuse burned nothing");
    witness.pump();
}

// ---------------------------------------------------------------------
// Replay, stale epochs, window overflow.
// ---------------------------------------------------------------------

#[test]
fn replayed_chunk_indices_are_refused() {
    let server = spawn_server();
    let mut witness = Witness::open(server.addr(), 920);
    let (_tcp, token, ring) = open_stream(&server, 921, 0x3E3D);
    let raw = Raw::connect(dgram_addr(&server));
    raw.attach(921, token, 0);

    // First use of index 5: sealed.
    seal_exact(&raw, 921, &ring, 0, 5, b"the one legitimate use");

    // Exact replay of index 5 — and a *different* plaintext at index 5,
    // the keystream-reuse attack the window exists to stop.
    for plain in [
        &b"the one legitimate use"[..],
        &b"second body, same pad"[..],
    ] {
        let reply = raw.exchange(
            &Frame::new(FrameKind::DgramData, 921, join_seq(0, 5)).with_payload(plain.to_vec()),
        );
        expect_error(reply, 921, join_seq(0, 5), ErrorCode::DuplicateChunk);
    }

    // Neighbouring indices are untouched by the refusals.
    seal_exact(&raw, 921, &ring, 0, 4, b"below the burned slot");
    seal_exact(&raw, 921, &ring, 0, 6, b"above the burned slot");
    witness.pump();
}

#[test]
fn stale_and_future_epoch_datagrams_are_refused() {
    let server = spawn_server();
    let mut witness = Witness::open(server.addr(), 930);
    let (mut tcp, token, ring) = open_stream(&server, 931, 0x11AD);
    let raw = Raw::connect(dgram_addr(&server));
    raw.attach(931, token, 0);
    seal_exact(&raw, 931, &ring, 0, 0, b"epoch zero traffic");

    // Rotate over TCP: the datagram entry must follow the mux, not its
    // own cached epoch.
    tcp.rekey(931, 1).unwrap();

    // Old-epoch datagram (a capture replayed after rotation).
    let reply = raw
        .exchange(&Frame::new(FrameKind::DgramData, 931, join_seq(0, 1)).with_payload(vec![7; 8]));
    expect_error(reply, 931, join_seq(0, 1), ErrorCode::StaleEpoch);
    // Future epoch: equally refused — epochs only advance through the
    // rekey handshake.
    let reply = raw
        .exchange(&Frame::new(FrameKind::DgramData, 931, join_seq(9, 0)).with_payload(vec![7; 8]));
    expect_error(reply, 931, join_seq(9, 0), ErrorCode::StaleEpoch);

    // Current-epoch traffic flows, keyed under the rotated ring — and
    // index 0 is fresh again, because rotation reset the replay window
    // along with the keystream space.
    seal_exact(&raw, 931, &ring, 1, 0, b"epoch one traffic");
    witness.pump();
}

#[test]
fn window_overflow_expires_chunks_behind_the_flood() {
    let server = spawn_server();
    let mut witness = Witness::open(server.addr(), 940);
    let (_tcp, token, ring) = open_stream(&server, 941, 0x77DD);
    let raw = Raw::connect(dgram_addr(&server));
    raw.attach(941, token, 0);

    // Jump the window far ahead (default width 1024): everything the
    // flood left behind is now unacceptable, even though it was never
    // used — the server cannot distinguish "late" from "replayed after
    // eviction from the ring", so it refuses.
    seal_exact(&raw, 941, &ring, 0, 50_000, b"the flood's high-water mark");
    for behind in [0u32, 1_000, 48_975] {
        let reply = raw.exchange(
            &Frame::new(FrameKind::DgramData, 941, join_seq(0, behind)).with_payload(vec![3; 8]),
        );
        expect_error(reply, 941, join_seq(0, behind), ErrorCode::ChunkExpired);
    }
    // Indices inside the window still work, in any order.
    seal_exact(
        &raw,
        941,
        &ring,
        0,
        49_500,
        b"inside the window, behind the head",
    );
    seal_exact(&raw, 941, &ring, 0, 50_001, b"ahead of the head");
    witness.pump();
}

// ---------------------------------------------------------------------
// Park / re-attach: the replay window must survive eviction.
// ---------------------------------------------------------------------

/// The keystream-reuse regression across a park: serve an index, kill
/// the TCP side so the stream evicts to a snapshot, poke the parked
/// stream over UDP (the path that used to discard the driver's entry),
/// re-attach at the same epoch, and replay the served index. The replay
/// windows must come back burned — fresh windows here would re-seal
/// index 5 under the exact keystream that already sealed it once, both
/// for a replaying attacker and for a restarted client whose chunk
/// counter restarts at 0.
#[test]
fn park_and_re_attach_does_not_reopen_burned_indices() {
    let server = spawn_server();
    let mut witness = Witness::open(server.addr(), 990);
    let (tcp, token, ring) = open_stream(&server, 991, 0xAB1E);
    let raw = Raw::connect(dgram_addr(&server));
    raw.attach(991, token, 0);
    seal_exact(&raw, 991, &ring, 0, 5, b"the one legitimate use");

    // Kill the TCP connection and wait until the reactor parks the
    // stream (eviction is asynchronous with the disconnect).
    drop(tcp);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server
        .stats()
        .streams_evicted
        .load(std::sync::atomic::Ordering::Relaxed)
        == 0
    {
        assert!(
            std::time::Instant::now() < deadline,
            "stream 991 was never evicted"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Data while parked: refused with a reply (this peer passed the
    // token check) — and the refusal runs before the window, so index 6
    // is not burned.
    let reply = raw
        .exchange(&Frame::new(FrameKind::DgramData, 991, join_seq(0, 6)).with_payload(vec![7; 8]));
    expect_error(reply, 991, join_seq(0, 6), ErrorCode::UnknownStream);

    // Re-attach restores the snapshot at the same epoch...
    raw.attach(991, token, 0);
    // ...with the replay history intact: the served index is refused,
    // whatever the plaintext.
    let reply = raw.exchange(
        &Frame::new(FrameKind::DgramData, 991, join_seq(0, 5))
            .with_payload(b"second body, same pad".to_vec()),
    );
    expect_error(reply, 991, join_seq(0, 5), ErrorCode::DuplicateChunk);
    // The index refused while parked burned nothing and still seals.
    seal_exact(&raw, 991, &ring, 0, 6, b"fresh index after the resume");
    witness.pump();
}

// ---------------------------------------------------------------------
// Cross-stream / cross-peer injection.
// ---------------------------------------------------------------------

#[test]
fn foreign_peers_cannot_reach_an_attached_stream() {
    let server = spawn_server();
    let mut witness = Witness::open(server.addr(), 950);
    let (_tcp, token, ring) = open_stream(&server, 951, 0x5151);
    let owner = Raw::connect(dgram_addr(&server));
    owner.attach(951, token, 0);

    // A different socket (different source port) injects data for the
    // attached stream, then for a stream that never attached: both get
    // the same uniform answer — silence. Any reply would reveal that
    // the first id is served here, and the intruder's source address
    // has earned nothing better than an undecodable packet gets.
    let intruder = Raw::connect(dgram_addr(&server));
    intruder.send(&Frame::new(FrameKind::DgramData, 951, join_seq(0, 0)).with_payload(vec![1; 8]));
    intruder
        .send(&Frame::new(FrameKind::DgramData, 424_242, join_seq(0, 0)).with_payload(vec![1; 8]));
    assert!(
        intruder.recv().is_none(),
        "wrong-peer and never-attached data must not be answered"
    );

    // The intruder burned nothing: the owner's index 0 is still fresh.
    seal_exact(&owner, 951, &ring, 0, 0, b"owner's first chunk, untouched");
    witness.pump();
}

// ---------------------------------------------------------------------
// Kind/transport confusion, both directions.
// ---------------------------------------------------------------------

#[test]
fn datagram_kinds_over_tcp_hang_up_the_connection() {
    let server = spawn_server();
    let mut witness = Witness::open(server.addr(), 960);

    for kind in [
        FrameKind::DgramResume,
        FrameKind::DgramAck,
        FrameKind::DgramData,
        FrameKind::DgramReply,
    ] {
        let mut sock = TcpStream::connect(server.addr()).unwrap();
        sock.write_all(&Frame::new(kind, 961, 0).with_payload(vec![0; 8]).encode())
            .unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = Vec::new();
        let mut scratch = [0u8; 4096];
        let reply = loop {
            if let Ok(Some((reply, used))) = frame::decode(&buf) {
                buf.drain(..used);
                break Some(reply);
            }
            match std::io::Read::read(&mut sock, &mut scratch) {
                Ok(0) | Err(_) => break None,
                Ok(n) => buf.extend_from_slice(&scratch[..n]),
            }
        };
        let reply = reply.expect("stream transport answers before hanging up");
        assert_eq!(reply.kind, FrameKind::Error);
        let (code, _) = frame::decode_error(&reply.payload);
        assert_eq!(code, Some(ErrorCode::Protocol));
        // And the connection is gone.
        assert_eq!(std::io::Read::read(&mut sock, &mut scratch).unwrap_or(0), 0);
    }
    witness.pump();
}

#[test]
fn oversize_and_malformed_data_payloads_are_refused_shape_first() {
    let server = spawn_server();
    let mut witness = Witness::open(server.addr(), 970);
    let (_tcp, token, ring) = open_stream(&server, 971, 0x0777);
    let raw = Raw::connect(dgram_addr(&server));
    raw.attach(971, token, 0);

    // Oversize seal plaintext: refused before the window, so the index
    // is NOT burned.
    let reply = raw.exchange(
        &Frame::new(FrameKind::DgramData, 971, join_seq(0, 0)).with_payload(vec![0; 1025]),
    );
    expect_error(reply, 971, join_seq(0, 0), ErrorCode::MessageTooLarge);

    // Open request whose payload is not a block vector: a shape error.
    let reply = raw.exchange(
        &Frame::new(FrameKind::DgramData, 971, join_seq(0, 0))
            .with_flags(flags::DIR_OPEN)
            .with_payload(vec![1, 2, 3]),
    );
    expect_error(reply, 971, join_seq(0, 0), ErrorCode::Protocol);

    // Open request claiming more plaintext bits than a chunk may hold.
    let blocks = vec![0u16; 8];
    let reply = raw.exchange(
        &Frame::new(FrameKind::DgramData, 971, join_seq(0, 0))
            .with_flags(flags::DIR_OPEN)
            .with_payload(encode_blocks(1024 * 8 + 1, &blocks)),
    );
    expect_error(reply, 971, join_seq(0, 0), ErrorCode::MessageTooLarge);

    // None of the refusals burned index 0.
    seal_exact(&raw, 971, &ring, 0, 0, b"index zero survived the probes");
    witness.pump();
}

// ---------------------------------------------------------------------
// A flood does not wedge the driver for other clients.
// ---------------------------------------------------------------------

#[test]
fn a_flooding_peer_does_not_starve_a_healthy_dgram_client() {
    let server = spawn_server();
    let mut witness = Witness::open(server.addr(), 980);
    let (_tcp, token, _ring) = open_stream(&server, 981, 0xF00D);

    // The flood: 500 packets of varied abuse from one socket.
    let attacker = Raw::connect(dgram_addr(&server));
    for i in 0..500u64 {
        match i % 3 {
            0 => attacker.send_bytes(b"not even a header"),
            1 => attacker.send(
                &Frame::new(FrameKind::DgramData, i, join_seq(0, i as u32))
                    .with_payload(vec![0; 32]),
            ),
            _ => attacker.send(
                &Frame::new(FrameKind::DgramResume, i, 0).with_payload(7u64.to_le_bytes().to_vec()),
            ),
        }
    }

    // A healthy client attaches and round-trips through the same driver
    // while the flood drains.
    let mut dgram = DgramClient::connect(dgram_addr(&server)).unwrap();
    assert_eq!(dgram.attach(981, token).unwrap(), 0);
    let sealed = dgram
        .seal(981, b"healthy traffic through the flood")
        .unwrap();
    assert!(sealed.is_complete(), "flood starved a healthy client");
    let opened = dgram.open(981, &sealed.delivered).unwrap();
    assert!(opened.is_complete());
    let plain: Vec<u8> = opened.delivered.into_iter().flat_map(|c| c.plain).collect();
    assert_eq!(plain, b"healthy traffic through the flood");
    witness.pump();
}
