//! Adversarial MHNP suite: malformed, corrupted and out-of-order frames
//! against a live server.
//!
//! Every case checks two things: the server answers the abuse cleanly
//! (a machine-readable `Error` frame, never a panic or a hang), and the
//! blast radius is exactly one connection or one stream — a healthy
//! stream pumping oracle-checked traffic through the same server must
//! come out bit-exact after each attack.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use mhhea::session::EncryptSession;
use mhhea::{Key, LfsrSource};
use mhhea_net::client::NetClient;
use mhhea_net::frame::{
    self, encode_blocks, flags, ErrorCode, Frame, FrameKind, Hello, HEADER_LEN,
};
use mhhea_net::server::{NetServer, ServerConfig, ServerHandle};
use mhhea_net::ClientError;

fn key() -> Key {
    Key::from_nibbles(&[(0, 3), (2, 5), (7, 1), (4, 4)]).unwrap()
}

/// Reactor threads for every per-test server: 1 by default, overridable
/// with `MHNP_REACTORS` so CI soaks the whole suite against the
/// multi-threaded server too (the abuse answers must not depend on how
/// many loops serve the connections).
fn reactors() -> usize {
    std::env::var("MHNP_REACTORS")
        .ok()
        .map(|v| v.parse().expect("MHNP_REACTORS must be a positive integer"))
        .unwrap_or(1)
}

fn spawn_server() -> ServerHandle {
    NetServer::spawn(
        "127.0.0.1:0",
        ServerConfig::new([(1, key())]).with_reactors(reactors()),
    )
    .expect("bind server")
}

/// A healthy client+oracle pair on its own connection, used to prove an
/// attack on *another* connection desynchronised nothing.
struct Witness {
    client: NetClient,
    oracle: EncryptSession<LfsrSource>,
    stream: u64,
    round: u32,
}

impl Witness {
    fn open(addr: std::net::SocketAddr, stream: u64) -> Witness {
        let mut client = NetClient::connect(addr).unwrap();
        client.open_stream(stream, Hello::new(1, 0xD1CE)).unwrap();
        Witness {
            client,
            oracle: EncryptSession::new(key().clone(), LfsrSource::new(0xD1CE).unwrap()),
            stream,
            round: 0,
        }
    }

    /// One oracle-checked message; panics on any drift.
    fn pump(&mut self) {
        let msg = format!("witness round {} on stream {}", self.round, self.stream);
        self.round += 1;
        let sealed = self.client.seal(self.stream, msg.as_bytes()).unwrap();
        let want = self.oracle.encrypt(msg.as_bytes()).unwrap();
        assert_eq!(sealed.blocks, want, "witness stream desynchronised");
    }
}

/// Reads frames off a raw socket until one decodes, EOF, or timeout.
fn read_one_frame(sock: &mut TcpStream) -> Option<Frame> {
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = Vec::new();
    let mut scratch = [0u8; 4096];
    loop {
        if let Ok(Some((frame, used))) = frame::decode(&buf) {
            buf.drain(..used);
            return Some(frame);
        }
        match sock.read(&mut scratch) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&scratch[..n]),
            Err(_) => return None,
        }
    }
}

/// Reads consecutive frames off a raw socket, carrying leftover bytes
/// between calls — [`read_one_frame`] discards them, which is fine for
/// one-shot exchanges but loses frames in back-to-back reply streams.
struct FrameReader {
    sock: TcpStream,
    buf: Vec<u8>,
}

impl FrameReader {
    fn new(sock: TcpStream) -> FrameReader {
        sock.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        FrameReader {
            sock,
            buf: Vec::new(),
        }
    }

    fn next(&mut self) -> Option<Frame> {
        let mut scratch = [0u8; 4096];
        loop {
            if let Ok(Some((frame, used))) = frame::decode(&self.buf) {
                self.buf.drain(..used);
                return Some(frame);
            }
            match self.sock.read(&mut scratch) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&scratch[..n]),
                Err(_) => return None,
            }
        }
    }
}

fn expect_protocol_error_then_eof(sock: &mut TcpStream) {
    let frame = read_one_frame(sock).expect("server should answer before hanging up");
    assert_eq!(frame.kind, FrameKind::Error);
    let (code, _) = frame::decode_error(&frame.payload);
    assert_eq!(code, Some(ErrorCode::Protocol));
    // After the goodbye frame the server closes the connection.
    assert!(
        read_one_frame(sock).is_none(),
        "connection should be closed"
    );
}

#[test]
fn truncated_header_then_disconnect_is_harmless() {
    let server = spawn_server();
    let mut witness = Witness::open(server.addr(), 1);
    witness.pump();

    // 10 bytes of a valid frame prefix, then vanish mid-header.
    let bytes = Frame::new(FrameKind::Hello, 9, 0)
        .with_payload(Hello::new(1, 0xACE1).encode())
        .encode();
    let mut sock = TcpStream::connect(server.addr()).unwrap();
    sock.write_all(&bytes[..10]).unwrap();
    drop(sock);

    witness.pump();
    witness.pump();
}

#[test]
fn bad_magic_kills_only_that_connection() {
    let server = spawn_server();
    let mut witness = Witness::open(server.addr(), 2);
    witness.pump();

    let mut sock = TcpStream::connect(server.addr()).unwrap();
    sock.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    expect_protocol_error_then_eof(&mut sock);

    witness.pump();
}

#[test]
fn wrong_version_rejected() {
    let server = spawn_server();
    let mut bytes = Frame::new(FrameKind::Hello, 3, 0).encode();
    bytes[4] = 9;
    let mut sock = TcpStream::connect(server.addr()).unwrap();
    sock.write_all(&bytes).unwrap();
    expect_protocol_error_then_eof(&mut sock);
}

#[test]
fn corrupted_crc_kills_connection_without_touching_cipher_state() {
    let server = spawn_server();
    let mut witness = Witness::open(server.addr(), 4);
    witness.pump();

    // A raw connection runs a clean handshake and one clean message on
    // its own stream...
    let mut sock = TcpStream::connect(server.addr()).unwrap();
    let mut oracle = EncryptSession::new(key().clone(), LfsrSource::new(0xBAD1).unwrap());
    sock.write_all(
        &Frame::new(FrameKind::Hello, 40, 0)
            .with_payload(Hello::new(1, 0xBAD1).encode())
            .encode(),
    )
    .unwrap();
    let ack = read_one_frame(&mut sock).unwrap();
    assert_eq!(ack.kind, FrameKind::HelloAck);
    let token = u64::from_le_bytes(ack.payload.as_slice().try_into().unwrap());
    sock.write_all(
        &Frame::new(FrameKind::Data, 40, 0)
            .with_payload(b"clean message".to_vec())
            .encode(),
    )
    .unwrap();
    let reply = read_one_frame(&mut sock).unwrap();
    let (_, blocks) = frame::decode_blocks(&reply.payload).unwrap();
    assert_eq!(blocks, oracle.encrypt(b"clean message").unwrap());

    // ...then a bit-flipped Data frame. Framing integrity is gone, so the
    // connection dies — but the flipped frame must never reach a session.
    let mut corrupt = Frame::new(FrameKind::Data, 40, 1)
        .with_payload(b"this byte flips".to_vec())
        .encode();
    *corrupt.last_mut().unwrap() ^= 0x40;
    sock.write_all(&corrupt).unwrap();
    expect_protocol_error_then_eof(&mut sock);

    // The corrupted frame never reached a cipher session: resuming the
    // evicted stream continues exactly where the oracle is.
    let mut client = NetClient::connect(server.addr()).unwrap();
    client
        .resume_within(40, token, Duration::from_secs(5))
        .unwrap();
    let sealed = client.seal(40, b"after the attack").unwrap();
    assert_eq!(sealed.blocks, oracle.encrypt(b"after the attack").unwrap());

    witness.pump();
}

#[test]
fn oversized_declared_length_rejected_from_header_alone() {
    let server = spawn_server();
    let mut witness = Witness::open(server.addr(), 5);

    // Header declaring a 16 MiB payload; the body is never sent.
    let mut bytes = Frame::new(FrameKind::Data, 50, 0).encode();
    bytes[24..28].copy_from_slice(&(16u32 << 20).to_le_bytes());
    let mut sock = TcpStream::connect(server.addr()).unwrap();
    sock.write_all(&bytes[..HEADER_LEN]).unwrap();
    // The verdict must arrive although the declared body never will.
    expect_protocol_error_then_eof(&mut sock);

    witness.pump();
}

#[test]
fn replayed_and_skipped_sequence_numbers_rejected_without_desync() {
    let server = spawn_server();
    let mut client = NetClient::connect(server.addr()).unwrap();
    client.open_stream(60, Hello::new(1, 0x5EC1)).unwrap();
    let mut oracle = EncryptSession::new(key().clone(), LfsrSource::new(0x5EC1).unwrap());

    let sealed = client.seal(60, b"message zero").unwrap();
    assert_eq!(sealed.blocks, oracle.encrypt(b"message zero").unwrap());

    // Replay sequence 0 by hand: rejected, cipher state untouched.
    client
        .send_frame(&Frame::new(FrameKind::Data, 60, 0).with_payload(b"replayed".to_vec()))
        .unwrap();
    let reply = client.recv_frame().unwrap();
    assert_eq!(reply.kind, FrameKind::Error);
    assert_eq!(
        frame::decode_error(&reply.payload).0,
        Some(ErrorCode::BadSequence)
    );

    // Skip ahead to sequence 9: same rejection.
    client
        .send_frame(&Frame::new(FrameKind::Data, 60, 9).with_payload(b"skipped".to_vec()))
        .unwrap();
    let reply = client.recv_frame().unwrap();
    assert_eq!(reply.kind, FrameKind::Error);
    assert_eq!(
        frame::decode_error(&reply.payload).0,
        Some(ErrorCode::BadSequence)
    );

    // The stream is not desynchronised: the next in-order message still
    // matches an oracle that never saw the rejected frames.
    let sealed = client.seal(60, b"message one").unwrap();
    assert_eq!(sealed.blocks, oracle.encrypt(b"message one").unwrap());
}

#[test]
fn interleaved_stream_ids_fail_independently() {
    let server = spawn_server();
    let mut client = NetClient::connect(server.addr()).unwrap();
    client.open_stream(70, Hello::new(1, 0x0711)).unwrap();
    client.open_stream(71, Hello::new(1, 0x0712)).unwrap();
    let mut oracle_a = EncryptSession::new(key().clone(), LfsrSource::new(0x0711).unwrap());
    let mut oracle_b = EncryptSession::new(key().clone(), LfsrSource::new(0x0712).unwrap());

    // Pipeline: A(seq 0), never-opened stream 999, B(seq 0) — one tick.
    client
        .send_frame(&Frame::new(FrameKind::Data, 70, 0).with_payload(b"for A".to_vec()))
        .unwrap();
    client
        .send_frame(&Frame::new(FrameKind::Data, 999, 0).with_payload(b"for nobody".to_vec()))
        .unwrap();
    client
        .send_frame(&Frame::new(FrameKind::Data, 71, 0).with_payload(b"for B".to_vec()))
        .unwrap();

    // Replies come back in request order: Reply, Error, Reply.
    let a = client.recv_frame().unwrap();
    assert_eq!((a.kind, a.stream, a.seq), (FrameKind::Reply, 70, 0));
    let (_, blocks_a) = frame::decode_blocks(&a.payload).unwrap();
    assert_eq!(blocks_a, oracle_a.encrypt(b"for A").unwrap());

    let nobody = client.recv_frame().unwrap();
    assert_eq!((nobody.kind, nobody.stream), (FrameKind::Error, 999));
    assert_eq!(
        frame::decode_error(&nobody.payload).0,
        Some(ErrorCode::UnknownStream)
    );

    let b = client.recv_frame().unwrap();
    assert_eq!((b.kind, b.stream, b.seq), (FrameKind::Reply, 71, 0));
    let (_, blocks_b) = frame::decode_blocks(&b.payload).unwrap();
    assert_eq!(blocks_b, oracle_b.encrypt(b"for B").unwrap());
}

#[test]
fn truncated_ciphertext_fails_only_that_request() {
    let server = spawn_server();
    let mut client = NetClient::connect(server.addr()).unwrap();
    client.open_stream(80, Hello::new(1, 0x8080)).unwrap();
    let sealed = client.seal(80, b"a message to mangle").unwrap();

    // Drop the last block: the engine rejects, the stream survives.
    let err = client
        .open(
            80,
            &sealed.blocks[..sealed.blocks.len() - 1],
            sealed.bit_len,
        )
        .unwrap_err();
    assert!(err.is_code(ErrorCode::Engine), "got {err}");

    // The decrypt cursor did not advance: the full blocks still open.
    let plain = client.open(80, &sealed.blocks, sealed.bit_len).unwrap();
    assert_eq!(plain, b"a message to mangle");
}

#[test]
fn handshake_abuse_is_stream_scoped() {
    let server = spawn_server();
    let mut client = NetClient::connect(server.addr()).unwrap();

    // Unknown key id.
    let err = client.open_stream(90, Hello::new(42, 0xACE1)).unwrap_err();
    assert!(err.is_code(ErrorCode::UnknownKeyId), "got {err}");

    // Zero seed.
    let err = client.open_stream(90, Hello::new(1, 0)).unwrap_err();
    assert!(err.is_code(ErrorCode::BadHandshake), "got {err}");

    // Malformed hello payload.
    client
        .send_frame(&Frame::new(FrameKind::Hello, 90, 0).with_payload(vec![1, 2, 3]))
        .unwrap();
    let reply = client.recv_frame().unwrap();
    assert_eq!(reply.kind, FrameKind::Error);
    assert_eq!(
        frame::decode_error(&reply.payload).0,
        Some(ErrorCode::BadHandshake)
    );

    // Duplicate stream id (already open on another connection).
    let mut other = NetClient::connect(server.addr()).unwrap();
    other.open_stream(91, Hello::new(1, 0xACE1)).unwrap();
    let err = client.open_stream(91, Hello::new(1, 0xACE1)).unwrap_err();
    assert!(err.is_code(ErrorCode::StreamExists), "got {err}");

    // Resume for a stream nobody parked.
    let err = client.resume(92, 0xDEAD_BEEF).unwrap_err();
    assert!(err.is_code(ErrorCode::NoSnapshot), "got {err}");

    // After all of that, the connection still serves a proper handshake.
    client.open_stream(93, Hello::new(1, 0xACE1)).unwrap();
    let sealed = client.seal(93, b"still standing").unwrap();
    let plain = client.open(93, &sealed.blocks, sealed.bit_len).unwrap();
    assert_eq!(plain, b"still standing");
}

#[test]
fn client_sending_server_only_kinds_is_cut_off() {
    let server = spawn_server();
    let mut witness = Witness::open(server.addr(), 6);

    let mut sock = TcpStream::connect(server.addr()).unwrap();
    sock.write_all(&Frame::new(FrameKind::Reply, 1, 0).encode())
        .unwrap();
    expect_protocol_error_then_eof(&mut sock);

    witness.pump();
}

#[test]
fn open_direction_with_malformed_blocks_payload_is_stream_scoped() {
    let server = spawn_server();
    let mut client = NetClient::connect(server.addr()).unwrap();
    client.open_stream(95, Hello::new(1, 0x9595)).unwrap();
    let mut oracle = EncryptSession::new(key().clone(), LfsrSource::new(0x9595).unwrap());

    // A Data/OPEN frame whose payload is shorter than the bit_len prefix.
    client
        .send_frame(
            &Frame::new(FrameKind::Data, 95, 0)
                .with_flags(flags::DIR_OPEN)
                .with_payload(vec![1, 2]),
        )
        .unwrap();
    let reply = client.recv_frame().unwrap();
    assert_eq!(reply.kind, FrameKind::Error);
    // Rejected before any cipher work; the connection and stream live on,
    // but the sequence number was not consumed.
    client
        .send_frame(&Frame::new(FrameKind::Data, 95, 0).with_payload(b"recovering".to_vec()))
        .unwrap();
    let reply = client.recv_frame().unwrap();
    assert_eq!((reply.kind, reply.seq), (FrameKind::Reply, 0));
    let (_, blocks) = frame::decode_blocks(&reply.payload).unwrap();
    assert_eq!(blocks, oracle.encrypt(b"recovering").unwrap());

    // And a well-formed blocks payload with an odd block count trailing
    // byte is equally stream-scoped.
    client
        .send_frame(
            &Frame::new(FrameKind::Data, 95, 1)
                .with_flags(flags::DIR_OPEN)
                .with_payload(encode_blocks(8, &[0xABCD])[..6].to_vec()),
        )
        .unwrap();
    let reply = client.recv_frame().unwrap();
    assert_eq!(reply.kind, FrameKind::Error);
}

/// `ClientError` renders every variant; exercised here because the suite
/// above matches on codes rather than strings.
#[test]
fn client_error_display_is_informative() {
    let e = ClientError::Server {
        code: Some(ErrorCode::BadSequence),
        detail: "expected 1, got 0".into(),
    };
    assert!(e.to_string().contains("bad sequence"));
    assert!(ClientError::Disconnected.to_string().contains("closed"));
}

/// Blocks until the server has parked at least `want` eviction snapshots
/// (the reap of a dying connection is asynchronous to the client's drop).
fn wait_for_evictions(server: &ServerHandle, want: u64) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server
        .stats()
        .streams_evicted
        .load(std::sync::atomic::Ordering::Relaxed)
        < want
    {
        assert!(
            std::time::Instant::now() < deadline,
            "server never parked the stream"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Regression: a parked stream id stays *occupied*. An unauthenticated
/// Hello can neither take it over nor destroy its snapshot (which is the
/// only copy of another client's cipher state); after a proper
/// Resume + Bye the id is free, and nothing resumes afterwards — no
/// stale state can ever be resurrected.
#[test]
fn parked_stream_id_is_protected_until_resumed_and_discarded() {
    let server = spawn_server();

    // Conn A opens stream 7, advances it, dies → snapshot parked.
    let mut a = NetClient::connect(server.addr()).unwrap();
    let token = a.open_stream(7, Hello::new(1, 0xBEEF)).unwrap();
    a.seal(7, b"state the snapshot will capture").unwrap();
    drop(a);
    wait_for_evictions(&server, 1);

    // An unauthenticated Hello must not supersede the parked snapshot —
    // destroying it would bypass the resume-token protection.
    let mut b = NetClient::connect(server.addr()).unwrap();
    let err = b.open_stream(7, Hello::new(1, 0xF00D)).unwrap_err();
    assert!(err.is_code(ErrorCode::StreamExists), "got {err}");

    // The snapshot survived the attempt: the token still reclaims it,
    // and Bye then genuinely discards the stream.
    b.resume(7, token).unwrap();
    b.seal(7, b"traffic after reclaim").unwrap();
    b.bye(7).unwrap();

    // The id is free for a fresh open now; after its Bye, nothing — not
    // even a once-valid token — resumes anything.
    let new_token = b.open_stream(7, Hello::new(1, 0xF00D)).unwrap();
    b.bye(7).unwrap();
    for tok in [token, new_token] {
        let err = b.resume(7, tok).expect_err("nothing left to resume");
        assert!(err.is_code(ErrorCode::NoSnapshot), "got {err}");
    }
}

/// The stream capacity bound: a handshake loop cannot allocate sessions
/// past `max_streams`; closing a stream frees its slot.
#[test]
fn stream_capacity_rejects_hello_with_server_busy() {
    let mut cfg = ServerConfig::new([(1, key())]).with_reactors(reactors());
    cfg.max_streams = 2;
    let server = NetServer::spawn("127.0.0.1:0", cfg).expect("bind server");
    let mut client = NetClient::connect(server.addr()).unwrap();

    client.open_stream(1, Hello::new(1, 0x0101)).unwrap();
    client.open_stream(2, Hello::new(1, 0x0202)).unwrap();
    let err = client.open_stream(3, Hello::new(1, 0x0303)).unwrap_err();
    assert!(err.is_code(ErrorCode::ServerBusy), "got {err}");

    // Freeing a stream frees capacity.
    client.bye(1).unwrap();
    client.open_stream(3, Hello::new(1, 0x0303)).unwrap();
    client.seal(3, b"capacity freed").unwrap();
}

/// A parked snapshot cannot be hijacked by guessing the stream id: Resume
/// must present the token the stream's own HelloAck handed out.
#[test]
fn resume_requires_the_streams_token() {
    let server = spawn_server();

    // The victim's connection dies; its stream is parked.
    let mut victim = NetClient::connect(server.addr()).unwrap();
    let token = victim.open_stream(40, Hello::new(1, 0x4040)).unwrap();
    victim.seal(40, b"victim traffic").unwrap();
    drop(victim);

    // Wait until the snapshot is actually parked, so the rejection below
    // is the token check and not a missing snapshot.
    wait_for_evictions(&server, 1);

    // An attacker who saw stream id 40 on the wire (but not the token —
    // it never crosses again) cannot reclaim it...
    let mut attacker = NetClient::connect(server.addr()).unwrap();
    let err = attacker
        .resume(40, token ^ 1)
        .expect_err("wrong token must never resume");
    assert!(err.is_code(ErrorCode::NoSnapshot), "got {err}");

    // ...while the victim, holding the token, resumes fine afterwards.
    let mut victim = NetClient::connect(server.addr()).unwrap();
    victim
        .resume_within(40, token, Duration::from_secs(5))
        .unwrap();
    victim.seal(40, b"reclaimed").unwrap();
}

/// Regression: a pipelined batch naming an unopened stream must fail
/// before anything is sent — earlier entries' sequence counters must not
/// advance for frames that never left the client.
#[test]
fn pipelined_batch_with_unopened_stream_fails_before_send() {
    let server = spawn_server();
    let mut client = NetClient::connect(server.addr()).unwrap();
    client.open_stream(20, Hello::new(1, 0x2020)).unwrap();
    let mut oracle = EncryptSession::new(key(), LfsrSource::new(0x2020).unwrap());

    let err = client
        .seal_pipelined(&[
            (20, b"would be fine".to_vec()),
            (21, b"stream never opened".to_vec()),
        ])
        .expect_err("unopened stream in batch");
    assert!(matches!(err, ClientError::StreamNotOpen(21)), "{err}");

    // Stream 20 is pristine: its next (first) message seals from block 0.
    let sealed = client.seal(20, b"first real message").unwrap();
    assert_eq!(
        sealed.blocks,
        oracle.encrypt(b"first real message").unwrap()
    );
}

/// Regression: when one item of a sent pipelined batch is rejected, the
/// remaining replies are drained — the first failure is reported and the
/// connection (and its other streams) stays usable.
#[test]
fn pipelined_rejection_drains_replies_and_keeps_connection_usable() {
    let server = spawn_server();
    let mut client = NetClient::connect(server.addr()).unwrap();
    client.open_stream(30, Hello::new(1, 0x3030)).unwrap();
    client.open_stream(31, Hello::new(1, 0x3131)).unwrap();
    let mut oracle31 = EncryptSession::new(key(), LfsrSource::new(0x3131).unwrap());

    // Advance the server's stream-30 expectation out from under the
    // client: a raw Data frame with the seq the client thinks is next.
    client
        .send_frame(&Frame::new(FrameKind::Data, 30, 0).with_payload(b"raw".to_vec()))
        .unwrap();
    let reply = client.recv_frame().unwrap();
    assert_eq!(reply.kind, FrameKind::Reply);

    // Item 0 now carries a stale sequence (BadSequence, not consumed);
    // item 1 succeeds server-side and must be drained, not left to
    // poison the next request.
    let err = client
        .seal_pipelined(&[
            (30, b"stale sequence".to_vec()),
            (31, b"accepted but drained".to_vec()),
        ])
        .expect_err("stale sequence must surface");
    assert!(err.is_code(ErrorCode::BadSequence), "{err}");

    // The connection is still in frame-sync: stream 31 continues, its
    // session having advanced through the drained message.
    oracle31.encrypt(b"accepted but drained").unwrap();
    let sealed = client.seal(31, b"next message").unwrap();
    assert_eq!(sealed.blocks, oracle31.encrypt(b"next message").unwrap());
}

/// The connection cap: sockets beyond `max_connections` are dropped at
/// accept, and a slot freed by a disconnect becomes usable again.
#[test]
fn connection_cap_rejects_then_recovers() {
    let mut cfg = ServerConfig::new([(1, key())]).with_reactors(reactors());
    cfg.max_connections = 2;
    let server = NetServer::spawn("127.0.0.1:0", cfg).expect("bind server");

    let mut a = NetClient::connect(server.addr()).unwrap();
    a.open_stream(1, Hello::new(1, 0x0A0A)).unwrap();
    let mut b = NetClient::connect(server.addr()).unwrap();
    b.open_stream(2, Hello::new(1, 0x0B0B)).unwrap();

    // The third connection is accepted by the kernel but dropped by the
    // server: its first exchange fails.
    let mut c = NetClient::connect(server.addr()).unwrap();
    assert!(
        c.open_stream(3, Hello::new(1, 0x0C0C)).is_err(),
        "connection over the cap must not be served"
    );

    // Freeing a slot lets a new connection in (retry while the server
    // notices the disconnect).
    drop(b);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let mut d = NetClient::connect(server.addr()).unwrap();
        match d.open_stream(4, Hello::new(1, 0x0D0D)) {
            Ok(_) => break,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("slot never freed: {e}"),
        }
    }
    a.seal(1, b"still served").unwrap();
}

/// Regression: a legal-size frame whose *sealed reply* would exceed the
/// frame payload cap must be rejected cleanly (worst-case MHHEA expansion
/// is 16 reply bytes per message byte) — not panic the server thread
/// while framing an unsendable reply.
#[test]
fn oversized_seal_message_is_rejected_without_killing_the_server() {
    use mhhea_net::server::MAX_MESSAGE_BYTES;
    let server = spawn_server();
    let mut witness = Witness::open(server.addr(), 50);
    witness.pump();

    let mut client = NetClient::connect(server.addr()).unwrap();
    client.open_stream(51, Hello::new(1, 0x5151)).unwrap();
    let mut oracle = EncryptSession::new(key(), LfsrSource::new(0x5151).unwrap());

    let err = client
        .seal(51, &vec![0x42u8; MAX_MESSAGE_BYTES + 1])
        .expect_err("over-cap message must be rejected");
    assert!(err.is_code(ErrorCode::MessageTooLarge), "got {err}");

    // The rejection consumed nothing: the stream still seals from block 0
    // (sequence number rolled back, cipher state untouched), and the rest
    // of the server — other connections included — kept running.
    let sealed = client.seal(51, b"normal sized again").unwrap();
    assert_eq!(
        sealed.blocks,
        oracle.encrypt(b"normal sized again").unwrap()
    );
    witness.pump();

    // A message at exactly the cap goes through.
    let exact = vec![0x24u8; MAX_MESSAGE_BYTES];
    let sealed = client.seal(51, &exact).unwrap();
    assert_eq!(sealed.blocks, oracle.encrypt(&exact).unwrap());
}

/// Regression: frames that arrive in the same tick as the peer's EOF
/// (half-close) must still be processed and answered — a fire-and-forget
/// client that writes its batch and shuts down its write side gets every
/// reply before the server hangs up.
#[test]
fn frames_arriving_with_eof_are_still_answered() {
    let server = spawn_server();

    let sock = TcpStream::connect(server.addr()).unwrap();
    let mut reader = FrameReader::new(sock);
    reader
        .sock
        .write_all(
            &Frame::new(FrameKind::Hello, 60, 0)
                .with_payload(Hello::new(1, 0x6060).encode())
                .encode(),
        )
        .unwrap();
    let ack = reader.next().expect("hello ack");
    assert_eq!(ack.kind, FrameKind::HelloAck);

    // Pipeline a burst of Data frames and half-close immediately, so the
    // server sees the whole burst and the EOF in the same tick.
    const BURST: u64 = 65;
    let mut bytes = Vec::new();
    for seq in 0..BURST {
        bytes.extend_from_slice(
            &Frame::new(FrameKind::Data, 60, seq)
                .with_payload(format!("fire-and-forget {seq}").into_bytes())
                .encode(),
        );
    }
    reader.sock.write_all(&bytes).unwrap();
    reader.sock.shutdown(std::net::Shutdown::Write).unwrap();

    // Every frame is answered, in order, before the connection closes.
    for seq in 0..BURST {
        let reply = reader
            .next()
            .unwrap_or_else(|| panic!("reply {seq} missing after half-close"));
        assert_eq!((reply.kind, reply.seq), (FrameKind::Reply, seq));
    }
    assert!(reader.next().is_none(), "then EOF");
}

/// Regression: replies owed for valid frames parsed in the same tick as a
/// framing violation are written *before* the protocol goodbye, so a
/// client reading in request order sees its data answered, then the
/// error, then EOF.
#[test]
fn goodbye_does_not_overtake_replies_owed_in_the_same_tick() {
    let server = spawn_server();

    let sock = TcpStream::connect(server.addr()).unwrap();
    let mut reader = FrameReader::new(sock);
    reader
        .sock
        .write_all(
            &Frame::new(FrameKind::Hello, 70, 0)
                .with_payload(Hello::new(1, 0x7070).encode())
                .encode(),
        )
        .unwrap();
    assert_eq!(reader.next().unwrap().kind, FrameKind::HelloAck);

    // One burst: a valid Data frame, then garbage.
    let mut bytes = Frame::new(FrameKind::Data, 70, 0)
        .with_payload(b"answer me first".to_vec())
        .encode();
    bytes.extend_from_slice(b"XXXXXXXX");
    reader.sock.write_all(&bytes).unwrap();

    let first = reader.next().expect("the owed reply");
    assert_eq!((first.kind, first.seq), (FrameKind::Reply, 0));
    let second = reader.next().expect("then the goodbye");
    assert_eq!(second.kind, FrameKind::Error);
    assert_eq!(
        frame::decode_error(&second.payload).0,
        Some(ErrorCode::Protocol)
    );
    assert!(reader.next().is_none(), "then EOF");
}

/// A Data frame stamped with a retired epoch — a replay captured before a
/// rotation — is rejected with the dedicated `StaleEpoch` code, the
/// sequence number is not consumed, and neither the attacked stream nor a
/// shard-mate pumping oracle-checked traffic desynchronises.
#[test]
fn replayed_old_epoch_frames_rejected_without_desync() {
    use mhhea::KeyRing;
    let server = spawn_server();
    let mut witness = Witness::open(server.addr(), 81);

    let mut client = NetClient::connect(server.addr()).unwrap();
    client.open_stream(80, Hello::new(1, 0x8080)).unwrap();
    let ring = KeyRing::single(key(), 0x8080).unwrap();
    let mut oracle = EncryptSession::new(key(), LfsrSource::new(0x8080).unwrap());

    // Epoch 0 traffic, then rotate. Capture what a replayed frame looks
    // like: same stream, old epoch 0 in the sequence field's high bits.
    let sealed = client.seal(80, b"captured in epoch zero").unwrap();
    assert_eq!(
        sealed.blocks,
        oracle.encrypt(b"captured in epoch zero").unwrap()
    );
    client.rekey(80, 1).unwrap();
    oracle.rekey(&ring, 1).unwrap();

    // Replay: a well-formed Data frame whose seq names retired epoch 0.
    client
        .send_frame(
            &Frame::new(FrameKind::Data, 80, frame::join_seq(0, 0))
                .with_payload(b"captured in epoch zero".to_vec()),
        )
        .unwrap();
    let err = client.recv_frame().unwrap();
    assert_eq!(err.kind, FrameKind::Error);
    assert_eq!(
        frame::decode_error(&err.payload).0,
        Some(ErrorCode::StaleEpoch),
        "replays across a rotation must get the dedicated code"
    );

    // The stream is untouched: the next legitimate seal is bit-exact.
    let after = client.seal(80, b"epoch one continues").unwrap();
    assert_eq!(
        after.blocks,
        oracle.encrypt(b"epoch one continues").unwrap()
    );
    witness.pump();
    client.bye(80).unwrap();
}

/// Rekey requests that do not move the epoch strictly forward bounce with
/// `StaleEpoch` and do not consume a sequence number; rekeying a stream
/// the connection never opened is `UnknownStream`.
#[test]
fn stale_or_misaddressed_rekeys_rejected_cleanly() {
    let server = spawn_server();
    let mut client = NetClient::connect(server.addr()).unwrap();
    client.open_stream(85, Hello::new(1, 0x8585)).unwrap();
    client.rekey(85, 3).unwrap(); // skipping epochs forward is fine

    for stale in [3, 2, 0] {
        let err = client
            .rekey(85, stale)
            .expect_err("stale epoch must bounce");
        assert!(
            err.is_code(ErrorCode::StaleEpoch),
            "epoch {stale}: wrong code: {err}"
        );
    }
    // None of the rejections consumed a sequence number: plain traffic
    // continues at (epoch 3, counter 0).
    client.seal(85, b"still healthy").unwrap();

    // The client refuses locally for a stream it never opened…
    let err = client.rekey(9999, 1).expect_err("unopened stream");
    assert!(matches!(err, ClientError::StreamNotOpen(9999)));
    // …and the server refuses a raw frame that bypasses that check.
    client
        .send_frame(&Frame::new(FrameKind::Rekey, 9999, 0).with_payload(frame::encode_rekey(1)))
        .unwrap();
    let err = client.recv_frame().unwrap();
    assert_eq!(err.kind, FrameKind::Error);
    assert_eq!(
        frame::decode_error(&err.payload).0,
        Some(ErrorCode::UnknownStream)
    );

    // A malformed rekey payload (wrong size) is a Protocol rejection that
    // also leaves the sequence space untouched.
    client
        .send_frame(
            &Frame::new(FrameKind::Rekey, 85, frame::join_seq(3, 1)).with_payload(vec![1, 2, 3]),
        )
        .unwrap();
    let err = client.recv_frame().unwrap();
    assert_eq!(err.kind, FrameKind::Error);
    assert_eq!(
        frame::decode_error(&err.payload).0,
        Some(ErrorCode::Protocol)
    );
    client.seal(85, b"and still healthy").unwrap();
    client.bye(85).unwrap();
}

/// Rotation re-mints the resume token: the pre-rotation token must not
/// reclaim the parked snapshot (an attacker who stole it learns it died
/// with the epoch), while the fresh token resumes normally.
#[test]
fn rekey_reminted_token_invalidates_the_old_one() {
    let server = spawn_server();
    let mut client = NetClient::connect(server.addr()).unwrap();
    let old_token = client.open_stream(88, Hello::new(1, 0x8888)).unwrap();
    let new_token = client.rekey(88, 1).unwrap();
    assert_ne!(old_token, new_token);
    client.seal(88, b"rotated").unwrap();
    drop(client); // parks the snapshot (epoch 1) under the new token

    let mut thief = NetClient::connect(server.addr()).unwrap();
    let err = thief
        .resume_within(88, old_token, Duration::from_secs(5))
        .expect_err("the retired token must never resume");
    assert!(err.is_code(ErrorCode::NoSnapshot), "wrong code: {err}");

    let mut owner = NetClient::connect(server.addr()).unwrap();
    owner
        .resume_within(88, new_token, Duration::from_secs(5))
        .expect("the fresh token resumes");
    owner.seal(88, b"still mine").unwrap();
    owner.bye(88).unwrap();
}

/// The rekey synchronisation point holds even against pipelining: a
/// Data frame smuggled into the same burst as a Rekey — stamped with the
/// old epoch's next counter, which WOULD have been valid had the Rekey
/// not been there — must never execute. Depending on how the burst lands
/// in server ticks it dies as BadSequence (rekey in flight) or
/// StaleEpoch (retired epoch), but it is never answered with a Reply,
/// and nothing is consumed.
#[test]
fn data_pipelined_behind_a_rekey_never_executes() {
    let server = spawn_server();
    let sock = TcpStream::connect(server.addr()).unwrap();
    let mut reader = FrameReader::new(sock);
    reader
        .sock
        .write_all(
            &Frame::new(FrameKind::Hello, 90, 0)
                .with_payload(Hello::new(1, 0x9090).encode())
                .encode(),
        )
        .unwrap();
    assert_eq!(reader.next().unwrap().kind, FrameKind::HelloAck);

    // One write: Rekey consuming (0,0), then Data stamped (0,1) — the
    // counter the old epoch would have used next.
    let mut burst = Vec::new();
    Frame::new(FrameKind::Rekey, 90, frame::join_seq(0, 0))
        .with_payload(frame::encode_rekey(1))
        .encode_into(&mut burst);
    Frame::new(FrameKind::Data, 90, frame::join_seq(0, 1))
        .with_payload(b"smuggled across the rotation".to_vec())
        .encode_into(&mut burst);
    reader.sock.write_all(&burst).unwrap();

    let ack = reader.next().expect("rekey ack");
    assert_eq!(ack.kind, FrameKind::RekeyAck);
    let smuggled = reader.next().expect("answer for the smuggled frame");
    assert_eq!(
        smuggled.kind,
        FrameKind::Error,
        "a frame behind a rekey must never be executed"
    );
    let (code, _) = frame::decode_error(&smuggled.payload);
    assert!(
        code == Some(ErrorCode::BadSequence) || code == Some(ErrorCode::StaleEpoch),
        "wrong rejection: {code:?}"
    );

    // The rejection consumed nothing: (1, 0) is the next sequence
    // number, and the raw-frame path proves it.
    reader
        .sock
        .write_all(
            &Frame::new(FrameKind::Data, 90, frame::join_seq(1, 0))
                .with_payload(b"patient now".to_vec())
                .encode(),
        )
        .unwrap();
    let reply = reader.next().expect("reply in the new epoch");
    assert_eq!(
        (reply.kind, reply.seq),
        (FrameKind::Reply, frame::join_seq(1, 0))
    );
}

/// With a multi-key epoch list (`ServerConfig::with_epoch_keys`), a
/// rotation changes the cipher key itself: captured epoch-0 ciphertext
/// restamped with the new epoch no longer opens to the plaintext — the
/// decrypt side genuinely retired the old key.
#[test]
fn multi_key_rotation_retires_old_ciphertext() {
    let second_key = Key::from_nibbles(&[(7, 7), (0, 0), (3, 3)]).unwrap();
    let config = ServerConfig::new([(1, key())])
        .with_reactors(reactors())
        .with_epoch_keys(2, vec![key(), second_key.clone()]);
    let server = NetServer::spawn("127.0.0.1:0", config).expect("bind server");

    let mut client = NetClient::connect(server.addr()).unwrap();
    client.open_stream(95, Hello::new(2, 0x9595)).unwrap();
    let plaintext = b"sealed under the epoch-zero key";
    let captured = client.seal(95, plaintext).unwrap();
    // Keep the duplex decrypt cursor in lockstep, then rotate: epoch 1
    // runs `second_key`.
    client.open(95, &captured.blocks, captured.bit_len).unwrap();
    client.rekey(95, 1).unwrap();

    // An attacker restamps the captured blocks with the live epoch to
    // dodge the StaleEpoch check. The frame is well-formed, so the
    // server answers — but under the rotated key the plaintext is gone.
    match client.open(95, &captured.blocks, captured.bit_len) {
        Ok(got) => assert_ne!(
            got,
            plaintext.to_vec(),
            "rotated decrypt side must not recover old-epoch plaintext"
        ),
        // A span mismatch may under-run the bit count instead — an
        // engine rejection retires the ciphertext just as thoroughly.
        Err(e) => assert!(e.is_code(ErrorCode::Engine), "unexpected failure: {e}"),
    }
}

/// Multi-reactor blast radius: on a 4-reactor server with a witness
/// parked on every reactor (accepts #0..#4 → reactors 0..4), a framing
/// attack arriving on reactor 0 kills exactly its own connection — every
/// witness, including the one sharing the attacker's reactor, keeps
/// producing oracle-exact ciphertext.
#[test]
fn framing_attack_on_one_reactor_leaves_all_reactors_healthy() {
    let server = NetServer::spawn(
        "127.0.0.1:0",
        ServerConfig::new([(1, key())]).with_reactors(4),
    )
    .expect("bind 4-reactor server");

    let mut witnesses: Vec<Witness> = (0..4)
        .map(|i| Witness::open(server.addr(), 70 + i))
        .collect();
    for witness in &mut witnesses {
        witness.pump();
    }

    // Accept #4 → reactor 0, alongside the first witness.
    let mut sock = TcpStream::connect(server.addr()).unwrap();
    sock.write_all(b"\xff\xff\xff\xffgarbage, not MHNP")
        .unwrap();
    expect_protocol_error_then_eof(&mut sock);

    for witness in &mut witnesses {
        witness.pump();
        witness.pump();
    }
}
