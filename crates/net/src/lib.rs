//! # mhhea-net — MHNP, a framed TCP transport for the MHHEA gateway
//!
//! The paper pitches MHHEA as an FPGA cipher *for data communication
//! security*; this crate is the layer that actually communicates. It puts
//! a length-prefixed, CRC-protected session protocol (**MHNP**) in front
//! of the multi-stream gateway ([`mhhea::gateway::StreamMux`]), in the
//! same front-end-before-the-accelerated-core shape
//! hardware-acceleration-as-a-service systems use.
//!
//! * [`frame`] — the wire format: 32-byte header (version, kind, flags,
//!   stream id, sequence number, payload length, CRC-32 over header +
//!   payload) and the handshake/data/error payload codecs.
//! * [`server`] — a non-blocking `std::net` TCP server, layered as an
//!   acceptor dealing sockets round-robin to `reactors` readiness loops
//!   (`ServerConfig::reactors`, default 1). Each reactor owns a disjoint
//!   set of connections and coalesces each tick's `Data` frames (both
//!   directions, all of its connections) into one
//!   [`mhhea::gateway::StreamMux::submit_batch`] call on the shared
//!   worker pool; the per-connection state machine (parse, sequencing,
//!   write-side backpressure) lives in a private transport-agnostic
//!   module. On disconnect each stream's `MHSS` snapshot parks in a
//!   store shared across reactors, so a reconnecting client resumes
//!   bit-exactly — whichever reactor it lands on.
//! * [`client`] — a blocking client with per-stream sequence tracking and
//!   a pipelined batch path.
//! * [`dgram`] — **MHNP-D**, the datagram mode: the same frames over
//!   `UdpSocket`, one self-describing packet per chunk via the
//!   container-v2 per-chunk keystream derivation, a sliding replay
//!   window instead of a sequence counter, and explicit loss reporting
//!   instead of delivery guarantees. Streams are established over TCP
//!   and attached to the datagram path by resume token, so both
//!   transports serve the same mux entries, epochs and snapshots.
//! * [`crc`] — CRC-32 (IEEE), the per-frame integrity check.
//!
//! Streams are keyed one of two ways. A `Hello` handshake names a
//! pre-shared key id from the server's keyring. Alternatively — when the
//! server opts in with [`server::ServerConfig::with_ephemeral_keys`] — a
//! `KeyEx` handshake (MHKX) serves clients with **no pre-shared key at
//! all**: an ephemeral X25519 exchange ([`mhhea_kex`]) derives the
//! stream's key and LFSR seed jointly, both sides prove knowledge of the
//! derived material with confirmation tags, and only then does the
//! server allocate the stream. The same handshake at a nonzero epoch
//! rotates an open stream under fresh Diffie–Hellman material
//! ([`client::NetClient::rekey_ephemeral`]), making each epoch's key
//! independent of every earlier one. See `docs/PROTOCOL.md` §5.1.
//!
//! # A conversation in frames
//!
//! ```text
//! client                                server
//!   │ Hello(stream=7, key_id, seed) ──────▶ opens sessions for stream 7
//!   │ ◀──────────── HelloAck(7, token)
//!   │ Data(7, seq=0, plaintext) ──────────▶ encrypt on stream 7
//!   │ ◀──────── Reply(7, seq=0, bit_len ∥ blocks)
//!   │ Data(7, seq=1, OPEN, blocks) ───────▶ decrypt on stream 7
//!   │ ◀──────── Reply(7, seq=1, plaintext)
//!   │ Rekey(7, seq=2, epoch=1) ───────────▶ rotates key epoch, both
//!   │ ◀─── RekeyAck(7, epoch=1, token′)     directions, atomically
//!   │ Data(7, seq=(1,0), plaintext) ──────▶ sealed under epoch 1
//!   │ ◀──────── Reply(7, seq=(1,0), …)      (old-epoch replays: StaleEpoch)
//!   ✕ (disconnect)                          evicts stream 7 → snapshot
//!   │ (reconnect)
//!   │ Resume(7, token′) ──────────────────▶ restores from snapshot
//!   │ ◀── HelloAck(7, RESUMED, token′, 1)   cipher state + epoch continue
//! ```
//!
//! The sequence field carries the key epoch in its high 32 bits
//! ([`frame::split_seq`]); at epoch 0 it is numerically a plain counter,
//! so a stream that never rekeys puts identical `Data`/`Reply` bytes on
//! the wire as before epochs existed. (The `HelloAck` answering a
//! `Resume` did grow: it now appends the epoch to the token.)
//!
//! # Example
//!
//! ```
//! use mhhea_net::client::NetClient;
//! use mhhea_net::frame::Hello;
//! use mhhea_net::server::{NetServer, ServerConfig};
//! use mhhea::Key;
//!
//! let key = Key::from_nibbles(&[(0, 3), (2, 5)])?;
//! let server = NetServer::spawn("127.0.0.1:0", ServerConfig::new([(1, key.clone())]))?;
//!
//! let mut client = NetClient::connect(server.addr())?;
//! client.open_stream(7, Hello::new(1, 0xACE1))?;
//! let sealed = client.seal(7, b"over the wire")?;
//! let plain = client.open(7, &sealed.blocks, sealed.bit_len)?;
//! assert_eq!(plain, b"over the wire");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
mod conn;
pub mod crc;
pub mod dgram;
pub mod frame;
mod reactor;
pub mod server;

pub use client::{ClientError, EphemeralSession, NetClient, Sealed};
pub use dgram::{DgramClient, DgramClientConfig, DgramError, DgramOutcome};
pub use frame::{ErrorCode, Frame, FrameError, FrameKind, Hello};
pub use server::{NetServer, ServerConfig, ServerHandle, ServerStats};
