//! A blocking MHNP client: open streams, seal/open messages, survive
//! reconnects.
//!
//! The client is deliberately simple — one blocking socket, synchronous
//! request/reply per call — with one concession to throughput:
//! [`NetClient::seal_pipelined`] writes a whole batch of `Data` frames
//! before reading any replies, letting the server coalesce them into a
//! single gateway submission.
//!
//! Sequence numbers are managed internally: each stream counts its `Data`
//! frames from 0 per session, stamped with the stream's key epoch in the
//! sequence field's high bits (see [`crate::frame::split_seq`]), mirroring
//! the server's expectation. After a reconnect, [`NetClient::resume`]
//! starts a fresh session (counter 0 again, in whatever epoch the resumed
//! snapshot carries) on the restored cipher state; [`NetClient::rekey`]
//! rotates the stream to a new epoch and restarts the counter under it.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use mhhea::{Algorithm, Key, Profile};
use mhhea_kex::{derive_session, tags_equal, transcript, EphemeralSecret};

use crate::frame::{
    self, algorithm_wire_tag, decode_blocks, decode_error, decode_key_ex_ack, decode_rekey_ack,
    decode_resumed_ack, encode_blocks, encode_key_ex_confirm, encode_rekey, flags, join_seq,
    profile_wire_tag, ErrorCode, Frame, FrameError, FrameKind, Hello, KeyExAckPayload, KeyExInit,
};

/// A sealed message as it travels in a `Reply`: the plaintext bit length
/// plus the cipher blocks (exactly what [`mhhea::DecryptSession::decrypt`]
/// wants back).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sealed {
    /// The plaintext's bit length.
    pub bit_len: u32,
    /// The cipher blocks.
    pub blocks: Vec<u16>,
}

/// Why a client call failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// A socket-level failure (includes read timeouts).
    Io(io::Error),
    /// The server's bytes failed to decode as MHNP.
    Frame(FrameError),
    /// The server answered with an `Error` frame.
    Server {
        /// The machine-readable code (`None` for codes this client does
        /// not know).
        code: Option<ErrorCode>,
        /// The human-readable detail string.
        detail: String,
    },
    /// The server answered with a frame that does not match the pending
    /// request.
    UnexpectedFrame(String),
    /// A local call referenced a stream this client has not opened.
    StreamNotOpen(u64),
    /// The server closed the connection.
    Disconnected,
    /// The MHKX handshake failed **on the client side**: the server
    /// presented a low-order public key, or its key-confirmation tag did
    /// not match the transcript. The derived material was discarded.
    KeyExchange(String),
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket failure: {e}"),
            ClientError::Frame(e) => write!(f, "undecodable server bytes: {e}"),
            ClientError::Server { code, detail } => match code {
                Some(code) => write!(f, "server rejected the request: {code}: {detail}"),
                None => write!(f, "server rejected the request (unknown code): {detail}"),
            },
            ClientError::UnexpectedFrame(what) => write!(f, "unexpected server frame: {what}"),
            ClientError::StreamNotOpen(id) => write!(f, "stream {id} is not open on this client"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::KeyExchange(detail) => write!(f, "key exchange failed: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl ClientError {
    /// True when the server answered with the given error code — the
    /// shape reconnect logic matches on (`NoSnapshot` while the server
    /// has not yet noticed the old connection died, for example).
    pub fn is_code(&self, want: ErrorCode) -> bool {
        matches!(self, ClientError::Server { code: Some(c), .. } if *c == want)
    }
}

/// The outcome of a completed MHKX handshake
/// ([`NetClient::open_ephemeral`] / [`NetClient::rekey_ephemeral`]): the
/// stream's fresh resume token plus the session material both sides
/// derived. `key` and `seed` are exactly what the server installed, so a
/// local [`mhhea::DecryptSession`]/[`mhhea::EncryptSession`] built from
/// them opens (and reproduces) the stream's sealed bytes bit-exactly.
#[derive(Clone)]
pub struct EphemeralSession {
    /// The resume token the server minted (present it to
    /// [`NetClient::resume`] after a disconnect).
    pub token: u64,
    /// The derived session key now running the stream.
    pub key: Key,
    /// The derived LFSR master seed now running the stream (nonzero).
    pub seed: u16,
}

impl core::fmt::Debug for EphemeralSession {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // The key and seed are live cipher material — never log them.
        f.debug_struct("EphemeralSession")
            .field("token", &self.token)
            .finish_non_exhaustive()
    }
}

/// A blocking MHNP connection.
#[derive(Debug)]
pub struct NetClient {
    sock: TcpStream,
    rbuf: Vec<u8>,
    /// stream id → next `Data` sequence number for this session.
    seqs: HashMap<u64, u64>,
}

impl NetClient {
    /// Connects with a 10-second read timeout (a server bug surfaces as a
    /// timeout error instead of a hang).
    ///
    /// # Errors
    ///
    /// Socket-level connect/configure failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, ClientError> {
        NetClient::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connects with an explicit read timeout (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// Socket-level connect/configure failures.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: impl Into<Option<Duration>>,
    ) -> Result<NetClient, ClientError> {
        let sock = TcpStream::connect(addr)?;
        sock.set_nodelay(true)?;
        sock.set_read_timeout(timeout.into())?;
        Ok(NetClient {
            sock,
            rbuf: Vec::new(),
            seqs: HashMap::new(),
        })
    }

    /// Opens a fresh stream: sends [`Hello`], waits for the ack, and
    /// returns the stream's **resume token**. Hold on to it (across
    /// connections — it outlives this client): [`NetClient::resume`]
    /// must present it to reclaim the stream after a disconnect.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::UnknownKeyId`],
    /// [`ErrorCode::StreamExists`] or [`ErrorCode::BadHandshake`]; any
    /// transport failure.
    pub fn open_stream(&mut self, stream: u64, hello: Hello) -> Result<u64, ClientError> {
        self.send_frame(&Frame::new(FrameKind::Hello, stream, 0).with_payload(hello.encode()))?;
        let ack = self.expect_frame(FrameKind::HelloAck, stream, 0)?;
        let token = Self::ack_token(&ack)?;
        self.seqs.insert(stream, 0);
        Ok(token)
    }

    /// Connects and opens `stream` with **no pre-shared key**: a
    /// convenience wrapper around [`NetClient::connect`] +
    /// [`NetClient::open_ephemeral`]. The server must have been
    /// configured with `ServerConfig::with_ephemeral_keys`.
    ///
    /// # Errors
    ///
    /// As [`NetClient::connect`] and [`NetClient::open_ephemeral`].
    pub fn connect_ephemeral(
        addr: impl ToSocketAddrs,
        stream: u64,
    ) -> Result<(NetClient, EphemeralSession), ClientError> {
        let mut client = NetClient::connect(addr)?;
        let session = client.open_ephemeral(stream)?;
        Ok((client, session))
    }

    /// Opens a fresh stream by **ephemeral key agreement** (MHKX, see
    /// `docs/PROTOCOL.md` §5.1) instead of a pre-shared key, with the
    /// default cipher parameters (MHHEA, streaming).
    ///
    /// # Errors
    ///
    /// As [`NetClient::open_ephemeral_with`].
    pub fn open_ephemeral(&mut self, stream: u64) -> Result<EphemeralSession, ClientError> {
        self.open_ephemeral_with(stream, Algorithm::Mhhea, Profile::Streaming)
    }

    /// Opens a fresh stream by ephemeral key agreement with explicit
    /// cipher parameters: a 4-message X25519 handshake derives the
    /// stream's key and LFSR seed on both sides, each end proves
    /// knowledge of the derived material with a confirmation tag, and
    /// only then does the server allocate the stream.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::BadHandshake`] when the
    /// server does not accept ephemeral handshakes,
    /// [`ErrorCode::StreamExists`]/[`ErrorCode::ServerBusy`] as for
    /// [`NetClient::open_stream`], or
    /// [`ErrorCode::KeyConfirmFailed`] when the server rejected the
    /// exchange; [`ClientError::KeyExchange`] when the *server's* key or
    /// tag fails verification locally (nothing was sent in phase 2, so
    /// the server allocated nothing); any transport failure.
    pub fn open_ephemeral_with(
        &mut self,
        stream: u64,
        algorithm: Algorithm,
        profile: Profile,
    ) -> Result<EphemeralSession, ClientError> {
        self.key_exchange(stream, 0, algorithm, profile)
    }

    /// Rotates the stream to `epoch` under a **fresh Diffie–Hellman
    /// exchange** instead of a server-side key list: the new epoch's key
    /// and seed are derived jointly, so they are independent of every
    /// earlier epoch's material (compare [`NetClient::rekey`], which
    /// rotates within the key list fixed at handshake time). Returns the
    /// fresh session material and resume token; the old token is
    /// retired, and both sides restart the sequence space at
    /// `(epoch, 0)`.
    ///
    /// The stream must currently be open on this connection. Unlike
    /// [`NetClient::rekey`], the exchange is a control-plane handshake:
    /// it does not consume a sequence number of the old epoch, but the
    /// server still applies it in order relative to traffic already
    /// queued on this connection.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::StaleEpoch`] when
    /// `epoch` is not strictly newer than the stream's current epoch, or
    /// [`ErrorCode::UnknownStream`] when this connection does not own
    /// the stream; otherwise as [`NetClient::open_ephemeral_with`].
    pub fn rekey_ephemeral(
        &mut self,
        stream: u64,
        epoch: u32,
    ) -> Result<EphemeralSession, ClientError> {
        if !self.seqs.contains_key(&stream) {
            return Err(ClientError::StreamNotOpen(stream));
        }
        // The cipher parameters were fixed when the stream was opened;
        // the transcript binds them by wire tag, and a rotation never
        // changes them — MHHEA/streaming are the only values the server
        // will re-derive for an already-open stream.
        self.key_exchange(stream, epoch, Algorithm::Mhhea, Profile::Streaming)
    }

    /// Runs one MHKX handshake (both phases) for `stream` at `epoch`
    /// (0 = fresh open, > 0 = fresh-DH rotation) and installs the local
    /// sequence counter at `(epoch, 0)` on success.
    fn key_exchange(
        &mut self,
        stream: u64,
        epoch: u32,
        algorithm: Algorithm,
        profile: Profile,
    ) -> Result<EphemeralSession, ClientError> {
        let secret = EphemeralSecret::generate();
        let client_pub = secret.public_key();
        let init = KeyExInit::new(client_pub)
            .with_epoch(epoch)
            .with_algorithm(algorithm)
            .with_profile(profile);
        self.send_frame(&Frame::new(FrameKind::KeyEx, stream, 0).with_payload(init.encode()))?;
        let ack = self.expect_frame(FrameKind::KeyExAck, stream, 0)?;
        let KeyExAckPayload::Init {
            public_key: server_pub,
            tag,
        } = decode_key_ex_ack(&ack.payload)?
        else {
            return Err(ClientError::UnexpectedFrame(
                "key-ex-ack completion before the confirmation phase".into(),
            ));
        };
        // Verify the server before answering: a low-order key or a bad
        // tag means whoever answered does not hold the shared secret, and
        // phase 2 (which would prove *our* knowledge of it) is never sent.
        let shared = secret
            .diffie_hellman(&server_pub)
            .map_err(|e| ClientError::KeyExchange(e.to_string()))?;
        let t = transcript(
            stream,
            epoch,
            algorithm_wire_tag(algorithm),
            profile_wire_tag(profile),
            &client_pub,
            &server_pub,
        );
        let material = derive_session(&shared, &t);
        if !tags_equal(&tag, &material.tag_server) {
            return Err(ClientError::KeyExchange(
                "server key-confirmation tag does not match the transcript".into(),
            ));
        }
        let key = Key::from_bytes(&material.key_bytes)
            .map_err(|e| ClientError::KeyExchange(e.to_string()))?;
        self.send_frame(
            &Frame::new(FrameKind::KeyEx, stream, 0)
                .with_payload(encode_key_ex_confirm(&material.tag_client)),
        )?;
        let done = self.expect_frame(FrameKind::KeyExAck, stream, 0)?;
        let KeyExAckPayload::Done { token } = decode_key_ex_ack(&done.payload)? else {
            return Err(ClientError::UnexpectedFrame(
                "key-ex-ack confirmation phase answered twice".into(),
            ));
        };
        self.seqs.insert(stream, join_seq(epoch, 0));
        Ok(EphemeralSession {
            token,
            key,
            seed: material.seed,
        })
    }

    /// Resumes a previously evicted stream from the server's parked
    /// snapshot, presenting the resume token its [`NetClient::open_stream`]
    /// returned; cipher state continues bit-exactly, sequence numbers
    /// restart at 0 for the new session.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoSnapshot`] when the server holds no snapshot under
    /// this (stream, token) pair — most often it has not yet noticed the
    /// old connection died (retry), or the token is wrong;
    /// [`ErrorCode::StreamExists`] when the stream is still open.
    pub fn resume(&mut self, stream: u64, token: u64) -> Result<(), ClientError> {
        self.send_frame(
            &Frame::new(FrameKind::Resume, stream, 0).with_payload(token.to_le_bytes().to_vec()),
        )?;
        let ack = self.expect_frame(FrameKind::HelloAck, stream, 0)?;
        if ack.flags & flags::RESUMED == 0 {
            return Err(ClientError::UnexpectedFrame(
                "hello-ack without the resumed flag".into(),
            ));
        }
        // The resumed ack names the stream's key epoch (it may have been
        // rotated before the disconnect); sequence numbers restart at
        // counter 0 *in that epoch*.
        let (_token, epoch) = decode_resumed_ack(&ack.payload)?;
        self.seqs.insert(stream, join_seq(epoch, 0));
        Ok(())
    }

    /// Like [`NetClient::resume`], but retries while the server answers
    /// `NoSnapshot`/`StreamExists` — the window in which it has not yet
    /// reaped the previous connection.
    ///
    /// # Errors
    ///
    /// The last server answer once `deadline` elapses; any transport
    /// failure immediately.
    ///
    /// ```
    /// use std::time::Duration;
    /// use mhhea_net::client::NetClient;
    /// use mhhea_net::frame::Hello;
    /// use mhhea_net::server::{NetServer, ServerConfig};
    /// use mhhea::Key;
    ///
    /// let key = Key::from_nibbles(&[(0, 3), (2, 5)])?;
    /// let server = NetServer::spawn("127.0.0.1:0", ServerConfig::new([(1, key)]))?;
    /// let mut client = NetClient::connect(server.addr())?;
    /// let token = client.open_stream(7, Hello::new(1, 0xACE1))?;
    /// let before = client.seal(7, b"before the drop")?;
    ///
    /// drop(client); // the server evicts stream 7 into a parked snapshot
    /// let mut client = NetClient::connect(server.addr())?;
    /// client.resume_within(7, token, Duration::from_secs(5))?;
    /// // Cipher state continued bit-exactly across the reconnect.
    /// let after = client.seal(7, b"after the drop!")?;
    /// assert_ne!(before.blocks, after.blocks);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn resume_within(
        &mut self,
        stream: u64,
        token: u64,
        deadline: Duration,
    ) -> Result<(), ClientError> {
        let start = std::time::Instant::now();
        loop {
            match self.resume(stream, token) {
                Err(e)
                    if (e.is_code(ErrorCode::NoSnapshot) || e.is_code(ErrorCode::StreamExists))
                        && start.elapsed() < deadline =>
                {
                    std::thread::sleep(Duration::from_millis(2));
                }
                other => return other,
            }
        }
    }

    /// Extracts the resume token from a `HelloAck` payload.
    fn ack_token(ack: &Frame) -> Result<u64, ClientError> {
        let bytes: [u8; 8] = ack.payload.as_slice().try_into().map_err(|_| {
            ClientError::UnexpectedFrame("hello-ack without an 8-byte resume token".into())
        })?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Rotates the stream to a new key epoch and returns the **fresh
    /// resume token** the server minted for it (the pre-rotation token is
    /// retired — replace whatever you stored from
    /// [`NetClient::open_stream`]).
    ///
    /// The rotation is a synchronisation point: the `Rekey` frame
    /// consumes the next sequence number of the old epoch, the server
    /// applies it in order relative to in-flight traffic, and after the
    /// ack both sides count from `(epoch, 0)`. Both cipher directions
    /// rotate atomically on the server: the LFSR reseeds, the schedule
    /// restarts, and frames stamped with the retired epoch are rejected
    /// ([`ErrorCode::StaleEpoch`]). Whether the *key* changes too —
    /// which is what retires pre-rotation ciphertext on the decrypt
    /// side — depends on the server's key list for the stream's key id
    /// (`ServerConfig::with_epoch_keys` vs a single key; see the
    /// protocol spec).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::StaleEpoch`] when
    /// `epoch` is not strictly newer than the stream's current epoch (the
    /// sequence number is not consumed); stream/transport failures as for
    /// [`NetClient::seal`].
    ///
    /// ```no_run
    /// use mhhea_net::client::NetClient;
    /// use mhhea_net::frame::Hello;
    ///
    /// let mut client = NetClient::connect("127.0.0.1:4040")?;
    /// let mut token = client.open_stream(7, Hello::new(1, 0xACE1))?;
    /// client.seal(7, b"epoch zero")?;
    /// token = client.rekey(7, 1)?; // the old token is now useless
    /// client.seal(7, b"epoch one")?;
    /// # let _ = token;
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn rekey(&mut self, stream: u64, epoch: u32) -> Result<u64, ClientError> {
        let seq = self.next_seq(stream)?;
        self.send_frame(
            &Frame::new(FrameKind::Rekey, stream, seq).with_payload(encode_rekey(epoch)),
        )?;
        match self.expect_frame(FrameKind::RekeyAck, stream, seq) {
            Ok(ack) => {
                let (acked_epoch, token) = decode_rekey_ack(&ack.payload)?;
                if acked_epoch != epoch {
                    return Err(ClientError::UnexpectedFrame(format!(
                        "rekey-ack for epoch {acked_epoch}, wanted {epoch}"
                    )));
                }
                self.seqs.insert(stream, join_seq(epoch, 0));
                Ok(token)
            }
            Err(e) => {
                // Rejections that did not consume the sequence number
                // roll the local counter back, exactly like Data frames.
                if e.is_code(ErrorCode::StaleEpoch)
                    || e.is_code(ErrorCode::BadSequence)
                    || e.is_code(ErrorCode::UnknownStream)
                {
                    if let Some(s) = self.seqs.get_mut(&stream) {
                        *s = (*s).min(seq);
                    }
                }
                Err(e)
            }
        }
    }

    /// Closes a stream on the server (its state is discarded, not
    /// parked).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownStream`] when the stream is not open here.
    pub fn bye(&mut self, stream: u64) -> Result<(), ClientError> {
        if !self.seqs.contains_key(&stream) {
            return Err(ClientError::StreamNotOpen(stream));
        }
        self.send_frame(&Frame::new(FrameKind::Bye, stream, 0))?;
        self.expect_frame(FrameKind::Bye, stream, 0)?;
        self.seqs.remove(&stream);
        Ok(())
    }

    /// Encrypts `message` on the server's encrypt session for `stream`.
    ///
    /// # Errors
    ///
    /// Stream/sequence/server failures as [`ClientError::Server`]; any
    /// transport failure.
    ///
    /// ```
    /// use mhhea_net::client::NetClient;
    /// use mhhea_net::frame::Hello;
    /// use mhhea_net::server::{NetServer, ServerConfig};
    /// use mhhea::Key;
    ///
    /// let key = Key::from_nibbles(&[(0, 3), (2, 5)])?;
    /// let server = NetServer::spawn("127.0.0.1:0", ServerConfig::new([(1, key)]))?;
    /// let mut client = NetClient::connect(server.addr())?;
    /// client.open_stream(7, Hello::new(1, 0xACE1))?;
    ///
    /// let sealed = client.seal(7, b"fourteen bytes")?;
    /// assert_eq!(sealed.bit_len, 14 * 8);
    /// assert_eq!(client.open(7, &sealed.blocks, sealed.bit_len)?, b"fourteen bytes");
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn seal(&mut self, stream: u64, message: &[u8]) -> Result<Sealed, ClientError> {
        let seq = self.next_seq(stream)?;
        let mut bytes = Vec::with_capacity(frame::HEADER_LEN + message.len());
        frame::encode_raw(&mut bytes, FrameKind::Data, 0, stream, seq, message);
        self.sock.write_all(&bytes)?;
        let reply = self.read_data_reply(stream, seq)?;
        let (bit_len, blocks) = decode_blocks(&reply.payload)?;
        Ok(Sealed { bit_len, blocks })
    }

    /// Decrypts cipher blocks on the server's decrypt session for
    /// `stream`.
    ///
    /// # Errors
    ///
    /// As [`NetClient::seal`]; additionally [`ErrorCode::Engine`] for
    /// truncated ciphertext (the sequence number is consumed, the stream
    /// stays usable).
    pub fn open(
        &mut self,
        stream: u64,
        blocks: &[u16],
        bit_len: u32,
    ) -> Result<Vec<u8>, ClientError> {
        let seq = self.next_seq(stream)?;
        self.send_frame(
            &Frame::new(FrameKind::Data, stream, seq)
                .with_flags(flags::DIR_OPEN)
                .with_payload(encode_blocks(bit_len, blocks)),
        )?;
        let reply = self.read_data_reply(stream, seq)?;
        Ok(reply.payload)
    }

    /// Seals a whole batch with pipelining: every request frame is written
    /// before any reply is read, so the server can coalesce the batch into
    /// one gateway submission. Results come back in request order.
    ///
    /// # Errors
    ///
    /// [`ClientError::StreamNotOpen`] before anything is sent if any batch
    /// entry names an unopened stream. After the batch is sent, the first
    /// per-item failure is returned — but the remaining replies are still
    /// drained (the server answers every submitted frame in order), so the
    /// connection and its other streams stay usable. Transport-level
    /// failures (socket errors, undecodable frames, disconnect) abort the
    /// drain: framing is already lost.
    pub fn seal_pipelined(&mut self, batch: &[(u64, Vec<u8>)]) -> Result<Vec<Sealed>, ClientError> {
        // Validate up front: a mid-encode failure would leave earlier
        // streams' counters bumped for frames that were never sent.
        for (stream, _) in batch {
            if !self.seqs.contains_key(stream) {
                return Err(ClientError::StreamNotOpen(*stream));
            }
        }
        let mut bytes = Vec::new();
        let mut expected: Vec<(u64, u64)> = Vec::with_capacity(batch.len());
        for (stream, message) in batch {
            let seq = self.next_seq(*stream)?;
            frame::encode_raw(&mut bytes, FrameKind::Data, 0, *stream, seq, message);
            expected.push((*stream, seq));
        }
        self.sock.write_all(&bytes)?;
        let mut out = Vec::with_capacity(batch.len());
        let mut first_err: Option<ClientError> = None;
        for (stream, seq) in expected {
            match self.read_data_reply(stream, seq) {
                Ok(reply) if first_err.is_none() => match decode_blocks(&reply.payload) {
                    Ok((bit_len, blocks)) => out.push(Sealed { bit_len, blocks }),
                    Err(e) => first_err = Some(e.into()),
                },
                // Draining after a failure: the reply is discarded.
                Ok(_) => {}
                Err(e) => {
                    let fatal = matches!(
                        e,
                        ClientError::Io(_)
                            | ClientError::Frame(_)
                            | ClientError::Disconnected
                            | ClientError::UnexpectedFrame(_)
                    );
                    if fatal {
                        // The transport failure supersedes any earlier
                        // per-item error: the connection is NOT usable,
                        // and a per-item error would claim it is.
                        return Err(e);
                    }
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Sends one frame (public for protocol tests and custom tooling).
    ///
    /// # Errors
    ///
    /// Socket-level write failures.
    pub fn send_frame(&mut self, frame: &Frame) -> Result<(), ClientError> {
        self.sock.write_all(&frame.encode())?;
        Ok(())
    }

    /// Blocks until one complete frame arrives (public for protocol tests
    /// and custom tooling).
    ///
    /// # Errors
    ///
    /// [`ClientError::Disconnected`] on EOF; decode failures as
    /// [`ClientError::Frame`]; timeouts as [`ClientError::Io`].
    pub fn recv_frame(&mut self) -> Result<Frame, ClientError> {
        let mut scratch = [0u8; 16 << 10];
        loop {
            if let Some((frame, used)) = frame::decode(&self.rbuf)? {
                self.rbuf.drain(..used);
                return Ok(frame);
            }
            match self.sock.read(&mut scratch) {
                Ok(0) => return Err(ClientError::Disconnected),
                // lint: allow(panic-path, reason = "a conforming Read returns n ≤ the slice it was handed")
                Ok(n) => self.rbuf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    fn next_seq(&mut self, stream: u64) -> Result<u64, ClientError> {
        let seq = self
            .seqs
            .get_mut(&stream)
            .ok_or(ClientError::StreamNotOpen(stream))?;
        let current = *seq;
        // The server consumes the sequence number the moment it accepts
        // the frame, before running the op — mirror that optimistically
        // and roll back in read_data_reply for not-accepted rejections.
        *seq = current + 1;
        Ok(current)
    }

    /// Reads the reply for a `Data` request. On `BadSequence`/
    /// `UnknownStream`/`StaleEpoch` (the server did not consume the
    /// sequence number) the local counter is rolled back so the stream
    /// can continue. The rollback only ever moves the counter *down* —
    /// when several pipelined frames on one stream are all rejected, the
    /// counter lands on the first (lowest) unconsumed sequence number,
    /// not the last.
    fn read_data_reply(&mut self, stream: u64, seq: u64) -> Result<Frame, ClientError> {
        match self.expect_frame(FrameKind::Reply, stream, seq) {
            Ok(frame) => Ok(frame),
            Err(e) => {
                if e.is_code(ErrorCode::BadSequence)
                    || e.is_code(ErrorCode::UnknownStream)
                    || e.is_code(ErrorCode::MessageTooLarge)
                    || e.is_code(ErrorCode::StaleEpoch)
                {
                    if let Some(s) = self.seqs.get_mut(&stream) {
                        *s = (*s).min(seq);
                    }
                }
                Err(e)
            }
        }
    }

    fn expect_frame(
        &mut self,
        kind: FrameKind,
        stream: u64,
        seq: u64,
    ) -> Result<Frame, ClientError> {
        let frame = self.recv_frame()?;
        if frame.kind == FrameKind::Error {
            let (code, detail) = decode_error(&frame.payload);
            return Err(ClientError::Server { code, detail });
        }
        if frame.kind != kind || frame.stream != stream || frame.seq != seq {
            return Err(ClientError::UnexpectedFrame(format!(
                "wanted {kind:?} for stream {stream} seq {seq}, got {:?} for stream {} seq {}",
                frame.kind, frame.stream, frame.seq
            )));
        }
        Ok(frame)
    }

    /// Stream ids currently open on this client.
    pub fn open_streams(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.seqs.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}
