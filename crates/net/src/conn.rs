//! The per-connection state machine — the bottom layer of the server.
//!
//! A [`Conn`] owns everything that belongs to exactly one connection:
//! the receive buffer and incremental frame parsing, the per-stream
//! sequence expectations (validated here, including the epoch split and
//! the rekey synchronisation point), the write buffer with backpressure
//! accounting, and the close/half-close grace machinery.
//!
//! What a `Conn` deliberately does **not** know about is the loop that
//! drives it: it is generic over any non-blocking [`Read`] + [`Write`]
//! byte stream and has no notion of readiness loops, reactors, accept
//! sharding, or the shared stream registry. The reactor layer
//! ([`crate::reactor`]) calls `read_tick` / `parse_tick` / `flush_tick`
//! and routes anything connection-transcending (handshakes, the gateway
//! batch, eviction) through shared state it owns. That decoupling is
//! what lets N reactor threads drive disjoint connection sets over one
//! gateway — and what a future datagram transport would reuse with a
//! different driver.
//!
//! Reply framing is zero-copy per frame: payloads are encoded into a
//! per-connection scratch buffer (or borrowed outright) and appended to
//! the write buffer via [`frame::encode_raw`], so the reply path
//! performs no per-frame allocations once the buffers are warm.

use std::collections::{HashMap, HashSet};
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

use mhhea::gateway::{StreamId, StreamOp};

use crate::frame::{
    self, decode_blocks, decode_rekey, encode_error, flags, split_seq, ErrorCode, Frame, FrameKind,
    HEADER_LEN, MAX_ERROR_DETAIL_BYTES,
};
use crate::server::{ServerStats, MAX_MESSAGE_BYTES};

/// stream id → next expected `Data`/`Rekey` sequence number, for the
/// streams a connection owns.
pub(crate) type StreamTable = HashMap<u64, u64>;

/// stream id → the half-done MHKX exchange parked between `KeyEx`
/// phase 1 and phase 2 on this connection.
pub(crate) type KexTable = HashMap<u64, PendingKex>;

/// Most simultaneous half-open MHKX exchanges one connection may park.
/// Each entry is a few dozen bytes, but phase 2 may never arrive — the
/// cap keeps a handshake-spraying client from growing server memory.
pub(crate) const MAX_PENDING_KEX: usize = 16;

/// Everything the server keeps between `KeyEx` phase 1 and phase 2 —
/// deliberately *not* the ephemeral secret, which is dropped as soon as
/// the shared secret is derived (forward secrecy): a phase-1 frame
/// costs the server one DH plus this struct, never a live secret.
pub(crate) struct PendingKex {
    /// The client tag that must arrive in phase 2 (constant-time
    /// compared).
    pub expected_tag: [u8; frame::KEX_TAG_LEN],
    /// Derived key-pair schedule bytes for `Key::from_bytes`.
    pub key_bytes: [u8; 16],
    /// Derived LFSR master seed (nonzero).
    pub seed: u16,
    /// Cipher variant the stream will run.
    pub algorithm: mhhea::Algorithm,
    /// Buffering profile the stream will run.
    pub profile: mhhea::Profile,
    /// Target epoch: 0 = fresh open, > 0 = fresh-DH rotation.
    pub epoch: u32,
}

/// How a submitted op's output travels back to the client.
pub(crate) enum ReplyShape {
    /// A seal: `Reply` carrying `bit_len ∥ blocks`.
    Seal {
        /// The plaintext bit length to prefix the blocks with.
        bit_len: u32,
    },
    /// An open: `Reply` carrying plaintext, flagged [`flags::DIR_OPEN`].
    Open,
    /// A rotation: `RekeyAck` carrying the epoch and a fresh resume
    /// token; accepting it also restamps the stream's expected sequence.
    Rekey,
}

/// What a parsed `Data`/`Rekey` frame turned into: either a slot in this
/// tick's gateway batch, or an immediate failure that still must be
/// answered *in request order*.
pub(crate) struct DataTicket {
    /// Index of the owning connection in the reactor's table.
    pub conn: usize,
    pub stream: u64,
    pub seq: u64,
    pub outcome: TicketOutcome,
}

pub(crate) enum TicketOutcome {
    /// `batch[index]`, with how the result must be framed back.
    Submitted { index: usize, shape: ReplyShape },
    /// Rejected before touching any cipher state.
    Rejected { code: ErrorCode, detail: String },
}

/// The per-tick accumulators a connection's parse phase feeds: the
/// reactor's shared gateway batch, the ordered ticket list, deferred
/// goodbye frames, and the set of streams with a rotation in flight.
pub(crate) struct TickSink<'a> {
    pub batch: &'a mut Vec<(StreamId, StreamOp)>,
    pub tickets: &'a mut Vec<DataTicket>,
    pub goodbyes: &'a mut Vec<(usize, Frame)>,
    pub rekey_pending: &'a mut HashSet<u64>,
    pub stats: &'a ServerStats,
}

/// What the control layer decided about a `Hello`/`Resume`/`Bye` (or a
/// protocol-violating kind): the reply to queue, and whether the
/// connection must be hung up.
pub(crate) struct ControlAction {
    pub reply: Frame,
    pub hang_up: bool,
}

/// One live connection. Generic over the byte stream so the state
/// machine carries no socket (or loop) assumptions; the server
/// instantiates it with a non-blocking `TcpStream`.
pub(crate) struct Conn<S> {
    sock: S,
    /// Unparsed received bytes (a frame may span many reads).
    rbuf: Vec<u8>,
    /// Bytes queued for the socket; `wpos..` is still unsent.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Streams owned by this connection, with their sequence
    /// expectations. Ownership is the cross-connection isolation
    /// boundary: no other connection (on any reactor) can address them.
    pub(crate) streams: StreamTable,
    /// Half-open MHKX exchanges (between `KeyEx` phases), keyed by
    /// stream id. Connection-scoped like `streams`: an exchange begun
    /// here can only be completed here, so a phase-2 frame replayed on
    /// another connection finds nothing.
    pub(crate) kex: KexTable,
    /// Reusable payload-encode scratch for the reply path.
    payload_scratch: Vec<u8>,
    /// Flush what is queued, then close (set after a protocol violation).
    closing: bool,
    /// The peer half-closed (EOF on read). Frames already received are
    /// still parsed and answered; the connection dies once every queued
    /// reply flushes.
    eof: bool,
    /// When `closing`/`eof` was first observed — a peer that never drains
    /// the remaining frames is torn down once the close grace elapses.
    closing_since: Option<Instant>,
    /// Tear down at the end of the tick.
    pub(crate) dead: bool,
}

impl<S: Read + Write> Conn<S> {
    pub(crate) fn new(sock: S) -> Conn<S> {
        Conn {
            sock,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            streams: HashMap::new(),
            kex: HashMap::new(),
            payload_scratch: Vec::new(),
            closing: false,
            eof: false,
            closing_since: None,
            dead: false,
        }
    }

    /// Bytes queued for the socket but not yet written — the
    /// backpressure measure.
    pub(crate) fn queued(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Marks the connection for teardown after its queued frames flush
    /// (or the close grace expires). Pending unparsed input is discarded —
    /// framing is already lost.
    pub(crate) fn start_closing(&mut self) {
        self.closing = true;
        self.closing_since.get_or_insert_with(Instant::now);
        self.rbuf.clear();
    }

    /// Promotes an aged-out closing/half-closed connection to dead: a
    /// peer that never drains the remaining frames must not linger
    /// forever (`flush_tick` only kills it once the write buffer empties).
    pub(crate) fn expire_grace(&mut self, grace: Duration) {
        if (self.closing || self.eof) && !self.dead {
            let expired = self
                .closing_since
                .is_none_or(|since| since.elapsed() >= grace);
            if expired {
                self.dead = true;
            }
        }
    }

    /// Drains the socket into the receive buffer, honouring the read
    /// budget and write-side backpressure (`write_buf_limit`). Returns
    /// whether bytes moved.
    pub(crate) fn read_tick(
        &mut self,
        scratch: &mut [u8],
        read_budget: usize,
        write_buf_limit: usize,
    ) -> bool {
        if self.dead || self.eof {
            return false;
        }
        if self.closing {
            // No longer parsing, but keep draining-and-discarding (within
            // the tick's read budget) so a peer that hangs up is noticed
            // now rather than only when the close grace expires.
            let mut budget = read_budget;
            while budget > 0 {
                let want = scratch.len().min(budget);
                // lint: allow(panic-path, reason = "`want` is clamped to scratch.len() on the previous line")
                match self.sock.read(&mut scratch[..want]) {
                    Ok(0) => {
                        self.dead = true;
                        break;
                    }
                    Ok(n) => budget -= n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.dead = true;
                        break;
                    }
                }
            }
            return false;
        }
        if self.queued() >= write_buf_limit {
            // Backpressure: a client that stops reading replies stops
            // being read from, instead of growing server memory.
            return false;
        }
        let mut moved = false;
        let mut budget = read_budget;
        while budget > 0 {
            let want = scratch.len().min(budget);
            // lint: allow(panic-path, reason = "`want` is clamped to scratch.len() on the previous line")
            match self.sock.read(&mut scratch[..want]) {
                Ok(0) => {
                    // Half-close, not death: frames already in rbuf (even
                    // ones received in this very tick) are still parsed
                    // and answered before the connection is torn down.
                    self.eof = true;
                    self.closing_since.get_or_insert_with(Instant::now);
                    break;
                }
                Ok(n) => {
                    // lint: allow(panic-path, reason = "a conforming Read returns n ≤ the slice it was handed")
                    self.rbuf.extend_from_slice(&scratch[..n]);
                    moved = true;
                    budget -= n;
                    if n < want {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        moved
    }

    /// Parses complete frames in arrival order. `Data`/`Rekey` frames are
    /// validated against this connection's sequence expectations and join
    /// the tick's batch via `sink`; control frames are dispatched to
    /// `control` — but only while no data frame from this connection is
    /// already queued, otherwise the control frame waits a tick so
    /// replies never overtake each other.
    ///
    /// `idx` is this connection's index in the reactor's table, stamped
    /// into tickets and goodbyes so the reply phase can route back.
    pub(crate) fn parse_tick(
        &mut self,
        idx: usize,
        sink: &mut TickSink<'_>,
        control: &mut dyn FnMut(&mut StreamTable, &mut KexTable, &Frame) -> ControlAction,
    ) -> bool {
        if self.closing || self.dead {
            return false;
        }
        let mut consumed = 0;
        let mut data_queued = false;
        let mut handled = false;
        loop {
            // lint: allow(panic-path, reason = "decode reports `used` ≤ the slice it parsed, so `consumed` never passes rbuf.len()")
            let frame = match frame::decode(&self.rbuf[consumed..]) {
                Ok(None) => break,
                Ok(Some((frame, used))) => {
                    consumed += used;
                    frame
                }
                Err(e) => {
                    // Framing is lost: answer once (deferred behind this
                    // tick's replies so it cannot overtake them), then
                    // hang up. Other connections (and their streams) are
                    // untouched.
                    ServerStats::bump(&sink.stats.protocol_errors);
                    sink.goodbyes.push((
                        idx,
                        Frame::new(FrameKind::Error, 0, 0)
                            .with_payload(encode_error(ErrorCode::Protocol, &e.to_string())),
                    ));
                    self.start_closing();
                    return true;
                }
            };
            if frame.kind == FrameKind::Data || frame.kind == FrameKind::Rekey {
                ServerStats::bump(&sink.stats.frames_received);
                handled = true;
                data_queued = true;
                let stream = frame.stream;
                let seq = frame.seq;
                match self.validate_data(frame, sink.rekey_pending) {
                    Ok((op, shape)) => {
                        sink.tickets.push(DataTicket {
                            conn: idx,
                            stream,
                            seq,
                            outcome: TicketOutcome::Submitted {
                                index: sink.batch.len(),
                                shape,
                            },
                        });
                        sink.batch.push((StreamId(stream), op));
                    }
                    Err((code, detail)) => sink.tickets.push(DataTicket {
                        conn: idx,
                        stream,
                        seq,
                        outcome: TicketOutcome::Rejected { code, detail },
                    }),
                }
            } else {
                if data_queued {
                    // Preserve order: this control frame executes only
                    // after the queued data work ran. Rewind and retry
                    // next tick (not counted as received yet).
                    consumed -= HEADER_LEN + frame.payload.len();
                    break;
                }
                ServerStats::bump(&sink.stats.frames_received);
                handled = true;
                let action = control(&mut self.streams, &mut self.kex, &frame);
                self.push_frame(&action.reply);
                ServerStats::bump(&sink.stats.frames_sent);
                if action.hang_up {
                    // The control layer hung up (server-only kind) —
                    // nothing left to parse or drain on this connection.
                    self.start_closing();
                    return true;
                }
            }
        }
        self.rbuf.drain(..consumed);
        handled
    }

    /// Validates a `Data`/`Rekey` frame (ownership, epoch, sequence,
    /// payload shape) against this connection's stream table and either
    /// returns the gateway op to enqueue or the rejection to answer.
    /// Rejections never touch cipher state, so the stream survives them.
    fn validate_data(
        &mut self,
        frame: Frame,
        rekey_pending: &mut HashSet<u64>,
    ) -> Result<(StreamOp, ReplyShape), (ErrorCode, String)> {
        let stream = frame.stream;
        let seq = frame.seq;
        let Some(&expected) = self.streams.get(&stream) else {
            return Err((
                ErrorCode::UnknownStream,
                format!("stream {stream} is not open on this connection"),
            ));
        };
        if self.kex.contains_key(&stream) {
            // An MHKX rotation for this stream is between phase 1 and
            // phase 2: like the classic rekey synchronisation point, the
            // sequence space is about to be restamped, so data is
            // rejected without consuming anything until the exchange
            // completes (or fails and is discarded).
            return Err((
                ErrorCode::BadSequence,
                "a key exchange is in flight on this stream; finish it first".to_string(),
            ));
        }
        if rekey_pending.contains(&stream) {
            // A rotation for this stream is queued but not yet acked: the
            // sequence space this frame would be validated against is
            // about to be restamped, and the gateway would execute the
            // frame *after* the rotation whatever its stamp claims. Rekey
            // is a synchronisation point — reject without consuming
            // anything; the client resends after the ack.
            return Err((
                ErrorCode::BadSequence,
                "a rekey is in flight on this stream; wait for the ack".to_string(),
            ));
        }
        let (cur_epoch, cur_counter) = split_seq(expected);
        let (frame_epoch, frame_counter) = split_seq(seq);
        if frame_epoch < cur_epoch {
            // A replay from before a rotation. The dedicated code lets
            // clients and monitors tell "stale capture" from an ordinary
            // sequencing bug; either way no cipher state is touched and
            // the sequence number is not consumed.
            return Err((
                ErrorCode::StaleEpoch,
                format!(
                    "frame stamped with retired epoch {frame_epoch}; stream is at epoch {cur_epoch}"
                ),
            ));
        }
        if seq != expected {
            return Err((
                ErrorCode::BadSequence,
                format!(
                    "expected epoch {cur_epoch} counter {cur_counter}, \
                     got epoch {frame_epoch} counter {frame_counter}"
                ),
            ));
        }
        if cur_counter == u32::MAX && frame.kind != FrameKind::Rekey {
            // Accepting a Data frame here would roll the counter into the
            // epoch bits. Practically unreachable (2³² messages in one
            // epoch), but never silently — and `Rekey` is deliberately
            // exempt: rotating to a fresh epoch is the escape hatch this
            // error advises, so it must still be accepted.
            return Err((
                ErrorCode::Protocol,
                "per-epoch sequence space exhausted; rekey the stream".to_string(),
            ));
        }
        let (op, shape) = if frame.kind == FrameKind::Rekey {
            match decode_rekey(&frame.payload) {
                Ok(epoch) if epoch > cur_epoch => (StreamOp::Rekey { epoch }, ReplyShape::Rekey),
                Ok(epoch) => {
                    return Err((
                        ErrorCode::StaleEpoch,
                        format!(
                            "rekey to epoch {epoch} is not newer than current epoch {cur_epoch}"
                        ),
                    ));
                }
                Err(e) => return Err((ErrorCode::Protocol, e.to_string())),
            }
        } else if frame.flags & flags::DIR_OPEN != 0 {
            match decode_blocks(&frame.payload) {
                Ok((bit_len, blocks)) => (
                    StreamOp::Decrypt {
                        blocks,
                        bit_len: bit_len as usize,
                    },
                    ReplyShape::Open,
                ),
                Err(e) => return Err((ErrorCode::Protocol, e.to_string())),
            }
        } else {
            if frame.payload.len() > MAX_MESSAGE_BYTES {
                // The sealed reply could exceed MAX_PAYLOAD (worst-case
                // key expansion is 16×) — reject before the cipher runs
                // rather than panic framing an unsendable reply.
                return Err((
                    ErrorCode::MessageTooLarge,
                    format!(
                        "message of {} bytes exceeds the {MAX_MESSAGE_BYTES}-byte seal cap",
                        frame.payload.len()
                    ),
                ));
            }
            // lint: allow(truncating-cast, reason = "payload.len() ≤ MAX_MESSAGE_BYTES (checked above), so len*8 fits u32")
            let bit_len = (frame.payload.len() * 8) as u32;
            (
                StreamOp::Encrypt(frame.payload),
                ReplyShape::Seal { bit_len },
            )
        };
        // Consume the sequence number in the *current* epoch; a
        // successful rekey additionally restamps it to the new epoch's
        // counter 0 when the ack is built. An accepted Rekey also blocks
        // every further frame on the stream until that restamp
        // (`rekey_pending`), so nothing can be validated against the old
        // epoch but executed after the rotation. At counter u32::MAX only
        // a Rekey can get here — skip the bump (it would roll into the
        // epoch bits); the pending guard covers the gap until the ack.
        if matches!(shape, ReplyShape::Rekey) {
            rekey_pending.insert(stream);
        }
        if cur_counter != u32::MAX {
            // `expected` was read out of this entry above, so the lookup
            // cannot miss; `if let` keeps that assumption panic-free.
            if let Some(next) = self.streams.get_mut(&stream) {
                *next = expected + 1;
            }
        }
        Ok((op, shape))
    }

    /// Appends an already-built frame to the write buffer (handshake and
    /// goodbye path — not per-message hot).
    pub(crate) fn push_frame(&mut self, frame: &Frame) {
        frame.encode_into(&mut self.wbuf);
    }

    /// Appends a seal-direction `Reply` (`bit_len ∥ blocks`), encoding
    /// the payload through the connection's reusable scratch buffer —
    /// no per-frame allocation.
    pub(crate) fn push_seal_reply(&mut self, stream: u64, seq: u64, bit_len: u32, blocks: &[u16]) {
        self.payload_scratch.clear();
        self.payload_scratch
            .extend_from_slice(&bit_len.to_le_bytes());
        for b in blocks {
            self.payload_scratch.extend_from_slice(&b.to_le_bytes());
        }
        frame::encode_raw(
            &mut self.wbuf,
            FrameKind::Reply,
            0,
            stream,
            seq,
            &self.payload_scratch,
        );
    }

    /// Appends an open-direction `Reply`, borrowing the recovered
    /// plaintext straight into the frame encoder.
    pub(crate) fn push_open_reply(&mut self, stream: u64, seq: u64, plain: &[u8]) {
        frame::encode_raw(
            &mut self.wbuf,
            FrameKind::Reply,
            flags::DIR_OPEN,
            stream,
            seq,
            plain,
        );
    }

    /// Appends a `RekeyAck` (`epoch ∥ fresh token`) through the scratch
    /// buffer.
    pub(crate) fn push_rekey_ack(&mut self, stream: u64, seq: u64, epoch: u32, token: u64) {
        self.payload_scratch.clear();
        self.payload_scratch.extend_from_slice(&epoch.to_le_bytes());
        self.payload_scratch.extend_from_slice(&token.to_le_bytes());
        frame::encode_raw(
            &mut self.wbuf,
            FrameKind::RekeyAck,
            0,
            stream,
            seq,
            &self.payload_scratch,
        );
    }

    /// Appends an `Error` frame (`code ∥ truncated detail`) through the
    /// scratch buffer.
    pub(crate) fn push_error(&mut self, stream: u64, seq: u64, code: ErrorCode, detail: &str) {
        self.payload_scratch.clear();
        // lint: allow(truncating-cast, reason = "ErrorCode is repr(u8); the discriminant is the wire byte")
        self.payload_scratch.push(code as u8);
        // lint: allow(panic-path, reason = "slice end is detail.len().min(cap), never past the end")
        let detail = &detail.as_bytes()[..detail.len().min(MAX_ERROR_DETAIL_BYTES)];
        self.payload_scratch.extend_from_slice(detail);
        frame::encode_raw(
            &mut self.wbuf,
            FrameKind::Error,
            0,
            stream,
            seq,
            &self.payload_scratch,
        );
    }

    /// Writes as much of the queued bytes as the socket takes. Returns
    /// whether bytes moved; promotes fully-drained closing/half-closed
    /// connections to dead.
    pub(crate) fn flush_tick(&mut self) -> bool {
        if self.dead {
            return false;
        }
        let mut moved = false;
        while self.wpos < self.wbuf.len() {
            // lint: allow(panic-path, reason = "the loop condition keeps wpos < wbuf.len()")
            match self.sock.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.wpos += n;
                    moved = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if moved && (self.closing || self.eof) {
            // close_grace is an *idle* timeout, not an absolute deadline:
            // a half-closed peer actively draining a large reply backlog
            // must not be torn down mid-drain.
            self.closing_since = Some(Instant::now());
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
            if self.closing || (self.eof && self.rbuf.is_empty()) {
                // Goodbye (or the half-closed peer's last replies) fully
                // flushed and nothing left to parse — nothing more will
                // ever arrive or leave. (An eof conn with leftover bytes
                // gets one more tick to parse them — e.g. a control frame
                // deferred behind data — or ages out via close_grace if
                // they are a forever-partial frame.)
                self.dead = true;
            }
        } else if self.wpos > (64 << 10) {
            // Reclaim flushed prefix without waiting for full drain.
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        moved
    }
}
