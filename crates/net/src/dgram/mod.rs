//! **MHNP-D** — the datagram mode of MHNP, over `std::net::UdpSocket`.
//!
//! The TCP stack ([`crate::server`]/[`crate::client`]) assumes a
//! reliable ordered byte stream; MHNP-D assumes nothing: packets may be
//! lost, duplicated, reordered or delayed, and every packet must
//! therefore be decodable — and serviceable — **in isolation**. The
//! cipher property making that possible already exists: the container-v2
//! chunk path derives an independent LFSR seed per chunk index
//! (`mhhea::pipeline::chunk_seed`), so chunks share no cipher state and
//! decrypt in any order with any subset delivered. MHNP-D puts that
//! property on an unreliable wire.
//!
//! * [`frame`] — one standard MHNP frame per datagram (same 32-byte
//!   header, same CRC, new kinds), plus the datagram size caps.
//! * [`window`] — [`window::ReorderWindow`], the sliding replay window
//!   both ends run: per-stream chunk-index dedup with bounded memory.
//! * [`sender`] — [`sender::DgramClient`], the client: splits a message
//!   into independently-sealed chunks, one datagram each, and
//!   reassembles replies under a deadline, reporting losses explicitly.
//! * `socket` (private) — the server-side driver thread, wired into the
//!   same `Shared` registry/[`mhhea::gateway::StreamMux`] the TCP
//!   reactors serve.
//!
//! # Division of labour with TCP
//!
//! Key establishment stays on the reliable transport: a stream is opened
//! over TCP (`Hello` with a pre-shared key id, or an MHKX `KeyEx`
//! exchange) and *attached* to the datagram path by presenting its
//! **resume token** in a `DgramResume` packet. A parked stream (its TCP
//! connection died) is restored from its eviction snapshot exactly as a
//! TCP `Resume` would; a live stream is attached in place. Either way
//! the datagram path serves the same mux entry as TCP — same key
//! epochs, same snapshots, same stats.
//!
//! # The loss-tolerance contract
//!
//! Delivered chunks are **byte-exact or refused** — never silently
//! corrupted (the CRC rejects damage; the replay window rejects
//! duplicates; wrong-epoch stamps are refused before cipher state is
//! touched). Lost chunks are **reported, not recovered**: there is no
//! retransmission, no acknowledgement beyond the per-chunk reply, and no
//! cross-chunk ordering guarantee. See `docs/PROTOCOL.md` §6 for the
//! normative statement of what is (and is not) guaranteed.

pub mod frame;
pub mod sender;
pub(crate) mod socket;
pub mod window;

pub use frame::{decode_datagram, DGRAM_MAX_CHUNK_BYTES, DGRAM_MAX_PACKET_BYTES};
pub use sender::{
    DgramClient, DgramClientConfig, DgramError, DgramOutcome, OpenedChunk, SealedChunk,
};
pub use window::{ReorderWindow, Slot};
