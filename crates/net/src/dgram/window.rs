//! The sliding replay window: per-stream chunk-index dedup with bounded
//! memory.
//!
//! Both ends of MHNP-D run one of these per stream and direction. On the
//! server it is security-critical in the seal direction: chunk index `i`
//! at epoch `e` selects keystream `chunk_seed(epoch_seed, i)`, so sealing
//! two payloads under the same `(e, i)` would hand out a two-time pad.
//! The window guarantees each index inside it is served **at most once**
//! ([`Slot::Duplicate`] on replay) while indices that fell behind it are
//! refused outright ([`Slot::Expired`]) — the bounded-memory price of
//! tolerating arbitrary reordering within the window span.
//!
//! The scheme is the classic IPsec anti-replay window: a fixed-size ring
//! of bits tracking the `window()` indices at and below the highest index
//! seen, which slides forward (never back) as higher indices arrive.

/// Smallest window size [`ReorderWindow::new`] will build (one bitmap
/// word). Requests below this are rounded up.
pub const MIN_WINDOW: u32 = 64;

/// Largest window size [`ReorderWindow::new`] will build. Requests above
/// this are rounded down — the window is per-stream state, so its size
/// bounds server memory per attached stream.
pub const MAX_WINDOW: u32 = 1 << 16;

/// What [`ReorderWindow::insert`] decided about a chunk index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// First sighting of this index: serve it.
    Accepted,
    /// The index is inside the window and was already accepted: refuse it
    /// ([`crate::frame::ErrorCode::DuplicateChunk`] on the wire).
    Duplicate,
    /// The index fell behind the window and its history is gone: refuse
    /// it ([`crate::frame::ErrorCode::ChunkExpired`] on the wire).
    Expired,
}

/// A sliding anti-replay window over `u32` chunk indices.
///
/// Tracks which of the `window()` indices ending at the highest index
/// seen have been accepted. Indices above the highest always fit (the
/// window slides up to admit them); indices at or below it are accepted
/// once, refused as [`Slot::Duplicate`] thereafter, and refused as
/// [`Slot::Expired`] once they drop off the low edge.
#[derive(Debug, Clone)]
pub struct ReorderWindow {
    /// Ring of bitmap words; index `i` lives at bit `i % 64` of word
    /// `(i / 64) % bits.len()`.
    bits: Vec<u64>,
    /// `bits.len() * 64`, cached.
    window: u32,
    /// Highest index ever accepted into the window, if any.
    highest: Option<u32>,
}

impl ReorderWindow {
    /// Builds a window spanning (at least) `window` indices, rounded up
    /// to a whole number of 64-bit words and clamped to
    /// [`MIN_WINDOW`]..=[`MAX_WINDOW`].
    pub fn new(window: u32) -> ReorderWindow {
        let window = window.clamp(MIN_WINDOW, MAX_WINDOW).div_ceil(64) * 64;
        ReorderWindow {
            bits: vec![0; (window / 64) as usize],
            window,
            highest: None,
        }
    }

    /// The number of indices the window spans.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// The highest index accepted so far, if any index was.
    pub fn highest(&self) -> Option<u32> {
        self.highest
    }

    /// Forgets all history, as if freshly built. Used when a stream's key
    /// epoch rotates: chunk indices restart per epoch, so the old epoch's
    /// replay history must not shadow the new one's indices.
    pub fn reset(&mut self) {
        self.bits.fill(0);
        self.highest = None;
    }

    /// Records `index` and says whether it should be served.
    pub fn insert(&mut self, index: u32) -> Slot {
        let highest = match self.highest {
            None => {
                self.bits.fill(0);
                self.set(index);
                self.highest = Some(index);
                return Slot::Accepted;
            }
            Some(h) => h,
        };
        if index > highest {
            // Slide forward: every position the low edge passes over must
            // be cleared so its bit cannot shadow a future index that
            // maps to the same ring slot.
            let advance = index - highest;
            if advance >= self.window {
                self.bits.fill(0);
            } else {
                for vacated in 1..=advance {
                    self.clear(highest.wrapping_add(vacated));
                }
            }
            self.set(index);
            self.highest = Some(index);
            return Slot::Accepted;
        }
        if highest - index >= self.window {
            return Slot::Expired;
        }
        if self.get(index) {
            return Slot::Duplicate;
        }
        self.set(index);
        Slot::Accepted
    }

    fn slot(&self, index: u32) -> (usize, u64) {
        let word = (index / 64) as usize % self.bits.len();
        (word, 1u64 << (index % 64))
    }

    fn get(&self, index: u32) -> bool {
        let (word, mask) = self.slot(index);
        // lint: allow(panic-path, reason = "slot() reduces the word index mod bits.len()")
        self.bits[word] & mask != 0
    }

    fn set(&mut self, index: u32) {
        let (word, mask) = self.slot(index);
        // lint: allow(panic-path, reason = "slot() reduces the word index mod bits.len()")
        self.bits[word] |= mask;
    }

    fn clear(&mut self, index: u32) {
        let (word, mask) = self.slot(index);
        // lint: allow(panic-path, reason = "slot() reduces the word index mod bits.len()")
        self.bits[word] &= !mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_each_index_once_in_any_order() {
        let mut w = ReorderWindow::new(64);
        for &i in &[5u32, 2, 9, 0, 7, 63, 33] {
            assert_eq!(w.insert(i), Slot::Accepted, "first sight of {i}");
        }
        for &i in &[5u32, 2, 9, 0, 7, 63, 33] {
            assert_eq!(w.insert(i), Slot::Duplicate, "replay of {i}");
        }
        assert_eq!(w.highest(), Some(63));
    }

    #[test]
    fn expires_indices_behind_the_window() {
        let mut w = ReorderWindow::new(64);
        assert_eq!(w.window(), 64);
        assert_eq!(w.insert(0), Slot::Accepted);
        assert_eq!(w.insert(100), Slot::Accepted);
        // 100 - 64 = 36: indices <= 36 are behind the 64-wide window.
        assert_eq!(w.insert(36), Slot::Expired);
        assert_eq!(w.insert(37), Slot::Accepted);
        // Index 0 was accepted but its history is gone with the slide;
        // it now reports Expired, not Duplicate — refused either way.
        assert_eq!(w.insert(0), Slot::Expired);
    }

    #[test]
    fn sliding_clears_vacated_ring_slots() {
        let mut w = ReorderWindow::new(64);
        assert_eq!(w.insert(3), Slot::Accepted);
        // Slide by exactly the window: index 67 reuses index 3's ring bit
        // (67 % 64 == 3) and must not read it as already-seen.
        assert_eq!(w.insert(67), Slot::Accepted);
        assert_eq!(w.insert(4), Slot::Accepted);
        // A giant jump clears everything in one sweep.
        assert_eq!(w.insert(1_000_000), Slot::Accepted);
        assert_eq!(w.insert(1_000_000 - 63), Slot::Accepted);
        assert_eq!(w.insert(1_000_000 - 64), Slot::Expired);
    }

    #[test]
    fn reset_forgets_all_history() {
        let mut w = ReorderWindow::new(128);
        assert_eq!(w.insert(10), Slot::Accepted);
        assert_eq!(w.insert(10), Slot::Duplicate);
        w.reset();
        assert_eq!(w.highest(), None);
        assert_eq!(w.insert(10), Slot::Accepted);
    }

    #[test]
    fn size_requests_are_clamped_and_rounded() {
        assert_eq!(ReorderWindow::new(0).window(), MIN_WINDOW);
        assert_eq!(ReorderWindow::new(65).window(), 128);
        assert_eq!(ReorderWindow::new(u32::MAX).window(), MAX_WINDOW);
    }

    #[test]
    fn max_u32_index_is_representable() {
        let mut w = ReorderWindow::new(64);
        assert_eq!(w.insert(u32::MAX), Slot::Accepted);
        assert_eq!(w.insert(u32::MAX), Slot::Duplicate);
        assert_eq!(w.insert(u32::MAX - 63), Slot::Accepted);
        assert_eq!(w.insert(u32::MAX - 64), Slot::Expired);
    }
}
