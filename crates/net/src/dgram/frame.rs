//! Datagram framing: one MHNP frame per UDP datagram, plus size caps.
//!
//! MHNP-D reuses the stream wire format from [`crate::frame`] unchanged —
//! same 32-byte header, same CRC-32, same kind/error-code spaces — and
//! adds exactly one constraint: **a datagram carries exactly one frame**.
//! The frame must span the whole datagram; a datagram with bytes left
//! over after the frame, or one too short to hold the frame its header
//! declares, is rejected whole. That keeps every packet self-describing
//! (stream id, epoch and chunk index ride in the header's `stream` and
//! `seq` fields) and decodable with zero cross-packet state.
//!
//! The caps below are deliberately far under [`crate::frame::MAX_PAYLOAD`]:
//! a datagram either fits comfortably in a single unfragmented UDP packet
//! on loopback-class MTUs or it is refused before any cipher work.

use crate::frame::{decode, Frame, FrameError, HEADER_LEN};

/// Largest plaintext chunk a single [`crate::frame::FrameKind::DgramData`]
/// seal request may carry, in bytes. Senders split messages at (at most)
/// this size; the server refuses bigger seal payloads with
/// [`crate::frame::ErrorCode::MessageTooLarge`] before touching the
/// cipher.
pub const DGRAM_MAX_CHUNK_BYTES: usize = 1024;

/// Largest datagram either side of MHNP-D ever emits, in bytes: a frame
/// header plus the biggest legal payload — an encoded block vector
/// (`bit_len` prefix + 16 bytes of ciphertext blocks per plaintext byte)
/// for a maximum-size chunk. Receive buffers are sized to this; a bigger
/// datagram is truncated by the socket, fails the CRC, and is dropped.
pub const DGRAM_MAX_PACKET_BYTES: usize = HEADER_LEN + 4 + 16 * DGRAM_MAX_CHUNK_BYTES;

/// Decodes one datagram as exactly one MHNP frame.
///
/// Unlike the incremental stream [`decode`], a datagram is an atomic
/// unit: "need more bytes" means the packet was truncated in flight, and
/// trailing bytes after the frame mean it was corrupted or hostile.
/// Both are reported as errors so callers drop the packet whole.
///
/// # Errors
///
/// Everything [`decode`] reports (bad magic, unknown kind, bad CRC, …)
/// plus [`FrameError::BadPayload`] for truncated or oversize datagrams.
pub fn decode_datagram(buf: &[u8]) -> Result<Frame, FrameError> {
    match decode(buf)? {
        Some((frame, used)) if used == buf.len() => Ok(frame),
        Some(_) => Err(FrameError::BadPayload(
            "trailing bytes after datagram frame",
        )),
        None => Err(FrameError::BadPayload("truncated datagram")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{join_seq, FrameKind};

    #[test]
    fn datagram_decode_requires_exactly_one_frame() {
        let frame = Frame::new(FrameKind::DgramData, 9, join_seq(1, 4)).with_payload(vec![7; 16]);
        let bytes = frame.encode();

        let back = decode_datagram(&bytes).expect("whole datagram decodes");
        assert_eq!(back.kind, FrameKind::DgramData);
        assert_eq!(back.stream, 9);
        assert_eq!(back.seq, join_seq(1, 4));
        assert_eq!(back.payload, vec![7; 16]);

        // Truncated: the packet lost its tail in flight.
        assert!(matches!(
            decode_datagram(&bytes[..bytes.len() - 1]),
            Err(FrameError::BadPayload(_))
        ));

        // Trailing garbage: two frames (or junk) glued into one packet.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            decode_datagram(&padded),
            Err(FrameError::BadPayload(_))
        ));

        // A flipped payload byte fails the CRC like any stream frame.
        let mut flipped = bytes;
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        assert!(matches!(
            decode_datagram(&flipped),
            Err(FrameError::BadCrc { .. })
        ));
    }

    #[test]
    fn packet_cap_bounds_the_biggest_legal_reply() {
        // A sealed max-size chunk: 8 u16 blocks (16 wire bytes) per
        // plaintext byte plus the 4-byte bit_len prefix.
        let blocks = vec![0u16; 16 * DGRAM_MAX_CHUNK_BYTES / 2];
        let payload = crate::frame::encode_blocks((DGRAM_MAX_CHUNK_BYTES * 8) as u32, &blocks);
        let frame = Frame::new(FrameKind::DgramReply, 1, join_seq(0, 0)).with_payload(payload);
        assert!(frame.encode().len() <= DGRAM_MAX_PACKET_BYTES);
    }
}
