//! The server-side MHNP-D driver: one thread, one `UdpSocket`, the same
//! shared state the TCP reactors serve.
//!
//! The driver owns no cipher state of its own. Streams live in the
//! shared [`mhhea::gateway::StreamMux`]; eviction snapshots and resume
//! tokens live in the shared registry; the driver only keeps the
//! *datagram-specific* per-stream state: which peer address the stream
//! is bound to, the epoch its replay windows were built for, and the
//! windows themselves. Every cipher operation goes through
//! [`mhhea::gateway::StreamMux::seal_chunk`]/
//! [`mhhea::gateway::StreamMux::open_chunk`], which re-check the epoch under the shard
//! lock — the driver's epoch cache is an optimisation and a window-reset
//! trigger, never the authority.
//!
//! Refusal policy, from cheapest to most specific:
//!
//! * **Undecodable packets** (bad magic/CRC, truncation, trailing bytes,
//!   unknown kind) are dropped silently — reflecting errors at unverified
//!   sources would make the server a UDP amplifier.
//! * **Stream-transport kinds** over UDP are dropped silently too, and
//!   counted as protocol errors.
//! * **Well-formed but unattributable** packets get silence as well:
//!   data for a stream that is not attached here (or bound to a
//!   different peer address), and any `DgramResume` that is malformed
//!   or fails the token check. Until a source address survives the
//!   token check it has proved nothing; an `Error` reply (~2x the size
//!   of a minimal probe) would be amplification toward a spoofed
//!   victim, and answering at all would leak which ids are served.
//! * Everything attributed to an attached stream — a packet from the
//!   peer address that last passed the stream's token check, even while
//!   the stream itself is parked in an eviction snapshot — gets an
//!   explicit `Error` reply echoing the packet's stream and sequence,
//!   so the client can account for the chunk instead of timing out.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mhhea::gateway::{GatewayError, StreamId};

use crate::frame::{
    decode_blocks, encode_blocks, encode_error, encode_raw, flags, split_seq, ErrorCode, FrameKind,
};
use crate::reactor::Shared;
use crate::server::ServerStats;

use super::frame::{decode_datagram, DGRAM_MAX_CHUNK_BYTES, DGRAM_MAX_PACKET_BYTES};
use super::window::{ReorderWindow, Slot};

/// Datagram-path state for one attached stream.
///
/// The entry outlives the stream's presence in the mux: when a TCP
/// disconnect evicts the stream to a parked snapshot, the entry — and
/// with it the replay windows — stays, because a resume restores the
/// snapshot at the **same** epoch and rebuilding fresh windows on the
/// re-attach would reopen every index already served in that epoch
/// (index reuse = two-time pad). The entry is dropped only once the
/// registry holds no resume token for the stream, i.e. once it can
/// never legally return.
struct Attached {
    /// The peer address the stream answered its last successful attach
    /// from. Data packets from any other address are refused — a valid
    /// re-attach (token check and all) is how a roaming client rebinds.
    peer: SocketAddr,
    /// The epoch the replay windows below were built for. Refreshed from
    /// the mux on every data packet; a rotation resets both windows
    /// (chunk indices restart per epoch).
    epoch: u32,
    /// Replay window for seal requests — security-critical: a replayed
    /// seal index would be sealed under the same keystream twice.
    seal_window: ReorderWindow,
    /// Replay window for open requests — hygiene: dedups the decrypt
    /// work a replayed packet would otherwise repeat.
    open_window: ReorderWindow,
}

/// What `vet_data` decided about a `DgramData` packet, borrow-free so the
/// socket can be written to afterwards.
enum Verdict {
    /// Drop silently (and count): the packet could not be attributed to
    /// an attached stream, so answering it would be amplification.
    Drop,
    /// Refuse with an `Error` reply carrying this code and detail.
    Refuse(ErrorCode, String),
    /// Seal this plaintext at (epoch, index).
    Seal(Vec<u8>),
    /// Open these blocks at (epoch, index).
    Open(u32, Vec<u16>),
}

/// The datagram driver loop. Built by `NetServer` when the datagram path
/// is enabled; runs on its own `mhnp-dgram` thread until shutdown.
pub(crate) struct DgramDriver {
    shared: Arc<Shared>,
    sock: UdpSocket,
    streams: HashMap<u64, Attached>,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
}

impl DgramDriver {
    pub(crate) fn new(shared: Arc<Shared>, sock: UdpSocket) -> DgramDriver {
        DgramDriver {
            shared,
            sock,
            streams: HashMap::new(),
            rbuf: vec![0; DGRAM_MAX_PACKET_BYTES],
            wbuf: Vec::with_capacity(DGRAM_MAX_PACKET_BYTES),
        }
    }

    /// Serves packets until `shutdown` turns true. The socket read times
    /// out on the server's idle-sleep cadence so the flag is observed
    /// promptly even on a silent socket.
    pub(crate) fn run(mut self, shutdown: &AtomicBool) {
        let poll = self.shared.cfg.idle_sleep.max(Duration::from_millis(1));
        let _ = self.sock.set_read_timeout(Some(poll));
        while !shutdown.load(Ordering::Relaxed) {
            let (n, src) = match self.sock.recv_from(&mut self.rbuf) {
                Ok(got) => got,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) =>
                {
                    continue;
                }
                // Transient socket errors (e.g. ICMP-unreachable surfacing
                // on some platforms) must not kill the driver thread.
                Err(_) => continue,
            };
            ServerStats::bump(&self.shared.stats.dgram_packets_received);
            // lint: allow(panic-path, reason = "recv_from returns n <= rbuf.len() by contract")
            let frame = match decode_datagram(&self.rbuf[..n]) {
                Ok(frame) => frame,
                Err(_) => {
                    // Undecodable: silent drop, never reflected.
                    ServerStats::bump(&self.shared.stats.dgram_rejected);
                    continue;
                }
            };
            match frame.kind {
                FrameKind::DgramResume => self.handle_attach(&frame, src),
                FrameKind::DgramData => self.handle_data(&frame, src),
                // Stream-transport kinds (and server-emitted dgram kinds)
                // have no business arriving here; drop without reflection.
                _ => {
                    ServerStats::bump(&self.shared.stats.dgram_rejected);
                    ServerStats::bump(&self.shared.stats.protocol_errors);
                }
            }
        }
    }

    /// A `DgramResume`: verify the resume token against the shared
    /// registry, restore the stream if parked, bind it to the source
    /// address, and ack with the current epoch. Every refusal — a
    /// malformed token payload, a wrong token, an unknown stream, a
    /// failed restore — is a uniform silent drop: the source address has
    /// not passed the token check, so a reply would be amplification and
    /// a live/parked oracle. The client learns of refusal by its ack
    /// deadline (attach is idempotent; it just retries).
    fn handle_attach(&mut self, frame: &crate::frame::Frame, src: SocketAddr) {
        let stream = frame.stream;
        let Ok(token_bytes) = <[u8; 8]>::try_from(frame.payload.as_slice()) else {
            ServerStats::bump(&self.shared.stats.dgram_rejected);
            return;
        };
        let token = u64::from_le_bytes(token_bytes);
        match self.shared.dgram_attach(stream, token) {
            Some(epoch) => {
                match self.streams.get_mut(&stream) {
                    // Same-epoch re-attach (a retried or duplicated
                    // DgramResume, a roaming client, or a client coming
                    // back after its stream was parked and restored):
                    // rebind the peer but KEEP the replay windows —
                    // resetting them would reopen every already-served
                    // seal index to replay.
                    Some(at) if at.epoch == epoch => at.peer = src,
                    _ => {
                        let window = self.shared.cfg.dgram_window;
                        self.streams.insert(
                            stream,
                            Attached {
                                peer: src,
                                epoch,
                                seal_window: ReorderWindow::new(window),
                                open_window: ReorderWindow::new(window),
                            },
                        );
                        ServerStats::bump(&self.shared.stats.dgram_attached);
                    }
                }
                // The ack payload is the 4-byte LE epoch — the same shape
                // as a Rekey payload.
                Self::send(
                    &self.sock,
                    &mut self.wbuf,
                    &self.shared.stats,
                    src,
                    FrameKind::DgramAck,
                    0,
                    stream,
                    frame.seq,
                    &epoch.to_le_bytes(),
                );
            }
            None => {
                ServerStats::bump(&self.shared.stats.dgram_rejected);
            }
        }
    }

    /// A `DgramData`: attribute it to an attached stream, run it through
    /// the replay window, and serve the chunk operation.
    fn handle_data(&mut self, frame: &crate::frame::Frame, src: SocketAddr) {
        let stream = frame.stream;
        let (epoch, index) = split_seq(frame.seq);
        let verdict = self.vet_data(frame, src);
        match verdict {
            Verdict::Drop => {
                ServerStats::bump(&self.shared.stats.dgram_rejected);
            }
            Verdict::Refuse(code, detail) => {
                ServerStats::bump(&self.shared.stats.dgram_rejected);
                self.reply_error(src, stream, frame.seq, code, &detail);
            }
            Verdict::Seal(plain) => {
                match self
                    .shared
                    .mux
                    .seal_chunk(StreamId(stream), epoch, index, &plain)
                {
                    Ok(blocks) => {
                        ServerStats::bump(&self.shared.stats.dgram_chunks);
                        // lint: allow(truncating-cast, reason = "plain.len() <= DGRAM_MAX_CHUNK_BYTES so the bit count fits u32")
                        let payload = encode_blocks((plain.len() * 8) as u32, &blocks);
                        Self::send(
                            &self.sock,
                            &mut self.wbuf,
                            &self.shared.stats,
                            src,
                            FrameKind::DgramReply,
                            0,
                            stream,
                            frame.seq,
                            &payload,
                        );
                    }
                    Err(e) => {
                        ServerStats::bump(&self.shared.stats.dgram_rejected);
                        let (code, detail) = Self::gateway_reply(e);
                        self.reply_error(src, stream, frame.seq, code, &detail);
                    }
                }
            }
            Verdict::Open(bit_len, blocks) => {
                match self
                    .shared
                    .mux
                    .open_chunk(StreamId(stream), epoch, &blocks, bit_len as usize)
                {
                    Ok(plain) => {
                        ServerStats::bump(&self.shared.stats.dgram_chunks);
                        Self::send(
                            &self.sock,
                            &mut self.wbuf,
                            &self.shared.stats,
                            src,
                            FrameKind::DgramReply,
                            flags::DIR_OPEN,
                            stream,
                            frame.seq,
                            &plain,
                        );
                    }
                    Err(e) => {
                        ServerStats::bump(&self.shared.stats.dgram_rejected);
                        let (code, detail) = Self::gateway_reply(e);
                        self.reply_error(src, stream, frame.seq, code, &detail);
                    }
                }
            }
        }
    }

    /// Everything about a `DgramData` packet that can be decided from the
    /// driver's own state: attribution, epoch freshness, payload shape,
    /// and the replay window. Returns a borrow-free verdict so the caller
    /// can write to the socket afterwards.
    fn vet_data(&mut self, frame: &crate::frame::Frame, src: SocketAddr) -> Verdict {
        let stream = frame.stream;
        // One uniform answer — silence — for "never attached" and "bound
        // to a different peer": a sender probing stream ids must not
        // learn which are attached, an injector sending from the wrong
        // address must not learn that the id was right, and neither
        // source has earned a reply (see the module docs).
        let Some(at) = self.streams.get_mut(&stream) else {
            return Verdict::Drop;
        };
        if at.peer != src {
            return Verdict::Drop;
        }
        // The mux is the epoch authority: a TCP Rekey may have rotated
        // the stream since the last packet, and an evicted/closed stream
        // must refuse here.
        let current = match self.shared.mux.epoch(StreamId(stream)) {
            Ok(epoch) => epoch,
            Err(_) => {
                // The stream left the mux — evicted to a parked snapshot
                // on a TCP disconnect, or torn down for good. The entry
                // (and with it the replay windows) must survive a park: a
                // resume restores the snapshot at the SAME epoch, so
                // forgetting the windows here would reopen every index
                // already served in that epoch on the next re-attach.
                // Only when no resume token exists can the stream never
                // legally return, and only then is the entry dropped.
                if !self.shared.has_token(stream) {
                    self.streams.remove(&stream);
                }
                // Attributed (the peer passed the token check), so the
                // refusal is answered: it tells the client to re-attach.
                return Verdict::Refuse(
                    ErrorCode::UnknownStream,
                    "stream not attached on the datagram path".into(),
                );
            }
        };
        if current != at.epoch {
            at.epoch = current;
            at.seal_window.reset();
            at.open_window.reset();
        }
        let (epoch, index) = split_seq(frame.seq);
        if epoch != current {
            return Verdict::Refuse(
                ErrorCode::StaleEpoch,
                format!("stream is at epoch {current}, datagram stamped epoch {epoch}"),
            );
        }
        // Shape and size checks come before the window: a malformed or
        // oversize packet must not burn its index's replay slot.
        let open = frame.flags & flags::DIR_OPEN != 0;
        let verdict = if open {
            let (bit_len, blocks) = match decode_blocks(&frame.payload) {
                Ok(decoded) => decoded,
                Err(e) => return Verdict::Refuse(ErrorCode::Protocol, e.to_string()),
            };
            if bit_len as usize > DGRAM_MAX_CHUNK_BYTES * 8 {
                return Verdict::Refuse(
                    ErrorCode::MessageTooLarge,
                    format!("chunk of {bit_len} bits exceeds the datagram chunk cap"),
                );
            }
            Verdict::Open(bit_len, blocks)
        } else {
            if frame.payload.len() > DGRAM_MAX_CHUNK_BYTES {
                return Verdict::Refuse(
                    ErrorCode::MessageTooLarge,
                    format!(
                        "chunk of {} bytes exceeds the {DGRAM_MAX_CHUNK_BYTES}-byte datagram chunk cap",
                        frame.payload.len()
                    ),
                );
            }
            Verdict::Seal(frame.payload.clone())
        };
        // The replay window is the last gate: an accepted index is burned
        // even if the cipher op then fails — the fail modes are all
        // stream-fatal races (eviction, rotation) where the client
        // re-attaches anyway, and never re-serving an index is the
        // property that matters.
        let window = if open {
            &mut at.open_window
        } else {
            &mut at.seal_window
        };
        match window.insert(index) {
            Slot::Accepted => verdict,
            Slot::Duplicate => Verdict::Refuse(
                ErrorCode::DuplicateChunk,
                format!("chunk index {index} was already served in epoch {epoch}"),
            ),
            Slot::Expired => Verdict::Refuse(
                ErrorCode::ChunkExpired,
                format!("chunk index {index} fell behind the replay window"),
            ),
        }
    }

    /// Maps a chunk-op failure to its wire error.
    fn gateway_reply(e: GatewayError) -> (ErrorCode, String) {
        let code = match &e {
            GatewayError::UnknownStream(_) => ErrorCode::UnknownStream,
            GatewayError::StaleEpoch { .. } => ErrorCode::StaleEpoch,
            GatewayError::MessageTooLarge { .. } => ErrorCode::MessageTooLarge,
            _ => ErrorCode::Engine,
        };
        (code, e.to_string())
    }

    fn reply_error(
        &mut self,
        dst: SocketAddr,
        stream: u64,
        seq: u64,
        code: ErrorCode,
        detail: &str,
    ) {
        let payload = encode_error(code, detail);
        Self::send(
            &self.sock,
            &mut self.wbuf,
            &self.shared.stats,
            dst,
            FrameKind::Error,
            0,
            stream,
            seq,
            &payload,
        );
    }

    /// Encodes one frame into the scratch buffer and sends it. Send
    /// failures are ignored: UDP gives no delivery promise anyway, and
    /// the client's deadline accounts for the loss.
    #[allow(clippy::too_many_arguments)]
    fn send(
        sock: &UdpSocket,
        wbuf: &mut Vec<u8>,
        stats: &ServerStats,
        dst: SocketAddr,
        kind: FrameKind,
        frame_flags: u8,
        stream: u64,
        seq: u64,
        payload: &[u8],
    ) {
        wbuf.clear();
        encode_raw(wbuf, kind, frame_flags, stream, seq, payload);
        if sock.send_to(wbuf, dst).is_ok() {
            ServerStats::bump(&stats.dgram_packets_sent);
        }
    }
}
