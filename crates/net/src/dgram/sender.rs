//! [`DgramClient`] — the MHNP-D client: chunked seal/open over UDP.
//!
//! One message becomes N independent datagrams: the client splits the
//! plaintext at [`DGRAM_MAX_CHUNK_BYTES`] (or a smaller configured chunk
//! size), stamps each chunk with a **never-reused** per-stream chunk
//! index, and sends each as its own [`FrameKind::DgramData`] packet. The
//! server seals each chunk under an index-derived keystream and answers
//! with a [`FrameKind::DgramReply`] per chunk; replies arrive in any
//! order, possibly duplicated, possibly not at all. The client collects
//! them under a deadline and reports the outcome honestly in a
//! [`DgramOutcome`]: chunks delivered byte-exact, chunks the server
//! refused, and chunks that simply never came back.
//!
//! Chunk indices are burned the moment they are assigned — before any
//! packet is sent — so no failure path can ever reissue an index within
//! an epoch (the server's keystream derivation makes index reuse a
//! two-time pad; see [`super::window`]).

use std::collections::{BTreeSet, HashMap};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::{Duration, Instant};

use crate::frame::{
    decode_blocks, decode_error, decode_rekey, encode_blocks, encode_raw, flags, join_seq,
    split_seq, ErrorCode, FrameError, FrameKind,
};

use super::frame::{decode_datagram, DGRAM_MAX_CHUNK_BYTES, DGRAM_MAX_PACKET_BYTES};

/// Everything [`DgramClient`] can fail with.
///
/// Per-chunk refusals and losses are *not* errors — they are reported in
/// the [`DgramOutcome`] so partial delivery keeps its delivered bytes.
/// This type is for failures of the exchange itself.
#[derive(Debug)]
pub enum DgramError {
    /// The socket failed.
    Io(io::Error),
    /// A reply could not be parsed at the frame layer.
    Frame(FrameError),
    /// The server refused an attach with an MHNP error frame.
    Server {
        /// Machine-readable code, when the byte mapped to a known code.
        code: Option<ErrorCode>,
        /// Human-readable detail from the server.
        detail: String,
    },
    /// [`DgramClient::seal`]/[`DgramClient::open`] was called for a
    /// stream never attached with [`DgramClient::attach`].
    StreamNotAttached(u64),
    /// No [`FrameKind::DgramAck`] arrived within the configured attempts.
    AttachTimeout {
        /// The stream being attached.
        stream: u64,
        /// How many `DgramResume` packets were sent.
        attempts: u32,
    },
    /// The stream's 32-bit chunk-index space for this epoch is spent.
    /// Rekey to a fresh epoch to keep sending.
    ChunkIndexExhausted(u64),
}

impl core::fmt::Display for DgramError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DgramError::Io(e) => write!(f, "datagram socket error: {e}"),
            DgramError::Frame(e) => write!(f, "datagram frame error: {e}"),
            DgramError::Server { code, detail } => match code {
                Some(code) => write!(f, "server refused: {code}: {detail}"),
                None => write!(f, "server refused: {detail}"),
            },
            DgramError::StreamNotAttached(id) => {
                write!(f, "stream {id} is not attached to the datagram path")
            }
            DgramError::AttachTimeout { stream, attempts } => {
                write!(
                    f,
                    "no ack for stream {stream} after {attempts} attach attempts"
                )
            }
            DgramError::ChunkIndexExhausted(id) => {
                write!(f, "stream {id} spent its chunk-index space for this epoch")
            }
        }
    }
}

impl std::error::Error for DgramError {}

impl From<io::Error> for DgramError {
    fn from(e: io::Error) -> DgramError {
        DgramError::Io(e)
    }
}

impl From<FrameError> for DgramError {
    fn from(e: FrameError) -> DgramError {
        DgramError::Frame(e)
    }
}

impl DgramError {
    /// True when this is a server refusal carrying exactly `code`.
    pub fn is_code(&self, code: ErrorCode) -> bool {
        matches!(self, DgramError::Server { code: Some(c), .. } if *c == code)
    }
}

/// A chunk the server refused with an MHNP error frame.
#[derive(Debug, Clone)]
pub struct RejectedChunk {
    /// The chunk index the refusal answered.
    pub index: u32,
    /// Machine-readable code, when the byte mapped to a known code.
    pub code: Option<ErrorCode>,
    /// Human-readable detail from the server.
    pub detail: String,
}

/// The honest result of a chunked exchange: what arrived, what was
/// refused, what was lost. Losing a chunk is **not** an error — it is the
/// contract of the transport — but it is never silent.
#[derive(Debug, Clone)]
pub struct DgramOutcome<T> {
    /// Chunks the server answered, in arrival order.
    pub delivered: Vec<T>,
    /// Chunks the server explicitly refused (stale epoch, duplicate
    /// index, oversize, …).
    pub rejected: Vec<RejectedChunk>,
    /// Chunk indices with no reply by the deadline — the request or the
    /// reply was lost in flight. Sorted ascending.
    pub missing: Vec<u32>,
}

impl<T> DgramOutcome<T> {
    /// True when every chunk was delivered: nothing refused, nothing lost.
    pub fn is_complete(&self) -> bool {
        self.rejected.is_empty() && self.missing.is_empty()
    }
}

/// One sealed chunk: the ciphertext for one chunk index.
#[derive(Debug, Clone)]
pub struct SealedChunk {
    /// The chunk index this ciphertext was sealed under. Together with
    /// the stream's epoch it fully determines the keystream.
    pub index: u32,
    /// Plaintext length in bits (trailing partial blocks are padded).
    pub bit_len: u32,
    /// The ciphertext blocks.
    pub blocks: Vec<u16>,
}

/// One opened chunk: the recovered plaintext for one chunk index.
#[derive(Debug, Clone)]
pub struct OpenedChunk {
    /// The chunk index the plaintext belongs to.
    pub index: u32,
    /// The recovered plaintext bytes.
    pub plain: Vec<u8>,
}

/// Tuning knobs for [`DgramClient`].
#[derive(Debug, Clone)]
pub struct DgramClientConfig {
    /// Largest plaintext chunk per datagram, clamped to
    /// `1..=`[`DGRAM_MAX_CHUNK_BYTES`]. Smaller chunks mean more packets
    /// per message — useful for exercising reordering.
    pub chunk_bytes: usize,
    /// How long [`DgramClient::seal`]/[`DgramClient::open`] wait for the
    /// last outstanding reply before declaring the rest missing, and how
    /// long each attach attempt waits for its ack.
    pub recv_timeout: Duration,
    /// How many `DgramResume` packets [`DgramClient::attach`] sends
    /// before giving up. Attach is idempotent on the server, so retries
    /// are safe under loss and duplication.
    pub attach_attempts: u32,
}

impl Default for DgramClientConfig {
    fn default() -> DgramClientConfig {
        DgramClientConfig {
            chunk_bytes: DGRAM_MAX_CHUNK_BYTES,
            recv_timeout: Duration::from_millis(250),
            attach_attempts: 4,
        }
    }
}

/// Per-stream client state.
#[derive(Debug)]
struct StreamState {
    /// The key epoch the server acked at attach time; every request is
    /// stamped with it.
    epoch: u32,
    /// Next chunk index to assign, kept as `u64` so exhaustion of the
    /// 32-bit wire space is detected instead of wrapped.
    next_chunk: u64,
}

/// The MHNP-D client. See the [module docs](self) for the exchange model.
///
/// Not `Sync`: like [`crate::client::NetClient`], one `DgramClient` is
/// one conversation and methods take `&mut self`.
#[derive(Debug)]
pub struct DgramClient {
    sock: UdpSocket,
    cfg: DgramClientConfig,
    streams: HashMap<u64, StreamState>,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
}

impl DgramClient {
    /// Binds an ephemeral local socket and connects it to the server's
    /// datagram address, with default config.
    ///
    /// # Errors
    ///
    /// [`DgramError::Io`] when binding or connecting fails.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<DgramClient, DgramError> {
        DgramClient::connect_with(addr, DgramClientConfig::default())
    }

    /// [`DgramClient::connect`] with explicit tuning.
    ///
    /// # Errors
    ///
    /// [`DgramError::Io`] when binding or connecting fails.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        cfg: DgramClientConfig,
    ) -> Result<DgramClient, DgramError> {
        let target = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address to connect"))?;
        let bind_addr: SocketAddr = if target.is_ipv4() {
            ([0, 0, 0, 0], 0).into()
        } else {
            (std::net::Ipv6Addr::UNSPECIFIED, 0).into()
        };
        let sock = UdpSocket::bind(bind_addr)?;
        sock.connect(target)?;
        Ok(DgramClient {
            sock,
            cfg,
            streams: HashMap::new(),
            rbuf: vec![0; DGRAM_MAX_PACKET_BYTES],
            wbuf: Vec::with_capacity(DGRAM_MAX_PACKET_BYTES),
        })
    }

    /// The local address the client's socket is bound to.
    ///
    /// # Errors
    ///
    /// [`DgramError::Io`] when the socket cannot report its address.
    pub fn local_addr(&self) -> Result<SocketAddr, DgramError> {
        Ok(self.sock.local_addr()?)
    }

    /// Attaches a stream to the datagram path by presenting its resume
    /// token (from a TCP `HelloAck`, `RekeyAck` or MHKX `KeyExAck`).
    /// Returns the stream's current key epoch.
    ///
    /// Attach is idempotent: the packet is retried up to
    /// `attach_attempts` times, and a duplicated `DgramResume` on the
    /// wire is harmless. Re-attaching after a rekey refreshes the epoch
    /// and restarts chunk indices; re-attaching at the same epoch keeps
    /// the local index cursor so indices are still never reused.
    ///
    /// # Errors
    ///
    /// [`DgramError::AttachTimeout`] when no ack arrives — a refused
    /// token is indistinguishable from loss, because the server drops
    /// attach refusals silently (anti-amplification; PROTOCOL.md §8.2) —
    /// [`DgramError::Server`] if an `Error` frame attributed to this
    /// stream does arrive, or [`DgramError::Io`] on socket failure.
    pub fn attach(&mut self, stream: u64, token: u64) -> Result<u32, DgramError> {
        let attempts = self.cfg.attach_attempts.max(1);
        for _ in 0..attempts {
            self.wbuf.clear();
            encode_raw(
                &mut self.wbuf,
                FrameKind::DgramResume,
                0,
                stream,
                0,
                &token.to_le_bytes(),
            );
            self.sock.send(&self.wbuf)?;

            let deadline = Instant::now() + self.cfg.recv_timeout;
            while let Some(frame) = self.recv_until(deadline)? {
                if frame.stream != stream {
                    continue;
                }
                match frame.kind {
                    FrameKind::DgramAck => {
                        // The ack payload is the 4-byte LE epoch — the
                        // same shape as a Rekey payload.
                        let epoch = decode_rekey(&frame.payload)?;
                        match self.streams.get_mut(&stream) {
                            Some(st) if st.epoch == epoch => {}
                            _ => {
                                self.streams.insert(
                                    stream,
                                    StreamState {
                                        epoch,
                                        next_chunk: 0,
                                    },
                                );
                            }
                        }
                        return Ok(epoch);
                    }
                    FrameKind::Error => {
                        let (code, detail) = decode_error(&frame.payload);
                        return Err(DgramError::Server { code, detail });
                    }
                    _ => {}
                }
            }
        }
        Err(DgramError::AttachTimeout { stream, attempts })
    }

    /// Splits `message` into chunks, has the server seal each under its
    /// own chunk index, and collects the ciphertexts. An empty message
    /// yields an empty (complete) outcome.
    ///
    /// # Errors
    ///
    /// [`DgramError::StreamNotAttached`] before [`DgramClient::attach`],
    /// [`DgramError::ChunkIndexExhausted`] when the epoch's index space
    /// is spent, or [`DgramError::Io`] on socket failure. Per-chunk
    /// refusals and losses are reported in the outcome, not as errors.
    pub fn seal(
        &mut self,
        stream: u64,
        message: &[u8],
    ) -> Result<DgramOutcome<SealedChunk>, DgramError> {
        let chunk_bytes = self.cfg.chunk_bytes.clamp(1, DGRAM_MAX_CHUNK_BYTES);
        let st = self
            .streams
            .get_mut(&stream)
            .ok_or(DgramError::StreamNotAttached(stream))?;
        let epoch = st.epoch;
        let count = message.len().div_ceil(chunk_bytes) as u64;
        let first = st.next_chunk;
        if first + count > u64::from(u32::MAX) + 1 {
            return Err(DgramError::ChunkIndexExhausted(stream));
        }
        // Burn the indices before any I/O: no failure below may reuse one.
        st.next_chunk = first + count;

        let requests: Vec<(u32, &[u8])> = message
            .chunks(chunk_bytes)
            .enumerate()
            // lint: allow(truncating-cast, reason = "first + i <= u32::MAX was checked above")
            .map(|(i, chunk)| ((first + i as u64) as u32, chunk))
            .collect();
        let raw = self.exchange(stream, epoch, &requests, false)?;

        let mut delivered = Vec::with_capacity(raw.delivered.len());
        let mut rejected = raw.rejected;
        for (index, payload) in raw.delivered {
            match decode_blocks(&payload) {
                Ok((bit_len, blocks)) => delivered.push(SealedChunk {
                    index,
                    bit_len,
                    blocks,
                }),
                Err(e) => rejected.push(RejectedChunk {
                    index,
                    code: None,
                    detail: format!("malformed seal reply: {e}"),
                }),
            }
        }
        Ok(DgramOutcome {
            delivered,
            rejected,
            missing: raw.missing,
        })
    }

    /// Has the server open (decrypt) each sealed chunk and collects the
    /// plaintexts. Chunks may come from any order and any subset of a
    /// previous [`DgramClient::seal`].
    ///
    /// Each chunk's own index identifies the open request on the wire,
    /// and the server dedups open requests exactly like seal requests:
    /// opening the same chunk twice is refused as a duplicate.
    ///
    /// # Errors
    ///
    /// [`DgramError::StreamNotAttached`] before [`DgramClient::attach`]
    /// or [`DgramError::Io`] on socket failure. Per-chunk refusals and
    /// losses are reported in the outcome, not as errors.
    pub fn open(
        &mut self,
        stream: u64,
        chunks: &[SealedChunk],
    ) -> Result<DgramOutcome<OpenedChunk>, DgramError> {
        let st = self
            .streams
            .get(&stream)
            .ok_or(DgramError::StreamNotAttached(stream))?;
        let epoch = st.epoch;
        let payloads: Vec<(u32, Vec<u8>)> = chunks
            .iter()
            .map(|c| (c.index, encode_blocks(c.bit_len, &c.blocks)))
            .collect();
        let requests: Vec<(u32, &[u8])> = payloads
            .iter()
            .map(|(index, payload)| (*index, payload.as_slice()))
            .collect();
        let raw = self.exchange(stream, epoch, &requests, true)?;
        Ok(DgramOutcome {
            delivered: raw
                .delivered
                .into_iter()
                .map(|(index, plain)| OpenedChunk { index, plain })
                .collect(),
            rejected: raw.rejected,
            missing: raw.missing,
        })
    }

    /// Sends one `DgramData` per request and collects raw reply payloads
    /// until every index is answered or the deadline passes. Duplicate
    /// replies, replies for other streams or epochs, and undecodable
    /// packets are dropped silently.
    fn exchange(
        &mut self,
        stream: u64,
        epoch: u32,
        requests: &[(u32, &[u8])],
        open: bool,
    ) -> Result<DgramOutcome<(u32, Vec<u8>)>, DgramError> {
        let dir = if open { flags::DIR_OPEN } else { 0 };
        let mut pending: BTreeSet<u32> = BTreeSet::new();
        for &(index, payload) in requests {
            self.wbuf.clear();
            encode_raw(
                &mut self.wbuf,
                FrameKind::DgramData,
                dir,
                stream,
                join_seq(epoch, index),
                payload,
            );
            self.sock.send(&self.wbuf)?;
            pending.insert(index);
        }

        let mut delivered = Vec::new();
        let mut rejected = Vec::new();
        let deadline = Instant::now() + self.cfg.recv_timeout;
        while !pending.is_empty() {
            let Some(frame) = self.recv_until(deadline)? else {
                break;
            };
            if frame.stream != stream {
                continue;
            }
            let (frame_epoch, index) = split_seq(frame.seq);
            if frame_epoch != epoch || !pending.contains(&index) {
                continue;
            }
            match frame.kind {
                // The direction flag must match: a delayed *seal* reply
                // must never be mistaken for the *open* reply of the same
                // index (the two payloads have different shapes).
                FrameKind::DgramReply if frame.flags & flags::DIR_OPEN == dir => {
                    pending.remove(&index);
                    delivered.push((index, frame.payload));
                }
                FrameKind::Error => {
                    pending.remove(&index);
                    let (code, detail) = decode_error(&frame.payload);
                    rejected.push(RejectedChunk {
                        index,
                        code,
                        detail,
                    });
                }
                _ => {}
            }
        }
        Ok(DgramOutcome {
            delivered,
            rejected,
            missing: pending.into_iter().collect(),
        })
    }

    /// Receives and decodes one datagram, or returns `None` once the
    /// deadline passes. Undecodable packets are dropped and the wait
    /// continues.
    fn recv_until(&mut self, deadline: Instant) -> Result<Option<crate::frame::Frame>, DgramError> {
        loop {
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Ok(None);
            };
            self.sock
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
            let n = match self.sock.recv(&mut self.rbuf) {
                Ok(n) => n,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) =>
                {
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            // lint: allow(panic-path, reason = "recv returns n <= rbuf.len() by contract")
            match decode_datagram(&self.rbuf[..n]) {
                Ok(frame) => return Ok(Some(frame)),
                Err(_) => continue,
            }
        }
    }
}
